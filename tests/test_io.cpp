#include <gtest/gtest.h>

#include <sstream>

#include "clo/aig/io.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo::aig;

Aig sample_circuit() { return clo::circuits::make_benchmark("c432"); }

TEST(AigerAscii, RoundTrip) {
  const Aig g = sample_circuit();
  std::stringstream ss;
  write_aiger_ascii(g, ss);
  Aig back = read_aiger(ss);
  EXPECT_EQ(back.num_pis(), g.num_pis());
  EXPECT_EQ(back.num_pos(), g.num_pos());
  clo::Rng rng(1);
  EXPECT_TRUE(cec(g, back, rng).equivalent);
}

TEST(AigerBinary, RoundTrip) {
  const Aig g = sample_circuit();
  std::stringstream ss;
  write_aiger_binary(g, ss);
  Aig back = read_aiger(ss);
  clo::Rng rng(2);
  EXPECT_TRUE(cec(g, back, rng).equivalent);
}

TEST(AigerAscii, ComplementedOutputsAndConstants) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(lit_not(g.and_of(a, b)));
  g.add_po(kLitTrue);
  g.add_po(kLitFalse);
  std::stringstream ss;
  write_aiger_ascii(g, ss);
  Aig back = read_aiger(ss);
  clo::Rng rng(3);
  EXPECT_TRUE(cec(g, back, rng).equivalent);
}

TEST(AigerAscii, HeaderContents) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.and_of(a, b));
  std::stringstream ss;
  write_aiger_ascii(g, ss);
  std::string header;
  std::getline(ss, header);
  EXPECT_EQ(header, "aag 3 2 0 1 1");
}

TEST(AigerRead, RejectsBadMagicAndLatches) {
  std::stringstream bad("xyz 1 1 0 0 0\n");
  EXPECT_THROW(read_aiger(bad), std::runtime_error);
  std::stringstream latched("aag 2 1 1 0 0\n2\n4 2\n");
  EXPECT_THROW(read_aiger(latched), std::runtime_error);
}

TEST(AigerRead, KnownTinyExample) {
  // Standard AIGER example: out = i0 AND i1.
  std::stringstream ss("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n");
  Aig g = read_aiger(ss);
  EXPECT_EQ(g.num_pis(), 2u);
  EXPECT_EQ(g.num_ands(), 1u);
  const auto out = simulate(g, {true, true});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(simulate(g, {true, false})[0]);
}

TEST(Bench, ParseAllGateTypes) {
  const std::string text = R"(
# comment line
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
n1 = AND(a, b)
n2 = NAND(a, b, c)
n3 = OR(n1, c)
n4 = NOR(a, c)
n5 = XOR(n3, n4)
n6 = NOT(n5)
o1 = BUF(n6)
o2 = XNOR(a, b)
o3 = AND(n2, n5)
)";
  std::stringstream ss(text);
  Aig g = read_bench(ss);
  EXPECT_EQ(g.num_pis(), 3u);
  EXPECT_EQ(g.num_pos(), 3u);
  // Spot-check o2 = XNOR(a,b).
  EXPECT_TRUE(simulate(g, {true, true, false})[1]);
  EXPECT_FALSE(simulate(g, {true, false, false})[1]);
}

TEST(Bench, ErrorsOnUndefinedAndCycle) {
  std::stringstream undef("INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n");
  EXPECT_THROW(read_bench(undef), std::runtime_error);
  std::stringstream cyc(
      "INPUT(a)\nOUTPUT(o)\nx = AND(a, y)\ny = AND(a, x)\no = BUF(x)\n");
  EXPECT_THROW(read_bench(cyc), std::runtime_error);
}

TEST(Bench, WriteReadRoundTrip) {
  const Aig g = clo::circuits::make_benchmark("c17");
  std::stringstream ss;
  write_bench(g, ss);
  Aig back = read_bench(ss);
  clo::Rng rng(7);
  EXPECT_TRUE(cec(g, back, rng).equivalent);
}

TEST(Bench, RoundTripLargerCircuit) {
  const Aig g = clo::circuits::make_benchmark("int2float");
  std::stringstream ss;
  write_bench(g, ss);
  Aig back = read_bench(ss);
  clo::Rng rng(8);
  EXPECT_TRUE(cec(g, back, rng).equivalent);
}

void expect_aiger_rejected(const std::string& text, const char* why) {
  std::stringstream ss(text);
  EXPECT_THROW(read_aiger(ss), std::runtime_error) << why;
}

TEST(AigerRead, MalformedInputCorpusIsRejectedCleanly) {
  // Each entry is a hostile file targeting one validation path; all must
  // end in a clean std::runtime_error — no crash, hang, or huge
  // allocation (the sanitizer CI job runs this corpus under ASan).
  expect_aiger_rejected("aag 99999999999 1 0 1 1\n2\n", "huge header counts");
  expect_aiger_rejected("aag 2 2 0 1 1\n2\n4\n6\n6 2 4\n",
                        "M < I+L+A inconsistency");
  expect_aiger_rejected("aag 3 2 0 1 1\n2\n2\n6\n6 2 4\n", "duplicate input");
  expect_aiger_rejected("aag 3 2 0 1 1\n3\n4\n6\n6 2 4\n",
                        "odd input literal");
  expect_aiger_rejected("aag 3 2 0 1 1\n2\n4\n6\n8 2 4\n",
                        "and lhs out of range");
  expect_aiger_rejected("aag 3 2 0 1 1\n2\n4\n6\n6 2 9\n",
                        "and rhs out of range");
  expect_aiger_rejected("aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n6 2 4\n",
                        "and lhs redefined");
  expect_aiger_rejected("aag 4 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n",
                        "cyclic definitions");
  expect_aiger_rejected("aag 3 2 0 1 0\n2\n4\n6\n",
                        "output references undefined variable");
  expect_aiger_rejected("aag 3 2 0 1 1\n2\n4\n", "truncated output list");
  expect_aiger_rejected("aag 3 2 0 1 1\n2\n4\n6\n", "truncated and body");
  expect_aiger_rejected("aag x y z\n", "unparsable header");
  expect_aiger_rejected("", "empty file");
  // Binary-specific: truncated and over-long delta codes, and a delta
  // that would underflow its lhs.
  expect_aiger_rejected("aig 2 1 0 0 1\n", "truncated delta code");
  expect_aiger_rejected(
      std::string("aig 2 1 0 0 1\n") + "\xff\xff\xff\xff\xff\x7f",
      "delta code exceeds 32 bits");
  expect_aiger_rejected(std::string("aig 2 1 0 1 1\n4\n") + '\x05',
                        "delta underflows lhs");
}

TEST(AigerRead, TruncationAndBitFlipFuzzNeverCrashes) {
  // Every prefix and every single-byte corruption of a valid binary AIGER
  // file must either parse or throw — never crash or over-allocate.
  const Aig g = clo::circuits::make_benchmark("c17");
  std::stringstream ss;
  write_aiger_binary(g, ss);
  const std::string bytes = ss.str();
  ASSERT_GT(bytes.size(), 10u);
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    std::stringstream in(bytes.substr(0, len));
    try {
      read_aiger(in);
    } catch (const std::exception&) {
    }
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const char flip : {'\x01', '\x80'}) {
      std::string corrupt = bytes;
      corrupt[i] ^= flip;
      std::stringstream in(corrupt);
      try {
        read_aiger(in);
      } catch (const std::exception&) {
      }
    }
  }
}

TEST(AigerFile, FileRoundTrip) {
  const Aig g = clo::circuits::make_benchmark("ctrl");
  const std::string path = testing::TempDir() + "/clo_test_ctrl.aig";
  ASSERT_TRUE(write_aiger_binary(g, path));
  Aig back = read_aiger_file(path);
  clo::Rng rng(9);
  EXPECT_TRUE(cec(g, back, rng).equivalent);
}

}  // namespace
