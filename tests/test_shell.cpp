#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "clo/shell/shell.hpp"
#include "clo/util/obs.hpp"

namespace {

using clo::shell::Shell;

std::string run(Shell& sh, const std::string& cmd) {
  std::ostringstream os;
  sh.execute(cmd, os);
  return os.str();
}

TEST(Shell, GenAndPs) {
  Shell sh;
  const std::string out = run(sh, "gen c432");
  EXPECT_NE(out.find("c432"), std::string::npos);
  EXPECT_NE(out.find("i/o = 36/8"), std::string::npos);
  EXPECT_FALSE(sh.last_failed());
  EXPECT_TRUE(sh.design().has_value());
  EXPECT_NE(run(sh, "ps").find("and = "), std::string::npos);
}

TEST(Shell, ErrorsAreReportedNotThrown) {
  Shell sh;
  EXPECT_NE(run(sh, "ps").find("error:"), std::string::npos);
  EXPECT_TRUE(sh.last_failed());
  EXPECT_NE(run(sh, "gen bogus_circuit").find("error:"), std::string::npos);
  EXPECT_TRUE(sh.last_failed());
  EXPECT_NE(run(sh, "frobnicate").find("unknown command"), std::string::npos);
  EXPECT_TRUE(sh.last_failed());
}

TEST(Shell, TransformCommandsPreserveEquivalence) {
  Shell sh;
  run(sh, "gen cavlc");
  run(sh, "save");
  for (const char* cmd : {"rw", "rf", "rs", "b", "rwz", "rfz", "rsz"}) {
    run(sh, cmd);
    EXPECT_FALSE(sh.last_failed()) << cmd;
  }
  const std::string out = run(sh, "cec");
  EXPECT_NE(out.find("equivalent"), std::string::npos);
  EXPECT_FALSE(sh.last_failed());
}

TEST(Shell, CecIsAProofAndReportsCounterexamples) {
  Shell sh;
  run(sh, "gen c17");
  run(sh, "save");
  run(sh, "seq rw;b;rf");
  EXPECT_NE(run(sh, "cec").find("proved by"), std::string::npos);
  EXPECT_FALSE(sh.last_failed());
  // A different circuit must be rejected (here: interface mismatch).
  run(sh, "gen c17");
  run(sh, "save");
  run(sh, "gen ctrl");
  const std::string out = run(sh, "cec");
  EXPECT_NE(out.find("NOT EQUIVALENT"), std::string::npos);
  EXPECT_TRUE(sh.last_failed());
}

TEST(Shell, VerifyCommandTogglesTheFlag) {
  Shell sh;
  EXPECT_FALSE(sh.verify());
  EXPECT_NE(run(sh, "verify").find("verify = off"), std::string::npos);
  EXPECT_NE(run(sh, "verify on").find("verify = on"), std::string::npos);
  EXPECT_TRUE(sh.verify());
  EXPECT_NE(run(sh, "verify off").find("verify = off"), std::string::npos);
  EXPECT_FALSE(sh.verify());
  run(sh, "verify maybe");
  EXPECT_TRUE(sh.last_failed());
  sh.set_verify(true);
  EXPECT_NE(run(sh, "verify").find("verify = on"), std::string::npos);
}

TEST(Shell, TuneWithVerifyReportsTheVerdict) {
  Shell sh;
  const std::string report_path = testing::TempDir() + "/verify_report.json";
  sh.set_report_path(report_path);
  sh.set_verify(true);
  run(sh, "gen c17");
  const std::string out = run(sh, "tune 8 1");
  EXPECT_FALSE(sh.last_failed()) << out;
  EXPECT_NE(out.find("verify   : equivalent"), std::string::npos) << out;
  std::ifstream f(report_path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string report = ss.str();
  EXPECT_NE(report.find("\"verify\": \"equivalent\""), std::string::npos);
  EXPECT_NE(report.find("\"verification\""), std::string::npos);
}

TEST(Shell, SeqCommand) {
  Shell sh;
  run(sh, "gen sqrt");
  const auto before = sh.design()->num_ands();
  run(sh, "seq b;rw;rf;b;rwz");
  EXPECT_FALSE(sh.last_failed());
  EXPECT_LT(sh.design()->num_ands(), before);
}

TEST(Shell, MapCommand) {
  Shell sh;
  run(sh, "gen c17");
  const std::string out = run(sh, "map");
  EXPECT_NE(out.find("area = "), std::string::npos);
  EXPECT_NE(out.find("delay = "), std::string::npos);
  const std::string area_out = run(sh, "map -a");
  EXPECT_FALSE(sh.last_failed());
}

TEST(Shell, SimCommand) {
  Shell sh;
  run(sh, "gen c17");
  const std::string out = run(sh, "sim 11111");
  EXPECT_NE(out.find("po: "), std::string::npos);
  // Wrong width is an error.
  run(sh, "sim 111");
  EXPECT_TRUE(sh.last_failed());
}

TEST(Shell, WriteReadRoundTrip) {
  Shell sh;
  run(sh, "gen int2float");
  const std::string path = testing::TempDir() + "/shell_rt.aag";
  run(sh, "write " + path);
  EXPECT_FALSE(sh.last_failed());
  run(sh, "save");
  run(sh, "read " + path);
  EXPECT_FALSE(sh.last_failed());
  EXPECT_NE(run(sh, "cec").find("equivalent"), std::string::npos);
}

TEST(Shell, WriteVerilog) {
  Shell sh;
  run(sh, "gen c17");
  const std::string path = testing::TempDir() + "/shell_c17.v";
  run(sh, "write " + path);
  EXPECT_FALSE(sh.last_failed());
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string v = ss.str();
  EXPECT_NE(v.find("module c17("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("assign"), std::string::npos);
}

TEST(Shell, ScriptExecution) {
  Shell sh;
  std::istringstream script(
      "# a comment\n"
      "gen ctrl\n"
      "save\n"
      "rw\n"
      "cec\n"
      "echo done\n");
  std::ostringstream out;
  const int failures = sh.run_script(script, out);
  EXPECT_EQ(failures, 0);
  EXPECT_NE(out.str().find("done"), std::string::npos);
}

TEST(Shell, QuitStopsExecution) {
  Shell sh;
  std::ostringstream os;
  EXPECT_FALSE(sh.execute("quit", os));
}

TEST(Shell, ListShowsCatalog) {
  Shell sh;
  const std::string out = run(sh, "list");
  EXPECT_NE(out.find("adder"), std::string::npos);
  EXPECT_NE(out.find("c7552"), std::string::npos);
}

TEST(Shell, HelpListsCommands) {
  Shell sh;
  const std::string out = run(sh, "help");
  for (const char* cmd :
       {"gen", "read", "write", "map", "cec", "tune", "metrics", "profile"}) {
    EXPECT_NE(out.find(cmd), std::string::npos) << cmd;
  }
}

TEST(Shell, MetricsCommandIsDeterministicAndNameSorted) {
  clo::obs::Registry::instance().reset();
  clo::obs::set_enabled(true);
  clo::obs::Registry::instance().add_counter("zeta.counter", 2);
  clo::obs::Registry::instance().add_counter("alpha.counter", 1);
  Shell sh;
  const std::string out = run(sh, "metrics");
  EXPECT_NE(out.find("-- counters --"), std::string::npos) << out;
  const auto alpha = out.find("alpha.counter = 1");
  const auto zeta = out.find("zeta.counter = 2");
  ASSERT_NE(alpha, std::string::npos) << out;
  ASSERT_NE(zeta, std::string::npos) << out;
  EXPECT_LT(alpha, zeta) << "metrics output must be name-sorted";
  EXPECT_EQ(out, run(sh, "metrics")) << "metrics output must be stable";
  EXPECT_NE(run(sh, "metrics reset").find("metrics reset"),
            std::string::npos);
  EXPECT_EQ(run(sh, "metrics").find("alpha.counter"), std::string::npos);
  clo::obs::set_enabled(false);
  clo::obs::Registry::instance().reset();
}

TEST(Shell, MetricsAndProfileReportDisabledObservability) {
  clo::obs::set_enabled(false);
  Shell sh;
  EXPECT_NE(run(sh, "metrics").find("observability is disabled"),
            std::string::npos);
  EXPECT_NE(run(sh, "profile").find("observability is disabled"),
            std::string::npos);
  EXPECT_FALSE(sh.last_failed());
}

TEST(Shell, ProfileCommandPrintsSpanTable) {
  clo::obs::Registry::instance().reset();
  clo::obs::reset_trace();
  clo::obs::set_enabled(true);
  {
    clo::obs::ScopedSpan span("shelltest.span");
  }
  Shell sh;
  const std::string out = run(sh, "profile");
  EXPECT_NE(out.find("-- profile (total self count p50 p99) --"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("shelltest.span"), std::string::npos) << out;
  EXPECT_NE(out.find("n=1"), std::string::npos) << out;
  clo::obs::set_enabled(false);
  clo::obs::reset_trace();
  clo::obs::Registry::instance().reset();
}

}  // namespace
