// clo::nn::kernel acceptance tests: the determinism contract (bitwise
// parity for every kernel across every dispatch target, thread count, and
// awkward size; model-level forward parity; run-to-run stability),
// numerical accuracy against double-precision references, the 64-byte
// Tensor storage alignment the kernels assume for performance, the pinned
// NaN semantics of max_value, and the NaN-propagation regression the old
// zero-skip fast paths used to mask.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "clo/models/diffusion.hpp"
#include "clo/nn/kernel.hpp"
#include "clo/nn/modules.hpp"
#include "clo/nn/ops.hpp"
#include "clo/nn/optim.hpp"
#include "clo/nn/tensor.hpp"
#include "clo/util/aligned.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;
namespace kernel = nn::kernel;
using util::AlignedFloats;

/// Every test leaves the dispatch switch back at its hardware default.
class KernelTest : public ::testing::Test {
 protected:
  void TearDown() override { kernel::set_simd_enabled(true); }

  /// Skip (not silently pass) parity tests on hosts without a vector TU.
  static bool RequireBothTargets() {
    if (!kernel::simd_supported()) {
      return false;
    }
    return true;
  }

  /// Every target this binary can actually run here (scalar always).
  static std::vector<kernel::Target> SupportedTargets() {
    std::vector<kernel::Target> targets = {kernel::Target::kScalar};
    for (kernel::Target t :
         {kernel::Target::kAvx2, kernel::Target::kAvx512}) {
      if (kernel::target_compiled(t) && kernel::target_supported(t)) {
        targets.push_back(t);
      }
    }
    return targets;
  }
};

AlignedFloats random_buf(std::size_t n, Rng& rng) {
  AlignedFloats v(n);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  return v;
}

bool bitwise_equal(const AlignedFloats& a, const AlignedFloats& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Sizes that exercise the vector body, the tail, and both at once.
const std::size_t kSizes[] = {1, 7, 8, 9, 31, 64, 160, 1000};

TEST_F(KernelTest, ReductionsAreBitwiseIdenticalAcrossTargets) {
  if (!RequireBothTargets()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(1);
  for (std::size_t n : kSizes) {
    const auto a = random_buf(n, rng);
    const auto b = random_buf(n, rng);
    kernel::set_simd_enabled(false);
    const float dot_s = kernel::dot(a.data(), b.data(), n);
    const float sq_s = kernel::sqdist(a.data(), b.data(), n);
    const float sum_s = kernel::sum(a.data(), n);
    const float max_s = kernel::max_value(a.data(), n);
    kernel::set_simd_enabled(true);
    // Bitwise, not near: the contract is exact equality.
    EXPECT_EQ(dot_s, kernel::dot(a.data(), b.data(), n)) << "dot n=" << n;
    EXPECT_EQ(sq_s, kernel::sqdist(a.data(), b.data(), n)) << "sqdist n=" << n;
    EXPECT_EQ(sum_s, kernel::sum(a.data(), n)) << "sum n=" << n;
    EXPECT_EQ(max_s, kernel::max_value(a.data(), n)) << "max n=" << n;
  }
}

TEST_F(KernelTest, ElementwiseAreBitwiseIdenticalAcrossTargets) {
  if (!RequireBothTargets()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(2);
  for (std::size_t n : kSizes) {
    const auto a = random_buf(n, rng);
    const auto b = random_buf(n, rng);
    const auto y0 = random_buf(n, rng);
    AlignedFloats out_s(n), out_v(n);
    AlignedFloats y_s = y0, y_v = y0;

    kernel::set_simd_enabled(false);
    kernel::axpy(y_s.data(), 0.37f, a.data(), n);
    kernel::acc(y_s.data(), b.data(), n);
    kernel::add(out_s.data(), a.data(), b.data(), n);
    kernel::sub(out_s.data(), out_s.data(), b.data(), n);
    kernel::mul(out_s.data(), out_s.data(), a.data(), n);
    kernel::scale(out_s.data(), out_s.data(), -1.25f, n);
    kernel::div_inplace(out_s.data(), 3.0f, n);

    kernel::set_simd_enabled(true);
    kernel::axpy(y_v.data(), 0.37f, a.data(), n);
    kernel::acc(y_v.data(), b.data(), n);
    kernel::add(out_v.data(), a.data(), b.data(), n);
    kernel::sub(out_v.data(), out_v.data(), b.data(), n);
    kernel::mul(out_v.data(), out_v.data(), a.data(), n);
    kernel::scale(out_v.data(), out_v.data(), -1.25f, n);
    kernel::div_inplace(out_v.data(), 3.0f, n);

    EXPECT_TRUE(bitwise_equal(y_s, y_v)) << "axpy/acc n=" << n;
    EXPECT_TRUE(bitwise_equal(out_s, out_v)) << "elementwise chain n=" << n;
  }
}

TEST_F(KernelTest, AdamUpdateIsBitwiseIdenticalAcrossTargets) {
  if (!RequireBothTargets()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(3);
  for (std::size_t n : kSizes) {
    const auto g = random_buf(n, rng);
    const auto p0 = random_buf(n, rng);
    const auto m0 = random_buf(n, rng);
    AlignedFloats v0(n);
    for (auto& x : v0) x = std::abs(static_cast<float>(rng.next_gaussian()));

    AlignedFloats p_s = p0, m_s = m0, v_s = v0;
    AlignedFloats p_v = p0, m_v = m0, v_v = v0;
    kernel::set_simd_enabled(false);
    kernel::adam_update(p_s.data(), m_s.data(), v_s.data(), g.data(), n, 0.9f,
                        0.999f, 1e-3f, 0.19f, 0.002996f, 1e-8f);
    kernel::set_simd_enabled(true);
    kernel::adam_update(p_v.data(), m_v.data(), v_v.data(), g.data(), n, 0.9f,
                        0.999f, 1e-3f, 0.19f, 0.002996f, 1e-8f);
    EXPECT_TRUE(bitwise_equal(p_s, p_v)) << "adam p n=" << n;
    EXPECT_TRUE(bitwise_equal(m_s, m_v)) << "adam m n=" << n;
    EXPECT_TRUE(bitwise_equal(v_s, v_v)) << "adam v n=" << n;
  }
}

TEST_F(KernelTest, MatmulIsBitwiseIdenticalAcrossTargets) {
  if (!RequireBothTargets()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(4);
  const int shapes[][3] = {
      {1, 1, 1},
      {3, 5, 7},
      {16, 8, 128},
      {16, 32, 32},
      {8, 24, 20},
      {33, 17, 65},
      {64, 64, 64},
  };
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    for (bool tb : {false, true}) {
      const auto a = random_buf(static_cast<std::size_t>(m) * k, rng);
      const auto b = random_buf(static_cast<std::size_t>(k) * n, rng);
      const auto o0 = random_buf(static_cast<std::size_t>(m) * n, rng);
      AlignedFloats o_s = o0, o_v = o0;
      kernel::set_simd_enabled(false);
      kernel::matmul(a.data(), b.data(), o_s.data(), m, k, n, tb);
      kernel::set_simd_enabled(true);
      kernel::matmul(a.data(), b.data(), o_v.data(), m, k, n, tb);
      EXPECT_TRUE(bitwise_equal(o_s, o_v))
          << m << "x" << k << "x" << n << " tb=" << tb;
    }
  }
}

TEST_F(KernelTest, MatmulMatchesDoubleReference) {
  // Accuracy is relative to an fp64 reference, not to any historical float
  // summation order (see the tolerance note in kernel.hpp).
  Rng rng(5);
  const int m = 17, k = 160, n = 23;
  const auto a = random_buf(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_buf(static_cast<std::size_t>(k) * n, rng);
  for (bool tb : {false, true}) {
    AlignedFloats out(static_cast<std::size_t>(m) * n, 0.0f);
    kernel::matmul(a.data(), b.data(), out.data(), m, k, n, tb);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double ref = 0.0;
        for (int l = 0; l < k; ++l) {
          const float bv = tb ? b[static_cast<std::size_t>(j) * k + l]
                              : b[static_cast<std::size_t>(l) * n + j];
          ref += static_cast<double>(a[static_cast<std::size_t>(i) * k + l]) *
                 bv;
        }
        EXPECT_NEAR(out[static_cast<std::size_t>(i) * n + j], ref,
                    1e-4 * (1.0 + std::abs(ref)))
            << "(" << i << "," << j << ") tb=" << tb;
      }
    }
  }
}

TEST_F(KernelTest, ReductionsMatchDoubleReference) {
  Rng rng(6);
  for (std::size_t n : kSizes) {
    const auto a = random_buf(n, rng);
    const auto b = random_buf(n, rng);
    double dot_ref = 0.0, sq_ref = 0.0, sum_ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot_ref += static_cast<double>(a[i]) * b[i];
      const double d = static_cast<double>(a[i]) - b[i];
      sq_ref += d * d;
      sum_ref += a[i];
    }
    const double tol = 1e-5 * (1.0 + static_cast<double>(n));
    EXPECT_NEAR(kernel::dot(a.data(), b.data(), n), dot_ref, tol);
    EXPECT_NEAR(kernel::sqdist(a.data(), b.data(), n), sq_ref, tol);
    EXPECT_NEAR(kernel::sum(a.data(), n), sum_ref, tol);
  }
}

TEST_F(KernelTest, MaxValueHandlesSmallAndNegativeInputs) {
  const AlignedFloats a = {-5.0f, -3.0f, -8.0f};
  EXPECT_EQ(kernel::max_value(a.data(), 3), -3.0f);
  EXPECT_EQ(kernel::max_value(a.data(), 1), -5.0f);
  AlignedFloats big(100, -1.0f);
  big[77] = 42.0f;
  EXPECT_EQ(kernel::max_value(big.data(), big.size()), 42.0f);
}

// Regression for the pinned NaN semantics: the old scan `x > m ? x : m`
// silently discarded a NaN whenever later elements compared false against
// the running max (every `NaN > m` is false), so a NaN at the head or
// middle vanished while one at the tail survived — contradicting the
// header's "NaN elements propagate". The contract is now: ANY NaN element
// makes max_value return the canonical quiet NaN, bit-identically on
// every target, no matter where the NaN sits.
TEST_F(KernelTest, MaxValuePropagatesNaNFromAnyPosition) {
  const float nan = std::nanf("");
  const float canonical = std::numeric_limits<float>::quiet_NaN();
  std::uint32_t canonical_bits;
  std::memcpy(&canonical_bits, &canonical, sizeof(canonical_bits));
  Rng rng(11);
  // Sizes hitting the small-n scalar path, the vector body, and the tail.
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                        std::size_t{9}, std::size_t{31}, std::size_t{64},
                        std::size_t{160}, std::size_t{1000}}) {
    for (std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
      auto a = random_buf(n, rng);
      a[pos] = nan;
      for (kernel::Target t : SupportedTargets()) {
        kernel::set_target(t);
        const float got = kernel::max_value(a.data(), n);
        std::uint32_t got_bits;
        std::memcpy(&got_bits, &got, sizeof(got_bits));
        EXPECT_EQ(got_bits, canonical_bits)
            << "n=" << n << " pos=" << pos
            << " target=" << kernel::target_name(t);
      }
      kernel::set_simd_enabled(true);
    }
  }
  // NaN-free inputs still return the plain maximum on every target.
  auto clean = random_buf(100, rng);
  clean[41] = 1e9f;
  for (kernel::Target t : SupportedTargets()) {
    kernel::set_target(t);
    EXPECT_EQ(kernel::max_value(clean.data(), clean.size()), 1e9f)
        << kernel::target_name(t);
  }
}

TEST_F(KernelTest, TensorStorageIs64ByteAligned) {
  for (int n : {1, 3, 17, 1000}) {
    auto t = nn::Tensor::zeros({n}, /*requires_grad=*/true);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data().data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.grad().data()) % 64, 0u);
  }
}

// Regression for the old `if (av == 0.0f) continue;` fast paths in matmul:
// a NaN parameter multiplied by a zero activation must poison the loss
// (0 * NaN = NaN), not be silently skipped — that's what lets training
// divergence surface as a non-finite loss instead of corrupting silently.
TEST_F(KernelTest, NaNParameterSurfacesAsNonFiniteLoss) {
  const float nan = std::nanf("");
  for (bool tb : {false, true}) {
    auto x = nn::Tensor::from_data({1, 2}, {0.0f, 0.0f});
    auto w = nn::Tensor::from_data({2, 2}, {nan, 0.0f, 0.0f, 1.0f},
                                   /*requires_grad=*/true);
    auto y = nn::matmul(x, w, tb);
    auto loss = nn::mse_loss(y, nn::Tensor::zeros({1, 2}));
    EXPECT_FALSE(std::isfinite(loss.item())) << "tb=" << tb;
  }
}

TEST_F(KernelTest, NaNParameterPoisonsBackwardToo) {
  const float nan = std::nanf("");
  auto x = nn::Tensor::from_data({1, 2}, {0.0f, 0.0f}, /*requires_grad=*/true);
  auto w = nn::Tensor::from_data({2, 2}, {nan, 0.0f, 0.0f, 1.0f},
                                 /*requires_grad=*/true);
  auto loss = nn::sum_all(nn::matmul(x, w));
  nn::backward(loss);
  // dL/dx = W^T · 1 contains the NaN column.
  bool saw_nan = false;
  for (float g : x.grad()) saw_nan = saw_nan || std::isnan(g);
  EXPECT_TRUE(saw_nan);
}

TEST_F(KernelTest, UNetForwardIsBitwiseIdenticalAcrossTargets) {
  if (!RequireBothTargets()) GTEST_SKIP() << "no AVX2 on this host";
  models::DiffusionConfig cfg;
  cfg.seq_len = 8;
  cfg.embed_dim = 4;
  cfg.channels = 8;
  cfg.time_dim = 8;
  Rng rng(7);
  models::DiffusionUNet unet(cfg, rng);
  Rng xrng(8);
  const int B = 3;
  std::vector<float> xdata(static_cast<std::size_t>(B) * cfg.embed_dim *
                           cfg.seq_len);
  for (auto& v : xdata) v = static_cast<float>(xrng.next_gaussian());
  const std::vector<int> t = {0, 3, 7};

  auto run = [&] {
    auto x = nn::Tensor::from_data({B, cfg.embed_dim, cfg.seq_len}, xdata);
    return unet.forward(x, t);
  };
  kernel::set_simd_enabled(true);
  const auto out_simd = run().data();
  kernel::set_simd_enabled(false);
  const auto out_scalar = run().data();
  EXPECT_TRUE(bitwise_equal(out_simd, out_scalar));
}

TEST_F(KernelTest, TrainingStepIsBitwiseIdenticalAcrossTargets) {
  if (!RequireBothTargets()) GTEST_SKIP() << "no AVX2 on this host";
  // One full forward/backward/Adam step on an MLP, run once per target
  // from identical initial weights: every parameter must match bitwise.
  auto run = [](bool simd) {
    kernel::set_simd_enabled(simd);
    Rng rng(9);
    nn::Mlp mlp(6, 16, 2, rng);
    nn::Adam opt(mlp.parameters(), 1e-2f);
    Rng drng(10);
    std::vector<float> xd(4 * 6), yd(4 * 2);
    for (auto& v : xd) v = static_cast<float>(drng.next_gaussian());
    for (auto& v : yd) v = static_cast<float>(drng.next_gaussian());
    for (int step = 0; step < 3; ++step) {
      auto pred = mlp.forward(nn::Tensor::from_data({4, 6}, xd));
      auto loss = nn::mse_loss(pred, nn::Tensor::from_data({4, 2}, yd));
      opt.zero_grad();
      nn::backward(loss);
      opt.step();
    }
    std::vector<nn::FloatBuf> out;
    for (auto& p : mlp.parameters()) out.push_back(p.data());
    return out;
  };
  const auto simd_params = run(true);
  const auto scalar_params = run(false);
  ASSERT_EQ(simd_params.size(), scalar_params.size());
  for (std::size_t i = 0; i < simd_params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(simd_params[i], scalar_params[i])) << "p" << i;
  }
}

TEST_F(KernelTest, DispatchStateRoundTrips) {
  EXPECT_TRUE(kernel::simd_enabled() == kernel::simd_supported());
  kernel::set_simd_enabled(false);
  EXPECT_FALSE(kernel::simd_enabled());
  EXPECT_STREQ(kernel::active_target(), "scalar");
  kernel::set_simd_enabled(true);
  EXPECT_EQ(kernel::simd_enabled(), kernel::simd_supported());
  EXPECT_STREQ(kernel::active_target(),
               kernel::target_name(kernel::best_supported_target()));

  // Forcing each supported target sticks; unsupported requests clamp down.
  for (kernel::Target t : SupportedTargets()) {
    EXPECT_EQ(kernel::set_target(t), t);
    EXPECT_EQ(kernel::current_target(), t);
  }
  const kernel::Target clamped = kernel::set_target(kernel::Target::kAvx512);
  EXPECT_TRUE(kernel::target_supported(clamped));
  EXPECT_LE(static_cast<int>(clamped),
            static_cast<int>(kernel::Target::kAvx512));

  // parse_target round-trips every name plus "auto"; rejects junk.
  kernel::Target parsed;
  ASSERT_TRUE(kernel::parse_target("scalar", &parsed));
  EXPECT_EQ(parsed, kernel::Target::kScalar);
  ASSERT_TRUE(kernel::parse_target("avx2", &parsed));
  EXPECT_EQ(parsed, kernel::Target::kAvx2);
  ASSERT_TRUE(kernel::parse_target("avx512", &parsed));
  EXPECT_EQ(parsed, kernel::Target::kAvx512);
  ASSERT_TRUE(kernel::parse_target("auto", &parsed));
  EXPECT_EQ(parsed, kernel::best_supported_target());
  EXPECT_FALSE(kernel::parse_target("sse9", &parsed));
}

// --- Tiled GEMM determinism ----------------------------------------------
//
// The tile grid is a pure function of the output shape, so any worker
// count — and any dispatch target — must reproduce the serial scalar
// bytes exactly. The shapes below are chosen to cross the fan-out
// threshold with ragged edge tiles (dimensions that are not multiples of
// the 16x128 tile), and the batched U-Net/surrogate shape the paper-scale
// run hits (30 restarts over [R, L*d] = [30, 160] activations).

struct GemmShape {
  int m, k, n;
};
const GemmShape kTiledShapes[] = {
    {33, 47, 129},    // ragged in every dimension
    {30, 160, 256},   // paper-scale batched restarts
    {64, 64, 64},     // threshold boundary
    {16, 3, 300},     // wide and shallow: many column tiles
    {257, 19, 17},    // tall and narrow: many row tiles
};

TEST_F(KernelTest, TiledMatmulIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(12);
  util::ThreadPool pool2(2), pool8(8);
  for (const auto& s : kTiledShapes) {
    for (bool tb : {false, true}) {
      const auto a = random_buf(static_cast<std::size_t>(s.m) * s.k, rng);
      const auto b = random_buf(static_cast<std::size_t>(s.k) * s.n, rng);
      const auto o0 = random_buf(static_cast<std::size_t>(s.m) * s.n, rng);

      AlignedFloats serial = o0;
      {
        kernel::PoolGuard guard(nullptr);
        kernel::matmul(a.data(), b.data(), serial.data(), s.m, s.k, s.n, tb);
      }
      for (util::ThreadPool* pool : {&pool2, &pool8}) {
        AlignedFloats threaded = o0;
        kernel::PoolGuard guard(pool);
        kernel::matmul(a.data(), b.data(), threaded.data(), s.m, s.k, s.n,
                       tb);
        EXPECT_TRUE(bitwise_equal(serial, threaded))
            << s.m << "x" << s.k << "x" << s.n << " tb=" << tb
            << " workers=" << pool->size();
      }
    }
  }
}

TEST_F(KernelTest, TiledMatmulTaIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(13);
  util::ThreadPool pool2(2), pool8(8);
  for (const auto& s : kTiledShapes) {
    const auto a = random_buf(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_buf(static_cast<std::size_t>(s.m) * s.n, rng);
    const auto o0 = random_buf(static_cast<std::size_t>(s.k) * s.n, rng);

    AlignedFloats serial = o0;
    {
      kernel::PoolGuard guard(nullptr);
      kernel::matmul_ta(a.data(), b.data(), serial.data(), s.m, s.k, s.n);
    }
    for (util::ThreadPool* pool : {&pool2, &pool8}) {
      AlignedFloats threaded = o0;
      kernel::PoolGuard guard(pool);
      kernel::matmul_ta(a.data(), b.data(), threaded.data(), s.m, s.k, s.n);
      EXPECT_TRUE(bitwise_equal(serial, threaded))
          << s.m << "x" << s.k << "x" << s.n << " workers=" << pool->size();
    }
  }
}

TEST_F(KernelTest, TiledMatmulIsBitwiseIdenticalAcrossAllTargets) {
  const auto targets = SupportedTargets();
  if (targets.size() < 2) GTEST_SKIP() << "scalar-only host";
  Rng rng(14);
  util::ThreadPool pool(4);
  for (const auto& s : kTiledShapes) {
    for (bool tb : {false, true}) {
      const auto a = random_buf(static_cast<std::size_t>(s.m) * s.k, rng);
      const auto b = random_buf(static_cast<std::size_t>(s.k) * s.n, rng);
      const auto o0 = random_buf(static_cast<std::size_t>(s.m) * s.n, rng);

      kernel::set_target(kernel::Target::kScalar);
      AlignedFloats reference = o0;
      {
        kernel::PoolGuard guard(nullptr);
        kernel::matmul(a.data(), b.data(), reference.data(), s.m, s.k, s.n,
                       tb);
      }
      for (kernel::Target t : targets) {
        kernel::set_target(t);
        for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                    &pool}) {
          AlignedFloats out = o0;
          kernel::PoolGuard guard(p);
          kernel::matmul(a.data(), b.data(), out.data(), s.m, s.k, s.n, tb);
          EXPECT_TRUE(bitwise_equal(reference, out))
              << s.m << "x" << s.k << "x" << s.n << " tb=" << tb
              << " target=" << kernel::target_name(t)
              << " threaded=" << (p != nullptr);
        }
      }
      kernel::set_simd_enabled(true);
    }
  }
}

TEST_F(KernelTest, KernelsTolerateUnalignedTensorInteriorSlices) {
  // Tensor interiors are sliced at arbitrary element offsets (batch rows,
  // channel planes), so every kernel must accept pointers off the 64-byte
  // storage alignment — and still match the aligned bytes exactly.
  Rng rng(15);
  const int m = 33, k = 47, n = 129;
  const auto backing_a =
      random_buf(static_cast<std::size_t>(m) * k + 1, rng);
  const auto backing_b =
      random_buf(static_cast<std::size_t>(k) * n + 1, rng);
  const float* a = backing_a.data() + 1;  // deliberately 4-byte-misaligned
  const float* b = backing_b.data() + 1;
  AlignedFloats aligned_a(a, a + static_cast<std::size_t>(m) * k);
  AlignedFloats aligned_b(b, b + static_cast<std::size_t>(k) * n);

  util::ThreadPool pool(4);
  for (kernel::Target t : SupportedTargets()) {
    kernel::set_target(t);
    AlignedFloats out_aligned(static_cast<std::size_t>(m) * n, 0.0f);
    kernel::matmul(aligned_a.data(), aligned_b.data(), out_aligned.data(), m,
                   k, n, false);
    for (util::ThreadPool* p :
         {static_cast<util::ThreadPool*>(nullptr), &pool}) {
      kernel::PoolGuard guard(p);
      AlignedFloats out(static_cast<std::size_t>(m) * n, 0.0f);
      kernel::matmul(a, b, out.data(), m, k, n, false);
      EXPECT_TRUE(bitwise_equal(out_aligned, out))
          << "target=" << kernel::target_name(t)
          << " threaded=" << (p != nullptr);
    }
    EXPECT_EQ(kernel::dot(a, b, 100),
              kernel::dot(aligned_a.data(), aligned_b.data(), 100))
        << kernel::target_name(t);
  }
  kernel::set_simd_enabled(true);
}

// matmul_ta must reproduce, bit for bit, the accumulation order of the
// loop it replaced in the autograd backward pass (per out element: a
// mul+add chain over the shared row index i ascending), and stay close to
// an fp64 reference.
TEST_F(KernelTest, MatmulTaMatchesLegacyLoopBitwiseAndDoubleReference) {
  Rng rng(16);
  const int m = 21, k = 18, n = 37;
  const auto a = random_buf(static_cast<std::size_t>(m) * k, rng);
  const auto b = random_buf(static_cast<std::size_t>(m) * n, rng);
  const auto o0 = random_buf(static_cast<std::size_t>(k) * n, rng);

  // The pre-PR-10 backward loop: for each sample i, axpy gy-row into every
  // dB row — per element, adds in i-ascending order.
  AlignedFloats legacy = o0;
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      const float av = a[static_cast<std::size_t>(i) * k + l];
      for (int j = 0; j < n; ++j) {
        legacy[static_cast<std::size_t>(l) * n + j] +=
            av * b[static_cast<std::size_t>(i) * n + j];
      }
    }
  }

  for (kernel::Target t : SupportedTargets()) {
    kernel::set_target(t);
    AlignedFloats out = o0;
    kernel::matmul_ta(a.data(), b.data(), out.data(), m, k, n);
    EXPECT_TRUE(bitwise_equal(legacy, out)) << kernel::target_name(t);
  }
  kernel::set_simd_enabled(true);

  AlignedFloats out(static_cast<std::size_t>(k) * n, 0.0f);
  kernel::matmul_ta(a.data(), b.data(), out.data(), m, k, n);
  for (int l = 0; l < k; ++l) {
    for (int j = 0; j < n; ++j) {
      double ref = 0.0;
      for (int i = 0; i < m; ++i) {
        ref += static_cast<double>(a[static_cast<std::size_t>(i) * k + l]) *
               b[static_cast<std::size_t>(i) * n + j];
      }
      EXPECT_NEAR(out[static_cast<std::size_t>(l) * n + j], ref,
                  1e-4 * (1.0 + std::abs(ref)))
          << "(" << l << "," << j << ")";
    }
  }
}

}  // namespace
