// Serving-path acceptance tests: the clo.serve.v1 protocol (parsing and
// hostile-input rejection), the model registry (single-flight get-or-train
// under a thundering herd, persistence across registry instances, corrupt
// entries skipped not fatal), and the daemon end to end (warm answers
// byte-identical to a cold pipeline run, warm QoR queries that never touch
// synthesis, silent clients that cannot stall a session worker, clients
// that disconnect mid-response without killing the daemon, and bounded
// backpressure when every worker is busy).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/opt/transform.hpp"
#include "clo/serve/client.hpp"
#include "clo/serve/protocol.hpp"
#include "clo/serve/registry.hpp"
#include "clo/serve/server.hpp"
#include "clo/util/net.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

std::string temp_dir(const char* name) {
  const std::string path = testing::TempDir() + name;
  std::filesystem::remove_all(path);
  return path;
}

/// Small-but-real pipeline config for registry tests (a few hundred ms).
core::PipelineConfig tiny_config() {
  core::PipelineConfig config;
  config.dataset_size = 8;
  config.diffusion_steps = 8;
  config.diffusion_iters = 20;
  config.restarts = 1;
  config.surrogate_train.epochs = 4;
  config.seed = 1;
  return config;
}

// ---------------------------------------------------------------------------
// Protocol.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ParsesTuneRequestWithDefaults) {
  const auto req = serve::parse_request(
      R"({"op":"tune","circuit":"ctrl","id":"r1"})");
  EXPECT_EQ(req.op, serve::Request::Op::kTune);
  EXPECT_EQ(req.circuit, "ctrl");
  EXPECT_EQ(req.id, "r1");
  // Defaults mirror the shell `tune` command.
  EXPECT_EQ(req.dataset, 80);
  EXPECT_EQ(req.restarts, 2);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_FALSE(req.verify);
  const auto config = serve::pipeline_config(req);
  EXPECT_EQ(config.dataset_size, 80);
  EXPECT_EQ(config.restarts, 2);
  EXPECT_EQ(config.diffusion_steps, 60);
}

TEST(ServeProtocol, ParsesExplicitKnobs) {
  const auto req = serve::parse_request(
      R"({"op":"qor","circuit":"c432","sequence":"rw;rf;b","dataset":16,)"
      R"("restarts":3,"seed":7,"verify":true})");
  EXPECT_EQ(req.op, serve::Request::Op::kQor);
  EXPECT_EQ(req.sequence, "rw;rf;b");
  EXPECT_EQ(req.dataset, 16);
  EXPECT_EQ(req.restarts, 3);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_TRUE(req.verify);
}

TEST(ServeProtocol, RejectsHostileInput) {
  EXPECT_THROW(serve::parse_request("not json at all"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("[1,2,3]"), std::runtime_error);
  EXPECT_THROW(serve::parse_request(R"({"circuit":"ctrl"})"),
               std::runtime_error);  // missing op
  EXPECT_THROW(serve::parse_request(R"({"op":"explode"})"),
               std::runtime_error);  // unknown op
  EXPECT_THROW(serve::parse_request(R"({"op":"tune"})"),
               std::runtime_error);  // tune without circuit
  EXPECT_THROW(
      serve::parse_request(R"({"op":"tune","circuit":"ctrl","dataset":2})"),
      std::runtime_error);  // below range
  EXPECT_THROW(serve::parse_request(
                   R"({"op":"tune","circuit":"ctrl","restarts":99999})"),
               std::runtime_error);  // above range
  EXPECT_THROW(
      serve::parse_request(R"({"op":"tune","circuit":"ctrl","seed":"x"})"),
      std::runtime_error);  // wrong type
}

TEST(ServeProtocol, StatusAndShutdownNeedNoCircuit) {
  EXPECT_EQ(serve::parse_request(R"({"op":"status"})").op,
            serve::Request::Op::kStatus);
  EXPECT_EQ(serve::parse_request(R"({"op":"shutdown"})").op,
            serve::Request::Op::kShutdown);
}

// ---------------------------------------------------------------------------
// Model registry.
// ---------------------------------------------------------------------------

TEST(ServeRegistry, GetOrTrainRaceTrainsExactlyOnce) {
  serve::ModelRegistry registry({/*dir=*/"", /*pool=*/nullptr});
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<serve::ModelRegistry::Entry>> entries(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      try {
        entries[static_cast<std::size_t>(i)] =
            registry.get_or_train("ctrl", tiny_config());
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  // Single-flight: one pretraining run, every thread got the same entry.
  EXPECT_EQ(registry.trainings(), 1u);
  EXPECT_EQ(registry.size(), 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].get(), entries[0].get());
  }
}

TEST(ServeRegistry, UnknownCircuitThrowsAndReleasesInflight) {
  serve::ModelRegistry registry({/*dir=*/"", /*pool=*/nullptr});
  EXPECT_THROW(registry.get_or_train("no-such-circuit", tiny_config()),
               std::invalid_argument);
  // The failure must not leave a stuck in-flight slot behind.
  auto entry = registry.get_or_train("ctrl", tiny_config());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServeRegistry, PersistsAcrossInstances) {
  const std::string dir = temp_dir("serve_registry_persist");
  opt::Sequence first_best;
  {
    serve::ModelRegistry registry({dir, /*pool=*/nullptr});
    auto entry = registry.get_or_train("ctrl", tiny_config());
    EXPECT_EQ(entry->resumed_phases, 0);  // cold: nothing on disk yet
    entry->result = entry->pipeline.optimize(entry->evaluator);
    entry->has_result = true;
    first_best = entry->result.best_sequence;
  }
  {
    // A fresh registry (daemon restart) must load all three phases from
    // the CLOCKPT1 files and optimize to the identical sequence.
    serve::ModelRegistry registry({dir, /*pool=*/nullptr});
    auto entry = registry.get_or_train("ctrl", tiny_config());
    EXPECT_EQ(entry->resumed_phases, 3);
    const auto result = entry->pipeline.optimize(entry->evaluator);
    EXPECT_EQ(opt::sequence_to_string(result.best_sequence),
              opt::sequence_to_string(first_best));
  }
}

TEST(ServeRegistry, CorruptEntryIsSkippedAndRetrained) {
  const std::string dir = temp_dir("serve_registry_corrupt");
  {
    serve::ModelRegistry registry({dir, /*pool=*/nullptr});
    registry.get_or_train("ctrl", tiny_config());
  }
  // Truncate/garbage every checkpoint in the entry.
  for (const auto& file : std::filesystem::recursive_directory_iterator(dir)) {
    if (!file.is_regular_file()) continue;
    std::ofstream f(file.path(), std::ios::trunc | std::ios::binary);
    f << "garbage, not a CLOCKPT1 container";
  }
  // A corrupt entry must be skipped (warn + retrain), never abort the
  // daemon or poison the registry.
  serve::ModelRegistry registry({dir, /*pool=*/nullptr});
  auto entry = registry.get_or_train("ctrl", tiny_config());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->resumed_phases, 0);
  EXPECT_EQ(registry.trainings(), 1u);
}

// ---------------------------------------------------------------------------
// Daemon end to end.
// ---------------------------------------------------------------------------

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServerOptions options;
    options.port = 0;  // ephemeral
    options.sessions = 2;
    options.max_queue = 4;
    // Two pool workers on both the serve and the cold side: surrogate
    // training's float rounding differs between serial and data-parallel
    // modes, and byte-parity requires matching modes.
    options.threads = 2;
    options.idle_timeout_ms = 2000;
    server = std::make_unique<serve::Server>(options);
    ASSERT_TRUE(server->start());
    ASSERT_GT(server->port(), 0);
  }
  void TearDown() override { server->stop(); }

  static obs::Json request(serve::Client& client, const std::string& line) {
    obs::Json response;
    const obs::Json req = obs::Json::parse(line);
    EXPECT_TRUE(client.request(req, &response, /*timeout_ms=*/120000));
    return response;
  }

  static const obs::Json* field(const obs::Json& doc, const char* key) {
    const obs::Json* v = doc.find(key);
    EXPECT_NE(v, nullptr) << "missing field " << key << " in " << doc.dump();
    return v;
  }

  std::unique_ptr<serve::Server> server;
};

TEST_F(ServeE2E, WarmTuneIsByteIdenticalToColdPipelineRun) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const std::string tune_line =
      R"({"op":"tune","circuit":"ctrl","dataset":16,"restarts":1})";

  const obs::Json cold = request(client, tune_line);
  ASSERT_EQ(field(cold, "status")->as_string(), "ok") << cold.dump();
  EXPECT_FALSE(field(cold, "warm")->as_bool());
  const std::string served_seq = field(cold, "best_sequence")->as_string();

  // Same connection, same request: answered from the registry cache.
  const obs::Json warm = request(client, tune_line);
  ASSERT_EQ(field(warm, "status")->as_string(), "ok");
  EXPECT_TRUE(field(warm, "warm")->as_bool());
  EXPECT_EQ(field(warm, "best_sequence")->as_string(), served_seq);
  EXPECT_EQ(field(warm, "best_area_um2")->as_double(),
            field(cold, "best_area_um2")->as_double());
  EXPECT_EQ(server->registry().trainings(), 1u);

  // Cold reference: the same config through CloPipeline::run directly —
  // the serve answer must be byte-identical to what the CLI would print.
  auto req = serve::parse_request(tune_line);
  auto config = serve::pipeline_config(req);
  config.threads = 2;  // match the server pool's data-parallel mode
  core::QorEvaluator evaluator(circuits::make_benchmark("ctrl"));
  core::CloPipeline pipeline(config);
  const auto reference = pipeline.run(evaluator);
  EXPECT_EQ(opt::sequence_to_string(reference.best_sequence), served_seq);
}

TEST_F(ServeE2E, WarmQorQueriesNeverTouchSynthesis) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const std::string qor_line =
      R"({"op":"qor","circuit":"ctrl","dataset":16,"restarts":1})";
  const obs::Json first = request(client, qor_line);
  ASSERT_EQ(field(first, "status")->as_string(), "ok") << first.dump();
  const double runs_before =
      field(*field(first, "evaluator"), "unique_runs")->as_double();
  for (int i = 0; i < 5; ++i) {
    const obs::Json again = request(client, qor_line);
    ASSERT_EQ(field(again, "status")->as_string(), "ok");
    EXPECT_EQ(field(again, "area_um2")->as_double(),
              field(first, "area_um2")->as_double());
    // The synthesis-run counter must not move: every warm answer comes
    // from the registry's cached result + the evaluator memo table.
    EXPECT_EQ(
        field(*field(again, "evaluator"), "unique_runs")->as_double(),
        runs_before);
  }
  EXPECT_EQ(server->registry().trainings(), 1u);
}

TEST_F(ServeE2E, BadRequestsAnswerErrorsAndKeepServing) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  std::string raw;
  ASSERT_TRUE(client.request_line("this is not json", &raw));
  obs::Json err = obs::Json::parse(raw);
  EXPECT_EQ(field(err, "status")->as_string(), "error");
  // Unknown circuit: error response, same connection keeps working.
  const obs::Json bad =
      request(client, R"({"op":"qor","circuit":"nope","dataset":16})");
  EXPECT_EQ(field(bad, "status")->as_string(), "error");
  const obs::Json status = request(client, R"({"op":"status"})");
  EXPECT_EQ(field(status, "status")->as_string(), "ok");
}

TEST_F(ServeE2E, ClientDisconnectMidResponseDoesNotKillDaemon) {
  // A client that sends a request and slams the connection shut before
  // reading the response used to SIGPIPE the whole process. Run several:
  // one failed write must not take down the daemon or any worker.
  for (int i = 0; i < 4; ++i) {
    const int fd = util::net::connect_localhost(server->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(util::net::send_all(fd, "{\"op\":\"status\"}\n"));
    ::close(fd);  // gone before the response is written
  }
  // Daemon must still answer. The slammed connections may still be
  // queued (max_queue backpressure legitimately answers "server busy"
  // while they drain), so retry until the queue clears — what must NOT
  // happen is the daemon dying or a worker wedging.
  bool answered = false;
  for (int attempt = 0; attempt < 50 && !answered; ++attempt) {
    serve::Client client;
    ASSERT_TRUE(client.connect(server->port()));
    obs::Json status;
    if (client.request(obs::Json::parse(R"({"op":"status"})"), &status) &&
        status.find("status") != nullptr &&
        status.find("status")->as_string() == "ok") {
      answered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(answered);
  EXPECT_TRUE(server->running());
}

TEST_F(ServeE2E, SilentClientIsClosedAndDoesNotStallWorkers) {
  // Connect and send nothing: the worker must give up after
  // idle_timeout_ms, not camp on ::recv forever.
  const int silent = util::net::connect_localhost(server->port());
  ASSERT_GE(silent, 0);
  // A real client must be served while the silent one idles.
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const obs::Json status = request(client, R"({"op":"status"})");
  EXPECT_EQ(field(status, "status")->as_string(), "ok");
  // After the idle timeout the silent connection is closed by the server
  // (read observes EOF).
  std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  char byte = 0;
  EXPECT_EQ(::read(silent, &byte, 1), 0);
  ::close(silent);
}

TEST_F(ServeE2E, ShutdownRequestStopsAccepting) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const obs::Json resp = request(client, R"({"op":"shutdown"})");
  EXPECT_EQ(field(resp, "status")->as_string(), "ok");
  EXPECT_TRUE(server->stop_requested());
  server->stop();
  EXPECT_FALSE(server->running());
}

TEST(ServeBackpressure, FullQueueRejectsWithOneErrorLine) {
  serve::ServerOptions options;
  options.port = 0;
  options.sessions = 1;
  options.max_queue = 0;  // reject whenever the only worker is busy
  options.idle_timeout_ms = 3000;
  serve::Server server(options);
  ASSERT_TRUE(server.start());

  // Occupy the single session worker with an open connection. A full
  // status round-trip (retried: with max_queue=0 even this connect is
  // rejected until the worker reaches its queue wait) proves the worker
  // owns the connection and is now camped on its next recv.
  serve::Client holder;
  bool held = false;
  for (int attempt = 0; attempt < 50 && !held; ++attempt) {
    ASSERT_TRUE(holder.connect(server.port()));
    obs::Json status;
    held = holder.request(obs::Json::parse(R"({"op":"status"})"), &status,
                          /*timeout_ms=*/2000) &&
           status.find("status") != nullptr &&
           status.find("status")->as_string() == "ok";
    if (!held) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(held);

  // The next client gets a clean one-line rejection, not a hang or an
  // unbounded queue.
  const int fd = util::net::connect_localhost(server.port());
  ASSERT_GE(fd, 0);
  std::string line;
  ASSERT_TRUE(util::net::recv_line(fd, &line, /*timeout_ms=*/3000));
  const obs::Json err = obs::Json::parse(line);
  ASSERT_NE(err.find("status"), nullptr);
  EXPECT_EQ(err.find("status")->as_string(), "error");
  ::close(fd);
  holder.close();
  const auto stats = server.stats();
  EXPECT_GE(stats.shed, 1u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Registry LRU eviction.
// ---------------------------------------------------------------------------

TEST(ServeRegistry, MaxEntriesLruEvictsAndWarmReloadsFromDisk) {
  const std::string dir = temp_dir("serve_registry_lru");
  serve::ModelRegistry registry(
      {dir, /*pool=*/nullptr, /*max_entries=*/1, /*max_mb=*/0});
  registry.get_or_train("ctrl", tiny_config());
  EXPECT_EQ(registry.size(), 1u);
  // A second circuit evicts the first from memory — but NOT from disk.
  registry.get_or_train("c17", tiny_config());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.evictions(), 1u);
  EXPECT_EQ(registry.keys().front().rfind("c17-", 0), 0u);
  // Re-requesting the evicted circuit warm-loads all three phases from
  // its surviving checkpoints instead of retraining.
  auto entry = registry.get_or_train("ctrl", tiny_config());
  EXPECT_EQ(entry->resumed_phases, 3);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.evictions(), 2u);  // and c17 is out in turn
}

TEST(ServeRegistry, MaxMbEvictsStaleDiskEntriesButProtectsJustTrained) {
  const std::string dir = temp_dir("serve_registry_disk_budget");
  // A 2 MiB entry directory "left by an earlier daemon run" — never
  // touched this process, so it is the LRU victim.
  std::filesystem::create_directories(dir + "/stale-key");
  {
    std::ofstream f(dir + "/stale-key/blob", std::ios::binary);
    const std::vector<char> junk(2 * 1024 * 1024, 'x');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  serve::ModelRegistry registry(
      {dir, /*pool=*/nullptr, /*max_entries=*/0, /*max_mb=*/1});
  registry.get_or_train("ctrl", tiny_config());
  EXPECT_FALSE(std::filesystem::exists(dir + "/stale-key"));
  EXPECT_GE(registry.evictions(), 1u);
  // The just-trained entry's directory must survive its own eviction pass.
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + registry.keys().front()));
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines.
// ---------------------------------------------------------------------------

/// Poll the daemon until `pred(status)` holds (or ~2 s passes).
template <typename Pred>
bool wait_for_status(int port, Pred pred) {
  for (int i = 0; i < 400; ++i) {
    serve::Client client;
    obs::Json status;
    if (client.connect(port) &&
        client.request(obs::Json::parse(R"({"op":"status"})"), &status) &&
        pred(status)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ServeCancel, CancelMidTrainLeavesNoPartialEntryAndRetrainMatchesCold) {
  serve::ServerOptions options;
  options.port = 0;
  options.sessions = 2;
  options.threads = 2;  // match the cold reference's data-parallel mode
  serve::Server server(options);
  ASSERT_TRUE(server.start());
  const std::string tune_line =
      R"({"op":"tune","id":"victim","circuit":"ctrl","dataset":16,)"
      R"("restarts":1})";

  // Client A starts a cold tune; the cancel lands while it pretrains.
  obs::Json victim_response;
  std::thread victim([&] {
    serve::Client client;
    ASSERT_TRUE(client.connect(server.port()));
    ASSERT_TRUE(
        client.request(obs::Json::parse(tune_line), &victim_response,
                       /*timeout_ms=*/120000));
  });
  ASSERT_TRUE(wait_for_status(server.port(), [](const obs::Json& s) {
    const obs::Json* inflight = s.find("inflight");
    return inflight != nullptr && inflight->as_double() >= 1.0;
  }));
  serve::Client canceller;
  ASSERT_TRUE(canceller.connect(server.port()));
  obs::Json cancel_response;
  ASSERT_TRUE(canceller.request(
      obs::Json::parse(R"({"op":"cancel","target":"victim"})"),
      &cancel_response));
  ASSERT_NE(cancel_response.find("status"), nullptr);
  EXPECT_EQ(cancel_response.find("status")->as_string(), "ok");
  ASSERT_NE(cancel_response.find("cancelled"), nullptr);
  EXPECT_EQ(cancel_response.find("cancelled")->as_double(), 1.0);
  victim.join();

  // The victim saw a clean, machine-readable cancellation...
  ASSERT_NE(victim_response.find("status"), nullptr);
  ASSERT_EQ(victim_response.find("status")->as_string(), "error")
      << victim_response.dump();
  ASSERT_NE(victim_response.find("code"), nullptr);
  EXPECT_EQ(victim_response.find("code")->as_string(), "cancelled");
  // ...and the registry holds NO partial entry.
  EXPECT_EQ(server.registry().size(), 0u);
  obs::Json status;
  {
    serve::Client client;
    ASSERT_TRUE(client.connect(server.port()));
    ASSERT_TRUE(
        client.request(obs::Json::parse(R"({"op":"status"})"), &status));
  }
  EXPECT_GE(status.find("cancelled")->as_double(), 1.0);

  // Cancelling a request that no longer exists matches nothing — ok, 0.
  obs::Json noop;
  ASSERT_TRUE(canceller.request(
      obs::Json::parse(R"({"op":"cancel","circuit":"ctrl"})"), &noop));
  EXPECT_EQ(noop.find("cancelled")->as_double(), 0.0);

  // Re-issuing the identical tune trains from scratch and is
  // byte-identical to a cold CLI-style pipeline run: the cancelled train
  // left no state that could perturb determinism.
  serve::Client retry;
  ASSERT_TRUE(retry.connect(server.port()));
  obs::Json redo;
  ASSERT_TRUE(retry.request(obs::Json::parse(tune_line), &redo,
                            /*timeout_ms=*/120000));
  ASSERT_NE(redo.find("status"), nullptr);
  ASSERT_EQ(redo.find("status")->as_string(), "ok") << redo.dump();

  auto req = serve::parse_request(tune_line);
  auto config = serve::pipeline_config(req);
  config.threads = 2;
  core::QorEvaluator evaluator(circuits::make_benchmark("ctrl"));
  core::CloPipeline pipeline(config);
  const auto reference = pipeline.run(evaluator);
  EXPECT_EQ(redo.find("best_sequence")->as_string(),
            opt::sequence_to_string(reference.best_sequence));
  server.stop();
}

TEST(ServeCancel, DeadlineExceededIsPromptAndLeavesDaemonHealthy) {
  serve::ServerOptions options;
  options.port = 0;
  options.sessions = 2;
  serve::Server server(options);
  ASSERT_TRUE(server.start());

  // A tune that would take seconds, budgeted at 100 ms: the response must
  // arrive within one cancellation-poll step of the deadline (the <500 ms
  // promptness contract), carrying the deadline_exceeded code.
  serve::Client client;
  ASSERT_TRUE(client.connect(server.port()));
  const auto start = std::chrono::steady_clock::now();
  obs::Json response;
  ASSERT_TRUE(client.request(
      obs::Json::parse(R"({"op":"tune","circuit":"ctrl","dataset":64,)"
                       R"("restarts":2,"deadline_ms":100})"),
      &response, /*timeout_ms=*/120000));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_NE(response.find("status"), nullptr);
  ASSERT_EQ(response.find("status")->as_string(), "error")
      << response.dump();
  ASSERT_NE(response.find("code"), nullptr);
  EXPECT_EQ(response.find("code")->as_string(), "deadline_exceeded");
  EXPECT_LT(elapsed_ms, 100 + 500) << "cancellation was not prompt";
  // No partial entry; the daemon keeps serving.
  EXPECT_EQ(server.registry().size(), 0u);
  obs::Json status;
  ASSERT_TRUE(
      client.request(obs::Json::parse(R"({"op":"status"})"), &status));
  EXPECT_EQ(status.find("status")->as_string(), "ok");
  EXPECT_GE(status.find("deadline_exceeded")->as_double(), 1.0);
  EXPECT_EQ(server.stats().deadline_exceeded, 1u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Client retry/backoff and end-to-end timeouts.
// ---------------------------------------------------------------------------

TEST(ServeRetry, BackoffIsDeterministicBoundedAndGrows) {
  serve::RetryPolicy policy;
  policy.base_backoff_ms = 50;
  policy.max_backoff_ms = 400;
  policy.jitter_seed = 7;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const int a = serve::retry_backoff_ms(policy, attempt);
    const int b = serve::retry_backoff_ms(policy, attempt);
    EXPECT_EQ(a, b) << "jitter must be deterministic";
    // Jitter keeps every delay in [raw/2, raw] with raw capped at max.
    EXPECT_GE(a, 25);
    EXPECT_LE(a, 400);
  }
  // Different seeds decorrelate (not all identical across attempts).
  int differs = 0;
  for (int attempt = 0; attempt < 6; ++attempt) {
    serve::RetryPolicy other = policy;
    other.jitter_seed = 8;
    if (serve::retry_backoff_ms(other, attempt) !=
        serve::retry_backoff_ms(policy, attempt)) {
      ++differs;
    }
  }
  EXPECT_GE(differs, 1);
}

TEST(ServeRetry, QueryWithRetryRidesOutBusy) {
  serve::ServerOptions options;
  options.port = 0;
  options.sessions = 1;
  options.max_queue = 0;  // shed whenever the only worker is busy
  options.idle_timeout_ms = 5000;
  serve::Server server(options);
  ASSERT_TRUE(server.start());

  // Occupy the single worker (same discipline as the backpressure test).
  serve::Client holder;
  bool held = false;
  for (int attempt = 0; attempt < 50 && !held; ++attempt) {
    ASSERT_TRUE(holder.connect(server.port()));
    obs::Json status;
    held = holder.request(obs::Json::parse(R"({"op":"status"})"), &status,
                          /*timeout_ms=*/2000) &&
           status.find("status") != nullptr &&
           status.find("status")->as_string() == "ok";
    if (!held) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(held);

  // Release the worker after ~300 ms; a retrying client must ride the
  // "busy" responses out and land once capacity frees up.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    holder.close();
  });
  serve::RetryPolicy policy;
  policy.retries = 30;
  policy.base_backoff_ms = 25;
  policy.max_backoff_ms = 100;
  obs::Json response;
  int attempts = 0;
  ASSERT_TRUE(serve::query_with_retry(
      server.port(), obs::Json::parse(R"({"op":"status"})"), &response,
      policy, /*timeout_ms=*/5000, &attempts));
  releaser.join();
  ASSERT_NE(response.find("status"), nullptr);
  EXPECT_EQ(response.find("status")->as_string(), "ok") << response.dump();
  EXPECT_GT(attempts, 1) << "the first attempt should have been shed";
  EXPECT_GE(server.stats().shed, 1u);
  server.stop();
}

TEST(ServeClient, RequestLineTimeoutIsEndToEndWallClock) {
  // A hostile "server" that drips one byte every 50 ms and never sends a
  // newline. With a per-read timeout (the old bug) every byte would reset
  // the clock and the call would hang for the duration of the drip; the
  // end-to-end budget must bound the whole call.
  int port = 0;
  const int listener = util::net::listen_localhost(0, 4, &port);
  ASSERT_GE(listener, 0);
  std::atomic<bool> stop{false};
  std::thread dripper([&] {
    if (!util::net::wait_readable(listener, 5000)) return;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    std::string junk;
    util::net::recv_line(fd, &junk, 1000);  // swallow the request
    for (int i = 0; i < 60 && !stop.load(); ++i) {
      if (!util::net::send_all(fd, "x")) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::close(fd);
  });

  serve::Client client;
  ASSERT_TRUE(client.connect(port));
  std::string response;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.request_line(R"({"op":"status"})", &response,
                                   /*timeout_ms=*/500));
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 400) << "gave up before the budget was spent";
  EXPECT_LT(elapsed_ms, 2500) << "per-read timeout reset the clock";
  stop.store(true);
  dripper.join();
  ::close(listener);
}

}  // namespace
