// Serving-path acceptance tests: the clo.serve.v1 protocol (parsing and
// hostile-input rejection), the model registry (single-flight get-or-train
// under a thundering herd, persistence across registry instances, corrupt
// entries skipped not fatal), and the daemon end to end (warm answers
// byte-identical to a cold pipeline run, warm QoR queries that never touch
// synthesis, silent clients that cannot stall a session worker, clients
// that disconnect mid-response without killing the daemon, and bounded
// backpressure when every worker is busy).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/opt/transform.hpp"
#include "clo/serve/client.hpp"
#include "clo/serve/protocol.hpp"
#include "clo/serve/registry.hpp"
#include "clo/serve/server.hpp"
#include "clo/util/net.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

std::string temp_dir(const char* name) {
  const std::string path = testing::TempDir() + name;
  std::filesystem::remove_all(path);
  return path;
}

/// Small-but-real pipeline config for registry tests (a few hundred ms).
core::PipelineConfig tiny_config() {
  core::PipelineConfig config;
  config.dataset_size = 8;
  config.diffusion_steps = 8;
  config.diffusion_iters = 20;
  config.restarts = 1;
  config.surrogate_train.epochs = 4;
  config.seed = 1;
  return config;
}

// ---------------------------------------------------------------------------
// Protocol.
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ParsesTuneRequestWithDefaults) {
  const auto req = serve::parse_request(
      R"({"op":"tune","circuit":"ctrl","id":"r1"})");
  EXPECT_EQ(req.op, serve::Request::Op::kTune);
  EXPECT_EQ(req.circuit, "ctrl");
  EXPECT_EQ(req.id, "r1");
  // Defaults mirror the shell `tune` command.
  EXPECT_EQ(req.dataset, 80);
  EXPECT_EQ(req.restarts, 2);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_FALSE(req.verify);
  const auto config = serve::pipeline_config(req);
  EXPECT_EQ(config.dataset_size, 80);
  EXPECT_EQ(config.restarts, 2);
  EXPECT_EQ(config.diffusion_steps, 60);
}

TEST(ServeProtocol, ParsesExplicitKnobs) {
  const auto req = serve::parse_request(
      R"({"op":"qor","circuit":"c432","sequence":"rw;rf;b","dataset":16,)"
      R"("restarts":3,"seed":7,"verify":true})");
  EXPECT_EQ(req.op, serve::Request::Op::kQor);
  EXPECT_EQ(req.sequence, "rw;rf;b");
  EXPECT_EQ(req.dataset, 16);
  EXPECT_EQ(req.restarts, 3);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_TRUE(req.verify);
}

TEST(ServeProtocol, RejectsHostileInput) {
  EXPECT_THROW(serve::parse_request("not json at all"), std::runtime_error);
  EXPECT_THROW(serve::parse_request("[1,2,3]"), std::runtime_error);
  EXPECT_THROW(serve::parse_request(R"({"circuit":"ctrl"})"),
               std::runtime_error);  // missing op
  EXPECT_THROW(serve::parse_request(R"({"op":"explode"})"),
               std::runtime_error);  // unknown op
  EXPECT_THROW(serve::parse_request(R"({"op":"tune"})"),
               std::runtime_error);  // tune without circuit
  EXPECT_THROW(
      serve::parse_request(R"({"op":"tune","circuit":"ctrl","dataset":2})"),
      std::runtime_error);  // below range
  EXPECT_THROW(serve::parse_request(
                   R"({"op":"tune","circuit":"ctrl","restarts":99999})"),
               std::runtime_error);  // above range
  EXPECT_THROW(
      serve::parse_request(R"({"op":"tune","circuit":"ctrl","seed":"x"})"),
      std::runtime_error);  // wrong type
}

TEST(ServeProtocol, StatusAndShutdownNeedNoCircuit) {
  EXPECT_EQ(serve::parse_request(R"({"op":"status"})").op,
            serve::Request::Op::kStatus);
  EXPECT_EQ(serve::parse_request(R"({"op":"shutdown"})").op,
            serve::Request::Op::kShutdown);
}

// ---------------------------------------------------------------------------
// Model registry.
// ---------------------------------------------------------------------------

TEST(ServeRegistry, GetOrTrainRaceTrainsExactlyOnce) {
  serve::ModelRegistry registry({/*dir=*/"", /*pool=*/nullptr});
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<serve::ModelRegistry::Entry>> entries(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      try {
        entries[static_cast<std::size_t>(i)] =
            registry.get_or_train("ctrl", tiny_config());
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  // Single-flight: one pretraining run, every thread got the same entry.
  EXPECT_EQ(registry.trainings(), 1u);
  EXPECT_EQ(registry.size(), 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].get(), entries[0].get());
  }
}

TEST(ServeRegistry, UnknownCircuitThrowsAndReleasesInflight) {
  serve::ModelRegistry registry({/*dir=*/"", /*pool=*/nullptr});
  EXPECT_THROW(registry.get_or_train("no-such-circuit", tiny_config()),
               std::invalid_argument);
  // The failure must not leave a stuck in-flight slot behind.
  auto entry = registry.get_or_train("ctrl", tiny_config());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ServeRegistry, PersistsAcrossInstances) {
  const std::string dir = temp_dir("serve_registry_persist");
  opt::Sequence first_best;
  {
    serve::ModelRegistry registry({dir, /*pool=*/nullptr});
    auto entry = registry.get_or_train("ctrl", tiny_config());
    EXPECT_EQ(entry->resumed_phases, 0);  // cold: nothing on disk yet
    entry->result = entry->pipeline.optimize(entry->evaluator);
    entry->has_result = true;
    first_best = entry->result.best_sequence;
  }
  {
    // A fresh registry (daemon restart) must load all three phases from
    // the CLOCKPT1 files and optimize to the identical sequence.
    serve::ModelRegistry registry({dir, /*pool=*/nullptr});
    auto entry = registry.get_or_train("ctrl", tiny_config());
    EXPECT_EQ(entry->resumed_phases, 3);
    const auto result = entry->pipeline.optimize(entry->evaluator);
    EXPECT_EQ(opt::sequence_to_string(result.best_sequence),
              opt::sequence_to_string(first_best));
  }
}

TEST(ServeRegistry, CorruptEntryIsSkippedAndRetrained) {
  const std::string dir = temp_dir("serve_registry_corrupt");
  {
    serve::ModelRegistry registry({dir, /*pool=*/nullptr});
    registry.get_or_train("ctrl", tiny_config());
  }
  // Truncate/garbage every checkpoint in the entry.
  for (const auto& file : std::filesystem::recursive_directory_iterator(dir)) {
    if (!file.is_regular_file()) continue;
    std::ofstream f(file.path(), std::ios::trunc | std::ios::binary);
    f << "garbage, not a CLOCKPT1 container";
  }
  // A corrupt entry must be skipped (warn + retrain), never abort the
  // daemon or poison the registry.
  serve::ModelRegistry registry({dir, /*pool=*/nullptr});
  auto entry = registry.get_or_train("ctrl", tiny_config());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->resumed_phases, 0);
  EXPECT_EQ(registry.trainings(), 1u);
}

// ---------------------------------------------------------------------------
// Daemon end to end.
// ---------------------------------------------------------------------------

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServerOptions options;
    options.port = 0;  // ephemeral
    options.sessions = 2;
    options.max_queue = 4;
    // Two pool workers on both the serve and the cold side: surrogate
    // training's float rounding differs between serial and data-parallel
    // modes, and byte-parity requires matching modes.
    options.threads = 2;
    options.idle_timeout_ms = 2000;
    server = std::make_unique<serve::Server>(options);
    ASSERT_TRUE(server->start());
    ASSERT_GT(server->port(), 0);
  }
  void TearDown() override { server->stop(); }

  static obs::Json request(serve::Client& client, const std::string& line) {
    obs::Json response;
    const obs::Json req = obs::Json::parse(line);
    EXPECT_TRUE(client.request(req, &response, /*timeout_ms=*/120000));
    return response;
  }

  static const obs::Json* field(const obs::Json& doc, const char* key) {
    const obs::Json* v = doc.find(key);
    EXPECT_NE(v, nullptr) << "missing field " << key << " in " << doc.dump();
    return v;
  }

  std::unique_ptr<serve::Server> server;
};

TEST_F(ServeE2E, WarmTuneIsByteIdenticalToColdPipelineRun) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const std::string tune_line =
      R"({"op":"tune","circuit":"ctrl","dataset":16,"restarts":1})";

  const obs::Json cold = request(client, tune_line);
  ASSERT_EQ(field(cold, "status")->as_string(), "ok") << cold.dump();
  EXPECT_FALSE(field(cold, "warm")->as_bool());
  const std::string served_seq = field(cold, "best_sequence")->as_string();

  // Same connection, same request: answered from the registry cache.
  const obs::Json warm = request(client, tune_line);
  ASSERT_EQ(field(warm, "status")->as_string(), "ok");
  EXPECT_TRUE(field(warm, "warm")->as_bool());
  EXPECT_EQ(field(warm, "best_sequence")->as_string(), served_seq);
  EXPECT_EQ(field(warm, "best_area_um2")->as_double(),
            field(cold, "best_area_um2")->as_double());
  EXPECT_EQ(server->registry().trainings(), 1u);

  // Cold reference: the same config through CloPipeline::run directly —
  // the serve answer must be byte-identical to what the CLI would print.
  auto req = serve::parse_request(tune_line);
  auto config = serve::pipeline_config(req);
  config.threads = 2;  // match the server pool's data-parallel mode
  core::QorEvaluator evaluator(circuits::make_benchmark("ctrl"));
  core::CloPipeline pipeline(config);
  const auto reference = pipeline.run(evaluator);
  EXPECT_EQ(opt::sequence_to_string(reference.best_sequence), served_seq);
}

TEST_F(ServeE2E, WarmQorQueriesNeverTouchSynthesis) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const std::string qor_line =
      R"({"op":"qor","circuit":"ctrl","dataset":16,"restarts":1})";
  const obs::Json first = request(client, qor_line);
  ASSERT_EQ(field(first, "status")->as_string(), "ok") << first.dump();
  const double runs_before =
      field(*field(first, "evaluator"), "unique_runs")->as_double();
  for (int i = 0; i < 5; ++i) {
    const obs::Json again = request(client, qor_line);
    ASSERT_EQ(field(again, "status")->as_string(), "ok");
    EXPECT_EQ(field(again, "area_um2")->as_double(),
              field(first, "area_um2")->as_double());
    // The synthesis-run counter must not move: every warm answer comes
    // from the registry's cached result + the evaluator memo table.
    EXPECT_EQ(
        field(*field(again, "evaluator"), "unique_runs")->as_double(),
        runs_before);
  }
  EXPECT_EQ(server->registry().trainings(), 1u);
}

TEST_F(ServeE2E, BadRequestsAnswerErrorsAndKeepServing) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  std::string raw;
  ASSERT_TRUE(client.request_line("this is not json", &raw));
  obs::Json err = obs::Json::parse(raw);
  EXPECT_EQ(field(err, "status")->as_string(), "error");
  // Unknown circuit: error response, same connection keeps working.
  const obs::Json bad =
      request(client, R"({"op":"qor","circuit":"nope","dataset":16})");
  EXPECT_EQ(field(bad, "status")->as_string(), "error");
  const obs::Json status = request(client, R"({"op":"status"})");
  EXPECT_EQ(field(status, "status")->as_string(), "ok");
}

TEST_F(ServeE2E, ClientDisconnectMidResponseDoesNotKillDaemon) {
  // A client that sends a request and slams the connection shut before
  // reading the response used to SIGPIPE the whole process. Run several:
  // one failed write must not take down the daemon or any worker.
  for (int i = 0; i < 4; ++i) {
    const int fd = util::net::connect_localhost(server->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(util::net::send_all(fd, "{\"op\":\"status\"}\n"));
    ::close(fd);  // gone before the response is written
  }
  // Daemon must still answer. The slammed connections may still be
  // queued (max_queue backpressure legitimately answers "server busy"
  // while they drain), so retry until the queue clears — what must NOT
  // happen is the daemon dying or a worker wedging.
  bool answered = false;
  for (int attempt = 0; attempt < 50 && !answered; ++attempt) {
    serve::Client client;
    ASSERT_TRUE(client.connect(server->port()));
    obs::Json status;
    if (client.request(obs::Json::parse(R"({"op":"status"})"), &status) &&
        status.find("status") != nullptr &&
        status.find("status")->as_string() == "ok") {
      answered = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(answered);
  EXPECT_TRUE(server->running());
}

TEST_F(ServeE2E, SilentClientIsClosedAndDoesNotStallWorkers) {
  // Connect and send nothing: the worker must give up after
  // idle_timeout_ms, not camp on ::recv forever.
  const int silent = util::net::connect_localhost(server->port());
  ASSERT_GE(silent, 0);
  // A real client must be served while the silent one idles.
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const obs::Json status = request(client, R"({"op":"status"})");
  EXPECT_EQ(field(status, "status")->as_string(), "ok");
  // After the idle timeout the silent connection is closed by the server
  // (read observes EOF).
  std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  char byte = 0;
  EXPECT_EQ(::read(silent, &byte, 1), 0);
  ::close(silent);
}

TEST_F(ServeE2E, ShutdownRequestStopsAccepting) {
  serve::Client client;
  ASSERT_TRUE(client.connect(server->port()));
  const obs::Json resp = request(client, R"({"op":"shutdown"})");
  EXPECT_EQ(field(resp, "status")->as_string(), "ok");
  EXPECT_TRUE(server->stop_requested());
  server->stop();
  EXPECT_FALSE(server->running());
}

TEST(ServeBackpressure, FullQueueRejectsWithOneErrorLine) {
  serve::ServerOptions options;
  options.port = 0;
  options.sessions = 1;
  options.max_queue = 0;  // reject whenever the only worker is busy
  options.idle_timeout_ms = 3000;
  serve::Server server(options);
  ASSERT_TRUE(server.start());

  // Occupy the single session worker with an open connection. A full
  // status round-trip (retried: with max_queue=0 even this connect is
  // rejected until the worker reaches its queue wait) proves the worker
  // owns the connection and is now camped on its next recv.
  serve::Client holder;
  bool held = false;
  for (int attempt = 0; attempt < 50 && !held; ++attempt) {
    ASSERT_TRUE(holder.connect(server.port()));
    obs::Json status;
    held = holder.request(obs::Json::parse(R"({"op":"status"})"), &status,
                          /*timeout_ms=*/2000) &&
           status.find("status") != nullptr &&
           status.find("status")->as_string() == "ok";
    if (!held) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(held);

  // The next client gets a clean one-line rejection, not a hang or an
  // unbounded queue.
  const int fd = util::net::connect_localhost(server.port());
  ASSERT_GE(fd, 0);
  std::string line;
  ASSERT_TRUE(util::net::recv_line(fd, &line, /*timeout_ms=*/3000));
  const obs::Json err = obs::Json::parse(line);
  ASSERT_NE(err.find("status"), nullptr);
  EXPECT_EQ(err.find("status")->as_string(), "error");
  ::close(fd);
  holder.close();
  const auto stats = server.stats();
  EXPECT_GE(stats.rejected, 1u);
  server.stop();
}

}  // namespace
