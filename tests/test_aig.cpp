#include <gtest/gtest.h>

#include <algorithm>

#include "clo/aig/aig.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo::aig;

TEST(Lit, PackingRoundTrip) {
  const Lit l = make_lit(42, true);
  EXPECT_EQ(lit_node(l), 42u);
  EXPECT_TRUE(lit_is_compl(l));
  EXPECT_EQ(lit_not(l), make_lit(42, false));
  EXPECT_EQ(lit_regular(l), make_lit(42, false));
  EXPECT_EQ(lit_notc(make_lit(3), true), make_lit(3, true));
  EXPECT_EQ(lit_notc(make_lit(3), false), make_lit(3));
}

TEST(Aig, ConstantFolding) {
  Aig g;
  const Lit a = g.add_pi();
  EXPECT_EQ(g.and_of(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.and_of(a, kLitTrue), a);
  EXPECT_EQ(g.and_of(a, a), a);
  EXPECT_EQ(g.and_of(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(b, a);  // commuted -> same node
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
  const Lit z = g.and_of(lit_not(a), b);
  EXPECT_NE(x, z);
  EXPECT_EQ(g.num_ands(), 2u);
}

TEST(Aig, ProbeDoesNotCreate) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  EXPECT_FALSE(g.probe_and(a, b).has_value());
  EXPECT_EQ(g.num_ands(), 0u);
  const Lit x = g.and_of(a, b);
  auto hit = g.probe_and(b, a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, x);
  EXPECT_EQ(*g.probe_and(a, kLitTrue), a);
}

TEST(Aig, DerivedGatesSimulateCorrectly) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  g.add_po(g.xor_of(a, b), "xor");
  g.add_po(g.or_of(a, b), "or");
  g.add_po(g.mux_of(c, a, b), "mux");
  g.add_po(g.maj_of(a, b, c), "maj");
  for (int m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = m & 2, vc = m & 4;
    const auto out = simulate(g, {va, vb, vc});
    EXPECT_EQ(out[0], va != vb);
    EXPECT_EQ(out[1], va || vb);
    EXPECT_EQ(out[2], vc ? va : vb);
    EXPECT_EQ(out[3], (va && vb) || (va && vc) || (vb && vc));
  }
}

TEST(Aig, DepthAndLevels) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, c);
  g.add_po(y);
  EXPECT_EQ(g.depth(), 2);
  const auto levels = g.levels();
  EXPECT_EQ(levels[lit_node(x)], 1);
  EXPECT_EQ(levels[lit_node(y)], 2);
}

TEST(Aig, TopoOrderRespectsFanins) {
  Aig g;
  clo::Rng rng(1);
  std::vector<Lit> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < 100; ++i) {
    const Lit a = pool[rng.next_below(pool.size())];
    const Lit b = pool[rng.next_below(pool.size())];
    pool.push_back(lit_notc(g.and_of(a, b), rng.next_bool()));
  }
  g.add_po(pool.back());
  const auto order = g.topo_order();
  std::vector<int> position(g.num_slots(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = static_cast<int>(i);
  }
  for (std::uint32_t n : order) {
    for (Lit f : {g.fanin0(n), g.fanin1(n)}) {
      if (g.is_and(lit_node(f))) {
        EXPECT_LT(position[lit_node(f)], position[n]);
      }
    }
  }
}

TEST(Aig, ReplacePreservesFunction) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, lit_not(a));  // y == 0 semantically
  g.add_po(y, "y");
  g.add_po(x, "x");
  // Replace y's node with const0 (a legal, function-preserving rewrite).
  g.replace(lit_node(y), kLitFalse);
  g.check();
  const auto out = simulate(g, {true, true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(Aig, ReplaceKillsMffc) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, c);
  g.add_po(y);
  EXPECT_EQ(g.num_ands(), 2u);
  // Replacing y by a single fresh node kills x (only referenced via y).
  const Lit z = g.and_of(a, c);
  g.replace(lit_node(y), z);
  g.check();
  EXPECT_EQ(g.num_ands(), 1u);
  EXPECT_TRUE(g.is_dead(lit_node(x)));
  EXPECT_TRUE(g.is_dead(lit_node(y)));
}

TEST(Aig, ReplaceWithComplementedLiteral) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit top = g.and_of(x, a);
  g.add_po(top, "top");
  g.add_po(lit_not(x), "nx");
  // Swap node x's function from a&b to a|b via a complemented literal:
  // a|b = NOT(!a & !b). Fanouts and the complemented PO must follow.
  const Lit a_or_b = lit_not(g.and_of(lit_not(a), lit_not(b)));
  ASSERT_TRUE(lit_is_compl(a_or_b));
  g.replace(lit_node(x), a_or_b);
  g.check();
  for (int m = 0; m < 4; ++m) {
    const bool va = m & 1, vb = m & 2;
    const auto out = simulate(g, {va, vb});
    EXPECT_EQ(out[0], (va || vb) && va);
    EXPECT_EQ(out[1], !(va || vb));
  }
}

TEST(Aig, MffcSize) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);    // shared
  const Lit y = g.and_of(x, c);    // in MFFC of y only
  const Lit z = g.and_of(x, a);
  g.add_po(y);
  g.add_po(z);
  // MFFC(y) = {y} since x is shared with z.
  EXPECT_EQ(g.mffc_size(lit_node(y)), 1);
  EXPECT_EQ(g.mffc_size(lit_node(z)), 1);
  // If z dies, x belongs solely to y's cone.
  g.set_po(1, y);
  g.check();
  EXPECT_EQ(g.mffc_size(lit_node(y)), 2);
}

TEST(Aig, MffcNodesContents) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, c);
  g.add_po(y);
  const auto mffc = g.mffc_nodes(lit_node(y));
  EXPECT_EQ(mffc.size(), 2u);
  EXPECT_NE(std::find(mffc.begin(), mffc.end(), lit_node(x)), mffc.end());
  EXPECT_NE(std::find(mffc.begin(), mffc.end(), lit_node(y)), mffc.end());
}

TEST(Aig, CleanupDropsDanglingAndRefolds) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.and_of(a, b);
  g.and_of(x, b);  // dangling node, never referenced by a PO
  g.add_po(x);
  EXPECT_EQ(g.num_ands(), 2u);
  g.cleanup();
  g.check();
  EXPECT_EQ(g.num_ands(), 1u);
  EXPECT_EQ(g.num_pis(), 2u);
  EXPECT_EQ(g.num_pos(), 1u);
}

TEST(Aig, CleanupPreservesNamesAndFunction) {
  Aig g;
  const Lit a = g.add_pi("alpha");
  const Lit b = g.add_pi("beta");
  g.add_po(g.xor_of(a, b), "result");
  Aig before = g;
  g.cleanup();
  EXPECT_EQ(g.pi_name(0), "alpha");
  EXPECT_EQ(g.po_name(0), "result");
  clo::Rng rng(2);
  EXPECT_TRUE(cec(before, g, rng).equivalent);
}

TEST(Aig, SweepRemovesUnreferencedCone) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit keep = g.and_of(a, b);
  g.add_po(keep);
  const Lit t1 = g.and_of(lit_not(a), b);
  const Lit t2 = g.and_of(t1, keep);
  EXPECT_EQ(g.num_ands(), 3u);
  g.sweep(t2);
  EXPECT_EQ(g.num_ands(), 1u);
  EXPECT_FALSE(g.is_dead(lit_node(keep)));
  g.check();
}

TEST(Aig, ReachesFindsTargetInsideCone) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, a);
  g.add_po(y);
  EXPECT_TRUE(g.reaches(y, lit_node(x), {}));
  EXPECT_FALSE(g.reaches(x, lit_node(y), {}));
  // Boundary blocks traversal.
  EXPECT_FALSE(g.reaches(y, lit_node(x), {lit_node(y)}));
}

TEST(Aig, CheckDetectsConsistency) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.and_of(a, b));
  EXPECT_NO_THROW(g.check());
}

TEST(Simulate, WordLevelMatchesBitLevel) {
  Aig g;
  clo::Rng rng(17);
  std::vector<Lit> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < 60; ++i) {
    const Lit a = pool[rng.next_below(pool.size())];
    const Lit b = pool[rng.next_below(pool.size())];
    pool.push_back(lit_notc(g.and_of(a, b), rng.next_bool()));
  }
  g.add_po(pool.back());
  g.add_po(pool[pool.size() / 2]);
  // Compare word-parallel sim against 64 separate single-bit sims.
  std::vector<std::uint64_t> words(6);
  for (auto& w : words) w = rng.next_u64();
  const auto word_out = simulate_words(g, words);
  for (int bit = 0; bit < 64; ++bit) {
    std::vector<bool> in(6);
    for (int i = 0; i < 6; ++i) in[i] = (words[i] >> bit) & 1;
    const auto out = simulate(g, in);
    for (std::size_t o = 0; o < out.size(); ++o) {
      EXPECT_EQ(out[o], static_cast<bool>((word_out[o] >> bit) & 1));
    }
  }
}

TEST(Simulate, PoTruthTables) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.and_of(a, b));
  g.add_po(g.xor_of(a, b));
  const auto tts = po_truth_tables(g);
  EXPECT_EQ(tts[0].to_u16() & 0xf, 0x8);  // AND
  EXPECT_EQ(tts[1].to_u16() & 0xf, 0x6);  // XOR
}

TEST(Simulate, ConeTruthTable) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, lit_not(c));
  g.add_po(y);
  const auto tt = cone_truth_table(
      g, y, {lit_node(a), lit_node(b), lit_node(c)});
  // y = a & b & !c
  for (int m = 0; m < 8; ++m) {
    const bool expected = (m & 1) && (m & 2) && !(m & 4);
    EXPECT_EQ(tt.get_bit(m), expected) << "minterm " << m;
  }
}

TEST(Cec, DetectsEquivalenceAndDifference) {
  Aig g1, g2, g3;
  for (Aig* g : {&g1, &g2, &g3}) {
    const Lit a = g->add_pi();
    const Lit b = g->add_pi();
    if (g == &g3) {
      g->add_po(g->or_of(a, b));
    } else if (g == &g1) {
      g->add_po(g->and_of(a, b));
    } else {
      // DeMorgan form of AND.
      g->add_po(lit_not(g->or_of(lit_not(a), lit_not(b))));
    }
  }
  clo::Rng rng(5);
  EXPECT_TRUE(cec(g1, g2, rng).equivalent);
  const auto bad = cec(g1, g3, rng);
  EXPECT_FALSE(bad.equivalent);
  EXPECT_EQ(bad.failing_po, 0u);
}

TEST(Cec, LargeRandomEquivalentAfterCleanup) {
  Aig g;
  clo::Rng rng(23);
  std::vector<Lit> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < 500; ++i) {
    const Lit a = pool[rng.next_below(pool.size())];
    const Lit b = pool[rng.next_below(pool.size())];
    pool.push_back(lit_notc(g.and_of(a, b), rng.next_bool()));
  }
  for (int i = 0; i < 10; ++i) {
    g.add_po(pool[pool.size() - 1 - 7 * i]);
  }
  Aig copy = g;
  copy.cleanup();
  EXPECT_TRUE(cec(g, copy, rng).equivalent);
}

}  // namespace
