#include <gtest/gtest.h>

#include "clo/aig/truth.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo::aig;

TEST(TruthTable, ConstantsAndVariables) {
  const auto c0 = TruthTable::constant(3, false);
  const auto c1 = TruthTable::constant(3, true);
  EXPECT_TRUE(c0.is_const0());
  EXPECT_TRUE(c1.is_const1());
  EXPECT_EQ(c1.count_ones(), 8);
  for (int v = 0; v < 3; ++v) {
    const auto x = TruthTable::variable(3, v);
    EXPECT_EQ(x.count_ones(), 4);
    for (int m = 0; m < 8; ++m) {
      EXPECT_EQ(x.get_bit(m), static_cast<bool>((m >> v) & 1));
    }
  }
}

TEST(TruthTable, VariablesAboveWordBoundary) {
  // 8 variables -> 4 words; check variables 6 and 7 (word-stride regime).
  for (int v : {6, 7}) {
    const auto x = TruthTable::variable(8, v);
    for (int m = 0; m < 256; m += 7) {
      EXPECT_EQ(x.get_bit(m), static_cast<bool>((m >> v) & 1));
    }
  }
}

TEST(TruthTable, BooleanOps) {
  const auto a = TruthTable::variable(2, 0);
  const auto b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).to_u16() & 0xf, 0x8);
  EXPECT_EQ((a | b).to_u16() & 0xf, 0xe);
  EXPECT_EQ((a ^ b).to_u16() & 0xf, 0x6);
  EXPECT_EQ((~a).to_u16() & 0xf, 0x5);
}

TEST(TruthTable, CofactorsSmallVars) {
  // f = a & b over 2 vars: f|b=0 = 0, f|b=1 = a.
  const auto a = TruthTable::variable(2, 0);
  const auto b = TruthTable::variable(2, 1);
  const auto f = a & b;
  EXPECT_TRUE(f.cofactor0(1).is_const0());
  EXPECT_EQ(f.cofactor1(1), a);
  EXPECT_TRUE(f.has_var(0));
  EXPECT_TRUE(f.has_var(1));
  EXPECT_FALSE((a | ~a).has_var(0));
}

TEST(TruthTable, CofactorsLargeVars) {
  const auto a = TruthTable::variable(8, 7);
  const auto b = TruthTable::variable(8, 0);
  const auto f = a ^ b;
  EXPECT_EQ(f.cofactor0(7), b);
  EXPECT_EQ(f.cofactor1(7), ~b);
}

TEST(TruthTable, U16RoundTrip) {
  for (std::uint16_t bits : {std::uint16_t{0x8000}, std::uint16_t{0x1234},
                             std::uint16_t{0xcafe}}) {
    EXPECT_EQ(TruthTable::from_u16(bits).to_u16(), bits);
  }
}

TEST(TruthTable, BinaryString) {
  const auto a = TruthTable::variable(2, 0);
  EXPECT_EQ(a.to_binary_string(), "1010");
}

TEST(Isop, CoversExactly) {
  clo::Rng rng(31);
  for (int num_vars = 1; num_vars <= 6; ++num_vars) {
    for (int trial = 0; trial < 40; ++trial) {
      TruthTable f(num_vars);
      for (std::size_t m = 0; m < f.num_bits(); ++m) {
        f.set_bit(m, rng.next_bool());
      }
      const auto cubes = isop(f);
      EXPECT_EQ(eval_sop(cubes, num_vars), f)
          << "vars=" << num_vars << " f=" << f.to_binary_string();
    }
  }
}

TEST(Isop, ConstantsAndSingleVar) {
  EXPECT_TRUE(isop(TruthTable::constant(3, false)).empty());
  const auto taut = isop(TruthTable::constant(3, true));
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_EQ(taut[0].num_literals(), 0);
  const auto var = isop(TruthTable::variable(3, 1));
  ASSERT_EQ(var.size(), 1u);
  EXPECT_EQ(var[0].num_literals(), 1);
  EXPECT_TRUE(var[0].polarity & (1u << 1));
}

TEST(Isop, IrredundantOnSimpleFunctions) {
  // f = ab + cd should produce exactly 2 cubes of 2 literals.
  const auto a = TruthTable::variable(4, 0);
  const auto b = TruthTable::variable(4, 1);
  const auto c = TruthTable::variable(4, 2);
  const auto d = TruthTable::variable(4, 3);
  const auto f = (a & b) | (c & d);
  const auto cubes = isop(f);
  EXPECT_EQ(cubes.size(), 2u);
  EXPECT_EQ(sop_literals(cubes), 4);
}

TEST(Isop, XorNeedsFourCubes) {
  const auto a = TruthTable::variable(3, 0);
  const auto b = TruthTable::variable(3, 1);
  const auto c = TruthTable::variable(3, 2);
  const auto cubes = isop(a ^ b ^ c);
  EXPECT_EQ(cubes.size(), 4u);  // minimal SOP of 3-input XOR
  EXPECT_EQ(eval_sop(cubes, 3), a ^ b ^ c);
}

TEST(Isop, TenVariableStress) {
  clo::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    TruthTable f(10);
    for (std::size_t m = 0; m < f.num_bits(); ++m) {
      f.set_bit(m, rng.next_bool(0.3));
    }
    EXPECT_EQ(eval_sop(isop(f), 10), f);
  }
}

}  // namespace
