// Fault-injection unit tests: spec parsing, the nth-hit and probability
// trigger modes (and their determinism), the known-site registry that the
// CI fault matrix enumerates, and the training-loop divergence guards the
// loss_nan sites exist to exercise.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/trainer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
namespace fault = clo::util::fault;

/// Every test must leave the process disarmed: fault state is global and
/// other suites in this binary hit the instrumented code paths.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

TEST_F(FaultTest, DisarmedByDefault) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(CLO_FAULT_FIRED("optimizer.restart"));
  EXPECT_NO_THROW(CLO_FAULT_POINT("optimizer.restart"));
  EXPECT_EQ(fault::hits("optimizer.restart"), 0u);
  EXPECT_EQ(fault::describe(), "");
}

TEST_F(FaultTest, NthSpecFiresExactlyOnce) {
  fault::arm("surrogate.train_step=3");
  EXPECT_TRUE(fault::armed());
  EXPECT_NO_THROW(CLO_FAULT_POINT("surrogate.train_step"));  // hit 1
  EXPECT_NO_THROW(CLO_FAULT_POINT("surrogate.train_step"));  // hit 2
  try {
    CLO_FAULT_POINT("surrogate.train_step");  // hit 3 fires
    FAIL() << "expected InjectedFault";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.site(), "surrogate.train_step");
    EXPECT_NE(std::string(e.what()).find("surrogate.train_step"),
              std::string::npos);
  }
  // One-shot: later hits pass.
  EXPECT_NO_THROW(CLO_FAULT_POINT("surrogate.train_step"));
  EXPECT_EQ(fault::hits("surrogate.train_step"), 4u);
  // Sites without a spec never count or fire.
  EXPECT_NO_THROW(CLO_FAULT_POINT("optimizer.restart"));
  EXPECT_EQ(fault::hits("optimizer.restart"), 0u);
}

TEST_F(FaultTest, InjectedFaultIsARuntimeError) {
  fault::arm("checkpoint.read=1");
  EXPECT_THROW(CLO_FAULT_POINT("checkpoint.read"), std::runtime_error);
}

TEST_F(FaultTest, ProbabilityPatternIsAPureFunctionOfTheSpec) {
  auto pattern = [](const std::string& spec) {
    fault::arm(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(CLO_FAULT_FIRED("optimizer.restart"));
    }
    return fired;
  };
  const auto a = pattern("optimizer.restart=p0.5,seed=9");
  const auto b = pattern("optimizer.restart=p0.5,seed=9");
  EXPECT_EQ(a, b);  // re-arming replays the exact same firing pattern
  const auto c = pattern("optimizer.restart=p0.5,seed=10");
  EXPECT_NE(a, c);  // the seed perturbs it
  int fired_count = 0;
  for (bool f : a) fired_count += f ? 1 : 0;
  EXPECT_GT(fired_count, 8);   // p0.5 over 64 hits is nowhere near
  EXPECT_LT(fired_count, 56);  // all-or-nothing
}

TEST_F(FaultTest, ProbabilityExtremes) {
  fault::arm("optimizer.restart=p0");
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(CLO_FAULT_FIRED("optimizer.restart"));
  }
  fault::arm("optimizer.restart=p1.0");
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(CLO_FAULT_FIRED("optimizer.restart"));
  }
}

TEST_F(FaultTest, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::arm("no.such.site=1"), std::invalid_argument);
  EXPECT_THROW(fault::arm("optimizer.restart"), std::invalid_argument);
  EXPECT_THROW(fault::arm("optimizer.restart="), std::invalid_argument);
  EXPECT_THROW(fault::arm("optimizer.restart=0"), std::invalid_argument);
  EXPECT_THROW(fault::arm("optimizer.restart=px"), std::invalid_argument);
  EXPECT_THROW(fault::arm("optimizer.restart=p1.5"), std::invalid_argument);
  EXPECT_THROW(fault::arm("optimizer.restart=3x"), std::invalid_argument);
}

TEST_F(FaultTest, FailedArmKeepsThePreviousArming) {
  fault::arm("checkpoint.write=1");
  EXPECT_THROW(fault::arm("no.such.site=1"), std::invalid_argument);
  EXPECT_TRUE(fault::armed());
  EXPECT_THROW(CLO_FAULT_POINT("checkpoint.write"), fault::InjectedFault);
}

TEST_F(FaultTest, KnownSitesAreStableAndAllArm) {
  // This list is the CI fault-matrix contract: a new CLO_FAULT_POINT site
  // must be registered here (and the matrix regenerated) to be reachable.
  const std::vector<std::string> expected = {
      "checkpoint.read",      "checkpoint.write",
      "diffusion.loss_nan",   "diffusion.train_step",
      "evaluator.synthesize", "optimizer.latent_nan",
      "optimizer.restart",    "serialize.read",
      "serialize.write",      "surrogate.loss_nan",
      "surrogate.train_step",
  };
  EXPECT_EQ(fault::known_sites(), expected);
  for (const auto& site : fault::known_sites()) {
    EXPECT_NO_THROW(fault::arm(site + "=1")) << site;
  }
}

TEST_F(FaultTest, KnownSitesAreMachineStable) {
  // `clo --fault list` prints exactly the registry, one site per line,
  // with nothing else on stdout; CI word-splits that output to drive the
  // fault matrix. Pin the properties that makes safe: the list is
  // non-empty, sorted, duplicate-free, and every name is free of
  // whitespace and of the '=' and ',' characters the spec grammar uses.
  const auto sites = fault::known_sites();
  ASSERT_FALSE(sites.empty());
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()), sites.end());
  for (const auto& site : sites) {
    EXPECT_FALSE(site.empty());
    for (char c : site) {
      EXPECT_FALSE(std::isspace(static_cast<unsigned char>(c)))
          << site << " contains whitespace";
      EXPECT_NE(c, '=') << site;
      EXPECT_NE(c, ',') << site;
    }
  }
}

TEST_F(FaultTest, DescribeSummarizesHitsAndFires) {
  fault::arm("checkpoint.read=2,optimizer.restart=p0.25");
  EXPECT_NO_THROW(CLO_FAULT_POINT("checkpoint.read"));  // hit 1 of 2
  const std::string d = fault::describe();
  EXPECT_NE(d.find("checkpoint.read=2 (hits=1, fired=0)"), std::string::npos)
      << d;
  EXPECT_NE(d.find("optimizer.restart=p0.25"), std::string::npos) << d;
}

TEST_F(FaultTest, ArmFromEnvironment) {
  ASSERT_EQ(setenv("CLO_FAULT", "evaluator.synthesize=5", 1), 0);
  fault::arm_from_env();
  EXPECT_TRUE(fault::armed());
  EXPECT_NE(fault::describe().find("evaluator.synthesize=5"),
            std::string::npos);
  ASSERT_EQ(unsetenv("CLO_FAULT"), 0);
  fault::disarm();
  fault::arm_from_env();  // no env var: must stay disarmed
  EXPECT_FALSE(fault::armed());
}

// ---- divergence guards driven by the loss_nan sites ---------------------

TEST_F(FaultTest, SurrogateTrainingRecoversFromNanLoss) {
  core::QorEvaluator ev(circuits::make_benchmark("c17"));
  clo::Rng rng(3);
  const auto ds = core::generate_dataset(ev, 24, 8, rng);
  models::TransformEmbedding emb(8, rng);
  models::SurrogateConfig scfg;
  scfg.seq_len = 8;
  auto model = models::make_surrogate("cnn", ev.circuit(), scfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 10;
  fault::arm("surrogate.loss_nan=2");
  const auto report = core::train_surrogate(*model, emb, ds, tcfg, rng);
  EXPECT_EQ(report.lr_backoffs, 1);
  EXPECT_TRUE(std::isfinite(report.train_mse));
  for (double l : report.epoch_loss) EXPECT_TRUE(std::isfinite(l));
}

TEST_F(FaultTest, SurrogateTrainingGivesUpAfterMaxBackoffs) {
  core::QorEvaluator ev(circuits::make_benchmark("c17"));
  clo::Rng rng(4);
  const auto ds = core::generate_dataset(ev, 24, 8, rng);
  models::TransformEmbedding emb(8, rng);
  models::SurrogateConfig scfg;
  scfg.seq_len = 8;
  auto model = models::make_surrogate("cnn", ev.circuit(), scfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 10;
  fault::arm("surrogate.loss_nan=p1.0");  // every batch diverges
  EXPECT_THROW(core::train_surrogate(*model, emb, ds, tcfg, rng),
               std::runtime_error);
}

TEST_F(FaultTest, DiffusionTrainingRecoversFromNanLoss) {
  clo::Rng rng(5);
  models::DiffusionConfig cfg;
  cfg.seq_len = 8;
  cfg.embed_dim = 4;
  cfg.channels = 8;
  cfg.time_dim = 8;
  cfg.num_steps = 10;
  models::DiffusionModel model(cfg, rng);
  std::vector<std::vector<float>> data(8,
                                       std::vector<float>(8 * 4));
  for (auto& row : data) {
    for (auto& v : row) v = static_cast<float>(rng.next_gaussian());
  }
  fault::arm("diffusion.loss_nan=3");
  const auto stats = model.train(data, /*iterations=*/30, /*batch_size=*/4,
                                 /*lr=*/1e-3f, rng);
  EXPECT_EQ(stats.lr_backoffs, 1);
  EXPECT_EQ(stats.iterations, 30);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  for (double l : stats.loss_curve) EXPECT_TRUE(std::isfinite(l));
}

TEST_F(FaultTest, DiffusionTrainingGivesUpAfterMaxBackoffs) {
  clo::Rng rng(6);
  models::DiffusionConfig cfg;
  cfg.seq_len = 8;
  cfg.embed_dim = 4;
  cfg.channels = 8;
  cfg.time_dim = 8;
  cfg.num_steps = 10;
  models::DiffusionModel model(cfg, rng);
  std::vector<std::vector<float>> data(8,
                                       std::vector<float>(8 * 4));
  for (auto& row : data) {
    for (auto& v : row) v = static_cast<float>(rng.next_gaussian());
  }
  fault::arm("diffusion.loss_nan=p1.0");
  EXPECT_THROW(
      model.train(data, /*iterations=*/30, /*batch_size=*/4, 1e-3f, rng),
      std::runtime_error);
}

}  // namespace
