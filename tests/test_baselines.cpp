#include <gtest/gtest.h>

#include "clo/baselines/baseline.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;

baselines::BaselineParams quick_params() {
  baselines::BaselineParams p;
  p.seq_len = 12;
  p.eval_budget = 10;
  return p;
}

TEST(Baselines, FactoryKnowsAllNames) {
  for (const char* name : {"drills", "abcrl", "boils", "flowtune"}) {
    EXPECT_NE(baselines::make_baseline(name), nullptr);
  }
  EXPECT_THROW(baselines::make_baseline("nope"), std::invalid_argument);
}

TEST(Baselines, RelativeObjectiveWeighting) {
  core::Qor orig{100.0, 200.0};
  core::Qor half{50.0, 200.0};
  baselines::BaselineParams p;
  p.weight_area = 1.0;
  p.weight_delay = 0.0;
  EXPECT_DOUBLE_EQ(baselines::relative_objective(half, orig, p), 0.5);
  p.weight_area = 0.5;
  p.weight_delay = 0.5;
  EXPECT_DOUBLE_EQ(baselines::relative_objective(orig, orig, p), 1.0);
}

class BaselineKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineKindTest, ProducesValidResultWithinBudget) {
  core::QorEvaluator ev(circuits::make_benchmark("ctrl"));
  clo::Rng rng(17);
  auto optimizer = baselines::make_baseline(GetParam());
  const auto params = quick_params();
  const auto r = optimizer->optimize(ev, params, rng);
  EXPECT_EQ(r.best_sequence.size(), static_cast<std::size_t>(params.seq_len));
  EXPECT_GT(r.best_qor.area_um2, 0.0);
  EXPECT_GT(r.best_qor.delay_ps, 0.0);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GE(r.total_seconds, r.algorithm_seconds);
  EXPECT_GT(r.synthesis_runs, 0u);
  // The reported sequence must actually evaluate to the reported QoR.
  const auto check = ev.evaluate(r.best_sequence);
  EXPECT_DOUBLE_EQ(check.area_um2, r.best_qor.area_um2);
}

TEST_P(BaselineKindTest, NeverWorseThanWorstRandom) {
  // With any budget, the best-found objective is at most the first
  // evaluated candidate's (optimizers keep the incumbent).
  core::QorEvaluator ev(circuits::make_benchmark("int2float"));
  clo::Rng rng(23);
  auto optimizer = baselines::make_baseline(GetParam());
  const auto r = optimizer->optimize(ev, quick_params(), rng);
  const auto orig = ev.original();
  // Objective is relative; anything >= 3x original would be pathological.
  EXPECT_LT(r.objective,
            3.0 * baselines::relative_objective(orig, orig, quick_params()));
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineKindTest,
                         ::testing::Values("drills", "abcrl", "boils",
                                           "flowtune"),
                         [](const auto& info) { return info.param; });

TEST(Baselines, FlowTuneUsesLittleAlgorithmTime) {
  // The MAB spends essentially all time in synthesis (arm pulls).
  core::QorEvaluator ev(circuits::make_benchmark("router"));
  clo::Rng rng(29);
  auto ft = baselines::make_flowtune();
  const auto r = ft->optimize(ev, quick_params(), rng);
  EXPECT_LT(r.algorithm_seconds, 0.5 * r.total_seconds + 0.05);
}

TEST(Baselines, AbcRlSlowerThanDrillsPerEpisode) {
  // abcRL pays a GNN graph extraction on every step; with equal budgets
  // its algorithm time should exceed DRiLLS's (the paper's Fig. 5 shape).
  core::QorEvaluator ev1(circuits::make_benchmark("c880"));
  core::QorEvaluator ev2(circuits::make_benchmark("c880"));
  clo::Rng rng1(31), rng2(31);
  baselines::BaselineParams p = quick_params();
  p.eval_budget = 6;
  const auto rd = baselines::make_drills()->optimize(ev1, p, rng1);
  const auto ra = baselines::make_abcrl()->optimize(ev2, p, rng2);
  EXPECT_GT(ra.algorithm_seconds, rd.algorithm_seconds);
}

TEST(Baselines, BoilsImprovesOverInitialDesign) {
  core::QorEvaluator ev(circuits::make_benchmark("cavlc"));
  clo::Rng rng(37);
  baselines::BaselineParams p;
  p.seq_len = 12;
  p.eval_budget = 20;
  const auto r = baselines::make_boils()->optimize(ev, p, rng);
  const auto orig = ev.original();
  EXPECT_LT(r.best_qor.area_um2, orig.area_um2 * 1.05);
}

}  // namespace
