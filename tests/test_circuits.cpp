#include <gtest/gtest.h>

#include <cstdint>

#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/circuits/wordlevel.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
using circuits::Bus;
using circuits::CircuitBuilder;

std::uint64_t bus_value(const std::vector<bool>& bits, int begin, int width) {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    if (bits[begin + i]) v |= 1ULL << i;
  }
  return v;
}

/// Drive a 2-input-bus circuit with concrete values and read back outputs.
std::vector<bool> run(const aig::Aig& g, std::uint64_t a, std::uint64_t b,
                      int wa, int wb) {
  std::vector<bool> in;
  for (int i = 0; i < wa; ++i) in.push_back((a >> i) & 1);
  for (int i = 0; i < wb; ++i) in.push_back((b >> i) & 1);
  return aig::simulate(g, in);
}

TEST(WordLevel, AdderMatchesArithmetic) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 8);
  const Bus b = cb.input_bus("b", 8);
  auto [sum, carry] = cb.add(a, b);
  cb.output_bus("s", sum);
  cb.output("c", carry);
  const aig::Aig g = cb.take();
  clo::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t x = rng.next_below(256), y = rng.next_below(256);
    const auto out = run(g, x, y, 8, 8);
    EXPECT_EQ(bus_value(out, 0, 8), (x + y) & 0xff);
    EXPECT_EQ(out[8], ((x + y) >> 8) != 0);
  }
}

TEST(WordLevel, SubAndComparisons) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 8);
  const Bus b = cb.input_bus("b", 8);
  cb.output_bus("d", cb.sub(a, b).first);
  cb.output("lt", cb.less_than(a, b));
  cb.output("eq", cb.equal(a, b));
  const aig::Aig g = cb.take();
  clo::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t x = rng.next_below(256), y = rng.next_below(256);
    const auto out = run(g, x, y, 8, 8);
    EXPECT_EQ(bus_value(out, 0, 8), (x - y) & 0xff);
    EXPECT_EQ(out[8], x < y);
    EXPECT_EQ(out[9], x == y);
  }
}

TEST(WordLevel, MultiplierMatchesArithmetic) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 6);
  const Bus b = cb.input_bus("b", 6);
  cb.output_bus("p", cb.mul(a, b));
  const aig::Aig g = cb.take();
  clo::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t x = rng.next_below(64), y = rng.next_below(64);
    EXPECT_EQ(bus_value(run(g, x, y, 6, 6), 0, 12), x * y);
  }
}

TEST(WordLevel, DivModMatchesArithmetic) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 7);
  const Bus b = cb.input_bus("b", 7);
  auto [q, r] = cb.divmod(a, b);
  cb.output_bus("q", q);
  cb.output_bus("r", r);
  const aig::Aig g = cb.take();
  clo::Rng rng(4);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t x = rng.next_below(128);
    const std::uint64_t y = 1 + rng.next_below(127);
    const auto out = run(g, x, y, 7, 7);
    EXPECT_EQ(bus_value(out, 0, 7), x / y) << x << "/" << y;
    EXPECT_EQ(bus_value(out, 7, 7), x % y) << x << "%" << y;
  }
}

TEST(WordLevel, IsqrtMatchesArithmetic) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 10);
  cb.output_bus("s", cb.isqrt(a));
  const aig::Aig g = cb.take();
  for (std::uint64_t x : {0ULL, 1ULL, 2ULL, 3ULL, 4ULL, 15ULL, 16ULL, 17ULL,
                          99ULL, 100ULL, 255ULL, 576ULL, 1023ULL}) {
    std::vector<bool> in;
    for (int i = 0; i < 10; ++i) in.push_back((x >> i) & 1);
    const auto out = aig::simulate(g, in);
    std::uint64_t expected = 0;
    while ((expected + 1) * (expected + 1) <= x) ++expected;
    EXPECT_EQ(bus_value(out, 0, 5), expected) << "sqrt(" << x << ")";
  }
}

TEST(WordLevel, ShiftsAndRotate) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 8);
  const Bus sh = cb.input_bus("sh", 3);
  cb.output_bus("l", cb.shift_left(a, sh));
  cb.output_bus("r", cb.shift_right(a, sh));
  cb.output_bus("rot", cb.rotate_left(a, sh));
  const aig::Aig g = cb.take();
  clo::Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t x = rng.next_below(256);
    const std::uint64_t s = rng.next_below(8);
    const auto out = run(g, x, s, 8, 3);
    EXPECT_EQ(bus_value(out, 0, 8), (x << s) & 0xff);
    EXPECT_EQ(bus_value(out, 8, 8), x >> s);
    EXPECT_EQ(bus_value(out, 16, 8), ((x << s) | (x >> (8 - s))) & 0xff)
        << "x=" << x << " s=" << s;
  }
}

TEST(WordLevel, DecodeOneHot) {
  CircuitBuilder cb("t");
  const Bus sel = cb.input_bus("s", 4);
  cb.output_bus("d", cb.decode(sel));
  const aig::Aig g = cb.take();
  for (std::uint64_t s = 0; s < 16; ++s) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back((s >> i) & 1);
    const auto out = aig::simulate(g, in);
    for (std::uint64_t o = 0; o < 16; ++o) {
      EXPECT_EQ(out[o], o == s);
    }
  }
}

TEST(WordLevel, PriorityEncodeLsbWins) {
  CircuitBuilder cb("t");
  const Bus req = cb.input_bus("r", 8);
  auto [index, any] = cb.priority_encode(req);
  cb.output_bus("i", index);
  cb.output("any", any);
  const aig::Aig g = cb.take();
  clo::Rng rng(6);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t r = rng.next_below(256);
    const auto out = run(g, r, 0, 8, 0);
    EXPECT_EQ(out[3], r != 0);
    if (r != 0) {
      const std::uint64_t expected = __builtin_ctzll(r);
      EXPECT_EQ(bus_value(out, 0, 3), expected) << "r=" << r;
    }
  }
}

TEST(WordLevel, PopcountAndMajority) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 9);
  cb.output_bus("c", cb.popcount(a));
  cb.output("m", cb.majority(a));
  const aig::Aig g = cb.take();
  clo::Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t x = rng.next_below(512);
    const auto out = run(g, x, 0, 9, 0);
    const int pc = __builtin_popcountll(x);
    EXPECT_EQ(bus_value(out, 0, 4), static_cast<std::uint64_t>(pc));
    EXPECT_EQ(out[4], pc > 4);
  }
}

TEST(WordLevel, LeadingOne) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 8);
  auto [idx, any] = cb.leading_one(a);
  cb.output_bus("i", idx);
  cb.output("any", any);
  const aig::Aig g = cb.take();
  for (std::uint64_t x : {1ULL, 2ULL, 3ULL, 128ULL, 130ULL, 255ULL, 0ULL}) {
    const auto out = run(g, x, 0, 8, 0);
    EXPECT_EQ(out[3], x != 0);
    if (x != 0) {
      EXPECT_EQ(bus_value(out, 0, 3), 63 - __builtin_clzll(x)) << x;
    }
  }
}

TEST(WordLevel, MaxMinMux) {
  CircuitBuilder cb("t");
  const Bus a = cb.input_bus("a", 8);
  const Bus b = cb.input_bus("b", 8);
  cb.output_bus("max", cb.max_of(a, b));
  cb.output_bus("min", cb.min_of(a, b));
  const aig::Aig g = cb.take();
  clo::Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t x = rng.next_below(256), y = rng.next_below(256);
    const auto out = run(g, x, y, 8, 8);
    EXPECT_EQ(bus_value(out, 0, 8), std::max(x, y));
    EXPECT_EQ(bus_value(out, 8, 8), std::min(x, y));
  }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(Generators, CatalogComplete) {
  const auto& catalog = circuits::benchmark_catalog();
  EXPECT_EQ(catalog.size(), 31u);
  int epfl = 0, iscas = 0;
  for (const auto& info : catalog) {
    EXPECT_TRUE(circuits::has_benchmark(info.name));
    if (info.suite == "epfl") ++epfl;
    if (info.suite == "iscas85") ++iscas;
  }
  EXPECT_EQ(epfl, 20);
  EXPECT_EQ(iscas, 11);
  EXPECT_FALSE(circuits::has_benchmark("nonexistent"));
  EXPECT_THROW(circuits::make_benchmark("nonexistent"), std::invalid_argument);
}

TEST(Generators, Deterministic) {
  for (const char* name : {"cavlc", "mem_ctrl", "c2670"}) {
    const aig::Aig a = circuits::make_benchmark(name);
    const aig::Aig b = circuits::make_benchmark(name);
    clo::Rng rng(12);
    EXPECT_TRUE(aig::cec(a, b, rng).equivalent) << name;
    EXPECT_EQ(a.num_ands(), b.num_ands()) << name;
  }
}

TEST(Generators, FullWidthVariantsScaleTheArithmeticSuite) {
  // The paper-scale --full configuration widens the EPFL arithmetic
  // benchmarks; everything else is identical at either setting.
  for (const char* name : {"adder", "bar", "div", "hyp", "max",
                           "multiplier", "sqrt", "square"}) {
    const aig::Aig small = circuits::make_benchmark(name);
    const aig::Aig full = circuits::make_benchmark(name, /*full_width=*/true);
    EXPECT_NO_THROW(full.check()) << name;
    EXPECT_GT(full.num_ands(), 2 * small.num_ands()) << name;
    EXPECT_GT(full.num_pis(), small.num_pis()) << name;
    // Determinism holds at full width too.
    const aig::Aig again =
        circuits::make_benchmark(name, /*full_width=*/true);
    EXPECT_EQ(full.num_ands(), again.num_ands()) << name;
  }
  for (const char* name : {"ctrl", "log2", "sin", "c880"}) {
    const aig::Aig small = circuits::make_benchmark(name);
    const aig::Aig full = circuits::make_benchmark(name, /*full_width=*/true);
    EXPECT_EQ(small.num_ands(), full.num_ands()) << name;
  }
}

TEST(Generators, AllWellFormedAndNontrivial) {
  for (const auto& info : circuits::benchmark_catalog()) {
    const aig::Aig g = circuits::make_benchmark(info.name);
    EXPECT_NO_THROW(g.check()) << info.name;
    EXPECT_GT(g.num_pis(), 0u) << info.name;
    EXPECT_GT(g.num_pos(), 0u) << info.name;
    EXPECT_GE(g.num_ands(), 6u) << info.name;
    EXPECT_GT(g.depth(), 1) << info.name;
  }
}

TEST(Generators, C17IsExactClassicNetlist) {
  const aig::Aig g = circuits::make_benchmark("c17");
  EXPECT_EQ(g.num_pis(), 5u);
  EXPECT_EQ(g.num_pos(), 2u);
  EXPECT_EQ(g.num_ands(), 6u);
  EXPECT_EQ(g.depth(), 3);
}

TEST(Generators, AdderIsAnAdder) {
  const aig::Aig g = circuits::make_benchmark("adder");
  clo::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t x = rng.next_u64() & 0xffffffffULL;
    const std::uint64_t y = rng.next_u64() & 0xffffffffULL;
    std::vector<bool> in;
    for (int i = 0; i < 32; ++i) in.push_back((x >> i) & 1);
    for (int i = 0; i < 32; ++i) in.push_back((y >> i) & 1);
    const auto out = aig::simulate(g, in);
    const std::uint64_t sum = x + y;
    for (int i = 0; i < 33; ++i) {
      EXPECT_EQ(out[i], static_cast<bool>((sum >> i) & 1)) << "bit " << i;
    }
  }
}

TEST(Generators, VoterIsMajority) {
  const aig::Aig g = circuits::make_benchmark("voter");
  clo::Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> in(31);
    int ones = 0;
    for (auto&& b : in) {
      const bool v = rng.next_bool();
      b = v;
      ones += v ? 1 : 0;
    }
    EXPECT_EQ(aig::simulate(g, in)[0], ones > 15);
  }
}

TEST(Generators, MultiplierIsAMultiplier) {
  const aig::Aig g = circuits::make_benchmark("multiplier");
  clo::Rng rng(15);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t x = rng.next_below(256), y = rng.next_below(256);
    const auto out = run(g, x, y, 8, 8);
    EXPECT_EQ(bus_value(out, 0, 16), x * y);
  }
}

TEST(Generators, SizesAreInExpectedBands) {
  // hyp is the largest EPFL design in the paper; keep that ordering here.
  std::size_t hyp = circuits::make_benchmark("hyp").num_ands();
  for (const char* name : {"ctrl", "dec", "router", "int2float"}) {
    EXPECT_GT(hyp, circuits::make_benchmark(name).num_ands() * 3u) << name;
  }
}

}  // namespace
