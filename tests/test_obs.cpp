// clo::obs acceptance tests: registry semantics (counters, gauges,
// histograms, percentile math), exact merging of concurrent per-thread
// shards, JSON build/parse round-trips, Chrome trace-event output with
// balanced begin/end pairs, and an end-to-end pipeline smoke run whose
// --trace/--report artifacts must parse and contain every phase bucket.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "clo/shell/shell.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

/// Every test runs with a clean, enabled obs layer and leaves the global
/// default (disabled, empty) behind.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::reset_trace();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_trace();
    obs::Registry::instance().reset();
  }
};

TEST_F(ObsTest, CountersAccumulateAndReset) {
  auto& reg = obs::Registry::instance();
  reg.add_counter("a");
  reg.add_counter("a", 4);
  reg.add_counter("b", 2);
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 5u);
  EXPECT_EQ(snap.counters.at("b"), 2u);
  reg.reset();
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters.count("a"), 0u);
}

TEST_F(ObsTest, GaugesAreLastWriteWins) {
  auto& reg = obs::Registry::instance();
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", -2.25);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g"), -2.25);
}

TEST_F(ObsTest, HistogramSummaryStatsAreExact) {
  auto& reg = obs::Registry::instance();
  reg.define_histogram("h", {1.0, 2.0, 3.0});
  reg.observe("h", 0.5);
  reg.observe("h", 2.5);
  reg.observe("h", 9.0);  // overflow bucket
  const auto h = reg.snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 12.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  ASSERT_EQ(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
}

TEST_F(ObsTest, PercentileInterpolatesWithinBuckets) {
  auto& reg = obs::Registry::instance();
  // Unit-width buckets with one sample centered in each: percentiles are
  // exactly linear in p.
  reg.define_histogram("p", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (int i = 0; i < 10; ++i) {
    reg.observe("p", i + 0.5);
  }
  const auto h = reg.snapshot().histograms.at("p");
  EXPECT_NEAR(h.percentile(50.0), 5.0, 1e-12);
  EXPECT_NEAR(h.percentile(90.0), 9.0, 1e-12);
  // The last occupied bucket interpolates toward the observed max (9.5),
  // not its nominal upper bound (10): p99 = 9 + 0.9 * (9.5 - 9) = 9.45,
  // which also keeps every percentile <= max. (The exact sample p99 under
  // linear interpolation is 9.455 — the old unclamped answer was 9.9.)
  EXPECT_NEAR(h.percentile(99.0), 9.45, 1e-12);
  // Ends clamp to the exact observed extremes.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 9.5);
}

TEST_F(ObsTest, PercentileSingleOccupiedBucketStaysWithinSamples) {
  auto& reg = obs::Registry::instance();
  // All samples land in one interior bucket (4, 5]. The interpolation
  // edges must tighten to the observed extremes, not the nominal bucket
  // edges — the old code reported values below min / above max here.
  reg.define_histogram("s", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (double v : {4.2, 4.4, 4.6}) reg.observe("s", v);
  const auto h = reg.snapshot().histograms.at("s");
  double prev = h.min;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double q = h.percentile(p);
    EXPECT_GE(q, 4.2) << "p=" << p;
    EXPECT_LE(q, 4.6) << "p=" << p;
    EXPECT_GE(q, prev) << "p=" << p;  // monotone in p
    prev = q;
  }
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 4.2);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 4.6);
}

TEST_F(ObsTest, PercentileBoundaryRanks) {
  auto& reg = obs::Registry::instance();
  reg.define_histogram("b", {1, 2, 3, 4});
  for (double v : {0.5, 1.5, 2.5, 3.5}) reg.observe("b", v);
  const auto h = reg.snapshot().histograms.at("b");
  // Rank exactly on a bucket boundary interpolates to that bucket's upper
  // edge, and every answer stays inside [min, max].
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(75.0), 3.0);
  for (double p = 0.0; p <= 100.0; p += 1.0) {
    EXPECT_GE(h.percentile(p), 0.5) << "p=" << p;
    EXPECT_LE(h.percentile(p), 3.5) << "p=" << p;
  }
}

TEST_F(ObsTest, PercentilePropertyWithinBucketWidthOfExact) {
  // Property: against random samples in unit-width buckets, the
  // interpolated percentile sits within one bucket width of the exact
  // sample percentile, is monotone in p, and never leaves [min, max].
  auto& reg = obs::Registry::instance();
  Rng rng(123);
  const std::vector<double> bounds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (int trial = 0; trial < 20; ++trial) {
    const std::string name = "prop" + std::to_string(trial);
    reg.define_histogram(name, bounds);
    const int n = 1 + static_cast<int>(rng.next_below(200));
    std::vector<double> samples(n);
    for (auto& s : samples) s = rng.next_double() * 12.0;  // overflow too
    for (double s : samples) reg.observe(name, s);
    std::sort(samples.begin(), samples.end());

    const auto h = reg.snapshot().histograms.at(name);
    double prev = samples.front();
    for (double p = 0.0; p <= 100.0; p += 2.5) {
      const double q = h.percentile(p);
      EXPECT_GE(q, samples.front()) << "trial " << trial << " p=" << p;
      EXPECT_LE(q, samples.back()) << "trial " << trial << " p=" << p;
      EXPECT_GE(q, prev - 1e-12) << "trial " << trial << " p=" << p;
      prev = q;
      // The sample at the interpolated rank shares the answer's bucket
      // (the overflow bucket spans [10, max], whose width max-10 is also
      // bounded by the widest unit bucket only when samples cap at 12 —
      // use 2.0 to cover it).
      const double rank = p / 100.0 * n;
      std::size_t idx = 0;
      if (rank > 0.0) {
        idx = std::min<std::size_t>(
            n - 1, static_cast<std::size_t>(std::ceil(rank) - 1.0));
      }
      EXPECT_NEAR(q, samples[idx], 2.0)
          << "trial " << trial << " p=" << p << " n=" << n;
    }
  }
}

TEST_F(ObsTest, JsonNumbersRoundTripBitExactly) {
  // Doubles must survive dump -> parse without precision loss (the old
  // "%.6g"-style formatting truncated report numbers).
  const double values[] = {
      0.1,
      1.0 / 3.0,
      1e-300,
      2.5e300,
      3.141592653589793,
      123456789.123456789,
      -7.000000000000001,
  };
  obs::Json arr = obs::Json::array();
  for (double v : values) arr.push_back(obs::Json(v));
  for (int indent : {0, 2}) {
    const auto parsed = obs::Json::parse(arr.dump(indent));
    ASSERT_EQ(parsed.size(), std::size(values));
    for (std::size_t i = 0; i < std::size(values); ++i) {
      EXPECT_EQ(parsed.at(i).as_double(), values[i]) << "indent " << indent;
    }
  }
}

TEST_F(ObsTest, ConcurrentCountsMergeExactly) {
  auto& reg = obs::Registry::instance();
  util::ThreadPool pool(8);
  constexpr int kTasks = 64;
  constexpr int kPerTask = 250;
  util::parallel_for(&pool, kTasks, [&](std::size_t) {
    for (int i = 0; i < kPerTask; ++i) {
      reg.add_counter("concurrent");
      reg.observe("obs", 1.0);
    }
  });
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("concurrent"),
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_EQ(snap.histograms.at("obs").count,
            static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_DOUBLE_EQ(snap.histograms.at("obs").sum, kTasks * kPerTask * 1.0);
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  obs::set_enabled(false);
  CLO_OBS_COUNT("off", 1);
  CLO_OBS_OBSERVE("off", 1.0);
  {
    CLO_TRACE_SPAN("off");
  }
  EXPECT_EQ(obs::Registry::instance().snapshot().counters.count("off"), 0u);
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ObsTest, JsonRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["name"] = obs::Json(std::string("value \"quoted\"\n"));
  doc["count"] = obs::Json(std::uint64_t{1234567});
  doc["pi"] = obs::Json(3.25);
  doc["flag"] = obs::Json(true);
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(1));
  arr.push_back(obs::Json(-2.5));
  doc["items"] = arr;

  const auto parsed = obs::Json::parse(doc.dump(2));
  EXPECT_EQ(parsed.find("name")->as_string(), "value \"quoted\"\n");
  EXPECT_DOUBLE_EQ(parsed.find("count")->as_double(), 1234567.0);
  EXPECT_DOUBLE_EQ(parsed.find("pi")->as_double(), 3.25);
  EXPECT_TRUE(parsed.find("flag")->as_bool());
  ASSERT_EQ(parsed.find("items")->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.find("items")->at(1).as_double(), -2.5);
  EXPECT_EQ(parsed.find("missing"), nullptr);
  EXPECT_THROW(obs::Json::parse("{\"unterminated\": "), std::runtime_error);
}

TEST_F(ObsTest, TraceEventsBalanceAndParse) {
  {
    CLO_TRACE_SPAN("outer");
    CLO_TRACE_SPAN("inner");
  }
  util::ThreadPool pool(4);
  util::parallel_for(&pool, 16, [&](std::size_t) {
    CLO_TRACE_SPAN("worker");
  });
#if defined(CLO_OBS_DISABLE)
  // Span sites are compiled out: the trace document is valid but empty.
  constexpr std::size_t kExpectedEvents = 0;
#else
  constexpr std::size_t kExpectedEvents = 2u * (2 + 16);
#endif
  EXPECT_EQ(obs::trace_event_count(), kExpectedEvents);

  std::ostringstream os;
  obs::write_trace(os);
  const auto doc = obs::Json::parse(os.str());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), kExpectedEvents);
  int balance = 0;
  std::uint64_t begins = 0, ends = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const auto& e = events->at(i);
    const std::string ph = e.find("ph")->as_string();
    ASSERT_TRUE(ph == "B" || ph == "E");
    balance += ph == "B" ? 1 : -1;
    (ph == "B" ? begins : ends) += 1;
    EXPECT_FALSE(e.find("name")->as_string().empty());
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_GE(e.find("ts")->as_double(), 0.0);
  }
  EXPECT_EQ(balance, 0);
  EXPECT_EQ(begins, ends);
}

TEST_F(ObsTest, PipelineSmokeWritesTraceAndReport) {
  const std::string trace_path = "obs_smoke_trace.json";
  const std::string report_path = "obs_smoke_report.json";
  {
    shell::Shell sh;
    sh.set_threads(2);
    sh.set_trace_path(trace_path);
    sh.set_report_path(report_path);
    std::ostringstream out;
    sh.execute("gen c17", out);
    sh.execute("tune 16 2", out);
    ASSERT_FALSE(sh.last_failed()) << out.str();
  }  // ~Shell writes the trace

  // Report: parses, and carries every phase bucket plus the evaluator,
  // loss-series, and per-restart payloads the ISSUE promises.
  std::ifstream rf(report_path);
  ASSERT_TRUE(static_cast<bool>(rf));
  std::stringstream rbuf;
  rbuf << rf.rdbuf();
  const auto report = obs::Json::parse(rbuf.str());
  EXPECT_EQ(report.find("schema")->as_string(), "clo.report.v1");
  const auto* phases = report.find("phase_seconds");
  ASSERT_NE(phases, nullptr);
  for (const char* phase : {"dataset", "surrogate_train", "diffusion_train",
                            "optimize", "validate"}) {
    ASSERT_NE(phases->find(phase), nullptr) << phase;
    EXPECT_GE(phases->find(phase)->as_double(), 0.0);
  }
  const auto* evaluator = report.find("evaluator");
  ASSERT_NE(evaluator, nullptr);
  EXPECT_GT(evaluator->find("queries")->as_double(), 0.0);
  EXPECT_GE(evaluator->find("hit_rate")->as_double(), 0.0);
  EXPECT_LE(evaluator->find("hit_rate")->as_double(), 1.0);
  ASSERT_NE(report.find("surrogate"), nullptr);
  EXPECT_GT(report.find("surrogate")->find("loss_series")->size(), 0u);
  ASSERT_NE(report.find("diffusion"), nullptr);
  EXPECT_GT(report.find("diffusion")->find("loss_series")->size(), 0u);
  const auto* restarts = report.find("restarts");
  ASSERT_NE(restarts, nullptr);
  ASSERT_EQ(restarts->size(), 2u);
  for (std::size_t i = 0; i < restarts->size(); ++i) {
    EXPECT_NE(restarts->at(i).find("discrepancy"), nullptr);
    EXPECT_GT(restarts->at(i).find("area_um2")->as_double(), 0.0);
  }
  ASSERT_NE(report.find("metrics"), nullptr);

  // Trace: parses, is non-empty, balanced, and covers the pipeline phases.
  std::ifstream tf(trace_path);
  ASSERT_TRUE(static_cast<bool>(tf));
  std::stringstream tbuf;
  tbuf << tf.rdbuf();
  const auto trace = obs::Json::parse(tbuf.str());
  const auto* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int balance = 0;
  bool saw_label[2] = {false, false};
  for (std::size_t i = 0; i < events->size(); ++i) {
    const std::string ph = events->at(i).find("ph")->as_string();
    balance += ph == "B" ? 1 : -1;
    const std::string name = events->at(i).find("name")->as_string();
    if (name == "pipeline.optimize") saw_label[0] = true;
    if (name == "dataset.label") saw_label[1] = true;
  }
  EXPECT_EQ(balance, 0);
#if !defined(CLO_OBS_DISABLE)
  // With instrumentation compiled in, the trace covers the pipeline phases.
  ASSERT_GT(events->size(), 0u);
  EXPECT_TRUE(saw_label[0]);
  EXPECT_TRUE(saw_label[1]);
#else
  (void)saw_label;
#endif

  std::remove(trace_path.c_str());
  std::remove(report_path.c_str());
}

}  // namespace
