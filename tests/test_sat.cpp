// clo::sat unit tests: CDCL solver on hand-built CNFs (SAT with model
// check, pigeonhole UNSAT cores, assumptions, conflict budgets), Tseitin
// encoding consistency against exhaustive simulation, miter-based CEC on
// known-equivalent pairs (every transform) and known-inequivalent mutants
// (confirmed counterexamples), and the fuzz harness — including a
// deliberately broken rewrite that must be caught and shrunk to a tiny
// reproducer.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/opt/transform.hpp"
#include "clo/sat/cec.hpp"
#include "clo/sat/cnf.hpp"
#include "clo/sat/fuzz.hpp"
#include "clo/sat/solver.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
using sat::CecVerdict;
using sat::Verdict;

// ---- Solver on hand-built CNFs --------------------------------------------

TEST(Solver, SatisfiableWithForcedModel) {
  // (a | b) & (-a | b) & (a | -b) forces a = b = true.
  sat::Cnf cnf;
  const int a = cnf.new_var();
  const int b = cnf.new_var();
  cnf.add_binary(a, b);
  cnf.add_binary(-a, b);
  cnf.add_binary(a, -b);
  sat::Solver solver(cnf);
  ASSERT_EQ(solver.solve(), Verdict::kSat);
  EXPECT_TRUE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
  EXPECT_FALSE(solver.model_value(-a));
}

TEST(Solver, ConflictingUnitsAreUnsat) {
  sat::Cnf cnf;
  const int x = cnf.new_var();
  cnf.add_unit(x);
  cnf.add_unit(-x);
  sat::Solver solver(cnf);
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
}

/// n+1 pigeons into n holes: the classic small-but-nontrivial UNSAT core
/// (resolution proofs are exponential, so it genuinely exercises conflict
/// analysis and learning rather than unit propagation).
sat::Cnf pigeonhole(int holes) {
  sat::Cnf cnf;
  const int pigeons = holes + 1;
  std::vector<std::vector<int>> p(pigeons, std::vector<int>(holes));
  for (auto& row : p) {
    for (int& v : row) v = cnf.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<sat::Lit> clause(p[i].begin(), p[i].end());
    cnf.add_clause(clause);  // every pigeon sits somewhere
  }
  for (int j = 0; j < holes; ++j) {
    for (int i = 0; i < pigeons; ++i) {
      for (int k = i + 1; k < pigeons; ++k) {
        cnf.add_binary(-p[i][j], -p[k][j]);  // no hole holds two
      }
    }
  }
  return cnf;
}

TEST(Solver, PigeonholeThreeIsUnsat) {
  sat::Solver solver(pigeonhole(3));
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
  EXPECT_GT(solver.stats().conflicts, 0u);
}

TEST(Solver, PigeonholeFiveIsUnsat) {
  sat::Solver solver(pigeonhole(5));
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
  EXPECT_GT(solver.stats().learned, 0u);
}

TEST(Solver, ConflictBudgetYieldsUnknownThenFinishes) {
  sat::Solver solver(pigeonhole(5));
  EXPECT_EQ(solver.solve(/*conflict_budget=*/1), Verdict::kUnknown);
  // The solver stays usable: an unlimited re-solve completes the proof.
  EXPECT_EQ(solver.solve(), Verdict::kUnsat);
}

TEST(Solver, RandomPlantedInstancesSatisfyEveryClause) {
  clo::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const int num_vars = 20 + static_cast<int>(rng.next_below(30));
    // Plant a solution, then emit clauses consistent with it plus noise.
    std::vector<bool> planted(num_vars + 1);
    for (int v = 1; v <= num_vars; ++v) planted[v] = rng.next_bool();
    sat::Cnf cnf;
    cnf.num_vars = num_vars;
    for (int c = 0; c < num_vars * 4; ++c) {
      std::vector<sat::Lit> clause;
      bool satisfied = false;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(rng.next_below(num_vars));
        const bool sign = rng.next_bool();
        clause.push_back(sign ? -v : v);
        satisfied = satisfied || (planted[v] != sign);
      }
      // Force at least one literal to agree with the planted model.
      if (!satisfied) {
        const int v = sat::lit_var(clause[0]);
        clause[0] = planted[v] ? v : -v;
      }
      cnf.add_clause(clause);
    }
    sat::Solver solver(cnf);
    ASSERT_EQ(solver.solve(), Verdict::kSat);
    for (const auto& clause : cnf.clauses) {
      bool sat_clause = false;
      for (sat::Lit l : clause) {
        sat_clause = sat_clause || solver.model_value(l);
      }
      EXPECT_TRUE(sat_clause) << "model violates a clause";
    }
  }
}

TEST(Solver, AssumptionsAreTemporary) {
  sat::Cnf cnf;
  const int a = cnf.new_var();
  const int b = cnf.new_var();
  cnf.add_binary(a, b);
  sat::Solver solver(cnf);
  ASSERT_EQ(solver.solve(std::vector<sat::Lit>{-a}), Verdict::kSat);
  EXPECT_FALSE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
  EXPECT_EQ(solver.solve(std::vector<sat::Lit>{-a, -b}), Verdict::kUnsat);
  // Assumptions do not poison later calls.
  EXPECT_EQ(solver.solve(), Verdict::kSat);
  EXPECT_EQ(solver.solve(std::vector<sat::Lit>{a, b}), Verdict::kSat);
}

// ---- Tseitin encoding ------------------------------------------------------

TEST(Tseitin, EncodingMatchesExhaustiveSimulation) {
  // A mixed structure: xor, mux, majority over 4 inputs.
  aig::Aig g;
  const aig::Lit a = g.add_pi("a");
  const aig::Lit b = g.add_pi("b");
  const aig::Lit c = g.add_pi("c");
  const aig::Lit d = g.add_pi("d");
  g.add_po(g.xor_of(g.and_of(a, b), g.or_of(c, d)));
  g.add_po(g.mux_of(a, g.maj_of(b, c, d), g.xnor_of(b, d)));

  sat::Cnf cnf;
  const sat::TseitinMap map = sat::tseitin_encode(g, &cnf);
  sat::Solver solver(cnf);
  for (int input = 0; input < 16; ++input) {
    std::vector<bool> pattern(4);
    std::vector<sat::Lit> assumptions;
    for (int k = 0; k < 4; ++k) {
      pattern[k] = ((input >> k) & 1) != 0;
      assumptions.push_back(pattern[k] ? map.pi_vars[k] : -map.pi_vars[k]);
    }
    ASSERT_EQ(solver.solve(assumptions), Verdict::kSat);
    const auto outputs = aig::simulate(g, pattern);
    for (std::size_t i = 0; i < g.num_pos(); ++i) {
      EXPECT_EQ(solver.model_value(map.cnf_lit(g.po(i))), outputs[i])
          << "input " << input << " po " << i;
    }
  }
}

TEST(Tseitin, ConstantPoIsPinnedFalse) {
  aig::Aig g;
  const aig::Lit a = g.add_pi("a");
  g.add_po(g.and_of(a, aig::lit_not(a)));  // folds to const0
  g.add_po(aig::kLitTrue);
  sat::Cnf cnf;
  const sat::TseitinMap map = sat::tseitin_encode(g, &cnf);
  sat::Solver solver(cnf);
  ASSERT_EQ(solver.solve(), Verdict::kSat);
  EXPECT_FALSE(solver.model_value(map.cnf_lit(g.po(0))));
  EXPECT_TRUE(solver.model_value(map.cnf_lit(g.po(1))));
}

// ---- Equivalence checking --------------------------------------------------

TEST(Cec, IdenticalCircuitsAreProvenEquivalent) {
  const aig::Aig g = circuits::make_benchmark("c17");
  const auto outcome = sat::check_equivalence(g, g);
  EXPECT_EQ(outcome.verdict, CecVerdict::kEquivalent);
  EXPECT_EQ(outcome.method, "sat");  // sim cannot prove, only refute
}

TEST(Cec, EveryTransformPreservesEquivalence) {
  for (opt::Transform t : opt::all_transforms()) {
    const aig::Aig original = circuits::make_benchmark("c17");
    aig::Aig optimized = original;
    opt::apply_transform(optimized, t);
    const auto outcome = sat::check_equivalence(original, optimized);
    EXPECT_EQ(outcome.verdict, CecVerdict::kEquivalent)
        << "transform " << opt::transform_name(t);
  }
}

TEST(Cec, EveryTransformPreservesEquivalenceOnRandomAigs) {
  clo::Rng rng(21);
  for (opt::Transform t : opt::all_transforms()) {
    aig::Aig original = sat::random_aig(rng, 8, 60, 3);
    aig::Aig optimized = original;
    opt::apply_transform(optimized, t);
    const auto outcome = sat::check_equivalence(original, optimized);
    EXPECT_EQ(outcome.verdict, CecVerdict::kEquivalent)
        << "transform " << opt::transform_name(t);
  }
}

TEST(Cec, FullSequenceOnC432IsProvenEquivalent) {
  const aig::Aig original = circuits::make_benchmark("c432");
  aig::Aig optimized = original;
  opt::run_sequence(optimized, opt::parse_sequence("rw;b;rf;rs;rwz"));
  const auto outcome = sat::check_equivalence(original, optimized);
  EXPECT_EQ(outcome.verdict, CecVerdict::kEquivalent);
  EXPECT_EQ(outcome.method, "sat");
}

TEST(Cec, PolarityFlipYieldsConfirmedCounterexample) {
  const aig::Aig original = circuits::make_benchmark("c17");
  aig::Aig mutant = original;
  mutant.set_po(1, aig::lit_not(mutant.po(1)));
  const auto outcome = sat::check_equivalence(original, mutant);
  ASSERT_EQ(outcome.verdict, CecVerdict::kNotEquivalent);
  EXPECT_EQ(outcome.failing_po, 1u);
  ASSERT_EQ(outcome.counterexample.size(), original.num_pis());
  // check_equivalence already replays internally and throws on mismatch;
  // confirm once more from the outside.
  const auto oa = aig::simulate(original, outcome.counterexample);
  const auto ob = aig::simulate(mutant, outcome.counterexample);
  EXPECT_NE(oa[outcome.failing_po], ob[outcome.failing_po]);
}

TEST(Cec, SingleGateMutationIsCaughtBySatStage) {
  // f = (a & b) & c vs mutant (a & b) & !c — and force the SAT stage by
  // disabling the simulation pre-filter.
  aig::Aig f;
  {
    const aig::Lit a = f.add_pi("a");
    const aig::Lit b = f.add_pi("b");
    const aig::Lit c = f.add_pi("c");
    f.add_po(f.and_of(f.and_of(a, b), c));
  }
  aig::Aig m;
  {
    const aig::Lit a = m.add_pi("a");
    const aig::Lit b = m.add_pi("b");
    const aig::Lit c = m.add_pi("c");
    m.add_po(m.and_of(m.and_of(a, b), aig::lit_not(c)));
  }
  sat::CecOptions options;
  options.sim_rounds = 0;
  const auto outcome = sat::check_equivalence(f, m, options);
  ASSERT_EQ(outcome.verdict, CecVerdict::kNotEquivalent);
  EXPECT_EQ(outcome.method, "sat");
  // The counterexample must set a = b = 1 (c distinguishes).
  ASSERT_EQ(outcome.counterexample.size(), 3u);
  EXPECT_TRUE(outcome.counterexample[0]);
  EXPECT_TRUE(outcome.counterexample[1]);
}

TEST(Cec, InterfaceMismatchIsNotEquivalent) {
  aig::Aig a;
  a.add_po(a.add_pi("x"));
  aig::Aig b;
  const aig::Lit x = b.add_pi("x");
  b.add_po(x);
  b.add_po(aig::lit_not(x));
  const auto outcome = sat::check_equivalence(a, b);
  EXPECT_EQ(outcome.verdict, CecVerdict::kNotEquivalent);
  EXPECT_EQ(outcome.method, "interface");
}

TEST(Cec, MiterOfInequivalentPairIsSat) {
  aig::Aig a;
  const aig::Lit x = a.add_pi("x");
  const aig::Lit y = a.add_pi("y");
  a.add_po(a.and_of(x, y));
  aig::Aig b;
  const aig::Lit u = b.add_pi("x");
  const aig::Lit v = b.add_pi("y");
  b.add_po(b.or_of(u, v));
  std::vector<int> pi_vars;
  const sat::Cnf miter = sat::build_miter(a, b, &pi_vars);
  ASSERT_EQ(pi_vars.size(), 2u);
  sat::Solver solver(miter);
  EXPECT_EQ(solver.solve(), Verdict::kSat);
  // AND and OR differ exactly when x != y.
  EXPECT_NE(solver.model_value(pi_vars[0]), solver.model_value(pi_vars[1]));
}

// ---- Fuzzing ---------------------------------------------------------------

TEST(Fuzz, RandomAigIsWellFormed) {
  clo::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const aig::Aig g = sat::random_aig(rng, 6, 40, 3);
    EXPECT_EQ(g.num_pis(), 6u);
    EXPECT_EQ(g.num_pos(), 3u);
    EXPECT_LE(g.num_ands(), 40u);
    EXPECT_NO_THROW(g.check());
  }
}

TEST(Fuzz, CleanSeedsPass) {
  // The real rewrite engine over a small fixed-seed corpus: every seed
  // must come back clean. (CI runs the full 200-seed corpus.)
  sat::FuzzOptions options;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto failure = sat::fuzz_one(seed, options);
    ASSERT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure->kind << " — "
        << failure->detail << " (sequence "
        << opt::sequence_to_string(failure->sequence) << ")";
  }
}

TEST(Fuzz, BrokenRewriteIsCaughtAndShrunk) {
  // A deliberately broken "rewrite": runs the real sequence, then flips
  // the first PO's polarity whenever any AND is left. The fuzzer must
  // catch it with a confirmed counterexample and shrink the case to a
  // trivial reproducer.
  sat::SequenceRunner broken = [](aig::Aig& g, const opt::Sequence& seq) {
    opt::run_sequence(g, seq);
    if (g.num_ands() >= 1) g.set_po(0, aig::lit_not(g.po(0)));
  };
  sat::FuzzOptions options;
  const auto failure = sat::fuzz_one(0, options, broken);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, "not_equivalent");
  // Acceptance gate: the reproducer is tiny.
  EXPECT_LE(failure->reproducer.num_ands(), 30u);
  EXPECT_LE(failure->sequence.size(), 2u);
  // The shrunk case still fails, with a counterexample the simulator
  // confirms end to end.
  aig::Aig optimized = failure->reproducer;
  broken(optimized, failure->sequence);
  ASSERT_EQ(failure->counterexample.size(), failure->reproducer.num_pis());
  const auto oa = aig::simulate(failure->reproducer, failure->counterexample);
  const auto ob = aig::simulate(optimized, failure->counterexample);
  EXPECT_NE(oa, ob);
}

TEST(Fuzz, ThrowingPassIsReportedAsException) {
  sat::SequenceRunner crashing = [](aig::Aig&, const opt::Sequence&) {
    throw std::runtime_error("boom: synthetic pass failure");
  };
  sat::FuzzOptions options;
  const auto failure = sat::fuzz_one(1, options, crashing);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, "exception");
  EXPECT_NE(failure->detail.find("boom"), std::string::npos);
  // ddmin removes every step: the crash needs no sequence at all.
  EXPECT_TRUE(failure->sequence.empty());
}

TEST(Fuzz, DroppedPoIsCaughtAsInterfaceChange) {
  sat::SequenceRunner dropper = [](aig::Aig& g, const opt::Sequence& seq) {
    opt::run_sequence(g, seq);
    if (g.num_pos() > 1) {
      // Rebuild without the last PO by abusing the public API: there is
      // no PO removal, so emulate a pass that lost an output by pointing
      // it at constant 0 AND at PO 0's function — detectable either way.
      g.set_po(g.num_pos() - 1, aig::kLitFalse);
    }
  };
  sat::FuzzOptions options;
  options.max_pos = 4;
  bool caught = false;
  for (std::uint64_t seed = 0; seed < 10 && !caught; ++seed) {
    const auto failure = sat::fuzz_one(seed, options, dropper);
    if (failure.has_value()) {
      caught = true;
      EXPECT_EQ(failure->kind, "not_equivalent");
    }
  }
  EXPECT_TRUE(caught);
}

}  // namespace
