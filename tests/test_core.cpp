#include <gtest/gtest.h>

#include <cmath>

#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/core/trainer.hpp"
#include "clo/core/tsne.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;

TEST(QorEvaluator, CachesSequences) {
  core::QorEvaluator ev(circuits::make_benchmark("ctrl"));
  const auto seq = opt::parse_sequence("b;rw");
  const auto q1 = ev.evaluate(seq);
  const auto runs = ev.snapshot().unique_runs;
  const auto q2 = ev.evaluate(seq);
  const auto stats = ev.snapshot();
  EXPECT_EQ(stats.unique_runs, runs);  // cache hit
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(q1.area_um2, q2.area_um2);
  EXPECT_DOUBLE_EQ(q1.delay_ps, q2.delay_ps);
}

TEST(QorEvaluator, OriginalIsEmptySequence) {
  core::QorEvaluator ev(circuits::make_benchmark("c17"));
  const auto q = ev.original();
  // Near the paper's Table II c17 row (3.73 um^2 / 18.52 ps); our mapper
  // may pick a different equal-delay cover (see test_techmap).
  EXPECT_NEAR(q.area_um2, 3.73, 1.1);
  EXPECT_NEAR(q.delay_ps, 18.52, 2.0);
}

TEST(QorEvaluator, GoodSequencesBeatOriginal) {
  core::QorEvaluator ev(circuits::make_benchmark("sqrt"));
  const auto orig = ev.original();
  const auto opt_q =
      ev.evaluate(opt::parse_sequence("b;rw;rf;b;rw;rwz;b;rfz;rwz;b"));
  EXPECT_LT(opt_q.area_um2, orig.area_um2);
}

TEST(QorEvaluator, TracksSynthesisTime) {
  core::QorEvaluator ev(circuits::make_benchmark("router"));
  EXPECT_DOUBLE_EQ(ev.snapshot().synth_seconds, 0.0);
  ev.evaluate(opt::parse_sequence("rw;rf;rs"));
  EXPECT_GT(ev.snapshot().synth_seconds, 0.0);
  ev.reset_stats();
  const auto stats = ev.snapshot();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.unique_runs, 0u);
  EXPECT_DOUBLE_EQ(stats.synth_seconds, 0.0);
  // The memo cache survives a stats reset: re-evaluating counts as a hit.
  ev.evaluate(opt::parse_sequence("rw;rf;rs"));
  EXPECT_EQ(ev.snapshot().cache_hits, 1u);
}

TEST(Dataset, GenerationAndNormalization) {
  core::QorEvaluator ev(circuits::make_benchmark("ctrl"));
  clo::Rng rng(1);
  const auto ds = core::generate_dataset(ev, 30, 10, rng);
  EXPECT_EQ(ds.size(), 30u);
  // Normalized labels have ~zero mean and ~unit variance.
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) mean += ds.norm_area(i);
  mean /= ds.size();
  for (std::size_t i = 0; i < ds.size(); ++i) {
    var += (ds.norm_area(i) - mean) * (ds.norm_area(i) - mean);
  }
  var /= ds.size();
  EXPECT_NEAR(mean, 0.0, 1e-3);
  EXPECT_NEAR(var, 1.0, 0.05);
  // Round trip through denormalization.
  EXPECT_NEAR(ds.denorm_area(ds.norm_area(3)), ds.qor[3].area_um2, 1e-6);
  EXPECT_NEAR(ds.denorm_delay(ds.norm_delay(3)), ds.qor[3].delay_ps, 1e-6);
}

TEST(Dataset, QorVariesAcrossSequences) {
  // The premise of surrogate learning: labels are not constant.
  core::QorEvaluator ev(circuits::make_benchmark("cavlc"));
  clo::Rng rng(2);
  const auto ds = core::generate_dataset(ev, 20, 10, rng);
  EXPECT_GT(ds.area_std, 1e-6);
}

TEST(Trainer, SurrogateLearnsToRank) {
  core::QorEvaluator ev(circuits::make_benchmark("cavlc"));
  clo::Rng rng(3);
  const auto ds = core::generate_dataset(ev, 120, 8, rng);
  models::TransformEmbedding emb(8, rng);
  models::SurrogateConfig scfg;
  scfg.seq_len = 8;
  auto model = models::make_surrogate("cnn", ev.circuit(), scfg, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 30;
  const auto report = core::train_surrogate(*model, emb, ds, tcfg, rng);
  EXPECT_LT(report.train_mse, 1.0);        // below predict-the-mean baseline
  EXPECT_GT(report.spearman_area, 0.25);   // ranks hold on the holdout
  EXPECT_GT(report.spearman_delay, 0.25);
}

TEST(Optimizer, ObjectiveAndGradFiniteAndClipped) {
  clo::Rng rng(4);
  const aig::Aig g = circuits::make_benchmark("ctrl");
  models::SurrogateConfig scfg;
  auto surrogate = models::make_surrogate("cnn", g, scfg, rng);
  models::DiffusionConfig dcfg;
  models::DiffusionModel diffusion(dcfg, rng);
  models::TransformEmbedding emb(8, rng);
  core::OptimizeParams params;
  params.grad_clip = 0.5;
  core::ContinuousOptimizer opt(*surrogate, diffusion, emb, params);
  std::vector<float> x(20 * 8);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  std::vector<float> grad;
  const double obj = opt.objective_and_grad(x, &grad);
  EXPECT_TRUE(std::isfinite(obj));
  ASSERT_EQ(grad.size(), x.size());
  double norm = 0.0;
  for (float gv : grad) norm += static_cast<double>(gv) * gv;
  EXPECT_LE(std::sqrt(norm), 0.5 + 1e-4);
}

TEST(Optimizer, AblationModeRunsWithoutDiffusionQuality) {
  // Eq. 14 runs and produces much larger discrepancy than a trained
  // diffusion run would; here we only check the mechanics and the trace.
  clo::Rng rng(5);
  const aig::Aig g = circuits::make_benchmark("ctrl");
  models::SurrogateConfig scfg;
  auto surrogate = models::make_surrogate("cnn", g, scfg, rng);
  models::DiffusionConfig dcfg;
  dcfg.num_steps = 40;
  models::DiffusionModel diffusion(dcfg, rng);
  models::TransformEmbedding emb(8, rng);
  core::OptimizeParams params;
  params.use_diffusion = false;
  core::ContinuousOptimizer opt(*surrogate, diffusion, emb, params);
  const auto result = opt.run(rng);
  EXPECT_EQ(result.sequence.size(), 20u);
  EXPECT_EQ(result.latent.size(), 20u * 8u);
  EXPECT_FALSE(result.trace.empty());
  EXPECT_GT(result.discrepancy, 0.1);  // gradient-only stays off-manifold
}

TEST(Optimizer, TraceEndsAtFinalStepInBothBranches) {
  // Regression: both the diffusion branch (Eq. 13) and the ablation branch
  // (Eq. 14) must record the t == 0 trace point — Fig. 4 traces end at the
  // converged latent, not one subsample stride earlier.
  clo::Rng rng(6);
  const aig::Aig g = circuits::make_benchmark("ctrl");
  models::SurrogateConfig scfg;
  auto surrogate = models::make_surrogate("cnn", g, scfg, rng);
  models::DiffusionConfig dcfg;
  dcfg.num_steps = 40;
  models::DiffusionModel diffusion(dcfg, rng);
  models::TransformEmbedding emb(8, rng);
  for (const bool use_diffusion : {true, false}) {
    core::OptimizeParams params;
    params.use_diffusion = use_diffusion;
    core::ContinuousOptimizer opt(*surrogate, diffusion, emb, params);
    clo::Rng orng(31);
    const auto result = opt.run(orng);
    ASSERT_FALSE(result.trace.empty()) << "diffusion=" << use_diffusion;
    EXPECT_EQ(result.trace.back().t, 0) << "diffusion=" << use_diffusion;
    // Steps are traced in schedule order, strictly descending in t.
    for (std::size_t i = 1; i < result.trace.size(); ++i) {
      EXPECT_LT(result.trace[i].t, result.trace[i - 1].t);
    }
  }
}

TEST(Tsne, SeparatesClusters) {
  clo::Rng rng(6);
  std::vector<std::vector<float>> points;
  // Two well-separated 5-D clusters of 15 points each.
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 15; ++i) {
      std::vector<float> p(5);
      for (auto& v : p) {
        v = static_cast<float>(rng.next_gaussian()) * 0.1f + (c ? 5.0f : 0.0f);
      }
      points.push_back(std::move(p));
    }
  }
  core::TsneParams params;
  params.iterations = 250;
  const auto y = core::tsne(points, params, rng);
  ASSERT_EQ(y.size(), 30u);
  // Mean intra-cluster distance must be far below inter-cluster distance.
  auto dist = [&](int i, int j) {
    const double dx = y[i].first - y[j].first;
    const double dy = y[i].second - y[j].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = 0.0, inter = 0.0;
  int ni = 0, nx = 0;
  for (int i = 0; i < 30; ++i) {
    for (int j = i + 1; j < 30; ++j) {
      if ((i < 15) == (j < 15)) {
        intra += dist(i, j);
        ++ni;
      } else {
        inter += dist(i, j);
        ++nx;
      }
    }
  }
  EXPECT_LT(intra / ni, 0.5 * inter / nx);
}

TEST(Tsne, RejectsTinyInput) {
  clo::Rng rng(7);
  std::vector<std::vector<float>> two(2, std::vector<float>(3, 0.0f));
  EXPECT_THROW(core::tsne(two, {}, rng), std::invalid_argument);
}

}  // namespace
