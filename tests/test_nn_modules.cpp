#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "clo/nn/modules.hpp"
#include "clo/nn/optim.hpp"
#include "clo/nn/serialize.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo::nn;

TEST(Linear, ShapesAndParams) {
  clo::Rng rng(1);
  Linear fc(5, 3, rng);
  EXPECT_EQ(fc.num_parameters(), 5u * 3u + 3u);
  Tensor y = fc.forward(Tensor::zeros({2, 5}));
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3}));
}

TEST(Linear, LearnsLinearMap) {
  clo::Rng rng(2);
  Linear fc(2, 1, rng);
  Adam opt(fc.parameters(), 5e-2f);
  // Target: y = 3 x0 - 2 x1 + 1.
  for (int step = 0; step < 400; ++step) {
    Tensor x = Tensor::randn({8, 2}, rng, 1.0f);
    Tensor target = Tensor::zeros({8, 1});
    for (int i = 0; i < 8; ++i) {
      target.data()[i] = 3 * x.data()[2 * i] - 2 * x.data()[2 * i + 1] + 1;
    }
    Tensor loss = mse_loss(fc.forward(x), target);
    backward(loss);
    opt.step();
  }
  Tensor probe = Tensor::from_data({1, 2}, {1.0f, 1.0f});
  EXPECT_NEAR(fc.forward(probe).item(), 3 - 2 + 1, 0.1);
}

TEST(Mlp, FitsNonlinearFunction) {
  clo::Rng rng(3);
  Mlp mlp(1, 16, 1, rng);
  Adam opt(mlp.parameters(), 1e-2f);
  for (int step = 0; step < 600; ++step) {
    Tensor x = Tensor::randn({16, 1}, rng, 1.0f);
    Tensor target = Tensor::zeros({16, 1});
    for (int i = 0; i < 16; ++i) {
      target.data()[i] = std::abs(x.data()[i]);  // V shape
    }
    Tensor loss = mse_loss(mlp.forward(x), target);
    backward(loss);
    opt.step();
  }
  // |0.8| should predict near 0.8.
  Tensor probe = Tensor::from_data({1, 1}, {0.8f});
  EXPECT_NEAR(mlp.forward(probe).item(), 0.8f, 0.2f);
}

TEST(Lstm, ShapesAndStatefulness) {
  clo::Rng rng(4);
  Lstm lstm(3, 8, rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 5; ++t) steps.push_back(Tensor::randn({2, 3}, rng, 1.0f));
  const auto hs = lstm.forward(steps);
  ASSERT_EQ(hs.size(), 5u);
  for (const auto& h : hs) EXPECT_EQ(h.shape(), (std::vector<int>{2, 8}));
  // Different inputs must produce different final states.
  std::vector<Tensor> steps2 = steps;
  steps2[0] = Tensor::randn({2, 3}, rng, 2.0f);
  const auto hs2 = lstm.forward(steps2);
  double diff = 0.0;
  for (std::size_t i = 0; i < hs2.back().numel(); ++i) {
    diff += std::abs(hs2.back().data()[i] - hs.back().data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(Lstm, LearnsOrderSensitivity) {
  // Distinguish sequence [1,0] from [0,1] — impossible for a bag-of-inputs,
  // requires actual recurrence.
  clo::Rng rng(5);
  Lstm lstm(1, 6, rng);
  Linear head(6, 1, rng);
  auto params = lstm.parameters();
  auto hp = head.parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  Adam opt(params, 2e-2f);
  auto forward = [&](float a, float b) {
    std::vector<Tensor> steps{Tensor::from_data({1, 1}, {a}),
                              Tensor::from_data({1, 1}, {b})};
    return head.forward(lstm.forward(steps).back());
  };
  Tensor pos = Tensor::from_data({1, 1}, {1.0f});
  Tensor negt = Tensor::from_data({1, 1}, {-1.0f});
  for (int step = 0; step < 1200; ++step) {
    Tensor l1 = mse_loss(forward(1, 0), pos);
    Tensor l2 = mse_loss(forward(0, 1), negt);
    backward(add(l1, l2));
    opt.step();
  }
  EXPECT_GT(forward(1, 0).item(), 0.3f);
  EXPECT_LT(forward(0, 1).item(), -0.3f);
}

TEST(AttentionPool, ShapeAndWeighting) {
  clo::Rng rng(6);
  AttentionPool pool(4, 8, rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 6; ++t) steps.push_back(Tensor::randn({3, 4}, rng, 1.0f));
  Tensor out = pool.forward(steps);
  EXPECT_EQ(out.shape(), (std::vector<int>{3, 4}));
  // Pooled output is a convex combination: bounded by min/max over steps.
  for (int b = 0; b < 3; ++b) {
    for (int f = 0; f < 4; ++f) {
      float lo = 1e9f, hi = -1e9f;
      for (const auto& s : steps) {
        lo = std::min(lo, s.data()[b * 4 + f]);
        hi = std::max(hi, s.data()[b * 4 + f]);
      }
      EXPECT_GE(out.data()[b * 4 + f], lo - 1e-4f);
      EXPECT_LE(out.data()[b * 4 + f], hi + 1e-4f);
    }
  }
}

TEST(Conv1dLayer, Shapes) {
  clo::Rng rng(7);
  Conv1dLayer conv(3, 5, 3, rng);
  Tensor y = conv.forward(Tensor::zeros({2, 3, 8}));
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 5, 8}));
}

TEST(TimestepEmbedding, DistinctAndBounded) {
  Tensor e1 = timestep_embedding({1, 100, 499}, 16);
  EXPECT_EQ(e1.shape(), (std::vector<int>{3, 16}));
  for (float v : e1.data()) {
    EXPECT_LE(std::abs(v), 1.0f + 1e-6f);
  }
  // Rows for different timesteps differ.
  double diff = 0.0;
  for (int i = 0; i < 16; ++i) {
    diff += std::abs(e1.data()[i] - e1.data()[16 + i]);
  }
  EXPECT_GT(diff, 0.1);
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor x = Tensor::from_data({3}, {5.0f, -4.0f, 2.0f}, true);
  Adam opt({x}, 0.1f);
  for (int step = 0; step < 300; ++step) {
    Tensor loss = sum_all(mul(x, x));
    backward(loss);
    opt.step();
  }
  for (float v : x.data()) EXPECT_NEAR(v, 0.0f, 0.05f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor x = Tensor::from_data({2}, {3.0f, -3.0f}, true);
  Sgd opt({x}, 0.05f, 0.9f);
  for (int step = 0; step < 200; ++step) {
    Tensor loss = sum_all(mul(x, x));
    backward(loss);
    opt.step();
  }
  for (float v : x.data()) EXPECT_NEAR(v, 0.0f, 0.05f);
}

TEST(Adam, ZeroGradClearsAccumulation) {
  Tensor x = Tensor::from_data({1}, {2.0f}, true);
  Adam opt({x}, 0.0f);  // lr 0: only bookkeeping
  Tensor loss = sum_all(mul(x, x));
  backward(loss);
  EXPECT_NE(x.grad()[0], 0.0f);
  opt.zero_grad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}


TEST(Serialize, RoundTripParameters) {
  clo::Rng rng(31);
  Mlp a(4, 8, 2, rng);
  Mlp b(4, 8, 2, rng);  // different random init
  const std::string path = testing::TempDir() + "/clo_params.bin";
  ASSERT_TRUE(save_module(a, path));
  ASSERT_TRUE(load_module(b, path));
  Tensor x = Tensor::randn({3, 4}, rng, 1.0f);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST(Serialize, RejectsShapeMismatchAndGarbage) {
  clo::Rng rng(32);
  Mlp a(4, 8, 2, rng);
  Mlp wrong(4, 9, 2, rng);
  const std::string path = testing::TempDir() + "/clo_params2.bin";
  ASSERT_TRUE(save_module(a, path));
  EXPECT_FALSE(load_module(wrong, path));
  EXPECT_FALSE(load_module(a, testing::TempDir() + "/does_not_exist.bin"));
  // Corrupt magic.
  const std::string bad = testing::TempDir() + "/clo_bad.bin";
  {
    std::ofstream f(bad, std::ios::binary);
    f << "NOTAMODEL";
  }
  EXPECT_FALSE(load_module(a, bad));
}

TEST(Serialize, EveryTruncationIsRejected) {
  clo::Rng rng(33);
  Mlp model(4, 8, 2, rng);
  auto params = model.parameters();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(save_parameters(params, os));
  const std::string blob = os.str();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::istringstream is(blob.substr(0, len), std::ios::binary);
    auto fresh = model.parameters();
    EXPECT_FALSE(load_parameters(fresh, is)) << "truncated to " << len;
  }
  std::istringstream full(blob, std::ios::binary);
  auto fresh = model.parameters();
  EXPECT_TRUE(load_parameters(fresh, full));
}

TEST(Serialize, CorruptMetadataIsRejectedBeforeAllocation) {
  clo::Rng rng(34);
  Mlp model(4, 8, 2, rng);
  auto params = model.parameters();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(save_parameters(params, os));
  const std::string blob = os.str();
  // Layout: magic (6 bytes), tensor count (u32), then per tensor
  // ndims (u32) and dims (i32 each). Corrupt each metadata field to a
  // hostile value; the loader must reject before sizing any allocation.
  auto patch_u32 = [&](std::size_t offset, std::uint32_t v) {
    std::string bad = blob;
    std::memcpy(&bad[offset], &v, sizeof(v));
    return bad;
  };
  for (const auto& bad :
       {patch_u32(6, 0xffffffffu),               // absurd tensor count
        patch_u32(10, kMaxTensorDims + 1),       // ndims over the cap
        patch_u32(14, 0x7fffffffu)}) {           // first dim near INT_MAX
    std::istringstream is(bad, std::ios::binary);
    auto fresh = model.parameters();
    EXPECT_FALSE(load_parameters(fresh, is));
  }
}

TEST(Serialize, BitFlipFuzzNeverCrashes) {
  clo::Rng rng(35);
  Mlp model(2, 4, 1, rng);
  auto params = model.parameters();
  std::ostringstream os(std::ios::binary);
  ASSERT_TRUE(save_parameters(params, os));
  const std::string blob = os.str();
  // A flip inside the float payload is undetectable at this layer (the
  // checkpoint container's CRC32 exists for that) — here we only require
  // that no flip crashes or over-allocates.
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] ^= 0x04;
    std::istringstream is(bad, std::ios::binary);
    auto fresh = model.parameters();
    load_parameters(fresh, is);
  }
}

TEST(Serialize, InjectedFaultSitesCoverBothDirections) {
  clo::Rng rng(36);
  Mlp model(2, 4, 1, rng);
  auto params = model.parameters();
  std::ostringstream os(std::ios::binary);
  clo::util::fault::arm("serialize.write=1");
  EXPECT_THROW(save_parameters(params, os),
               clo::util::fault::InjectedFault);
  clo::util::fault::disarm();
  ASSERT_TRUE(save_parameters(params, os));
  clo::util::fault::arm("serialize.read=1");
  std::istringstream is(os.str(), std::ios::binary);
  EXPECT_THROW(load_parameters(params, is),
               clo::util::fault::InjectedFault);
  clo::util::fault::disarm();
}

}  // namespace
