#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clo/aig/cuts.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/aig/window.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo::aig;

Aig random_aig(int pis, int nodes, int pos, std::uint64_t seed) {
  Aig g;
  clo::Rng rng(seed);
  std::vector<Lit> pool;
  for (int i = 0; i < pis; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < nodes; ++i) {
    const Lit a = pool[rng.next_below(pool.size())];
    const Lit b = pool[rng.next_below(pool.size())];
    pool.push_back(lit_notc(g.and_of(a, b), rng.next_bool()));
  }
  for (int i = 0; i < pos; ++i) {
    g.add_po(pool[pool.size() - 1 - i * 3]);
  }
  g.cleanup();
  return g;
}

/// A leaf set is a cut of `root` iff every PI-ward path crosses it:
/// verified by checking the bounded cone extraction succeeds.
bool is_cut(const Aig& g, std::uint32_t root,
            const std::vector<std::uint32_t>& leaves) {
  return try_cone_truth_table(g, make_lit(root), leaves, 1 << 20).has_value();
}

TEST(Cuts, MergeRespectsLimit) {
  Cut a{{1, 3, 5}};
  Cut b{{2, 3, 7}};
  Cut out;
  EXPECT_FALSE(merge_cuts(a, b, 4, out));  // union has 5 leaves
  EXPECT_TRUE(merge_cuts(a, b, 5, out));
  EXPECT_EQ(out.leaves, (std::vector<std::uint32_t>{1, 2, 3, 5, 7}));
}

TEST(Cuts, Domination) {
  Cut small{{1, 2}};
  Cut big{{1, 2, 3}};
  EXPECT_TRUE(small.dominates(big));
  EXPECT_FALSE(big.dominates(small));
  EXPECT_TRUE(small.dominates(small));
}

TEST(Cuts, EveryCutIsValid) {
  const Aig g = random_aig(8, 120, 4, 99);
  CutParams params;
  params.max_leaves = 4;
  const CutSet cuts(g, params);
  int checked = 0;
  for (std::uint32_t n : g.topo_order()) {
    for (const Cut& cut : cuts.cuts_of(n)) {
      EXPECT_LE(cut.leaves.size(), 4u);
      EXPECT_TRUE(std::is_sorted(cut.leaves.begin(), cut.leaves.end()));
      EXPECT_TRUE(is_cut(g, n, cut.leaves)) << "node " << n;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(Cuts, TrivialCutPresent) {
  const Aig g = random_aig(6, 40, 2, 5);
  CutParams params;
  const CutSet cuts(g, params);
  for (std::uint32_t n : g.topo_order()) {
    const auto& set = cuts.cuts_of(n);
    const bool has_trivial =
        std::any_of(set.begin(), set.end(), [&](const Cut& c) {
          return c.leaves.size() == 1 && c.leaves[0] == n;
        });
    EXPECT_TRUE(has_trivial);
  }
}

TEST(Cuts, DirectFaninCutPresent) {
  const Aig g = random_aig(6, 60, 3, 6);
  CutParams params;
  params.max_leaves = 4;
  params.max_cuts = 8;
  const CutSet cuts(g, params);
  for (std::uint32_t n : g.topo_order()) {
    // Some cut of <= 2 leaves must match the node (fanins or dominated).
    const auto& set = cuts.cuts_of(n);
    const bool has_small =
        std::any_of(set.begin(), set.end(), [&](const Cut& c) {
          return c.leaves.size() <= 2 && !(c.leaves.size() == 1 && c.leaves[0] == n);
        });
    EXPECT_TRUE(has_small) << "node " << n;
  }
}

TEST(ReconvergenceCut, IsValidCutWithinBound) {
  Aig g = random_aig(10, 200, 5, 17);
  for (std::uint32_t n : g.topo_order()) {
    const auto leaves = reconvergence_cut(g, n, 8);
    EXPECT_LE(leaves.size(), 8u);
    EXPECT_FALSE(leaves.empty());
    EXPECT_TRUE(is_cut(g, n, leaves)) << "node " << n;
  }
}

TEST(ReconvergenceCut, GrowsBeyondFanins) {
  // On a reconvergent structure the cut should expand past the fanins.
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(b, c);
  const Lit top = g.and_of(x, y);
  g.add_po(top);
  const auto leaves = reconvergence_cut(g, lit_node(top), 4);
  // Expanding both fanins gives {a, b, c}.
  EXPECT_EQ(leaves.size(), 3u);
  const std::set<std::uint32_t> ls(leaves.begin(), leaves.end());
  EXPECT_TRUE(ls.count(lit_node(a)));
  EXPECT_TRUE(ls.count(lit_node(b)));
  EXPECT_TRUE(ls.count(lit_node(c)));
}

TEST(ConeNodes, TopologicalAndComplete) {
  Aig g = random_aig(8, 150, 4, 23);
  for (std::uint32_t n : g.topo_order()) {
    const auto leaves = reconvergence_cut(g, n, 6);
    const auto cone = cone_nodes(g, n, leaves);
    // Root included, leaves excluded, order topological.
    EXPECT_NE(std::find(cone.begin(), cone.end(), n), cone.end());
    for (std::uint32_t leaf : leaves) {
      EXPECT_EQ(std::find(cone.begin(), cone.end(), leaf), cone.end());
    }
    std::set<std::uint32_t> seen;
    const std::set<std::uint32_t> leaf_set(leaves.begin(), leaves.end());
    for (std::uint32_t v : cone) {
      for (Lit f : {g.fanin0(v), g.fanin1(v)}) {
        const std::uint32_t m = lit_node(f);
        if (!leaf_set.count(m) && g.is_and(m)) {
          EXPECT_TRUE(seen.count(m)) << "fanin after node";
        }
      }
      seen.insert(v);
    }
  }
}

TEST(TryConeTt, RejectsEscapedCut) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.and_of(a, b);
  const Lit y = g.and_of(x, c);
  g.add_po(y);
  // {x} is not a cut of y (path through c escapes).
  EXPECT_FALSE(try_cone_truth_table(g, y, {lit_node(x)}, 100).has_value());
  // {x, c} is a cut.
  EXPECT_TRUE(
      try_cone_truth_table(g, y, {lit_node(x), lit_node(c)}, 100).has_value());
}

TEST(TryConeTt, RespectsNodeBudget) {
  Aig g = random_aig(8, 300, 1, 3);
  const std::uint32_t root = lit_node(g.po(0));
  std::vector<std::uint32_t> pis;
  for (std::size_t i = 0; i < g.num_pis(); ++i) pis.push_back(g.pi_node(i));
  EXPECT_FALSE(try_cone_truth_table(g, make_lit(root), pis, 3).has_value());
}

TEST(TryConeTt, MatchesExhaustiveSimulation) {
  Aig g = random_aig(6, 80, 2, 41);
  const auto po_tts = po_truth_tables(g);
  std::vector<std::uint32_t> pis;
  for (std::size_t i = 0; i < g.num_pis(); ++i) pis.push_back(g.pi_node(i));
  for (std::size_t o = 0; o < g.num_pos(); ++o) {
    const auto tt = try_cone_truth_table(g, g.po(o), pis, 1 << 20);
    ASSERT_TRUE(tt.has_value());
    EXPECT_EQ(*tt, po_tts[o]);
  }
}

TEST(Divisors, ExcludeMffcAndRoot) {
  Aig g = random_aig(8, 120, 4, 59);
  for (std::uint32_t n : g.topo_order()) {
    const auto leaves = reconvergence_cut(g, n, 8);
    const auto divisors = collect_divisors(g, n, leaves, 30);
    const auto mffc = g.mffc_nodes(n);
    for (std::uint32_t d : divisors) {
      EXPECT_NE(d, n);
      // Inner divisors (not leaves) must avoid the MFFC.
      if (std::find(leaves.begin(), leaves.end(), d) == leaves.end()) {
        EXPECT_EQ(std::find(mffc.begin(), mffc.end(), d), mffc.end());
      }
    }
  }
}

}  // namespace
