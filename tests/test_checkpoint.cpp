// Checkpoint/resume tests: CRC-32 vectors, the CLOCKPT1 container's
// round-trip and rejection behavior (bit flips, truncation, config
// mismatch, injected I/O faults), and the acceptance criteria from the
// fault-tolerance work — a killed pipeline resumes to a bit-identical
// best sequence, and a quarantined restart never changes the survivors.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "clo/circuits/generators.hpp"
#include "clo/core/checkpoint.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/util/crc32.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
namespace fault = clo::util::fault;
namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }

  /// Fresh empty directory under the test temp dir.
  static std::string fresh_dir(const std::string& name) {
    const std::string dir = testing::TempDir() + "/" + name;
    fs::remove_all(dir);
    return dir;
  }
};

// ---- CRC-32 -------------------------------------------------------------

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE 802.3 check value every CRC-32 implementation must hit.
  const std::string check = "123456789";
  EXPECT_EQ(util::crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(util::crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = util::crc32(data.data(), data.size());
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, data.size() - i);
    crc = util::crc32_update(crc, data.data() + i, n);
  }
  EXPECT_EQ(crc, whole);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "checkpoint payload bytes";
  const std::uint32_t good = util::crc32(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x10;
    EXPECT_NE(util::crc32(data.data(), data.size()), good) << "byte " << i;
    data[i] ^= 0x10;
  }
}

// ---- ConfigHasher -------------------------------------------------------

TEST(ConfigHasher, SensitiveToEveryInputAndItsFraming) {
  const auto digest = [](auto&&... vs) {
    core::ConfigHasher h;
    (h.add(vs), ...);
    return h.hash();
  };
  EXPECT_EQ(digest(std::uint64_t{7}, 0.5), digest(std::uint64_t{7}, 0.5));
  EXPECT_NE(digest(std::uint64_t{7}, 0.5), digest(std::uint64_t{8}, 0.5));
  EXPECT_NE(digest(std::uint64_t{7}, 0.5), digest(std::uint64_t{7}, 0.25));
  // Strings are length-framed: ("ab","c") must not collide with ("a","bc").
  EXPECT_NE(digest(std::string("ab"), std::string("c")),
            digest(std::string("a"), std::string("bc")));
  // Order matters.
  EXPECT_NE(digest(std::uint64_t{1}, std::uint64_t{2}),
            digest(std::uint64_t{2}, std::uint64_t{1}));
}

// ---- CLOCKPT1 container -------------------------------------------------

core::DatasetCheckpoint sample_dataset_checkpoint() {
  clo::Rng rng(17);
  core::DatasetCheckpoint c;
  c.original = {123.5, 456.25};
  c.embedding_table = models::TransformEmbedding(8, rng).table();
  for (int i = 0; i < 5; ++i) {
    opt::Sequence seq;
    for (int j = 0; j < 6; ++j) {
      seq.push_back(
          static_cast<opt::Transform>((i + j) % opt::kNumTransforms));
    }
    c.dataset.sequences.push_back(seq);
    c.dataset.qor.push_back({100.0 + i, 200.0 + i});
  }
  c.dataset.area_mean = 102.0;
  c.dataset.area_std = 1.5;
  c.dataset.delay_mean = 202.0;
  c.dataset.delay_std = 1.5;
  c.seconds = 3.25;
  rng.next_gaussian();  // populate the cached-gaussian half of the state
  c.rng = rng.state();
  return c;
}

void expect_rng_state_eq(const clo::Rng::State& a, const clo::Rng::State& b) {
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.s[i], b.s[i]);
  EXPECT_EQ(a.has_cached_gaussian, b.has_cached_gaussian);
  EXPECT_DOUBLE_EQ(a.cached_gaussian, b.cached_gaussian);
}

TEST_F(CheckpointTest, DatasetRoundTripIsExact) {
  core::CheckpointManager mgr(fresh_dir("ckpt_dataset"), 0xabcdefULL);
  const auto saved = sample_dataset_checkpoint();
  ASSERT_TRUE(mgr.save_dataset(saved));
  EXPECT_FALSE(fs::exists(mgr.path_for("dataset") + ".tmp"));

  core::DatasetCheckpoint loaded;
  ASSERT_TRUE(mgr.load_dataset(&loaded));
  EXPECT_DOUBLE_EQ(loaded.original.area_um2, saved.original.area_um2);
  EXPECT_DOUBLE_EQ(loaded.original.delay_ps, saved.original.delay_ps);
  EXPECT_EQ(loaded.embedding_table, saved.embedding_table);
  ASSERT_EQ(loaded.dataset.size(), saved.dataset.size());
  EXPECT_EQ(loaded.dataset.sequences, saved.dataset.sequences);
  for (std::size_t i = 0; i < saved.dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.dataset.qor[i].area_um2,
                     saved.dataset.qor[i].area_um2);
    EXPECT_DOUBLE_EQ(loaded.dataset.qor[i].delay_ps,
                     saved.dataset.qor[i].delay_ps);
  }
  EXPECT_DOUBLE_EQ(loaded.dataset.area_mean, saved.dataset.area_mean);
  EXPECT_DOUBLE_EQ(loaded.dataset.area_std, saved.dataset.area_std);
  EXPECT_DOUBLE_EQ(loaded.dataset.delay_mean, saved.dataset.delay_mean);
  EXPECT_DOUBLE_EQ(loaded.dataset.delay_std, saved.dataset.delay_std);
  EXPECT_DOUBLE_EQ(loaded.seconds, saved.seconds);
  expect_rng_state_eq(loaded.rng, saved.rng);
}

TEST_F(CheckpointTest, ModelCheckpointsRoundTrip) {
  core::CheckpointManager mgr(fresh_dir("ckpt_models"), 42);
  clo::Rng rng(9);

  core::SurrogateCheckpoint s;
  s.weights = std::string("arbitrary\0weight\xff" "bytes", 22);
  s.report.train_mse = 0.125;
  s.report.holdout_mse = 0.25;
  s.report.spearman_area = 0.5;
  s.report.spearman_delay = 0.75;
  s.report.seconds = 1.5;
  s.report.epoch_loss = {1.0, 0.5, 0.25};
  s.report.lr_backoffs = 2;
  s.seconds = 2.5;
  s.rng = rng.state();
  ASSERT_TRUE(mgr.save_surrogate(s));
  core::SurrogateCheckpoint sl;
  ASSERT_TRUE(mgr.load_surrogate(&sl));
  EXPECT_EQ(sl.weights, s.weights);
  EXPECT_DOUBLE_EQ(sl.report.train_mse, s.report.train_mse);
  EXPECT_DOUBLE_EQ(sl.report.holdout_mse, s.report.holdout_mse);
  EXPECT_DOUBLE_EQ(sl.report.spearman_area, s.report.spearman_area);
  EXPECT_DOUBLE_EQ(sl.report.spearman_delay, s.report.spearman_delay);
  EXPECT_EQ(sl.report.epoch_loss, s.report.epoch_loss);
  EXPECT_EQ(sl.report.lr_backoffs, s.report.lr_backoffs);
  EXPECT_DOUBLE_EQ(sl.seconds, s.seconds);
  expect_rng_state_eq(sl.rng, s.rng);

  core::DiffusionCheckpoint d;
  d.weights = "diffusion blob";
  d.stats.iterations = 300;
  d.stats.final_loss = 0.0625;
  d.stats.loss_curve = {2.0, 1.0, 0.5};
  d.stats.lr_backoffs = 1;
  d.seconds = 4.5;
  d.rng = rng.state();
  ASSERT_TRUE(mgr.save_diffusion(d));
  core::DiffusionCheckpoint dl;
  ASSERT_TRUE(mgr.load_diffusion(&dl));
  EXPECT_EQ(dl.weights, d.weights);
  EXPECT_EQ(dl.stats.iterations, d.stats.iterations);
  EXPECT_DOUBLE_EQ(dl.stats.final_loss, d.stats.final_loss);
  EXPECT_EQ(dl.stats.loss_curve, d.stats.loss_curve);
  EXPECT_EQ(dl.stats.lr_backoffs, d.stats.lr_backoffs);
}

TEST_F(CheckpointTest, PhasesDoNotCrossLoad) {
  // A surrogate checkpoint must not load as a diffusion one (phase id is
  // part of the envelope), and a missing file is a clean false.
  core::CheckpointManager mgr(fresh_dir("ckpt_phases"), 1);
  core::SurrogateCheckpoint s;
  s.weights = "w";
  ASSERT_TRUE(mgr.save_surrogate(s));
  core::DiffusionCheckpoint d;
  EXPECT_FALSE(mgr.load_diffusion(&d));
  core::DatasetCheckpoint ds;
  EXPECT_FALSE(mgr.load_dataset(&ds));
}

TEST_F(CheckpointTest, ConfigHashMismatchRejects) {
  const std::string dir = fresh_dir("ckpt_hash");
  core::CheckpointManager writer(dir, 0x1111);
  ASSERT_TRUE(writer.save_dataset(sample_dataset_checkpoint()));
  core::CheckpointManager reader(dir, 0x2222);
  core::DatasetCheckpoint c;
  EXPECT_FALSE(reader.load_dataset(&c));
  core::CheckpointManager same(dir, 0x1111);
  EXPECT_TRUE(same.load_dataset(&c));
}

TEST_F(CheckpointTest, EverySingleByteFlipIsRejected) {
  core::CheckpointManager mgr(fresh_dir("ckpt_flip"), 7);
  ASSERT_TRUE(mgr.save_dataset(sample_dataset_checkpoint()));
  const std::string path = mgr.path_for("dataset");
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    bytes = ss.str();
  }
  ASSERT_GT(bytes.size(), 64u);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] ^= 0x20;
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    core::DatasetCheckpoint c;
    EXPECT_FALSE(mgr.load_dataset(&c)) << "flip at byte " << i;
  }
}

TEST_F(CheckpointTest, EveryTruncationIsRejected) {
  core::CheckpointManager mgr(fresh_dir("ckpt_trunc"), 7);
  ASSERT_TRUE(mgr.save_dataset(sample_dataset_checkpoint()));
  const std::string path = mgr.path_for("dataset");
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    bytes = ss.str();
  }
  for (std::size_t len = 0; len < bytes.size(); len += 3) {
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    core::DatasetCheckpoint c;
    EXPECT_FALSE(mgr.load_dataset(&c)) << "truncated to " << len;
  }
}

TEST_F(CheckpointTest, InjectedWriteFaultKeepsThePreviousCheckpoint) {
  core::CheckpointManager mgr(fresh_dir("ckpt_wfault"), 7);
  const auto saved = sample_dataset_checkpoint();
  ASSERT_TRUE(mgr.save_dataset(saved));
  fault::arm("checkpoint.write=1");
  auto second = saved;
  second.seconds = 99.0;
  EXPECT_FALSE(mgr.save_dataset(second));  // degraded, not thrown
  fault::disarm();
  core::DatasetCheckpoint c;
  ASSERT_TRUE(mgr.load_dataset(&c));
  EXPECT_DOUBLE_EQ(c.seconds, saved.seconds);  // old file untouched
}

TEST_F(CheckpointTest, InjectedReadFaultDegradesToNoCheckpoint) {
  core::CheckpointManager mgr(fresh_dir("ckpt_rfault"), 7);
  ASSERT_TRUE(mgr.save_dataset(sample_dataset_checkpoint()));
  fault::arm("checkpoint.read=1");
  core::DatasetCheckpoint c;
  EXPECT_FALSE(mgr.load_dataset(&c));
  fault::disarm();
  EXPECT_TRUE(mgr.load_dataset(&c));
}

// ---- tolerant restarts --------------------------------------------------

struct OptimizerFixture {
  aig::Aig g = circuits::make_benchmark("c17");
  models::TransformEmbedding embedding;
  std::unique_ptr<models::SurrogateModel> surrogate;
  models::DiffusionModel diffusion;

  static models::SurrogateConfig scfg() {
    models::SurrogateConfig c;
    c.seq_len = 8;
    return c;
  }
  static models::DiffusionConfig dcfg() {
    models::DiffusionConfig c;
    c.seq_len = 8;
    c.num_steps = 16;
    return c;
  }

  explicit OptimizerFixture(clo::Rng& rng)
      : embedding(8, rng),
        surrogate(models::make_surrogate("cnn", g, scfg(), rng)),
        diffusion(dcfg(), rng) {}

  core::ContinuousOptimizer make() {
    return core::ContinuousOptimizer(*surrogate, diffusion, embedding);
  }
};

TEST_F(CheckpointTest, TolerantRestartsMatchPlainWhenNothingFails) {
  for (const bool batched : {true, false}) {
    clo::Rng setup(5);
    OptimizerFixture fx(setup);
    auto opt = fx.make();
    clo::Rng a(23), b(23);
    const auto plain = opt.run_restarts(a, 5, nullptr, batched);
    std::vector<core::ContinuousOptimizer::RestartFailure> failures;
    const auto tolerant =
        opt.run_restarts_tolerant(b, 5, nullptr, batched, &failures);
    EXPECT_TRUE(failures.empty());
    ASSERT_EQ(tolerant.size(), plain.size());
    for (std::size_t r = 0; r < plain.size(); ++r) {
      EXPECT_EQ(tolerant[r].sequence, plain[r].sequence)
          << "batched=" << batched << " restart " << r;
      EXPECT_EQ(tolerant[r].latent, plain[r].latent);
    }
  }
}

TEST_F(CheckpointTest, OneShotFaultsRecoverBitIdentical) {
  // An nth-hit fault is consumed by the failing attempt, so the serial
  // re-run on the original noise recovers every restart exactly.
  for (const char* spec : {"optimizer.restart=2", "optimizer.latent_nan=1"}) {
    clo::Rng setup(5);
    OptimizerFixture fx(setup);
    auto opt = fx.make();
    clo::Rng a(23);
    fault::disarm();
    const auto plain = opt.run_restarts(a, 5, nullptr, true);
    fault::arm(spec);
    clo::Rng b(23);
    std::vector<core::ContinuousOptimizer::RestartFailure> failures;
    const auto tolerant = opt.run_restarts_tolerant(b, 5, nullptr, true,
                                                    &failures);
    fault::disarm();
    EXPECT_TRUE(failures.empty()) << spec;
    ASSERT_EQ(tolerant.size(), plain.size());
    for (std::size_t r = 0; r < plain.size(); ++r) {
      EXPECT_EQ(tolerant[r].sequence, plain[r].sequence)
          << spec << " restart " << r;
    }
  }
}

TEST_F(CheckpointTest, QuarantineLeavesSurvivorsUnchanged) {
  clo::Rng setup(5);
  OptimizerFixture fx(setup);
  auto opt = fx.make();
  clo::Rng a(23);
  const auto plain = opt.run_restarts(a, 6, nullptr, true);

  // The firing pattern of a probability spec is a pure hash of
  // (seed, site, hit index), so this seed is chosen to poison exactly
  // restart 0's latent on the batch attempt (hit 1), its original-noise
  // re-run (hit 7), and its fresh-noise retry (hit 8) — and nothing else.
  // Restart 0 is quarantined; restarts 1..5 recover on their original
  // noise and must be bit-identical to the fault-free run.
  fault::arm("optimizer.latent_nan=p0.3,seed=2781");
  clo::Rng b(23);
  std::vector<core::ContinuousOptimizer::RestartFailure> failures;
  const auto tolerant =
      opt.run_restarts_tolerant(b, 6, nullptr, true, &failures);
  fault::disarm();

  ASSERT_EQ(tolerant.size(), plain.size());
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 0u);
  EXPECT_NE(failures[0].message.find("non-finite latent"), std::string::npos)
      << failures[0].message;
  EXPECT_TRUE(tolerant[0].sequence.empty());  // slot left default
  for (std::size_t r = 1; r < plain.size(); ++r) {
    EXPECT_EQ(tolerant[r].sequence, plain[r].sequence) << "survivor " << r;
    EXPECT_EQ(tolerant[r].latent, plain[r].latent) << "survivor " << r;
  }
}

TEST_F(CheckpointTest, AlwaysFiringFaultQuarantinesEverything) {
  clo::Rng setup(5);
  OptimizerFixture fx(setup);
  auto opt = fx.make();
  fault::arm("optimizer.latent_nan=p1.0");
  clo::Rng rng(23);
  std::vector<core::ContinuousOptimizer::RestartFailure> failures;
  const auto results = opt.run_restarts_tolerant(rng, 3, nullptr, true,
                                                 &failures);
  fault::disarm();
  ASSERT_EQ(failures.size(), results.size());
  for (const auto& f : failures) {
    EXPECT_NE(f.message.find("non-finite latent"), std::string::npos)
        << f.message;
  }
}

// ---- pipeline kill-and-resume -------------------------------------------

core::PipelineConfig resume_config() {
  core::PipelineConfig cfg;
  cfg.dataset_size = 40;
  cfg.diffusion_steps = 30;
  cfg.diffusion_iters = 300;
  cfg.restarts = 2;
  cfg.surrogate = "cnn";
  cfg.surrogate_train.epochs = 30;
  cfg.seed = 5;
  return cfg;
}

core::PipelineResult run_pipeline(const core::PipelineConfig& cfg) {
  core::QorEvaluator ev(circuits::make_benchmark("c17"));
  core::CloPipeline pipeline(cfg);
  return pipeline.run(ev);
}

void expect_same_outcome(const core::PipelineResult& a,
                         const core::PipelineResult& b) {
  EXPECT_EQ(opt::sequence_to_string(a.best_sequence),
            opt::sequence_to_string(b.best_sequence));
  EXPECT_DOUBLE_EQ(a.best.area_um2, b.best.area_um2);
  EXPECT_DOUBLE_EQ(a.best.delay_ps, b.best.delay_ps);
}

TEST_F(CheckpointTest, ResumeIsBitIdenticalToUninterrupted) {
  const auto baseline = run_pipeline(resume_config());

  auto cfg = resume_config();
  cfg.checkpoint_dir = fresh_dir("resume_full");
  const auto checkpointed = run_pipeline(cfg);
  // Checkpointing must not perturb the run...
  expect_same_outcome(checkpointed, baseline);
  EXPECT_EQ(checkpointed.resumed_phases, 0);
  for (const char* phase : {"dataset", "surrogate", "diffusion"}) {
    EXPECT_TRUE(fs::exists(cfg.checkpoint_dir + "/" + std::string(phase) +
                           ".ckpt"))
        << phase;
  }

  // ...and resuming from all three phases reproduces it exactly.
  cfg.resume = true;
  const auto resumed = run_pipeline(cfg);
  EXPECT_EQ(resumed.resumed_phases, 3);
  expect_same_outcome(resumed, baseline);
}

TEST_F(CheckpointTest, KilledMidDiffusionResumesBitIdentical) {
  const auto baseline = run_pipeline(resume_config());

  auto cfg = resume_config();
  cfg.checkpoint_dir = fresh_dir("resume_killed");
  // Simulate a mid-run death during diffusion training: the dataset and
  // surrogate checkpoints are already on disk when the process dies.
  fault::arm("diffusion.train_step=5");
  EXPECT_THROW(run_pipeline(cfg), fault::InjectedFault);
  fault::disarm();
  EXPECT_TRUE(fs::exists(cfg.checkpoint_dir + "/dataset.ckpt"));
  EXPECT_TRUE(fs::exists(cfg.checkpoint_dir + "/surrogate.ckpt"));
  EXPECT_FALSE(fs::exists(cfg.checkpoint_dir + "/diffusion.ckpt"));

  cfg.resume = true;
  const auto resumed = run_pipeline(cfg);
  EXPECT_EQ(resumed.resumed_phases, 2);
  expect_same_outcome(resumed, baseline);
}

TEST_F(CheckpointTest, CorruptCheckpointFallsBackToRecompute) {
  const auto baseline = run_pipeline(resume_config());

  auto cfg = resume_config();
  cfg.checkpoint_dir = fresh_dir("resume_corrupt");
  run_pipeline(cfg);
  // Flip one byte of the surrogate checkpoint: resume must keep the
  // dataset phase, reject the surrogate one, and (because later phases
  // depend on earlier ones) retrain the diffusion model too.
  const std::string path = cfg.checkpoint_dir + "/surrogate.ckpt";
  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    bytes = ss.str();
  }
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  cfg.resume = true;
  const auto resumed = run_pipeline(cfg);
  EXPECT_EQ(resumed.resumed_phases, 1);
  expect_same_outcome(resumed, baseline);
}

TEST_F(CheckpointTest, DurableWriteLeavesNoTmpAndSurvivesOverwrite) {
  // The atomic write path now fsyncs the tmp file before renaming it and
  // the directory after: the final name must never point at unpersisted
  // bytes. Observable contract here: round-trips are exact, repeated saves
  // overwrite in place, and no .tmp staging file is ever left behind.
  const std::string dir = fresh_dir("ckpt_durable");
  core::CheckpointManager mgr(dir, 7);
  const auto first = sample_dataset_checkpoint();
  ASSERT_TRUE(mgr.save_dataset(first));
  auto second = sample_dataset_checkpoint();
  second.seconds = 99.0;  // distinguishable payload
  ASSERT_TRUE(mgr.save_dataset(second));  // overwrite, same path

  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension(), ".ckpt") << e.path();
    ++files;
  }
  EXPECT_EQ(files, 1u);  // exactly the committed file, no staging debris

  core::DatasetCheckpoint loaded;
  ASSERT_TRUE(mgr.load_dataset(&loaded));
  EXPECT_DOUBLE_EQ(loaded.seconds, 99.0);
}

TEST_F(CheckpointTest, ConfigChangeInvalidatesCheckpoints) {
  auto cfg = resume_config();
  cfg.checkpoint_dir = fresh_dir("resume_config_change");
  run_pipeline(cfg);

  auto other = cfg;
  other.seed = 6;
  other.resume = true;
  const auto fresh6 = run_pipeline([] {
    auto c = resume_config();
    c.seed = 6;
    return c;
  }());
  const auto resumed = run_pipeline(other);
  EXPECT_EQ(resumed.resumed_phases, 0);  // stale checkpoints ignored
  expect_same_outcome(resumed, fresh6);
}

}  // namespace
