#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/stats.hpp"
#include "clo/util/timer.hpp"

namespace {

using namespace clo;

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAll) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIndependent) {
  Rng a(1);
  Rng c = a.fork();
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Stddev) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, PearsonPerfect) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, SpearmanMonotone) {
  // Any monotone map gives rank correlation 1.
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {10, 100, 1000, 10000}), 1.0, 1e-12);
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0, 1e-12);
}

TEST(Stats, SpearmanTiesHandled) {
  const double r = spearman({1, 1, 2, 3}, {1, 1, 2, 3});
  EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(Csv, EscapesAndWrites) {
  CsvWriter w({"a", "b"});
  w.add_row({"x,y", "plain"});
  w.add_row({"with \"quote\"", "1"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"x,y\""), std::string::npos);
  EXPECT_NE(s.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(Csv, RowValues) {
  CsvWriter w({"v"});
  w.add_row_values({1.23456}, 2);
  EXPECT_NE(w.to_string().find("1.23"), std::string::npos);
}

TEST(ConsoleTable, Renders) {
  ConsoleTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"longer-name", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--flag", "--key", "value", "--eq=5", "pos"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("key", ""), "value");
  EXPECT_EQ(args.get_int("eq", 0), 5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(Stopwatch, AccumulatesAndResets) {
  Stopwatch w;
  w.start();
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  if (x < 0) return;
  w.stop();
  EXPECT_GT(w.seconds(), 0.0);
  const double t1 = w.seconds();
  // Stopped: no more accumulation.
  EXPECT_DOUBLE_EQ(w.seconds(), t1);
  w.reset();
  EXPECT_DOUBLE_EQ(w.seconds(), 0.0);
}

}  // namespace
