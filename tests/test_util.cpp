#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <cmath>
#include <limits>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "clo/util/cancel.hpp"
#include "clo/util/cli.hpp"
#include "clo/util/csv.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/log.hpp"
#include "clo/util/numeric.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/stats.hpp"
#include "clo/util/timer.hpp"

namespace {

using namespace clo;
using util::format_double;
using util::parse_double;
using util::parse_int;
using util::parse_uint64;

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAll) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIndependent) {
  Rng a(1);
  Rng c = a.fork();
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Stddev) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Stats, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(Stats, PearsonPerfect) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, SpearmanMonotone) {
  // Any monotone map gives rank correlation 1.
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {10, 100, 1000, 10000}), 1.0, 1e-12);
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0, 1e-12);
}

TEST(Stats, SpearmanTiesHandled) {
  const double r = spearman({1, 1, 2, 3}, {1, 1, 2, 3});
  EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(Csv, EscapesAndWrites) {
  CsvWriter w({"a", "b"});
  w.add_row({"x,y", "plain"});
  w.add_row({"with \"quote\"", "1"});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"x,y\""), std::string::npos);
  EXPECT_NE(s.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(Csv, RowValues) {
  CsvWriter w({"v"});
  w.add_row_values({1.23456}, 2);
  EXPECT_NE(w.to_string().find("1.23"), std::string::npos);
}

TEST(ConsoleTable, Renders) {
  ConsoleTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"longer-name", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--flag", "--key", "value", "--eq=5", "pos"};
  CliArgs args(6, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("key", ""), "value");
  EXPECT_EQ(args.get_int("eq", 0), 5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(Stopwatch, AccumulatesAndResets) {
  Stopwatch w;
  w.start();
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(static_cast<double>(i));
  if (x < 0) return;
  w.stop();
  EXPECT_GT(w.seconds(), 0.0);
  const double t1 = w.seconds();
  // Stopped: no more accumulation.
  EXPECT_DOUBLE_EQ(w.seconds(), t1);
  w.reset();
  EXPECT_DOUBLE_EQ(w.seconds(), 0.0);
}

TEST(Numeric, ParseDoubleAcceptsFullStringsOnly) {
  double v = -1.0;
  EXPECT_TRUE(parse_double("4.5", &v));
  EXPECT_DOUBLE_EQ(v, 4.5);
  EXPECT_TRUE(parse_double("+0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(parse_double("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  // Rejections leave *out untouched.
  v = 7.0;
  EXPECT_FALSE(parse_double("", &v));
  EXPECT_FALSE(parse_double("4.5x", &v));
  EXPECT_FALSE(parse_double("x4.5", &v));
  EXPECT_FALSE(parse_double("4.5 ", &v));
  EXPECT_FALSE(parse_double("++1", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Numeric, ParseIntegers) {
  int i = -1;
  EXPECT_TRUE(parse_int("42", &i));
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(parse_int("-7", &i));
  EXPECT_EQ(i, -7);
  EXPECT_TRUE(parse_int("+9", &i));
  EXPECT_EQ(i, 9);
  EXPECT_FALSE(parse_int("4.5", &i));
  EXPECT_FALSE(parse_int("", &i));
  EXPECT_FALSE(parse_int("999999999999999999999", &i));  // overflow
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_uint64("18446744073709551615", &u));
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_uint64("-1", &u));
  EXPECT_FALSE(parse_uint64("18446744073709551616", &u));  // overflow
}

TEST(Numeric, FormatDoubleRoundTripsExactly) {
  // Shortest-round-trip formatting: format -> parse must be bit-exact for
  // every representable double, including the awkward ones.
  const double values[] = {
      0.1,
      1.0 / 3.0,
      1e-300,
      -2.5e300,
      12345.6789,
      6.02214076e23,
      -0.0,
      5e-324,  // min subnormal
      std::numeric_limits<double>::max(),
  };
  for (double v : values) {
    double back = 0.0;
    ASSERT_TRUE(parse_double(format_double(v), &back)) << format_double(v);
    EXPECT_EQ(back, v) << format_double(v);
  }
  // Non-finite values are flattened to a valid JSON-safe token.
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "0");
}

/// Switch LC_ALL+LC_NUMERIC to a decimal-comma locale if one is installed;
/// returns false (leaving "C" active) when the host has none.
bool set_comma_locale() {
  const char* const candidates[] = {
      "de_DE.UTF-8",
      "de_DE.utf8",
      "de_DE",
      "fr_FR.UTF-8",
      "fr_FR.utf8",
      "fr_FR",
      "it_IT.UTF-8",
      "es_ES.UTF-8",
  };
  for (const char* name : candidates) {
    if (std::setlocale(LC_ALL, name) != nullptr &&
        std::localeconv()->decimal_point[0] == ',') {
      return true;
    }
  }
  std::setlocale(LC_ALL, "C");
  return false;
}

// Regression for the locale-dependent atof/strtod/stod parsing the CLI,
// fault-spec, and JSON layers used to do: under a decimal-comma locale
// those silently truncated "4.5" to 4.0. Every numeric boundary must be
// locale-independent.
TEST(Numeric, ParsingIsLocaleIndependent) {
  if (!set_comma_locale()) {
    GTEST_SKIP() << "no decimal-comma locale installed";
  }

  double v = 0.0;
  EXPECT_TRUE(parse_double("4.5", &v));
  EXPECT_DOUBLE_EQ(v, 4.5);
  EXPECT_EQ(format_double(2.5), "2.5");

  const char* argv[] = {"prog", "--omega", "4.5"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("omega", 0.0), 4.5);

  // Fault-spec probabilities: "p0.5" must keep its fractional part (the
  // described arming mentions the 5 regardless of how the locale would
  // render it).
  util::fault::arm("optimizer.restart=p0.5,seed=3");
  const std::string desc = util::fault::describe();
  EXPECT_NE(desc.find("optimizer.restart=p0"), std::string::npos) << desc;
  EXPECT_NE(desc.find('5'), std::string::npos) << desc;
  util::fault::disarm();

  // JSON numbers: parse and dump both stay dot-separated.
  const auto doc = obs::Json::parse("{\"x\": 1.5, \"y\": -2.25e1}");
  EXPECT_DOUBLE_EQ(doc.find("x")->as_double(), 1.5);
  EXPECT_DOUBLE_EQ(doc.find("y")->as_double(), -22.5);
  const std::string dumped = obs::Json(0.1).dump();
  EXPECT_EQ(dumped.find(','), std::string::npos) << dumped;
  EXPECT_DOUBLE_EQ(obs::Json::parse(dumped).as_double(), 0.1);

  std::setlocale(LC_ALL, "C");
}

// ---------------------------------------------------------------------------
// Structured logging: the wire formats are pinned here — a change to
// either line shape is a breaking change for downstream log consumers.
// ---------------------------------------------------------------------------

namespace {

/// RAII guard restoring global log state mutated by a test.
struct LogStateGuard {
  LogLevel level = log_level();
  LogFormat format = log_format();
  std::string run = run_id();
  ~LogStateGuard() {
    set_log_level(level);
    set_log_format(format);
    set_run_id(run);
    set_log_phase("");
  }
};

}  // namespace

TEST(Log, TextFormatIsPinned) {
  LogStateGuard guard;
  set_log_format(LogFormat::kText);
  const std::string line = format_log_line(LogLevel::kWarn, "hello world");
  // 2026-08-05T12:34:56.789Z [WARN ] [tNN] hello world
  ASSERT_GE(line.size(), 25u) << line;
  const std::string ts = line.substr(0, 24);
  EXPECT_TRUE(std::regex_match(
      ts, std::regex(R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z)")))
      << ts;
  EXPECT_TRUE(std::regex_match(
      line.substr(24),
      std::regex(R"( \[WARN \] \[t\d{2,}\] hello world)")))
      << line;
  // Level names pad to a fixed 5-char column.
  EXPECT_NE(format_log_line(LogLevel::kInfo, "x").find("[INFO ]"),
            std::string::npos);
  EXPECT_NE(format_log_line(LogLevel::kError, "x").find("[ERROR]"),
            std::string::npos);
}

TEST(Log, JsonFormatIsPinned) {
  LogStateGuard guard;
  set_log_format(LogFormat::kJson);
  set_run_id("deadbeefdeadbeef");
  set_log_phase("optimize");
  const std::string line =
      format_log_line(LogLevel::kInfo, "msg with \"quotes\"\nand newline");
  const auto doc = obs::Json::parse(line);  // throws if not valid JSON
  EXPECT_TRUE(std::regex_match(
      doc.find("ts")->as_string(),
      std::regex(R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z)")));
  EXPECT_EQ(doc.find("level")->as_string(), "info");
  EXPECT_GE(doc.find("tid")->as_double(), 0.0);
  EXPECT_EQ(doc.find("run")->as_string(), "deadbeefdeadbeef");
  EXPECT_EQ(doc.find("phase")->as_string(), "optimize");
  EXPECT_EQ(doc.find("msg")->as_string(), "msg with \"quotes\"\nand newline");
  // With no phase set, the key is omitted entirely.
  set_log_phase("");
  const auto bare = obs::Json::parse(format_log_line(LogLevel::kInfo, "m"));
  EXPECT_EQ(bare.find("phase"), nullptr);
}

TEST(Log, RunIdIsStableAndOverridable) {
  LogStateGuard guard;
  const std::string id = run_id();
  EXPECT_EQ(id.size(), 16u);
  for (const char c : id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
  }
  EXPECT_EQ(run_id(), id);  // stable across calls
  set_run_id("0123456789abcdef");
  EXPECT_EQ(run_id(), "0123456789abcdef");
}

TEST(Log, ConcurrentWritersProduceWholeLines) {
  LogStateGuard guard;
  set_log_format(LogFormat::kJson);
  // Hammer format_log_line from several threads: every result must parse
  // on its own (no interleaving inside the formatter's shared state).
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &bad] {
      for (int i = 0; i < kIters; ++i) {
        const std::string line = format_log_line(
            LogLevel::kInfo, "t" + std::to_string(t) + " i" +
                                 std::to_string(i));
        try {
          const auto doc = obs::Json::parse(line);
          if (doc.find("msg") == nullptr) ++bad;
        } catch (...) {
          ++bad;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation.
// ---------------------------------------------------------------------------

TEST(Cancel, FreshTokenIsNotCancelled) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_EQ(token.reason(), util::CancelReason::kNone);
  EXPECT_NO_THROW(token.check());
  EXPECT_EQ(token.remaining_ms(-7), -7);  // fallback when no deadline
}

TEST(Cancel, ExplicitCancelLatchesAndThrows) {
  util::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kExplicit);
  try {
    token.check();
    FAIL() << "check() must throw once cancelled";
  } catch (const util::CancelledError& e) {
    EXPECT_EQ(e.reason(), util::CancelReason::kExplicit);
  }
}

TEST(Cancel, ExpiredDeadlineLatchesDeadlineReason) {
  util::CancelToken token;
  token.set_deadline_ms(0);  // already expired
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kDeadline);
  EXPECT_EQ(token.remaining_ms(), 0);
  EXPECT_THROW(token.check(), util::CancelledError);
}

TEST(Cancel, ExplicitCancelIsNotOverwrittenByDeadline) {
  util::CancelToken token;
  token.cancel();
  token.set_deadline_ms(0);
  EXPECT_TRUE(token.cancelled());
  // The first reason wins: a user cancel must not be re-reported as a
  // deadline just because the deadline also expired later.
  EXPECT_EQ(token.reason(), util::CancelReason::kExplicit);
}

TEST(Cancel, FutureDeadlineIsNotYetCancelled) {
  util::CancelToken token;
  token.set_deadline_ms(60000);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  const auto left = token.remaining_ms();
  EXPECT_GT(left, 0);
  EXPECT_LE(left, 60000);
}

TEST(Cancel, CopiesShareOneState) {
  util::CancelToken token;
  util::CancelToken copy = token;
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), util::CancelReason::kExplicit);
}

TEST(Cancel, ScopedAmbientTokenNestsAndRestores) {
  EXPECT_EQ(util::current_cancel_token(), nullptr);
  EXPECT_NO_THROW(util::cancel_point());  // no ambient token: no-op
  util::CancelToken outer;
  util::CancelToken inner;
  inner.cancel();
  {
    util::ScopedCancelToken install_outer(&outer);
    EXPECT_EQ(util::current_cancel_token(), &outer);
    EXPECT_NO_THROW(util::cancel_point());
    {
      util::ScopedCancelToken install_inner(&inner);
      EXPECT_EQ(util::current_cancel_token(), &inner);
      EXPECT_THROW(util::cancel_point(), util::CancelledError);
    }
    EXPECT_EQ(util::current_cancel_token(), &outer);
  }
  EXPECT_EQ(util::current_cancel_token(), nullptr);
}

}  // namespace
