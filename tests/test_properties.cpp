// Cross-module property sweeps (parameterized): arithmetic correctness of
// the word-level builder across widths, AIGER round-trips across the whole
// benchmark catalog, and function preservation of random synthesis
// sequences — the invariants everything else in the project rests on.

#include <gtest/gtest.h>

#include <tuple>

#include "clo/aig/io.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/circuits/wordlevel.hpp"
#include "clo/opt/transform.hpp"
#include "clo/techmap/tech_map.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
using circuits::Bus;
using circuits::CircuitBuilder;

std::uint64_t bus_value(const std::vector<bool>& bits, int begin, int width) {
  std::uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    if (bits[begin + i]) v |= 1ULL << i;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Arithmetic across widths
// ---------------------------------------------------------------------------

class ArithWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(ArithWidthTest, AddSubMulDivAgreeWithHostArithmetic) {
  const int w = GetParam();
  CircuitBuilder cb("arith");
  const Bus a = cb.input_bus("a", w);
  const Bus b = cb.input_bus("b", w);
  auto [sum, carry] = cb.add(a, b);
  cb.output_bus("sum", sum);
  cb.output("carry", carry);
  cb.output_bus("diff", cb.sub(a, b).first);
  cb.output_bus("prod", cb.mul(a, b));
  auto [quot, rem] = cb.divmod(a, b);
  cb.output_bus("quot", quot);
  cb.output_bus("rem", rem);
  const aig::Aig g = cb.take();

  clo::Rng rng(100 + w);
  const std::uint64_t mask = (w == 64) ? ~0ULL : ((1ULL << w) - 1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t x = rng.next_u64() & mask;
    const std::uint64_t y =
        std::max<std::uint64_t>(1, rng.next_u64() & mask);  // avoid div by 0
    std::vector<bool> in;
    for (int i = 0; i < w; ++i) in.push_back((x >> i) & 1);
    for (int i = 0; i < w; ++i) in.push_back((y >> i) & 1);
    const auto out = aig::simulate(g, in);
    int at = 0;
    EXPECT_EQ(bus_value(out, at, w), (x + y) & mask);
    at += w;
    EXPECT_EQ(out[at], ((x + y) >> w) != 0);
    at += 1;
    EXPECT_EQ(bus_value(out, at, w), (x - y) & mask);
    at += w;
    EXPECT_EQ(bus_value(out, at, 2 * w), x * y);
    at += 2 * w;
    EXPECT_EQ(bus_value(out, at, w), x / y);
    at += w;
    EXPECT_EQ(bus_value(out, at, w), x % y);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithWidthTest,
                         ::testing::Values(2, 3, 5, 8, 11),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// AIGER round-trip over the whole catalog
// ---------------------------------------------------------------------------

class AigerCatalogTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AigerCatalogTest, BinaryRoundTripIsEquivalent) {
  const aig::Aig g = circuits::make_benchmark(GetParam());
  std::stringstream ss;
  aig::write_aiger_binary(g, ss);
  const aig::Aig back = aig::read_aiger(ss);
  EXPECT_EQ(back.num_ands(), g.num_ands());
  clo::Rng rng(55);
  EXPECT_TRUE(aig::cec(g, back, rng, 64).equivalent);
}

namespace {
std::vector<std::string> small_catalog() {
  // Everything except the two largest (kept out purely for test runtime).
  std::vector<std::string> names;
  for (const auto& info : circuits::benchmark_catalog()) {
    if (info.name == "sin" || info.name == "hyp") continue;
    names.push_back(info.name);
  }
  return names;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, AigerCatalogTest,
                         ::testing::ValuesIn(small_catalog()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Random-sequence function preservation (the master invariant)
// ---------------------------------------------------------------------------

class SequenceFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SequenceFuzzTest, RandomSequencePreservesFunction) {
  const auto& [name, seed] = GetParam();
  aig::Aig g = circuits::make_benchmark(name);
  const aig::Aig original = g;
  clo::Rng rng(seed);
  const auto seq = opt::random_sequence(8, rng);
  opt::run_sequence(g, seq);
  EXPECT_NO_THROW(g.check());
  const auto result = aig::cec(original, g, rng, 64);
  EXPECT_TRUE(result.equivalent)
      << name << " seed " << seed << " seq " << opt::sequence_to_string(seq)
      << " PO " << result.failing_po;
}

INSTANTIATE_TEST_SUITE_P(
    CircuitsAndSeeds, SequenceFuzzTest,
    ::testing::Combine(::testing::Values("cavlc", "c499", "router", "i2c",
                                         "int2float"),
                       ::testing::Values(101, 202, 303)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Mapper Pareto property across the catalog
// ---------------------------------------------------------------------------

class MapParetoTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MapParetoTest, ObjectivesTradeOffWithinHeuristicSlack) {
  const aig::Aig g = circuits::make_benchmark(GetParam());
  const auto lib = techmap::CellLibrary::asap7();
  techmap::MapParams ap;
  ap.objective = techmap::MapParams::Objective::kArea;
  techmap::MapParams dp;
  dp.objective = techmap::MapParams::Objective::kDelay;
  const auto ra = techmap::tech_map(g, lib, ap);
  const auto rd = techmap::tech_map(g, lib, dp);
  // Area flow is a heuristic: the area-oriented cover can occasionally be
  // a bit larger than the delay-oriented one, but never wildly so; delay
  // mode is exact-DP on arrivals, so it is never slower.
  EXPECT_LE(ra.area_um2, rd.area_um2 * 1.20 + 1e-9) << GetParam();
  EXPECT_LE(rd.delay_ps, ra.delay_ps + 1e-9) << GetParam();
}

TEST_P(MapParetoTest, EvaluatorReportsBestOfBothCovers) {
  const aig::Aig g = circuits::make_benchmark(GetParam());
  const auto lib = techmap::CellLibrary::asap7();
  techmap::MapParams ap;
  ap.objective = techmap::MapParams::Objective::kArea;
  techmap::MapParams dp;
  dp.objective = techmap::MapParams::Objective::kDelay;
  const auto ra = techmap::tech_map(g, lib, ap);
  const auto rd = techmap::tech_map(g, lib, dp);
  core::QorEvaluator ev(g);
  const auto q = ev.original();
  EXPECT_NEAR(q.area_um2, std::min(ra.area_um2, rd.area_um2), 1e-9);
  EXPECT_NEAR(q.delay_ps, std::min(ra.delay_ps, rd.delay_ps), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Subset, MapParetoTest,
                         ::testing::Values("ctrl", "cavlc", "router", "c432",
                                           "c880", "c1908", "int2float",
                                           "priority", "dec", "max"),
                         [](const auto& info) { return info.param; });

}  // namespace
