// ThreadPool unit tests: task completion, exception propagation through
// futures and parallel_for, nested submission (inline execution on worker
// threads), and the zero/one-worker edge cases.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "clo/util/thread_pool.hpp"

namespace {

using clo::util::ThreadPool;
using clo::util::parallel_for;
using clo::util::parallel_map;
using clo::util::resolve_threads;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ZeroWorkersMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, OneWorkerPoolCompletesAllTasks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

TEST(ThreadPool, NestedSubmissionRunsInline) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    // Submitting from a worker must not deadlock even when every worker
    // is busy: nested tasks run inline on the submitting thread.
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ThreadPool, NestedParallelForDegradesToSerial) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  parallel_for(&pool, 8, [&](std::size_t) {
    parallel_for(&pool, 8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: serial by contract
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::logic_error("item 37");
                   }),
      std::logic_error);
}

TEST(ParallelMap, ProducesResultsInIndexOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<int>(&pool, 64, [](std::size_t i) {
    return static_cast<int>(i) * 3;
  });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(ParallelFor, SerialPathAbandonsItemsAfterAFailure) {
  // Pins the documented abandonment semantics on the deterministic serial
  // path: once an item throws, later items never run.
  std::atomic<int> attempts{0};
  EXPECT_THROW(parallel_for(nullptr, 10,
                            [&](std::size_t i) {
                              attempts.fetch_add(1);
                              if (i == 4) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  EXPECT_EQ(attempts.load(), 5);  // items 5..9 were abandoned
}

TEST(ParallelForCollect, AttemptsEveryItemAndSortsFailures) {
  ThreadPool pool(4);
  std::atomic<int> attempts{0};
  const auto errors =
      clo::util::parallel_for_collect(&pool, 200, [&](std::size_t i) {
        attempts.fetch_add(1);
        if (i % 17 == 3) throw std::runtime_error("item " + std::to_string(i));
      });
  EXPECT_EQ(attempts.load(), 200);  // no abandonment, unlike parallel_for
  ASSERT_EQ(errors.size(), 12u);    // i in {3, 20, 37, ..., 190}
  for (std::size_t k = 0; k < errors.size(); ++k) {
    EXPECT_EQ(errors[k].index, 3 + 17 * k);
    EXPECT_EQ(errors[k].message, "item " + std::to_string(errors[k].index));
    EXPECT_TRUE(errors[k].error != nullptr);
    if (k > 0) {
      EXPECT_LT(errors[k - 1].index, errors[k].index);
    }
  }
}

TEST(ParallelForCollect, NullPoolAttemptsEveryItemSerially) {
  std::vector<int> order;
  const auto errors =
      clo::util::parallel_for_collect(nullptr, 6, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
        if (i == 1 || i == 4) throw std::logic_error("x");
      });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].index, 1u);
  EXPECT_EQ(errors[1].index, 4u);
}

TEST(ParallelForCollect, AllSucceedingReturnsNoErrors) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  EXPECT_TRUE(clo::util::parallel_for_collect(&pool, 50, [&](std::size_t i) {
                sum.fetch_add(static_cast<int>(i));
              }).empty());
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
  EXPECT_TRUE(
      clo::util::parallel_for_collect(&pool, 0, [](std::size_t) {}).empty());
}

TEST(ParallelForCollect, DescribesNonStdExceptions) {
  const auto errors = clo::util::parallel_for_collect(
      nullptr, 1, [](std::size_t) { throw 42; });
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].message, "unknown exception");
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // The destructor contract: tasks queued but not yet started still run,
  // so submit-then-destroy never silently drops work.
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&completed] { completed.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(completed.load(), 64);
}

TEST(ResolveThreads, LiteralAndHardwareRequests) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(6), 6u);
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_GE(resolve_threads(-3), 1u);
}

}  // namespace
