#include <gtest/gtest.h>

#include <cmath>

#include "clo/circuits/generators.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;

TEST(Embedding, OrthogonalUnitVarianceRows) {
  clo::Rng rng(1);
  models::TransformEmbedding emb(8, rng);
  const auto& table = emb.table();
  ASSERT_EQ(table.size(), static_cast<std::size_t>(opt::kNumTransforms));
  for (std::size_t i = 0; i < table.size(); ++i) {
    double norm = 0.0;
    for (float v : table[i]) norm += static_cast<double>(v) * v;
    EXPECT_NEAR(norm, 8.0, 1e-4);  // norm sqrt(d): unit coordinate variance
    for (std::size_t j = i + 1; j < table.size(); ++j) {
      double dot = 0.0;
      for (int k = 0; k < 8; ++k) dot += table[i][k] * table[j][k];
      EXPECT_NEAR(dot, 0.0, 1e-5);
    }
  }
}

TEST(Embedding, RejectsTooSmallDim) {
  clo::Rng rng(2);
  EXPECT_THROW(models::TransformEmbedding(4, rng), std::invalid_argument);
}

TEST(Embedding, EmbedRetrieveRoundTrip) {
  clo::Rng rng(3);
  models::TransformEmbedding emb(8, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto seq = opt::random_sequence(20, rng);
    const auto latent = emb.embed(seq);
    EXPECT_EQ(latent.size(), 20u * 8u);
    EXPECT_EQ(emb.retrieve(latent, 20), seq);
    EXPECT_NEAR(emb.discrepancy(latent, 20), 0.0, 1e-6);
  }
}

TEST(Embedding, RetrievalRobustToSmallNoise) {
  clo::Rng rng(4);
  models::TransformEmbedding emb(8, rng);
  const auto seq = opt::random_sequence(20, rng);
  auto latent = emb.embed(seq);
  // Orthonormal rows are sqrt(2) apart; noise well below half that
  // distance must not flip retrieval.
  for (auto& v : latent) v += 0.1f * static_cast<float>(rng.next_gaussian());
  EXPECT_EQ(emb.retrieve(latent, 20), seq);
  EXPECT_GT(emb.discrepancy(latent, 20), 0.0);
}

TEST(Embedding, DiscrepancyGrowsWithNoise) {
  clo::Rng rng(5);
  models::TransformEmbedding emb(8, rng);
  const auto seq = opt::random_sequence(20, rng);
  const auto base = emb.embed(seq);
  double prev = 0.0;
  for (float noise : {0.05f, 0.2f, 0.8f}) {
    auto latent = base;
    clo::Rng nrng(6);
    for (auto& v : latent) v += noise * static_cast<float>(nrng.next_gaussian());
    const double d = emb.discrepancy(latent, 20);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

class SurrogateKindTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SurrogateKindTest, ForwardShapesAndGradients) {
  clo::Rng rng(7);
  const aig::Aig g = circuits::make_benchmark("ctrl");
  models::SurrogateConfig cfg;
  auto model = models::make_surrogate(GetParam(), g, cfg, rng);
  EXPECT_EQ(model->name(), GetParam());
  EXPECT_GT(model->num_parameters(), 100u);

  nn::Tensor x = nn::Tensor::randn({3, cfg.seq_len * cfg.embed_dim}, rng,
                                   1.0f, true);
  auto out = model->forward(x);
  EXPECT_EQ(out.area.shape(), (std::vector<int>{3, 1}));
  EXPECT_EQ(out.delay.shape(), (std::vector<int>{3, 1}));
  // Gradient w.r.t. the input embedding exists and is non-zero — the
  // property that makes continuous optimization possible (Eq. 3).
  nn::backward(nn::sum_all(nn::add(out.area, out.delay)));
  double norm = 0.0;
  for (float v : x.grad()) norm += static_cast<double>(v) * v;
  EXPECT_GT(norm, 0.0);
}

TEST_P(SurrogateKindTest, DifferentInputsDifferentOutputs) {
  clo::Rng rng(8);
  const aig::Aig g = circuits::make_benchmark("ctrl");
  models::SurrogateConfig cfg;
  auto model = models::make_surrogate(GetParam(), g, cfg, rng);
  nn::Tensor x1 = nn::Tensor::randn({1, cfg.seq_len * cfg.embed_dim}, rng, 1.0f);
  nn::Tensor x2 = nn::Tensor::randn({1, cfg.seq_len * cfg.embed_dim}, rng, 1.0f);
  const float y1 = model->forward(x1).area.item();
  const float y2 = model->forward(x2).area.item();
  EXPECT_NE(y1, y2);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SurrogateKindTest,
                         ::testing::Values("mtl", "lostin", "cnn"),
                         [](const auto& info) { return info.param; });

TEST(Surrogate, UnknownKindThrows) {
  clo::Rng rng(9);
  const aig::Aig g = circuits::make_benchmark("c17");
  EXPECT_THROW(models::make_surrogate("bogus", g, {}, rng),
               std::invalid_argument);
}

TEST(AigEncoder, DeterministicForSameCircuitAndSeed) {
  const aig::Aig g = circuits::make_benchmark("c432");
  clo::Rng rng1(10), rng2(10);
  models::AigEncoder e1(g, 16, 256, rng1);
  models::AigEncoder e2(g, 16, 256, rng2);
  const auto v1 = e1.forward();
  const auto v2 = e2.forward();
  for (std::size_t i = 0; i < v1.numel(); ++i) {
    EXPECT_FLOAT_EQ(v1.data()[i], v2.data()[i]);
  }
}

TEST(AigEncoder, DistinguishesCircuits) {
  clo::Rng rng1(11), rng2(11);
  models::AigEncoder e1(circuits::make_benchmark("c432"), 16, 256, rng1);
  models::AigEncoder e2(circuits::make_benchmark("dec"), 16, 256, rng2);
  const auto v1 = e1.forward();
  const auto v2 = e2.forward();
  double diff = 0.0;
  for (std::size_t i = 0; i < v1.numel(); ++i) {
    diff += std::abs(v1.data()[i] - v2.data()[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(AigEncoder, HandlesHugeCircuitsViaSubsampling) {
  clo::Rng rng(12);
  models::AigEncoder enc(circuits::make_benchmark("sin"), 16, 128, rng);
  EXPECT_EQ(enc.forward().shape(), (std::vector<int>{1, 16}));
}

}  // namespace
