#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <sstream>

#include "clo/circuits/generators.hpp"
#include "clo/opt/transform.hpp"
#include "clo/techmap/tech_map.hpp"

namespace {

using namespace clo;
using aig::Aig;
using aig::Lit;

const techmap::CellLibrary& lib() {
  static const techmap::CellLibrary kLib = techmap::CellLibrary::asap7();
  return kLib;
}

TEST(CellLibrary, HasCoreCells) {
  for (const char* name :
       {"INVx1", "NAND2x1", "NOR2x1", "XOR2x1", "AOI21x1", "MUX21x1"}) {
    EXPECT_GE(lib().find(name), 0) << name;
  }
  EXPECT_EQ(lib().find("FAKECELL"), -1);
  EXPECT_EQ(lib().cell(lib().inverter_index()).name, "INVx1");
}

TEST(CellLibrary, CellFunctionsCorrect) {
  const auto& nand2 = lib().cell(lib().find("NAND2x1"));
  EXPECT_EQ(nand2.function, 0x7);  // !(ab)
  const auto& xor2 = lib().cell(lib().find("XOR2x1"));
  EXPECT_EQ(xor2.function, 0x6);
  const auto& aoi21 = lib().cell(lib().find("AOI21x1"));
  // !(ab + c): minterms where output is 1: c=0 and !(ab).
  EXPECT_EQ(aoi21.function, 0x07);
}

TEST(CellLibrary, MatchFindsPermutedAndPhasedFunctions) {
  // f = a & !b has no direct cell but matches AND2/NOR2 with a phase.
  const auto m = lib().match(0x2, 2);  // a & !b over 2 vars: minterm a=1,b=0
  ASSERT_GE(m.cell_index, 0);
  // Any match must reproduce the function through its cell.
  const auto& cell = lib().cell(m.cell_index);
  for (int minterm = 0; minterm < 4; ++minterm) {
    int cell_minterm = 0;
    for (int i = 0; i < 2; ++i) {
      const bool x = ((minterm >> i) & 1) != 0;
      if (x != m.input_phase[i]) cell_minterm |= 1 << m.pin_of_input[i];
    }
    const bool expected = (0x2 >> minterm) & 1;
    EXPECT_EQ(static_cast<bool>((cell.function >> cell_minterm) & 1), expected);
  }
}

TEST(CellLibrary, MatchAllTwoVarFunctions) {
  for (int bits = 1; bits < 15; ++bits) {  // skip constants
    if (bits == 0b1010 || bits == 0b0101 || bits == 0b1100 || bits == 0b0011) {
      continue;  // single-variable functions are handled as wires
    }
    EXPECT_GE(lib().match(static_cast<std::uint16_t>(bits), 2).cell_index, 0)
        << "f=" << bits;
  }
}

TEST(TechMap, C17MatchesPaperCalibration) {
  // c17 is 6 NAND2 in 3 levels in the classic netlist; the library's NAND2
  // is calibrated so that cover costs 3.73 um^2 / 18.52 ps like the
  // paper's Table II row. Our delay-oriented mapper may legally trade a
  // little area for equal-or-better delay using complex cells, so assert
  // a band around the calibration point rather than the exact cover.
  const Aig g = circuits::make_benchmark("c17");
  const auto r = techmap::tech_map(g, lib());
  EXPECT_GE(r.area_um2, 3.7);
  EXPECT_LE(r.area_um2, 4.8);
  EXPECT_LE(r.delay_ps, 3 * 6.1733 + 1e-6);  // never slower than 6x NAND2
  EXPECT_GE(r.delay_ps, 15.0);
  EXPECT_GE(r.cell_histogram.at("NAND2x1"), 3);
  // An area-oriented mapping recovers (close to) the classic NAND cover.
  techmap::MapParams area_p;
  area_p.objective = techmap::MapParams::Objective::kArea;
  const auto ra = techmap::tech_map(g, lib(), area_p);
  EXPECT_NEAR(ra.area_um2, 6 * 0.6216, 0.7);
}

TEST(TechMap, SingleGateCircuits) {
  {
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(g.and_of(a, b));
    const auto r = techmap::tech_map(g, lib());
    EXPECT_EQ(r.num_cells, 1);
  }
  {
    Aig g;
    const Lit a = g.add_pi();
    g.add_po(aig::lit_not(a));
    const auto r = techmap::tech_map(g, lib());
    EXPECT_EQ(r.num_cells, 1);
    EXPECT_EQ(r.cell_histogram.at("INVx1"), 1);
  }
}

TEST(TechMap, XorUsesXorCell) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.xor_of(a, b));
  const auto r = techmap::tech_map(g, lib());
  // 3 AND nodes should collapse into one XOR2 cell.
  EXPECT_EQ(r.num_cells, 1);
  EXPECT_EQ(r.cell_histogram.at("XOR2x1"), 1);
}

TEST(TechMap, MuxAndMajUseDedicatedCells) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit s = g.add_pi();
  g.add_po(g.mux_of(s, a, b));
  g.add_po(g.maj_of(a, b, s));
  const auto r = techmap::tech_map(g, lib());
  EXPECT_EQ(r.cell_histogram.count("MUX21x1") +
                r.cell_histogram.count("MAJ3x1"),
            2u);
}

TEST(TechMap, ConstantAndWireOutputs) {
  Aig g;
  const Lit a = g.add_pi();
  g.add_po(aig::kLitTrue);
  g.add_po(a);
  const auto r = techmap::tech_map(g, lib());
  EXPECT_EQ(r.num_cells, 0);
  EXPECT_DOUBLE_EQ(r.delay_ps, 0.0);
}

TEST(TechMap, SharedLogicCountedOnce) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit shared = g.and_of(a, b);
  g.add_po(g.and_of(shared, c));
  g.add_po(g.and_of(shared, aig::lit_not(c)));
  const auto r = techmap::tech_map(g, lib());
  // The shared AND must not be duplicated arbitrarily: at most 4 cells.
  EXPECT_LE(r.num_cells, 4);
}

TEST(TechMap, DelayObjectiveNoWorseThanAreaObjective) {
  const Aig g = circuits::make_benchmark("c880");
  techmap::MapParams delay_p;
  delay_p.objective = techmap::MapParams::Objective::kDelay;
  techmap::MapParams area_p;
  area_p.objective = techmap::MapParams::Objective::kArea;
  const auto rd = techmap::tech_map(g, lib(), delay_p);
  const auto ra = techmap::tech_map(g, lib(), area_p);
  EXPECT_LE(rd.delay_ps, ra.delay_ps + 1e-9);
  EXPECT_LE(ra.area_um2, rd.area_um2 + 1e-9);
}

TEST(TechMap, AreaScalesWithCircuitSize) {
  const auto small = techmap::tech_map(circuits::make_benchmark("ctrl"), lib());
  const auto large = techmap::tech_map(circuits::make_benchmark("div"), lib());
  EXPECT_GT(large.area_um2, small.area_um2 * 2);
}

TEST(TechMap, EveryBenchmarkMapsCompletely) {
  for (const auto& info : circuits::benchmark_catalog()) {
    const Aig g = circuits::make_benchmark(info.name);
    const auto r = techmap::tech_map(g, lib());
    EXPECT_GT(r.area_um2, 0.0) << info.name;
    EXPECT_GT(r.delay_ps, 0.0) << info.name;
    EXPECT_GT(r.num_cells, 0) << info.name;
  }
}

TEST(TechMap, OptimizedCircuitMapsSmaller) {
  Aig g = circuits::make_benchmark("sqrt");
  const auto before = techmap::tech_map(g, lib());
  clo::opt::run_sequence(
      g, clo::opt::parse_sequence("b;rw;rf;b;rw;rwz;b;rfz;rwz;b"));
  const auto after = techmap::tech_map(g, lib());
  EXPECT_LT(after.area_um2, before.area_um2);
}


TEST(Netlist, InstancesRecordedWhenRequested) {
  const Aig g = circuits::make_benchmark("c17");
  techmap::MapParams params;
  params.keep_netlist = true;
  const auto r = techmap::tech_map(g, lib(), params);
  EXPECT_EQ(static_cast<int>(r.instances.size()), r.num_cells);
  EXPECT_EQ(r.po_nets.size(), g.num_pos());
  for (const auto& inst : r.instances) {
    ASSERT_GE(inst.cell_index, 0);
    const auto& cell = lib().cell(inst.cell_index);
    EXPECT_EQ(static_cast<int>(inst.input_nets.size()), cell.num_inputs);
    EXPECT_FALSE(inst.output_net.empty());
    for (const auto& net : inst.input_nets) EXPECT_FALSE(net.empty());
  }
}

TEST(Netlist, VerilogSimulatesCorrectly) {
  // Structural check: every PO net is driven (by an instance output, a PI,
  // or a constant) and the Verilog text contains the right modules.
  const Aig g = circuits::make_benchmark("int2float");
  techmap::MapParams params;
  params.keep_netlist = true;
  const auto r = techmap::tech_map(g, lib(), params);
  std::set<std::string> driven{"const0", "const1"};
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    std::string s = g.pi_name(i);
    for (char& ch : s) {
      if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_') ch = '_';
    }
    driven.insert(s);
  }
  for (const auto& inst : r.instances) driven.insert(inst.output_net);
  for (const auto& po : r.po_nets) {
    EXPECT_TRUE(driven.count(po)) << po;
  }
  for (const auto& inst : r.instances) {
    for (const auto& in : inst.input_nets) {
      EXPECT_TRUE(driven.count(in)) << in;
    }
  }
  std::ostringstream os;
  techmap::write_verilog(r, lib(), g, os);
  const std::string v = os.str();
  EXPECT_NE(v.find("module int2float("), std::string::npos);
  EXPECT_NE(v.find("assign"), std::string::npos);
}

}  // namespace
