// End-to-end integration tests: the full Fig. 1 pipeline on small circuits,
// checking the paper's qualitative claims at miniature scale — the
// diffusion model keeps latents retrievable, the optimized sequence is
// valid, and the runtime accounting buckets are populated.

#include <gtest/gtest.h>

#include <algorithm>

#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;

core::PipelineConfig tiny_config() {
  core::PipelineConfig cfg;
  cfg.dataset_size = 60;
  cfg.diffusion_steps = 40;
  cfg.diffusion_iters = 600;
  cfg.restarts = 2;
  cfg.surrogate = "cnn";  // fastest to train
  cfg.surrogate_train.epochs = 40;
  cfg.seed = 5;
  return cfg;
}

TEST(Pipeline, EndToEndProducesValidSequence) {
  core::QorEvaluator ev(circuits::make_benchmark("ctrl"));
  core::CloPipeline pipeline(tiny_config());
  const auto result = pipeline.run(ev);

  ASSERT_EQ(result.best_sequence.size(), 20u);
  EXPECT_GT(result.best.area_um2, 0.0);
  EXPECT_GT(result.original.area_um2, 0.0);
  // The retrieved latent sits essentially on the embedding manifold:
  // embeddings are 4.0 apart (distance sqrt(2d)), so < 2.0 means every
  // position decodes unambiguously.
  EXPECT_LT(result.best_discrepancy, 2.0);
  // Validated QoR must match re-evaluating the sequence.
  const auto check = ev.evaluate(result.best_sequence);
  EXPECT_DOUBLE_EQ(check.area_um2, result.best.area_um2);
  // Timing buckets.
  EXPECT_GT(result.dataset_seconds, 0.0);
  EXPECT_GT(result.surrogate_train_seconds, 0.0);
  EXPECT_GT(result.diffusion_train_seconds, 0.0);
  EXPECT_GT(result.optimize_seconds, 0.0);
  EXPECT_EQ(result.restarts.size(), 2u);
  EXPECT_EQ(result.restart_qor.size(), 2u);
}

TEST(Pipeline, OptimizedBeatsDatasetMedian) {
  // The guided search should do no worse than the middle of the random
  // dataset it was trained on (usually far better), judged on the same
  // weighted objective the optimizer minimizes.
  core::QorEvaluator ev(circuits::make_benchmark("int2float"));
  auto cfg = tiny_config();
  cfg.restarts = 3;
  core::CloPipeline pipeline(cfg);
  const auto result = pipeline.run(ev);
  const auto& ds = pipeline.dataset();
  auto score = [&](const core::Qor& q) {
    return cfg.optimize.weight_area * (q.area_um2 - ds.area_mean) /
               ds.area_std +
           cfg.optimize.weight_delay * (q.delay_ps - ds.delay_mean) /
               ds.delay_std;
  };
  std::vector<double> scores;
  for (const auto& q : ds.qor) scores.push_back(score(q));
  std::sort(scores.begin(), scores.end());
  EXPECT_LE(score(result.best), scores[scores.size() / 2]);
}

TEST(Pipeline, DiffusionKeepsDiscrepancyLowVsAblation) {
  // The paper's central ablation (Fig. 6/7): with the diffusion term the
  // final latents are near feasible embeddings; gradient-only drifts away.
  core::QorEvaluator ev(circuits::make_benchmark("router"));
  auto cfg = tiny_config();
  core::CloPipeline with(cfg);
  const auto rw = with.run(ev);

  auto cfg_no = tiny_config();
  cfg_no.optimize.use_diffusion = false;
  core::QorEvaluator ev2(circuits::make_benchmark("router"));
  core::CloPipeline without(cfg_no);
  const auto rn = without.run(ev2);

  double disc_with = 0.0, disc_without = 0.0;
  for (const auto& r : rw.restarts) disc_with += r.discrepancy;
  for (const auto& r : rn.restarts) disc_without += r.discrepancy;
  EXPECT_LT(disc_with, disc_without);
}

TEST(Pipeline, TrainedModelsAccessibleAfterRun) {
  core::QorEvaluator ev(circuits::make_benchmark("c17"));
  core::CloPipeline pipeline(tiny_config());
  pipeline.run(ev);
  EXPECT_NE(pipeline.embedding(), nullptr);
  EXPECT_NE(pipeline.surrogate(), nullptr);
  EXPECT_NE(pipeline.diffusion(), nullptr);
  EXPECT_EQ(pipeline.dataset().size(), 60u);
}

TEST(Pipeline, DeterministicGivenSeed) {
  auto run_once = [] {
    core::QorEvaluator ev(circuits::make_benchmark("c17"));
    core::CloPipeline pipeline(tiny_config());
    return pipeline.run(ev);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(opt::sequence_to_string(a.best_sequence),
            opt::sequence_to_string(b.best_sequence));
  EXPECT_DOUBLE_EQ(a.best.area_um2, b.best.area_um2);
}

}  // namespace
