// Telemetry acceptance tests: exporter lifecycle (start/stop idempotence,
// snapshot-under-concurrent-updates, JSONL well-formedness of every
// record), the Prometheus text endpoint (listener round-trip and
// name/label escaping), the span-derived profiler (balanced and
// unbalanced trees, self-time accounting, multi-thread merge), progress
// gauges, and the /proc resource sampler.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "clo/util/exporter.hpp"
#include "clo/util/log.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/proc.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::reset_trace();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_trace();
    obs::Registry::instance().reset();
  }
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Exporter lifecycle + JSONL stream.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ExporterWritesValidRecordsAndIsIdempotent) {
  const std::string path = temp_path("metrics_lifecycle.jsonl");
  std::remove(path.c_str());
  obs::Registry::instance().add_counter("test.counter", 7);
  obs::Registry::instance().set_gauge("test.gauge", 2.5);
  obs::Registry::instance().observe("test.hist", 0.25);

  util::ExporterOptions opts;
  opts.metrics_path = path;
  opts.interval_ms = 20;
  util::Exporter exporter(opts);
  ASSERT_TRUE(exporter.start());
  EXPECT_TRUE(exporter.start());  // second start is a no-op
  EXPECT_TRUE(exporter.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  exporter.stop();
  exporter.stop();  // second stop is a no-op
  EXPECT_FALSE(exporter.running());

  const auto lines = read_lines(path);
  // One record at start, one per elapsed interval, one final on stop.
  ASSERT_GE(lines.size(), 3u);
  std::uint64_t prev_seq = 0;
  double prev_t = -1.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const obs::Json rec = obs::Json::parse(lines[i]);  // throws on bad JSON
    ASSERT_NE(rec.find("schema"), nullptr) << lines[i];
    EXPECT_EQ(rec.find("schema")->as_string(), "clo.metrics.v1");
    EXPECT_EQ(rec.find("run")->as_string(), clo::run_id());
    const std::uint64_t seq =
        static_cast<std::uint64_t>(rec.find("seq")->as_double());
    if (i > 0) {
      EXPECT_EQ(seq, prev_seq + 1) << "seq must be consecutive";
    }
    prev_seq = seq;
    const double t = rec.find("t_ms")->as_double();
    EXPECT_GE(t, prev_t);
    prev_t = t;
    EXPECT_EQ(static_cast<std::uint64_t>(rec.find("counters")
                                             ->find("test.counter")
                                             ->as_double()),
              7u);
    EXPECT_DOUBLE_EQ(rec.find("gauges")->find("test.gauge")->as_double(),
                     2.5);
    const obs::Json* hist = rec.find("histograms")->find("test.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(static_cast<int>(hist->find("count")->as_double()), 1);
    // Exporter resource gauges ride along on every record.
    EXPECT_GT(rec.find("gauges")->find("proc.peak_rss_bytes")->as_double(),
              0.0);
  }
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, ExporterWithoutSinksRefusesToStart) {
  util::Exporter exporter;
  EXPECT_FALSE(exporter.start());
  EXPECT_FALSE(exporter.running());
  exporter.stop();  // harmless on a never-started exporter
}

TEST_F(TelemetryTest, ExporterSnapshotsUnderConcurrentUpdates) {
  const std::string path = temp_path("metrics_concurrent.jsonl");
  std::remove(path.c_str());
  util::ExporterOptions opts;
  opts.metrics_path = path;
  opts.interval_ms = 5;
  util::Exporter exporter(opts);
  ASSERT_TRUE(exporter.start());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Registry::instance().add_counter("conc.counter");
        if (i % 64 == 0) {
          obs::Registry::instance().observe("conc.hist", i * 1e-6);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  exporter.stop();

  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 2u);
  // Every mid-flight record parses; the final record is exact.
  std::uint64_t last_count = 0;
  for (const auto& line : lines) {
    const obs::Json rec = obs::Json::parse(line);
    const obs::Json* c = rec.find("counters")->find("conc.counter");
    if (c != nullptr) {
      const auto v = static_cast<std::uint64_t>(c->as_double());
      EXPECT_GE(v, last_count) << "counter must be monotone across records";
      last_count = v;
    }
  }
  EXPECT_EQ(last_count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Prometheus endpoint.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, PrometheusNamesAreSanitized) {
  EXPECT_EQ(obs::prometheus_name("pipeline.optimize_seconds"),
            "clo_pipeline_optimize_seconds");
  EXPECT_EQ(obs::prometheus_name("weird-name with spaces"),
            "clo_weird_name_with_spaces");
  EXPECT_EQ(obs::prometheus_name("ok_name:sub"), "clo_ok_name:sub");
}

TEST_F(TelemetryTest, PrometheusLabelEscaping) {
  EXPECT_EQ(obs::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape_label("a\nb"), "a\\nb");
}

TEST_F(TelemetryTest, PrometheusTextFormat) {
  auto& reg = obs::Registry::instance();
  reg.add_counter("my.counter", 3);
  reg.set_gauge("my.gauge", 1.5);
  reg.observe("my.hist", 0.5);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE clo_my_counter_total counter\n"
                      "clo_my_counter_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE clo_my_gauge gauge\nclo_my_gauge 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE clo_my_hist summary\n"), std::string::npos);
  EXPECT_NE(text.find("clo_my_hist{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("clo_my_hist{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_NE(text.find("clo_my_hist_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("clo_my_hist_count 1\n"), std::string::npos);
}

TEST_F(TelemetryTest, ListenerServesPrometheusOverHttp) {
  obs::Registry::instance().add_counter("http.requests", 42);
  util::ExporterOptions opts;
  opts.port = 0;  // ephemeral
  util::Exporter exporter(opts);
  ASSERT_TRUE(exporter.start());
  ASSERT_GT(exporter.bound_port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(exporter.bound_port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char request[] = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request, sizeof request - 1, 0), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  exporter.stop();

  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("clo_http_requests_total 42\n"),
            std::string::npos);
  // Content-Length must equal the actual body size.
  const auto header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string body = response.substr(header_end + 4);
  const auto cl_pos = response.find("Content-Length: ");
  ASSERT_NE(cl_pos, std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::atoi(response.c_str() + cl_pos + 16)),
            body.size());
}

TEST_F(TelemetryTest, ListenerSurvivesClientDisconnectMidResponse) {
  // Enough metrics that the response body far exceeds a socket send
  // buffer: the listener is guaranteed to still be writing when the
  // client slams the connection shut. Before MSG_NOSIGNAL (and the
  // process-wide SIGPIPE ignore) this killed the whole process.
  for (int i = 0; i < 20000; ++i) {
    obs::Registry::instance().add_counter(
        "disconnect.stress.metric_number_" + std::to_string(i), i);
  }
  util::ExporterOptions opts;
  opts.port = 0;
  util::Exporter exporter(opts);
  ASSERT_TRUE(exporter.start());

  for (int round = 0; round < 3; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(exporter.bound_port()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const char request[] = "GET / HTTP/1.0\r\n\r\n";
    ASSERT_GT(::send(fd, request, sizeof request - 1, 0), 0);
    ::close(fd);  // disconnect before reading a single response byte
  }

  // The listener thread must still be alive and serving.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(exporter.bound_port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char request[] = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request, sizeof request - 1, 0), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  exporter.stop();
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("disconnect_stress_metric_number_19999"),
            std::string::npos);
}

TEST_F(TelemetryTest, ListenerClosesSilentClientsInsteadOfStalling) {
  obs::Registry::instance().add_counter("silent.test", 1);
  util::ExporterOptions opts;
  opts.port = 0;
  opts.idle_timeout_ms = 200;  // close do-nothing clients quickly
  util::Exporter exporter(opts);
  ASSERT_TRUE(exporter.start());

  // A client that connects and never sends a request used to park the
  // single listener thread in a blocking ::recv forever.
  const int silent = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(exporter.bound_port()));
  ASSERT_EQ(
      ::connect(silent, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  // A real scrape right behind it must still be answered (the silent
  // client costs at most idle_timeout_ms).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char request[] = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request, sizeof request - 1, 0), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;

  // And the silent client was closed by the server, not left hanging.
  char byte = 0;
  EXPECT_EQ(::recv(silent, &byte, 1, 0), 0);  // EOF
  ::close(silent);
  exporter.stop();
}

// ---------------------------------------------------------------------------
// Span-derived profiler.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ProfileAggregatesBalancedTree) {
  {
    obs::ScopedSpan outer("outer");
    for (int i = 0; i < 3; ++i) {
      obs::ScopedSpan inner("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const obs::Profile profile = obs::build_profile();
  ASSERT_EQ(profile.nodes.size(), 2u);
  const obs::ProfileNode& outer = profile.nodes[0];
  const obs::ProfileNode& inner = profile.nodes[1];
  EXPECT_EQ(outer.path, "outer");
  EXPECT_EQ(inner.path, "outer/inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 3u);
  // Self excludes children; total includes them.
  EXPECT_GE(outer.total_s, inner.total_s);
  EXPECT_LE(outer.self_s, outer.total_s - inner.total_s + 1e-9);
  EXPECT_GT(inner.p50_s, 0.0);
  EXPECT_GE(inner.p99_s, inner.p50_s);
  // Same label at top level stays distinct from the nested path.
  {
    obs::ScopedSpan lone("inner");
  }
  EXPECT_EQ(obs::build_profile().nodes.size(), 3u);
}

TEST_F(TelemetryTest, ProfileHandlesUnbalancedStream) {
  // An open (never-ended) span must be skipped, not mispaired.
  auto* leaked = new obs::ScopedSpan("open.never.ends");
  {
    obs::ScopedSpan ok("closed");
  }
  const obs::Profile profile = obs::build_profile();
  ASSERT_EQ(profile.nodes.size(), 1u);
  // The open parent contributes no node, and the closed child nests under
  // it (path reflects the still-open parent frame).
  EXPECT_EQ(profile.nodes[0].path, "open.never.ends/closed");
  delete leaked;  // balance the trace for TearDown
}

TEST_F(TelemetryTest, ProfileMergesAcrossThreads) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      obs::ScopedSpan outer("work");
      for (int i = 0; i < 5; ++i) {
        obs::ScopedSpan inner("work.step");
      }
    });
  }
  for (auto& w : workers) w.join();
  const obs::Profile profile = obs::build_profile();
  ASSERT_EQ(profile.nodes.size(), 2u);
  EXPECT_EQ(profile.nodes[0].path, "work");
  EXPECT_EQ(profile.nodes[0].count, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(profile.nodes[1].path, "work/work.step");
  EXPECT_EQ(profile.nodes[1].count,
            static_cast<std::uint64_t>(kThreads) * 5);
}

TEST_F(TelemetryTest, ProfileJsonSchema) {
  {
    obs::ScopedSpan span("solo");
  }
  const obs::Json json = obs::build_profile().to_json();
  EXPECT_EQ(json.find("schema")->as_string(), "clo.profile.v1");
  EXPECT_EQ(json.find("run")->as_string(), clo::run_id());
  const obs::Json* nodes = json.find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_EQ(nodes->size(), 1u);
  const obs::Json& node = nodes->at(0);
  EXPECT_EQ(node.find("path")->as_string(), "solo");
  EXPECT_EQ(static_cast<int>(node.find("count")->as_double()), 1);
  EXPECT_GE(node.find("total_s")->as_double(),
            node.find("self_s")->as_double());
  // Round-trips through the parser (what check_telemetry.py consumes).
  const obs::Json reparsed = obs::Json::parse(json.dump(2));
  EXPECT_EQ(reparsed.find("schema")->as_string(), "clo.profile.v1");
}

// ---------------------------------------------------------------------------
// Progress gauges.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ProgressGaugesAdvanceMonotonically) {
  obs::Progress progress("phasex", 100);
  auto fraction = [] {
    return obs::Registry::instance().snapshot().gauges.at(
        "progress.phasex.fraction");
  };
  EXPECT_DOUBLE_EQ(fraction(), 0.0);
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    progress.tick();
    const double f = fraction();
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(fraction(), 1.0);
  const auto gauges = obs::Registry::instance().snapshot().gauges;
  EXPECT_DOUBLE_EQ(gauges.at("progress.phasex.total"), 100.0);
  EXPECT_DOUBLE_EQ(gauges.at("progress.phasex.done"), 100.0);
  EXPECT_GE(gauges.at("progress.phasex.eta_seconds"), 0.0);
}

TEST_F(TelemetryTest, ProgressIsInertWhenDisabledOrEmpty) {
  obs::set_enabled(false);
  obs::Progress off("off.phase", 10);
  off.tick(10);
  obs::set_enabled(true);
  obs::Progress empty("empty.phase", 0);
  empty.tick();
  const auto gauges = obs::Registry::instance().snapshot().gauges;
  EXPECT_EQ(gauges.count("progress.off.phase.fraction"), 0u);
  EXPECT_EQ(gauges.count("progress.empty.phase.fraction"), 0u);
}

TEST_F(TelemetryTest, ProgressTicksAreThreadSafe) {
  constexpr std::uint64_t kTotal = 8 * 10000;
  obs::Progress progress("mt.phase", kTotal);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) progress.tick();
    });
  }
  for (auto& w : workers) w.join();
  const auto gauges = obs::Registry::instance().snapshot().gauges;
  EXPECT_DOUBLE_EQ(gauges.at("progress.mt.phase.fraction"), 1.0);
}

// ---------------------------------------------------------------------------
// Resource sampling.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, ProcSamplerReportsPlausibleValues) {
  EXPECT_GT(util::proc::peak_rss_bytes(), 0u);
  EXPECT_GT(util::proc::current_rss_bytes(), 0u);
  EXPECT_LE(util::proc::current_rss_bytes(),
            util::proc::peak_rss_bytes() * 2);  // same order of magnitude
#if !defined(CLO_OBS_DISABLE)
  // The counted operator new is compiled out with the rest of obs.
  const std::uint64_t count_before = util::proc::alloc_count();
  const std::uint64_t bytes_before = util::proc::alloc_bytes();
  {
    std::vector<char> big(1 << 20);
    EXPECT_NE(big.data(), nullptr);
  }
  // The counters are global and monotone (other threads may add more).
  EXPECT_GT(util::proc::alloc_count(), count_before);
  EXPECT_GE(util::proc::alloc_bytes(), bytes_before + (1 << 20));
#endif
  util::proc::sample_into_registry();
  const auto gauges = obs::Registry::instance().snapshot().gauges;
  EXPECT_GT(gauges.at("proc.peak_rss_bytes"), 0.0);
#if !defined(CLO_OBS_DISABLE)
  EXPECT_GT(gauges.at("proc.alloc_count"), 0.0);
#endif
}

}  // namespace
