#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "clo/nn/ops.hpp"
#include "clo/nn/tensor.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo::nn;

/// Numerical gradient check: builds the graph via `fn` (must return a
/// scalar), compares autograd gradients of `input` against central
/// differences.
void grad_check(Tensor input,
                const std::function<Tensor(const Tensor&)>& fn,
                float tolerance = 2e-2f) {
  Tensor out = fn(input);
  ASSERT_EQ(out.numel(), 1u);
  backward(out);
  const auto analytic = input.grad();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float saved = input.data()[i];
    input.data()[i] = saved + eps;
    const float up = fn(input).item();
    input.data()[i] = saved - eps;
    const float down = fn(input).item();
    input.data()[i] = saved;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::abs(numeric)))
        << "component " << i;
  }
}

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed,
                     float scale = 1.0f) {
  clo::Rng rng(seed);
  return Tensor::randn(std::move(shape), rng, scale, true);
}

TEST(Autograd, AddSubMul) {
  const Tensor b = random_tensor({2, 3}, 7);
  grad_check(random_tensor({2, 3}, 1), [&](const Tensor& x) {
    return sum_all(mul(add(x, b), sub(x, b)));
  });
}

TEST(Autograd, ScaleNeg) {
  grad_check(random_tensor({4}, 2), [](const Tensor& x) {
    return sum_all(neg(scale(x, 2.5f)));
  });
}

TEST(Autograd, AddBias) {
  const Tensor x = random_tensor({3, 4}, 3);
  Tensor bias = random_tensor({4}, 4);
  // Check gradient w.r.t. the bias.
  grad_check(bias, [&](const Tensor& b) { return sum_all(add_bias(x, b)); });
}

TEST(Autograd, MatmulBothSides) {
  const Tensor w = random_tensor({3, 2}, 5);
  grad_check(random_tensor({4, 3}, 6),
             [&](const Tensor& x) { return sum_all(matmul(x, w)); });
  const Tensor x2 = random_tensor({4, 3}, 8);
  grad_check(random_tensor({3, 2}, 9),
             [&](const Tensor& w2) { return sum_all(matmul(x2, w2)); });
}

TEST(Autograd, MatmulTransposeB) {
  const Tensor x = random_tensor({2, 3}, 10);
  grad_check(random_tensor({4, 3}, 11), [&](const Tensor& w) {
    return sum_all(matmul(x, w, /*transpose_b=*/true));
  });
}

TEST(Autograd, Activations) {
  grad_check(random_tensor({2, 5}, 12),
             [](const Tensor& x) { return sum_all(sigmoid(x)); });
  grad_check(random_tensor({2, 5}, 13),
             [](const Tensor& x) { return sum_all(tanh_op(x)); });
  grad_check(random_tensor({2, 5}, 14),
             [](const Tensor& x) { return sum_all(silu(x)); });
  // ReLU away from the kink.
  Tensor x = random_tensor({10}, 15);
  for (auto& v : x.data()) v = v > 0 ? v + 0.5f : v - 0.5f;
  grad_check(x, [](const Tensor& t) { return sum_all(relu(t)); });
}

TEST(Autograd, SoftmaxRows) {
  grad_check(random_tensor({3, 4}, 16), [](const Tensor& x) {
    // weighted sum of softmax outputs, nontrivial Jacobian use
    Tensor s = softmax_rows(x);
    Tensor w = Tensor::from_data({3, 4}, {1, 2, 3, 4, 4, 3, 2, 1, 0, 1, 0, 1});
    return sum_all(mul(s, w));
  });
}

TEST(Autograd, MseLoss) {
  const Tensor target = random_tensor({3, 2}, 17);
  grad_check(random_tensor({3, 2}, 18),
             [&](const Tensor& x) { return mse_loss(x, target); });
}

TEST(Autograd, MeanRowsAndReshape) {
  grad_check(random_tensor({4, 3}, 19), [](const Tensor& x) {
    return sum_all(mean_rows(reshape(x, {2, 6})));
  });
}

TEST(Autograd, ConcatSliceCols) {
  const Tensor other = random_tensor({2, 2}, 20);
  grad_check(random_tensor({2, 3}, 21), [&](const Tensor& x) {
    Tensor cat = concat_cols(x, other);
    return sum_all(mul(slice_cols(cat, 1, 4), slice_cols(cat, 0, 3)));
  });
}

TEST(Autograd, GatherRowsWithRepeats) {
  grad_check(random_tensor({4, 3}, 22), [](const Tensor& x) {
    return sum_all(gather_rows(x, {0, 2, 2, 3, 0}));
  });
}

TEST(Autograd, LayerNorm) {
  const Tensor gain = random_tensor({5}, 23);
  const Tensor bias = random_tensor({5}, 24);
  grad_check(
      random_tensor({3, 5}, 25),
      [&](const Tensor& x) {
        Tensor w = Tensor::from_data(
            {3, 5}, std::vector<float>(15, 0.3f));
        return sum_all(mul(layer_norm(x, gain, bias), w));
      },
      5e-2f);
}

TEST(Autograd, Conv1d) {
  const Tensor w = random_tensor({3, 2, 3}, 26, 0.5f);
  const Tensor b = random_tensor({3}, 27);
  grad_check(random_tensor({2, 2, 6}, 28),
             [&](const Tensor& x) { return sum_all(conv1d(x, w, b)); });
  const Tensor x2 = random_tensor({2, 2, 6}, 29);
  grad_check(random_tensor({3, 2, 3}, 30, 0.5f),
             [&](const Tensor& w2) { return sum_all(conv1d(x2, w2, b)); });
}

TEST(Autograd, PoolingAndUpsample) {
  grad_check(random_tensor({2, 3, 8}, 31), [](const Tensor& x) {
    return sum_all(upsample1d(avg_pool1d(x)));
  });
}

TEST(Autograd, ConcatChannelsAndChannelBias) {
  const Tensor other = random_tensor({2, 2, 4}, 32);
  const Tensor bias = random_tensor({2, 5}, 33);
  grad_check(random_tensor({2, 3, 4}, 34), [&](const Tensor& x) {
    return sum_all(add_channel_bias(concat_channels(x, other), bias));
  });
}

TEST(Autograd, DiamondGraphAccumulates) {
  // y = sum(x*x + x) uses x twice; gradient must accumulate both paths.
  Tensor x = Tensor::from_data({3}, {1.0f, -2.0f, 0.5f}, true);
  Tensor y = sum_all(add(mul(x, x), x));
  backward(y);
  EXPECT_NEAR(x.grad()[0], 2 * 1.0f + 1, 1e-5);
  EXPECT_NEAR(x.grad()[1], 2 * -2.0f + 1, 1e-5);
  EXPECT_NEAR(x.grad()[2], 2 * 0.5f + 1, 1e-5);
}

TEST(Autograd, DetachStopsGradient) {
  Tensor x = Tensor::from_data({2}, {3.0f, 4.0f}, true);
  Tensor y = sum_all(mul(detach(x), x));
  backward(y);
  EXPECT_NEAR(x.grad()[0], 3.0f, 1e-5);  // only the non-detached path
  EXPECT_NEAR(x.grad()[1], 4.0f, 1e-5);
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor x = Tensor::from_data({2}, {1.0f, 2.0f}, true);
  EXPECT_THROW(backward(x), std::invalid_argument);
}

TEST(Autograd, NoGradWhenNotRequired) {
  Tensor x = Tensor::from_data({2}, {1.0f, 2.0f}, false);
  Tensor y = sum_all(mul(x, x));
  EXPECT_FALSE(y.requires_grad());
}

TEST(Autograd, NoGradGuardDisablesGraphRecording) {
  Tensor x = Tensor::from_data({2}, {1.0f, 2.0f}, true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(grad_enabled());
    // Values still compute, but nothing records a graph — even from a
    // requires_grad input, across binary, unary, and row-wise ops.
    Tensor y = sum_all(mul(x, x));
    EXPECT_FALSE(y.requires_grad());
    EXPECT_NEAR(y.item(), 5.0f, 1e-5);
    EXPECT_FALSE(silu(x).requires_grad());
    EXPECT_FALSE(softmax_rows(reshape(x, {1, 2})).requires_grad());
    // Guards nest and restore on scope exit.
    {
      NoGradGuard inner;
      EXPECT_FALSE(grad_enabled());
    }
    EXPECT_FALSE(grad_enabled());
  }
  EXPECT_TRUE(grad_enabled());
  // Recording works again after the guard is gone.
  Tensor y = sum_all(mul(x, x));
  EXPECT_TRUE(y.requires_grad());
  backward(y);
  EXPECT_NEAR(x.grad()[0], 2.0f, 1e-5);
  EXPECT_NEAR(x.grad()[1], 4.0f, 1e-5);
}

TEST(Tensor, ShapeChecksThrow) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
  EXPECT_THROW(reshape(a, {5}), std::invalid_argument);
  EXPECT_THROW(Tensor::from_data({2}, {1.0f}), std::invalid_argument);
}

}  // namespace
