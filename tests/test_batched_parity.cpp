// Parity acceptance tests for the batched inference path: stacking R
// latents into one [R, d, L] U-Net forward / one [R, L*d] surrogate
// forward+backward must reproduce the per-sample results. No op in either
// network mixes batch rows, so the batched numbers are expected to be
// bit-identical; the assertions still allow a small float tolerance (the
// documented contract) so they stay valid if a future op reassociates
// per-row arithmetic.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clo/circuits/generators.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/util/rng.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

constexpr float kTol = 1e-5f;

std::vector<std::vector<float>> random_latents(int count, std::size_t size,
                                               std::uint64_t seed) {
  clo::Rng rng(seed);
  std::vector<std::vector<float>> xs(count, std::vector<float>(size));
  for (auto& x : xs) {
    for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  }
  return xs;
}

TEST(BatchedParity, PredictNoiseBatchMatchesPerSample) {
  clo::Rng rng(11);
  models::DiffusionConfig cfg;
  cfg.seq_len = 8;
  cfg.embed_dim = 4;
  cfg.channels = 8;
  cfg.num_steps = 12;
  models::DiffusionModel model(cfg, rng);
  const auto xs = random_latents(
      5, static_cast<std::size_t>(cfg.seq_len) * cfg.embed_dim, 21);

  for (const int t : {0, 5, cfg.num_steps - 1}) {
    const auto batched = model.predict_noise_batch(xs, t);
    ASSERT_EQ(batched.size(), xs.size());
    for (std::size_t r = 0; r < xs.size(); ++r) {
      const auto single = model.predict_noise(xs[r], t);
      ASSERT_EQ(batched[r].size(), single.size());
      for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_NEAR(batched[r][i], single[i], kTol)
            << "t=" << t << " restart " << r << " elem " << i;
      }
    }
  }
}

TEST(BatchedParity, ObjectiveAndGradBatchMatchesPerSample) {
  const aig::Aig g = circuits::make_benchmark("c17");
  clo::Rng rng(5);
  models::TransformEmbedding embedding(8, rng);
  models::SurrogateConfig scfg;
  scfg.seq_len = 8;
  auto surrogate = models::make_surrogate("cnn", g, scfg, rng);
  models::DiffusionConfig dcfg;
  dcfg.seq_len = 8;
  dcfg.num_steps = 16;
  models::DiffusionModel diffusion(dcfg, rng);
  core::ContinuousOptimizer optimizer(*surrogate, diffusion, embedding);

  const auto xs = random_latents(
      6, static_cast<std::size_t>(dcfg.seq_len) * dcfg.embed_dim, 33);

  std::vector<std::vector<float>> batched_grads;
  const auto batched = optimizer.objective_and_grad_batch(xs, &batched_grads);
  const auto batched_nograd = optimizer.objective_and_grad_batch(xs, nullptr);
  ASSERT_EQ(batched.size(), xs.size());
  ASSERT_EQ(batched_grads.size(), xs.size());
  ASSERT_EQ(batched_nograd.size(), xs.size());

  for (std::size_t r = 0; r < xs.size(); ++r) {
    std::vector<float> grad;
    const double obj = optimizer.objective_and_grad(xs[r], &grad);
    EXPECT_NEAR(batched[r], obj, kTol) << "restart " << r;
    EXPECT_NEAR(batched_nograd[r], obj, kTol) << "restart " << r;
    ASSERT_EQ(batched_grads[r].size(), grad.size());
    for (std::size_t i = 0; i < grad.size(); ++i) {
      EXPECT_NEAR(batched_grads[r][i], grad[i], kTol)
          << "restart " << r << " elem " << i;
    }
    // The inference-only path must also match the with-grad objective.
    EXPECT_NEAR(optimizer.objective_and_grad(xs[r], nullptr), obj, kTol);
  }
}

std::vector<core::OptimizeResult> run_restarts(bool batched,
                                               util::ThreadPool* pool,
                                               bool use_diffusion) {
  const aig::Aig g = circuits::make_benchmark("c17");
  clo::Rng rng(5);
  models::TransformEmbedding embedding(8, rng);
  models::SurrogateConfig scfg;
  scfg.seq_len = 8;
  auto surrogate = models::make_surrogate("cnn", g, scfg, rng);
  models::DiffusionConfig dcfg;
  dcfg.seq_len = 8;
  dcfg.num_steps = 16;
  models::DiffusionModel diffusion(dcfg, rng);
  core::OptimizeParams params;
  params.use_diffusion = use_diffusion;
  core::ContinuousOptimizer optimizer(*surrogate, diffusion, embedding,
                                      params);
  clo::Rng orng(23);
  return optimizer.run_restarts(orng, 6, pool, batched);
}

void expect_run_parity(const std::vector<core::OptimizeResult>& batched,
                       const std::vector<core::OptimizeResult>& fallback) {
  ASSERT_EQ(batched.size(), fallback.size());
  for (std::size_t r = 0; r < batched.size(); ++r) {
    // The headline contract: identical retrieved sequences.
    EXPECT_EQ(batched[r].sequence, fallback[r].sequence) << "restart " << r;
    ASSERT_EQ(batched[r].latent.size(), fallback[r].latent.size());
    for (std::size_t i = 0; i < batched[r].latent.size(); ++i) {
      EXPECT_NEAR(batched[r].latent[i], fallback[r].latent[i], kTol)
          << "restart " << r << " elem " << i;
    }
    EXPECT_NEAR(batched[r].discrepancy, fallback[r].discrepancy, kTol);
    EXPECT_NEAR(batched[r].predicted_objective,
                fallback[r].predicted_objective, kTol);
    // Both modes trace the same steps, ending at t == 0.
    ASSERT_EQ(batched[r].trace.size(), fallback[r].trace.size());
    for (std::size_t p = 0; p < batched[r].trace.size(); ++p) {
      EXPECT_EQ(batched[r].trace[p].t, fallback[r].trace[p].t);
      EXPECT_NEAR(batched[r].trace[p].discrepancy,
                  fallback[r].trace[p].discrepancy, kTol);
      EXPECT_NEAR(batched[r].trace[p].predicted_objective,
                  fallback[r].trace[p].predicted_objective, kTol);
    }
  }
}

TEST(BatchedParity, RunRestartsBatchedMatchesFallbackSerial) {
  expect_run_parity(run_restarts(true, nullptr, true),
                    run_restarts(false, nullptr, true));
}

TEST(BatchedParity, RunRestartsBatchedMatchesFallbackParallel) {
  util::ThreadPool pool(8);
  expect_run_parity(run_restarts(true, &pool, true),
                    run_restarts(false, &pool, true));
}

TEST(BatchedParity, RunRestartsBatchedMatchesFallbackAblation) {
  expect_run_parity(run_restarts(true, nullptr, false),
                    run_restarts(false, nullptr, false));
}

}  // namespace
