// Determinism acceptance tests for the parallel substrate: dataset
// generation and latent optimization must be bit-identical at any worker
// count (including the serial null-pool path), and the evaluator must
// tolerate concurrent callers.

#include <gtest/gtest.h>

#include <cstring>

#include "clo/circuits/generators.hpp"
#include "clo/core/dataset.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/nn/kernel.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"

namespace {

using namespace clo;

core::Dataset gen(util::ThreadPool* pool) {
  const aig::Aig g = circuits::make_benchmark("c432");
  core::QorEvaluator evaluator(g);
  clo::Rng rng(17);
  return core::generate_dataset(evaluator, 24, 12, rng, pool);
}

TEST(ParallelDeterminism, DatasetIdenticalAcrossThreadCounts) {
  const core::Dataset serial = gen(nullptr);
  util::ThreadPool pool8(8);
  const core::Dataset parallel = gen(&pool8);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.sequences[i], parallel.sequences[i]) << "sequence " << i;
    // Bit-identical labels, not just approximately equal.
    EXPECT_EQ(serial.qor[i].area_um2, parallel.qor[i].area_um2) << "row " << i;
    EXPECT_EQ(serial.qor[i].delay_ps, parallel.qor[i].delay_ps) << "row " << i;
  }
  EXPECT_EQ(serial.area_mean, parallel.area_mean);
  EXPECT_EQ(serial.delay_mean, parallel.delay_mean);
  EXPECT_EQ(serial.area_std, parallel.area_std);
  EXPECT_EQ(serial.delay_std, parallel.delay_std);
}

std::vector<core::OptimizeResult> run_restarts(util::ThreadPool* pool) {
  const aig::Aig g = circuits::make_benchmark("c17");
  clo::Rng rng(5);
  models::TransformEmbedding embedding(8, rng);
  models::SurrogateConfig scfg;
  scfg.seq_len = 8;
  auto surrogate = models::make_surrogate("cnn", g, scfg, rng);
  models::DiffusionConfig dcfg;
  dcfg.seq_len = 8;
  dcfg.num_steps = 16;
  models::DiffusionModel diffusion(dcfg, rng);
  core::ContinuousOptimizer optimizer(*surrogate, diffusion, embedding);
  clo::Rng orng(23);
  return optimizer.run_restarts(orng, 6, pool);
}

TEST(ParallelDeterminism, OptimizerRestartsIdenticalAcrossThreadCounts) {
  const auto serial = run_restarts(nullptr);
  util::ThreadPool pool8(8);
  const auto parallel = run_restarts(&pool8);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].sequence, parallel[r].sequence) << "restart " << r;
    ASSERT_EQ(serial[r].latent.size(), parallel[r].latent.size());
    // The latents must match bit for bit, not within a tolerance.
    EXPECT_EQ(0, std::memcmp(serial[r].latent.data(),
                             parallel[r].latent.data(),
                             serial[r].latent.size() * sizeof(float)))
        << "restart " << r;
    EXPECT_EQ(serial[r].discrepancy, parallel[r].discrepancy);
    EXPECT_EQ(serial[r].predicted_objective, parallel[r].predicted_objective);
  }
}

TEST(ParallelDeterminism, EvaluatorSafeUnderConcurrentCallers) {
  const aig::Aig g = circuits::make_benchmark("c432");

  // Serial reference labels.
  std::vector<opt::Sequence> seqs;
  clo::Rng rng(99);
  for (int i = 0; i < 32; ++i) {
    seqs.push_back(opt::random_sequence(10, rng));
  }
  core::QorEvaluator ref(g);
  std::vector<core::Qor> expected;
  for (const auto& s : seqs) expected.push_back(ref.evaluate(s));

  // Concurrent evaluation, every sequence hit twice to exercise the cache.
  core::QorEvaluator ev(g);
  util::ThreadPool pool(8);
  std::vector<core::Qor> got(seqs.size() * 2);
  util::parallel_for(&pool, got.size(), [&](std::size_t i) {
    got[i] = ev.evaluate(seqs[i % seqs.size()]);
  });
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].area_um2, expected[i % seqs.size()].area_um2);
    EXPECT_EQ(got[i].delay_ps, expected[i % seqs.size()].delay_ps);
  }
  const auto stats = ev.snapshot();
  EXPECT_EQ(stats.queries, got.size());
  // Single-flight misses: every distinct sequence synthesizes exactly once
  // no matter how many threads race on it; the rest are cache hits.
  EXPECT_EQ(stats.unique_runs, seqs.size());
  EXPECT_EQ(stats.cache_hits, got.size() - seqs.size());
  EXPECT_GT(stats.synth_seconds, 0.0);
}

TEST(ParallelDeterminism, EvaluatorSingleFlightOnOneHotKey) {
  const aig::Aig g = circuits::make_benchmark("c432");
  clo::Rng rng(7);
  const opt::Sequence seq = opt::random_sequence(10, rng);

  // 16 threads all miss the same key at once: exactly one may synthesize,
  // the other 15 must wait for its insert and answer from the cache.
  core::QorEvaluator ev(g);
  util::ThreadPool pool(16);
  std::vector<core::Qor> got(16);
  util::parallel_for(&pool, got.size(),
                     [&](std::size_t i) { got[i] = ev.evaluate(seq); });
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].area_um2, got[0].area_um2);
    EXPECT_EQ(got[i].delay_ps, got[0].delay_ps);
  }
  const auto stats = ev.snapshot();
  EXPECT_EQ(stats.queries, got.size());
  EXPECT_EQ(stats.unique_runs, 1u);
  EXPECT_EQ(stats.cache_hits, got.size() - 1);
}

TEST(ParallelDeterminism, KernelPoolDoesNotPerturbOptimizerResults) {
  // The kernel layer's tiled GEMM fan-out (PR 10) must never change
  // retrieved bytes: the whole restart loop — U-Net denoise forwards,
  // surrogate forwards, rounding — run with the kernel pool unset, then
  // fanned over 2 and 8 workers, must match bit for bit. This is the
  // model-level closure of the per-op tests in test_kernels.cpp.
  const auto serial = run_restarts(nullptr);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool pool(workers);
    nn::kernel::PoolGuard guard(&pool);
    const auto fanned = run_restarts(nullptr);
    ASSERT_EQ(serial.size(), fanned.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      EXPECT_EQ(serial[r].sequence, fanned[r].sequence)
          << "restart " << r << " kernel workers " << workers;
      ASSERT_EQ(serial[r].latent.size(), fanned[r].latent.size());
      EXPECT_EQ(0, std::memcmp(serial[r].latent.data(),
                               fanned[r].latent.data(),
                               serial[r].latent.size() * sizeof(float)))
          << "restart " << r << " kernel workers " << workers;
      EXPECT_EQ(serial[r].discrepancy, fanned[r].discrepancy);
      EXPECT_EQ(serial[r].predicted_objective,
                fanned[r].predicted_objective);
    }
  }
}

TEST(ParallelDeterminism, KernelPoolComposesWithRestartPool) {
  // Serve-style nesting: restarts fan out over the same pool the kernel
  // layer is registered on. parallel_tiles detects calls already on a
  // worker thread and degrades to serial — bytes must still match.
  const auto serial = run_restarts(nullptr);
  util::ThreadPool pool(4);
  nn::kernel::PoolGuard guard(&pool);
  const auto nested = run_restarts(&pool);
  ASSERT_EQ(serial.size(), nested.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].sequence, nested[r].sequence) << "restart " << r;
    EXPECT_EQ(0, std::memcmp(serial[r].latent.data(),
                             nested[r].latent.data(),
                             serial[r].latent.size() * sizeof(float)))
        << "restart " << r;
  }
}

/// Turns tracing + metrics on for one scope and restores the disabled
/// default afterwards, leaving no events behind for other tests.
struct ObsEnabledScope {
  ObsEnabledScope() { obs::set_enabled(true); }
  ~ObsEnabledScope() {
    obs::set_enabled(false);
    obs::reset_trace();
    obs::Registry::instance().reset();
  }
};

TEST(ParallelDeterminism, InstrumentationDoesNotPerturbResults) {
  // Reference run with observability off (the default).
  const auto plain = run_restarts(nullptr);

  // Same computation with tracing + metrics recording on, in parallel.
  ObsEnabledScope scope;
  util::ThreadPool pool8(8);
  const auto traced = run_restarts(&pool8);

  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t r = 0; r < plain.size(); ++r) {
    EXPECT_EQ(plain[r].sequence, traced[r].sequence) << "restart " << r;
    ASSERT_EQ(plain[r].latent.size(), traced[r].latent.size());
    EXPECT_EQ(0, std::memcmp(plain[r].latent.data(), traced[r].latent.data(),
                             plain[r].latent.size() * sizeof(float)))
        << "restart " << r;
    EXPECT_EQ(plain[r].discrepancy, traced[r].discrepancy);
    EXPECT_EQ(plain[r].predicted_objective, traced[r].predicted_objective);
  }
#if !defined(CLO_OBS_DISABLE)
  // The instrumented run actually recorded spans and counters.
  EXPECT_GT(obs::trace_event_count(), 0u);
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_GT(snap.counters.at("optimizer.denoise_steps"), 0u);
#endif
}

}  // namespace
