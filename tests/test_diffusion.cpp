#include <gtest/gtest.h>

#include <cmath>

#include "clo/models/diffusion.hpp"
#include "clo/models/embedding.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
using models::DdpmSchedule;
using models::DiffusionConfig;
using models::DiffusionModel;

TEST(DdpmSchedule, TablesAreConsistent) {
  DdpmSchedule s(100);
  EXPECT_EQ(s.num_steps(), 100);
  float bar = 1.0f;
  for (int t = 0; t < 100; ++t) {
    EXPECT_GT(s.beta(t), 0.0f);
    EXPECT_LT(s.beta(t), 1.0f);
    EXPECT_FLOAT_EQ(s.alpha(t), 1.0f - s.beta(t));
    const float bar_prev = bar;
    bar *= s.alpha(t);
    EXPECT_FLOAT_EQ(s.alpha_bar(t), bar);
    EXPECT_FLOAT_EQ(s.alpha_bar_prev(t), bar_prev);
    // Posterior variance beta~_t = (1-abar_{t-1})/(1-abar_t) beta_t.
    EXPECT_FLOAT_EQ(s.sigma(t) * s.sigma(t),
                    (1.0f - bar_prev) / (1.0f - bar) * s.beta(t));
    // Posterior mean coefficients are positive and roughly convex
    // (their sum approaches 1 only as beta -> 0, so just bound it).
    EXPECT_GT(s.coef_x0(t), 0.0f);
    EXPECT_GE(s.coef_xt(t), 0.0f);
    EXPECT_GT(s.coef_x0(t) + s.coef_xt(t), 0.85f);
    EXPECT_LT(s.coef_x0(t) + s.coef_xt(t), 1.01f);
  }
  // Monotone decreasing alpha_bar, approaching 0 for late steps.
  for (int t = 1; t < 100; ++t) {
    EXPECT_LT(s.alpha_bar(t), s.alpha_bar(t - 1));
  }
  EXPECT_LT(s.alpha_bar(99), 0.05f);
  EXPECT_GT(s.alpha_bar(0), 0.99f);
}

TEST(DdpmSchedule, ScalesToStepCount) {
  // Short schedules are rescaled so cumulative noise still reaches ~0 at
  // t = T (beta capped at 0.5 to stay well-defined).
  DdpmSchedule s(50, 1e-4f, 0.02f);
  EXPECT_GT(s.beta(49), 0.02f);
  EXPECT_LE(s.beta(49), 0.5f);
  EXPECT_LT(s.alpha_bar(49), 0.05f);
  // At the reference T = 1000 the endpoints are the classic DDPM values.
  DdpmSchedule ref(1000, 1e-4f, 0.02f);
  EXPECT_FLOAT_EQ(ref.beta(0), 1e-4f);
  EXPECT_FLOAT_EQ(ref.beta(999), 0.02f);
  EXPECT_THROW(DdpmSchedule(1), std::invalid_argument);
}

TEST(ChannelLayout, RoundTrip) {
  const int L = 4, d = 3;
  std::vector<float> flat(L * d);
  for (std::size_t i = 0; i < flat.size(); ++i) flat[i] = static_cast<float>(i);
  const auto chan = models::to_channel_layout(flat, L, d);
  EXPECT_EQ(models::from_channel_layout(chan, L, d), flat);
  // position 2, channel 1 = flat[2*3+1] = chan[1*4+2]
  EXPECT_FLOAT_EQ(chan[1 * 4 + 2], flat[2 * 3 + 1]);
}

DiffusionConfig tiny_config() {
  DiffusionConfig cfg;
  cfg.seq_len = 8;
  cfg.embed_dim = 8;
  cfg.channels = 16;
  cfg.time_dim = 16;
  cfg.num_steps = 30;
  return cfg;
}

TEST(DiffusionUNet, ShapeAndTimeConditioning) {
  clo::Rng rng(1);
  const auto cfg = tiny_config();
  models::DiffusionUNet unet(cfg, rng);
  nn::Tensor x = nn::Tensor::randn({2, cfg.embed_dim, cfg.seq_len}, rng, 1.0f);
  nn::Tensor e1 = unet.forward(x, {0, 0});
  EXPECT_EQ(e1.shape(), (std::vector<int>{2, cfg.embed_dim, cfg.seq_len}));
  nn::Tensor e2 = unet.forward(x, {25, 25});
  double diff = 0.0;
  for (std::size_t i = 0; i < e1.numel(); ++i) {
    diff += std::abs(e1.data()[i] - e2.data()[i]);
  }
  EXPECT_GT(diff, 1e-4) << "timestep must condition the output";
}

TEST(DiffusionUNet, RejectsBadSeqLen) {
  clo::Rng rng(2);
  DiffusionConfig cfg = tiny_config();
  cfg.seq_len = 10;  // not divisible by 4
  EXPECT_THROW(models::DiffusionUNet(cfg, rng), std::invalid_argument);
}

TEST(DiffusionModel, TrainingReducesLoss) {
  clo::Rng rng(3);
  const auto cfg = tiny_config();
  DiffusionModel model(cfg, rng);
  // Data: two clusters of constant sequences.
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 32; ++i) {
    std::vector<float> x(cfg.seq_len * cfg.embed_dim,
                         i % 2 == 0 ? 1.0f : -1.0f);
    data.push_back(std::move(x));
  }
  const auto early = model.train(data, 30, 8, 2e-3f, rng);
  const auto late = model.train(data, 150, 8, 2e-3f, rng);
  EXPECT_LT(late.final_loss, early.final_loss);
  EXPECT_LT(late.final_loss, 1.2);  // below the eps ~ N(0,1) baseline of ~1
}

TEST(DiffusionModel, SamplesApproachTrainingManifold) {
  clo::Rng rng(4);
  models::TransformEmbedding emb(8, rng);
  DiffusionConfig cfg = tiny_config();
  DiffusionModel model(cfg, rng);
  // Train on embeddings of random sequences (the real use case).
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 64; ++i) {
    data.push_back(emb.embed(opt::random_sequence(cfg.seq_len, rng)));
  }
  model.train(data, 2000, 16, 2e-3f, rng);
  // Samples should sit much closer to the embedding manifold than noise.
  double sampled = 0.0, noise = 0.0;
  for (int trial = 0; trial < 4; ++trial) {
    sampled += emb.discrepancy(model.sample(rng), cfg.seq_len);
    std::vector<float> raw(cfg.seq_len * cfg.embed_dim);
    for (auto& v : raw) v = static_cast<float>(rng.next_gaussian());
    noise += emb.discrepancy(raw, cfg.seq_len);
  }
  EXPECT_LT(sampled, 0.65 * noise);
}

TEST(DiffusionModel, PredictNoiseDeterministic) {
  clo::Rng rng(5);
  DiffusionModel model(tiny_config(), rng);
  std::vector<float> x(8 * 8, 0.5f);
  const auto e1 = model.predict_noise(x, 10);
  const auto e2 = model.predict_noise(x, 10);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(e1.size(), x.size());
}

}  // namespace
