#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "clo/aig/simulate.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/opt/mini_aig.hpp"
#include "clo/opt/passes.hpp"
#include "clo/opt/synthesize.hpp"
#include "clo/opt/flows.hpp"
#include "clo/opt/transform.hpp"
#include "clo/util/rng.hpp"

namespace {

using namespace clo;
using aig::Aig;
using aig::Lit;

// ---------------------------------------------------------------------------
// MiniAig + synthesis
// ---------------------------------------------------------------------------

TEST(MiniAig, FoldsAndHashes) {
  opt::MiniAig mini(3);
  const Lit a = mini.leaf(0), b = mini.leaf(1);
  EXPECT_EQ(mini.and_of(a, aig::kLitTrue), a);
  EXPECT_EQ(mini.and_of(a, aig::kLitFalse), aig::kLitFalse);
  EXPECT_EQ(mini.and_of(a, b), mini.and_of(b, a));
  EXPECT_EQ(mini.num_ands(), 1);
  EXPECT_EQ(mini.cone_size(mini.and_of(a, b)), 1);
}

TEST(MiniAig, ReplayMatchesFunction) {
  opt::MiniAig mini(2);
  const Lit f = mini.xor_of(mini.leaf(0), mini.leaf(1));
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit out = mini.replay(g, f, {a, b});
  g.add_po(out);
  EXPECT_TRUE(aig::simulate(g, {true, false})[0]);
  EXPECT_FALSE(aig::simulate(g, {true, true})[0]);
}

TEST(Synthesize, AllTwoVarFunctions) {
  for (int bits = 0; bits < 16; ++bits) {
    const auto tt = aig::TruthTable::from_u16(static_cast<std::uint16_t>(bits), 2);
    opt::MiniAig mini(2);
    const Lit out = opt::build_function(mini, tt);
    // Evaluate the mini structure and compare.
    Aig g;
    const Lit a = g.add_pi();
    const Lit b = g.add_pi();
    g.add_po(mini.replay(g, out, {a, b}));
    const auto result = aig::po_truth_tables(g)[0];
    EXPECT_EQ(result.to_u16() & 0xf, tt.to_u16() & 0xf) << "bits=" << bits;
  }
}

TEST(Synthesize, RandomFourVarFunctionsCorrectAndSmall) {
  clo::Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const auto tt = aig::TruthTable::from_u16(
        static_cast<std::uint16_t>(rng.next_u64() & 0xffff), 4);
    Aig g;
    std::vector<Lit> leaves;
    for (int i = 0; i < 4; ++i) leaves.push_back(g.add_pi());
    const auto cand = opt::synthesize_into(g, tt, leaves);
    g.add_po(cand.lit);
    EXPECT_EQ(aig::po_truth_tables(g)[0].to_u16(), tt.to_u16());
    EXPECT_LE(cand.added_nodes, 17);  // generous bound for any 4-var function
  }
}

TEST(Synthesize, XorChainIsCompact) {
  // 4-input XOR should synthesize to ~9 AND nodes (3 XORs), not the
  // 2^3-cube SOP.
  auto x = aig::TruthTable::variable(4, 0);
  for (int v = 1; v < 4; ++v) x = x ^ aig::TruthTable::variable(4, v);
  EXPECT_LE(opt::estimate_cost(x), 9);
}

TEST(Synthesize, SharedSubstructureReused) {
  Aig g;
  std::vector<Lit> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(g.add_pi());
  const auto tt = aig::TruthTable::variable(4, 0) & aig::TruthTable::variable(4, 1);
  const auto first = opt::synthesize_into(g, tt, leaves);
  EXPECT_EQ(first.added_nodes, 1);
  const auto second = opt::synthesize_into(g, tt, leaves);
  EXPECT_EQ(second.added_nodes, 0);  // strash hit
  EXPECT_EQ(second.lit, first.lit);
}

// ---------------------------------------------------------------------------
// Pass properties: every pass preserves function; rw/rf/rs never grow the
// node count; balance never grows depth.
// ---------------------------------------------------------------------------

class PassPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, opt::Transform>> {};

TEST_P(PassPropertyTest, PreservesFunctionAndImproves) {
  const auto& [name, transform] = GetParam();
  Aig g = circuits::make_benchmark(name);
  const Aig original = g;
  const auto nodes_before = g.num_ands();
  const auto depth_before = g.depth();
  const auto stats = opt::apply_transform(g, transform);
  EXPECT_NO_THROW(g.check());
  clo::Rng rng(11);
  const auto cec = aig::cec(original, g, rng, 64);
  EXPECT_TRUE(cec.equivalent) << name << " " << stats.name << " PO "
                              << cec.failing_po;
  if (transform == opt::Transform::kB) {
    EXPECT_LE(g.depth(), depth_before) << name;
  } else {
    EXPECT_LE(g.num_ands(), nodes_before) << name << " " << stats.name;
  }
  EXPECT_EQ(stats.nodes_after, g.num_ands());
}

INSTANTIATE_TEST_SUITE_P(
    AllTransformsOnCircuits, PassPropertyTest,
    ::testing::Combine(
        ::testing::Values("ctrl", "int2float", "c432", "c880", "router",
                          "cavlc", "priority"),
        ::testing::Values(opt::Transform::kRw, opt::Transform::kRwz,
                          opt::Transform::kRf, opt::Transform::kRfz,
                          opt::Transform::kRs, opt::Transform::kRsz,
                          opt::Transform::kB)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             opt::transform_name(std::get<1>(info.param));
    });

TEST(Passes, RewriteReducesKnownRedundancy) {
  // A deliberately redundant structure: f = (a&b) | (a&b&c) == a&b.
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit ab = g.and_of(a, b);
  const Lit abc = g.and_of(ab, c);
  g.add_po(g.or_of(ab, abc));
  const auto before = g.num_ands();
  opt::rewrite(g);
  EXPECT_LT(g.num_ands(), before);
  // Final function is a&b.
  const auto tt = aig::po_truth_tables(g)[0];
  EXPECT_EQ(tt.to_u16(),
            (aig::TruthTable::variable(3, 0) & aig::TruthTable::variable(3, 1))
                .to_u16());
}

TEST(Passes, ResubFindsSharedDivisor) {
  // g1 = a&b (kept alive by po), g2 = !(!a | !b) & c — resub can express
  // the inner NOT(OR) through the existing divisor a&b.
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit ab = g.and_of(a, b);
  g.add_po(ab);
  // Build (a & b) & c through a different structure: m = mux(a, b, 0) & c.
  const Lit m = g.and_of(g.or_of(g.and_of(a, b), aig::kLitFalse), c);
  g.add_po(m);
  const Aig orig = g;
  opt::resub(g, opt::ResubParams{.zero_cost = true});
  clo::Rng rng(3);
  EXPECT_TRUE(aig::cec(orig, g, rng).equivalent);
}

TEST(Passes, BalanceReducesChainDepth) {
  // A long AND chain over 16 PIs: depth 15 -> balanced depth 4.
  Aig g;
  Lit acc = aig::kLitTrue;
  for (int i = 0; i < 16; ++i) acc = g.and_of(acc, g.add_pi());
  g.add_po(acc);
  EXPECT_EQ(g.depth(), 15);
  opt::balance(g);
  EXPECT_EQ(g.depth(), 4);
  EXPECT_EQ(g.num_ands(), 15u);
  // Still the AND of all inputs.
  std::vector<bool> all_true(16, true);
  EXPECT_TRUE(aig::simulate(g, all_true)[0]);
  all_true[7] = false;
  EXPECT_FALSE(aig::simulate(g, all_true)[0]);
}

TEST(Passes, BalanceHandlesComplementedChains) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit d = g.add_pi();
  // NAND chain: depth cannot be collapsed across complemented edges,
  // but function must hold.
  const Lit x = g.nand_of(g.nand_of(g.nand_of(a, b), c), d);
  g.add_po(x);
  const Aig orig = g;
  opt::balance(g);
  clo::Rng rng(4);
  EXPECT_TRUE(aig::cec(orig, g, rng).equivalent);
}

TEST(Passes, ZeroCostVariantsAcceptMoreMoves) {
  Aig g1 = circuits::make_benchmark("cavlc");
  Aig g2 = g1;
  const auto s1 = opt::rewrite(g1, opt::RewriteParams{});
  const auto s2 = opt::rewrite(g2, opt::RewriteParams{.zero_cost = true});
  EXPECT_GE(s2.accepted_moves, s1.accepted_moves);
}

TEST(Transform, NamesRoundTrip) {
  for (opt::Transform t : opt::all_transforms()) {
    EXPECT_EQ(opt::transform_from_name(opt::transform_name(t)), t);
  }
  EXPECT_THROW(opt::transform_from_name("bogus"), std::invalid_argument);
}

TEST(Transform, ParseSequence) {
  const auto seq = opt::parse_sequence("rw; rwz,b\nrfz");
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0], opt::Transform::kRw);
  EXPECT_EQ(seq[1], opt::Transform::kRwz);
  EXPECT_EQ(seq[2], opt::Transform::kB);
  EXPECT_EQ(seq[3], opt::Transform::kRfz);
  EXPECT_EQ(opt::sequence_to_string(seq), "rw;rwz;b;rfz");
}

TEST(Transform, RandomSequenceUsesWholeAlphabet) {
  clo::Rng rng(6);
  std::set<opt::Transform> seen;
  for (int i = 0; i < 30; ++i) {
    for (auto t : opt::random_sequence(20, rng)) seen.insert(t);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(opt::kNumTransforms));
}

TEST(Transform, RunSequenceEquivalenceOnArithmetic) {
  Aig g = circuits::make_benchmark("square");
  const Aig orig = g;
  clo::Rng rng(12);
  opt::run_sequence(g, opt::random_sequence(10, rng));
  EXPECT_TRUE(aig::cec(orig, g, rng).equivalent);
}

TEST(Transform, SequenceOrderMattersForQoR) {
  // The premise of the whole paper: different sequences, different results.
  Aig a = circuits::make_benchmark("sqrt");
  Aig b = circuits::make_benchmark("sqrt");
  opt::run_sequence(a, opt::parse_sequence("b;rw;rf;b;rw;rwz;b;rfz;rwz;b"));
  opt::run_sequence(b, opt::parse_sequence("rs;rs;rs;rs;rs;rs;rs;rs;rs;rs"));
  EXPECT_NE(a.num_ands(), b.num_ands());
}


TEST(Flows, PresetsParseAndWork) {
  const auto& flows = opt::preset_flows();
  EXPECT_GE(flows.size(), 4u);
  for (const auto& flow : flows) {
    EXPECT_FALSE(flow.sequence.empty()) << flow.name;
    Aig g = circuits::make_benchmark("c880");
    const Aig orig = g;
    opt::run_sequence(g, flow.sequence);
    clo::Rng rng(19);
    EXPECT_TRUE(aig::cec(orig, g, rng).equivalent) << flow.name;
    EXPECT_LE(g.num_ands(), orig.num_ands()) << flow.name;
  }
  EXPECT_THROW(opt::preset_flow("nope"), std::invalid_argument);
  EXPECT_EQ(opt::sequence_to_string(opt::preset_flow("resyn2")),
            "b;rw;rf;b;rw;rwz;b;rfz;rwz;b");
}

TEST(Passes, TwoLevelResubFindsAndOrStructure) {
  // f = a & (b | c) built redundantly; with divisors a, (b|c) available a
  // two-level resub can reconstruct it. Mainly: equivalence + no growth.
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit d = g.add_pi();
  const Lit bc = g.or_of(b, c);
  g.add_po(bc);
  g.add_po(a);
  // A clunkier computation of a&(b|c): mux(b, a, a&c).
  const Lit clunky = g.mux_of(b, a, g.and_of(a, c));
  g.add_po(clunky);
  g.add_po(g.and_of(clunky, d));
  const Aig orig = g;
  const auto before = g.num_ands();
  opt::ResubParams params;
  params.zero_cost = true;
  opt::resub(g, params);
  clo::Rng rng(21);
  EXPECT_TRUE(aig::cec(orig, g, rng).equivalent);
  EXPECT_LE(g.num_ands(), before);
}

TEST(Passes, TwoLevelResubCanBeDisabled) {
  Aig g1 = circuits::make_benchmark("c2670");
  Aig g2 = g1;
  opt::ResubParams with;
  opt::ResubParams without;
  without.two_level = false;
  const auto s1 = opt::resub(g1, with);
  const auto s2 = opt::resub(g2, without);
  EXPECT_GE(s1.accepted_moves, s2.accepted_moves);
  EXPECT_LE(g1.num_ands(), g2.num_ands());
}

}  // namespace
