// Build your own circuit with the word-level builder, export it as AIGER,
// and optimize it — shows the library's construction + I/O surface.
//
//   ./examples/custom_circuit [--width 12] [--out /tmp/mac.aag]

#include <cstdio>
#include <fstream>

#include "clo/aig/io.hpp"
#include "clo/aig/simulate.hpp"
#include "clo/circuits/wordlevel.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/util/cli.hpp"

int main(int argc, char** argv) {
  clo::CliArgs args(argc, argv);
  const int width = args.get_int("width", 12);
  const std::string out = args.get("out", "/tmp/mac.aag");

  // A multiply-accumulate unit: acc' = a*b + acc, with saturation flag.
  clo::circuits::CircuitBuilder cb("mac");
  const auto a = cb.input_bus("a", width / 2);
  const auto b = cb.input_bus("b", width / 2);
  const auto acc = cb.input_bus("acc", width);
  const auto prod = cb.mul(a, b);
  auto [sum, carry] = cb.add(prod, acc);
  cb.output_bus("acc_next", sum);
  cb.output("saturated", carry);
  clo::aig::Aig circuit = cb.take();
  circuit.cleanup();

  std::printf("built %s: %zu PIs, %zu POs, %zu ANDs, depth %d\n",
              circuit.name().c_str(), circuit.num_pis(), circuit.num_pos(),
              circuit.num_ands(), circuit.depth());

  // Round-trip through AIGER to show interoperability.
  if (clo::aig::write_aiger_ascii(circuit, out)) {
    std::printf("wrote %s\n", out.c_str());
    clo::aig::Aig reread = clo::aig::read_aiger_file(out);
    clo::Rng rng(3);
    const auto cec = clo::aig::cec(circuit, reread, rng);
    std::printf("AIGER round-trip equivalence: %s (%zu patterns)\n",
                cec.equivalent ? "OK" : "FAILED", cec.patterns_checked);
  }

  // Optimize with two classic recipes and report QoR.
  clo::core::QorEvaluator evaluator(circuit);
  const auto original = evaluator.original();
  std::printf("original      : area %9.2f  delay %8.2f\n", original.area_um2,
              original.delay_ps);
  for (const char* recipe : {"b;rw;rwz;b", "b;rw;rf;b;rw;rwz;b;rfz;rwz;b"}) {
    const auto q = evaluator.evaluate(clo::opt::parse_sequence(recipe));
    std::printf("%-14s: area %9.2f  delay %8.2f\n", recipe, q.area_um2,
                q.delay_ps);
  }
  return 0;
}
