// Quickstart: build a benchmark circuit, run a fixed synthesis sequence,
// technology-map it, and print the QoR — the 60-second tour of the library.
//
//   ./examples/quickstart [--circuit name] [--sequence "b;rw;rf;b;rwz"]

#include <cstdio>

#include "clo/circuits/generators.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/opt/transform.hpp"
#include "clo/util/cli.hpp"

int main(int argc, char** argv) {
  clo::CliArgs args(argc, argv);
  const std::string name = args.get("circuit", "multiplier");
  const std::string seq_text = args.get("sequence", "b;rw;rf;b;rwz;rfz;rsz;b");

  if (!clo::circuits::has_benchmark(name)) {
    std::printf("unknown circuit '%s'; available:\n", name.c_str());
    for (const auto& info : clo::circuits::benchmark_catalog()) {
      std::printf("  %-11s (%s) %s\n", info.name.c_str(), info.suite.c_str(),
                  info.description.c_str());
    }
    return 1;
  }

  clo::aig::Aig circuit = clo::circuits::make_benchmark(name);
  std::printf("circuit %s: %zu PIs, %zu POs, %zu AND nodes, depth %d\n",
              name.c_str(), circuit.num_pis(), circuit.num_pos(),
              circuit.num_ands(), circuit.depth());

  clo::core::QorEvaluator evaluator(circuit);
  const auto original = evaluator.original();
  std::printf("original : area %10.2f um^2, delay %9.2f ps\n",
              original.area_um2, original.delay_ps);

  const auto seq = clo::opt::parse_sequence(seq_text);
  const auto qor = evaluator.evaluate(seq);
  std::printf("after [%s]: area %10.2f um^2, delay %9.2f ps\n",
              seq_text.c_str(), qor.area_um2, qor.delay_ps);
  std::printf("reduction: area %.1f%%, delay %.1f%%\n",
              100.0 * (1.0 - qor.area_um2 / original.area_um2),
              100.0 * (1.0 - qor.delay_ps / original.delay_ps));
  return 0;
}
