// Full continuous-logic-optimization pipeline on one circuit (the paper's
// Fig. 1 end to end): generate a labeled dataset, train the surrogate and
// diffusion models, optimize in latent space, validate with real synthesis.
//
//   ./examples/flow_tuning [--circuit i2c] [--dataset 200] [--restarts 4]
//                          [--surrogate mtl|lostin|cnn] [--steps 80]

#include <cstdio>

#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/util/cli.hpp"

int main(int argc, char** argv) {
  clo::CliArgs args(argc, argv);
  const std::string name = args.get("circuit", "i2c");

  clo::core::PipelineConfig config;
  config.dataset_size = args.get_int("dataset", 200);
  config.restarts = args.get_int("restarts", 4);
  config.surrogate = args.get("surrogate", "mtl");
  config.diffusion_steps = args.get_int("steps", 80);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  clo::core::QorEvaluator evaluator(clo::circuits::make_benchmark(name));
  clo::core::CloPipeline pipeline(config);
  const auto result = pipeline.run(evaluator);

  std::printf("=== %s ===\n", name.c_str());
  std::printf("original  : area %10.2f  delay %9.2f\n",
              result.original.area_um2, result.original.delay_ps);
  std::printf("optimized : area %10.2f  delay %9.2f\n", result.best.area_um2,
              result.best.delay_ps);
  std::printf("sequence  : %s\n",
              clo::opt::sequence_to_string(result.best_sequence).c_str());
  std::printf("latent discrepancy at retrieval: %.4f\n",
              result.best_discrepancy);
  std::printf("surrogate holdout spearman: area %.3f delay %.3f\n",
              result.surrogate_report.spearman_area,
              result.surrogate_report.spearman_delay);
  std::printf(
      "timing: dataset %.1fs | surrogate %.1fs | diffusion %.1fs | "
      "optimize %.3fs (the Fig. 5 bucket) | validate %.1fs\n",
      result.dataset_seconds, result.surrogate_train_seconds,
      result.diffusion_train_seconds, result.optimize_seconds,
      result.validate_seconds);
  return 0;
}
