// Ours vs the four baselines on a single circuit — a miniature of the
// paper's Table II row plus the Fig. 5 runtime accounting.
//
//   ./examples/compare_methods [--circuit router] [--budget 40]

#include <cstdio>

#include "clo/baselines/baseline.hpp"
#include "clo/circuits/generators.hpp"
#include "clo/core/pipeline.hpp"
#include "clo/util/cli.hpp"

int main(int argc, char** argv) {
  clo::CliArgs args(argc, argv);
  const std::string name = args.get("circuit", "router");
  const int budget = args.get_int("budget", 40);

  clo::aig::Aig circuit = clo::circuits::make_benchmark(name);
  std::printf("circuit %s: %zu ANDs, depth %d\n", name.c_str(),
              circuit.num_ands(), circuit.depth());

  clo::baselines::BaselineParams bparams;
  bparams.eval_budget = budget;
  std::printf("%-10s %12s %12s %14s %12s\n", "method", "area(um^2)",
              "delay(ps)", "algo time(s)", "synth runs");

  {
    clo::core::QorEvaluator evaluator(circuit);
    const auto q = evaluator.original();
    std::printf("%-10s %12.2f %12.2f %14s %12s\n", "original", q.area_um2,
                q.delay_ps, "-", "-");
  }
  for (const char* method : {"drills", "abcrl", "boils", "flowtune"}) {
    clo::core::QorEvaluator evaluator(circuit);
    clo::Rng rng(7);
    auto optimizer = clo::baselines::make_baseline(method);
    const auto r = optimizer->optimize(evaluator, bparams, rng);
    std::printf("%-10s %12.2f %12.2f %14.3f %12zu\n",
                optimizer->name().c_str(), r.best_qor.area_um2,
                r.best_qor.delay_ps, r.algorithm_seconds, r.synthesis_runs);
  }
  {
    clo::core::QorEvaluator evaluator(circuit);
    clo::core::PipelineConfig config;
    config.dataset_size = std::max(80, budget * 2);
    config.restarts = 3;
    config.diffusion_steps = 80;
    clo::core::CloPipeline pipeline(config);
    const auto r = pipeline.run(evaluator);
    std::printf("%-10s %12.2f %12.2f %14.3f %12s  (training one-time: %.1fs)\n",
                "Ours", r.best.area_um2, r.best.delay_ps, r.optimize_seconds,
                "-", r.surrogate_train_seconds + r.diffusion_train_seconds +
                r.dataset_seconds);
  }
  return 0;
}
