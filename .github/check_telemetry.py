#!/usr/bin/env python3
"""Validate the telemetry artifacts a run produced.

Usage: check_telemetry.py METRICS.jsonl PROFILE.json [REPORT.json]

Checks the clo.metrics.v1 stream (every line parses, schema/run/seq/t_ms
fields are coherent, progress gauges are monotone within each phase) and
the clo.profile.v1 span profile (schema, required node fields, self <=
total). When the run report is given, the profiler's per-phase totals are
cross-checked against the report's phase_seconds stopwatch — both measure
the same wall time, so they must agree closely.

Exits nonzero with a message on the first violation.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path: str) -> dict:
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not valid JSON: {e}")
    if len(records) < 2:
        fail(f"{path}: expected >= 2 records, got {len(records)}")

    run_ids = set()
    prev_t = -1.0
    progress = {}  # gauge name -> last value, for monotonicity
    for i, rec in enumerate(records):
        where = f"{path}: record {i}"
        if rec.get("schema") != "clo.metrics.v1":
            fail(f"{where}: schema is {rec.get('schema')!r}")
        run_ids.add(rec.get("run"))
        if rec.get("seq") != i:
            fail(f"{where}: seq {rec.get('seq')} != {i}")
        t = rec.get("t_ms")
        if not isinstance(t, (int, float)) or t < prev_t:
            fail(f"{where}: t_ms {t!r} not monotone (prev {prev_t})")
        prev_t = t
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(rec.get(section), dict):
                fail(f"{where}: missing {section} object")
        for name, value in rec["gauges"].items():
            if name.startswith("progress.") and (
                name.endswith(".fraction") or name.endswith(".done")
            ):
                if value < progress.get(name, 0.0):
                    fail(
                        f"{where}: {name} went backwards "
                        f"({progress[name]} -> {value})"
                    )
                progress[name] = value
            if name == "proc.peak_rss_bytes" and value <= 0:
                fail(f"{where}: proc.peak_rss_bytes = {value}")
    if len(run_ids) != 1:
        fail(f"{path}: multiple run ids in one stream: {run_ids}")

    fractions = {
        n: v for n, v in progress.items() if n.endswith(".fraction")
    }
    for name, final in fractions.items():
        if not 0.0 <= final <= 1.0:
            fail(f"{path}: final {name} = {final} outside [0, 1]")
    print(
        f"check_telemetry: {path}: {len(records)} records, run "
        f"{run_ids.pop()}, {len(fractions)} progress phase(s) all monotone"
    )
    return records[-1]


def check_profile(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "clo.profile.v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    nodes = doc.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        fail(f"{path}: no profile nodes")
    for node in nodes:
        for key in ("path", "count", "total_s", "self_s", "p50_s", "p99_s"):
            if key not in node:
                fail(f"{path}: node {node.get('path')!r} missing {key}")
        if node["self_s"] > node["total_s"] * (1 + 1e-9) + 1e-9:
            fail(f"{path}: {node['path']}: self > total: {node}")
        if node["count"] < 1:
            fail(f"{path}: {node['path']}: count {node['count']}")
    print(f"check_telemetry: {path}: {len(nodes)} profile nodes OK")
    return doc


def cross_check(profile: dict, report_path: str) -> None:
    with open(report_path) as f:
        report = json.load(f)
    phase_seconds = report.get("phase_seconds", {})
    totals = {n["path"]: n["total_s"] for n in profile["nodes"]}
    # The pipeline wraps each phase in a span named pipeline.<phase>;
    # the report's stopwatch times the same extent.
    checked = 0
    for phase, reported in phase_seconds.items():
        span = totals.get(f"pipeline.{phase}")
        if span is None or reported < 0.05:
            continue  # too short to compare meaningfully
        rel = abs(span - reported) / reported
        if rel > 0.10:
            fail(
                f"profile pipeline.{phase} = {span:.3f}s but report "
                f"phase_seconds.{phase} = {reported:.3f}s ({rel:.1%} off)"
            )
        checked += 1
        print(
            f"check_telemetry: phase {phase}: profile {span:.3f}s vs "
            f"report {reported:.3f}s OK"
        )
    if checked == 0:
        print("check_telemetry: no phase long enough to cross-check")
    if report.get("run") and profile.get("run") != report["run"]:
        fail(
            f"profile run {profile.get('run')!r} != report run "
            f"{report['run']!r}"
        )


def main() -> None:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_metrics(sys.argv[1])
    profile = check_profile(sys.argv[2])
    if len(sys.argv) == 4:
        cross_check(profile, sys.argv[3])
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
