#!/usr/bin/env python3
"""Verify one chaos run's recover-or-fail-clean contract.

Usage: check_fault_run.py <report.json> <exit_status>

A run with fault injection armed must either
  - recover: exit 0 and a parseable report with status "ok", or
  - fail cleanly: nonzero exit and a parseable report with status
    "failed" that records the fault arming that killed it.
Anything else (missing/corrupt report, crash signature, ok-report with
nonzero exit, failed-report with exit 0) fails the matrix.
"""
import json
import sys


def main() -> int:
    report_path, exit_status = sys.argv[1], int(sys.argv[2])
    if exit_status >= 128:
        print(f"run crashed or timed out (exit {exit_status})")
        return 1
    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"report is missing or unparseable: {e}")
        return 1
    if report.get("schema") != "clo.report.v1":
        print(f"bad schema: {report.get('schema')!r}")
        return 1
    status = report.get("status")
    if exit_status == 0 and status == "ok":
        total = report.get("quarantine", {}).get("total", 0)
        print(f"recovered (quarantined={total})")
        return 0
    if exit_status != 0 and status == "failed":
        if "fault" not in report:
            print("failed report does not record the fault arming")
            return 1
        print(f"failed cleanly: {report.get('error')}")
        return 0
    print(f"inconsistent outcome: exit={exit_status} status={status!r}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
