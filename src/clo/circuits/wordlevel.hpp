#pragma once
// Word-level circuit construction on top of the AIG: buses, adders,
// multipliers, dividers, shifters, comparators, encoders — the building
// blocks the benchmark generators use to produce EPFL/ISCAS-class designs.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "clo/aig/aig.hpp"

namespace clo::circuits {

/// A little-endian bus of literals (index 0 = LSB).
using Bus = std::vector<aig::Lit>;

class CircuitBuilder {
 public:
  explicit CircuitBuilder(std::string name) { g_.set_name(std::move(name)); }

  aig::Aig& graph() { return g_; }
  aig::Aig take() { return std::move(g_); }

  // ---- I/O ----------------------------------------------------------------
  aig::Lit input(const std::string& name) { return g_.add_pi(name); }
  Bus input_bus(const std::string& name, int width);
  void output(const std::string& name, aig::Lit l) { g_.add_po(l, name); }
  void output_bus(const std::string& name, const Bus& bus);

  // ---- Constants & bitwise ops ---------------------------------------------
  Bus constant(int width, std::uint64_t value) const;
  Bus bitwise_not(const Bus& a) const;
  Bus bitwise_and(const Bus& a, const Bus& b);
  Bus bitwise_or(const Bus& a, const Bus& b);
  Bus bitwise_xor(const Bus& a, const Bus& b);
  aig::Lit reduce_and(const Bus& a);
  aig::Lit reduce_or(const Bus& a);
  aig::Lit reduce_xor(const Bus& a);

  // ---- Selection ------------------------------------------------------------
  /// Per-bit mux: sel ? t : e (buses must have equal width).
  Bus mux_bus(aig::Lit sel, const Bus& t, const Bus& e);

  // ---- Arithmetic -----------------------------------------------------------
  /// Ripple-carry addition; returns (sum, carry_out).
  std::pair<Bus, aig::Lit> add(const Bus& a, const Bus& b,
                               aig::Lit carry_in = aig::kLitFalse);
  /// a - b (two's complement); returns (difference, borrow_free flag =
  /// carry_out, i.e. 1 when a >= b for unsigned operands).
  std::pair<Bus, aig::Lit> sub(const Bus& a, const Bus& b);
  /// Unsigned array multiplier; result width = |a| + |b|.
  Bus mul(const Bus& a, const Bus& b);
  /// Unsigned squarer (mul(a, a) with shared partial products).
  Bus square(const Bus& a) { return mul(a, a); }
  /// Unsigned restoring division; returns (quotient, remainder).
  std::pair<Bus, Bus> divmod(const Bus& a, const Bus& b);
  /// Unsigned integer square root (restoring); result width = ceil(|a|/2).
  Bus isqrt(const Bus& a);

  // ---- Comparison -----------------------------------------------------------
  aig::Lit equal(const Bus& a, const Bus& b);
  aig::Lit less_than(const Bus& a, const Bus& b);   ///< unsigned a < b
  Bus max_of(const Bus& a, const Bus& b);
  Bus min_of(const Bus& a, const Bus& b);

  // ---- Shifting -------------------------------------------------------------
  /// Barrel shifter: a << sh (variable shift, zeros shifted in).
  Bus shift_left(const Bus& a, const Bus& sh);
  Bus shift_right(const Bus& a, const Bus& sh);
  /// Left rotation by a variable amount.
  Bus rotate_left(const Bus& a, const Bus& sh);

  // ---- Encoding -------------------------------------------------------------
  /// One-hot decoder: width 2^|sel| outputs.
  Bus decode(const Bus& sel);
  /// Priority encoder over `req` (LSB wins); returns (index, any).
  std::pair<Bus, aig::Lit> priority_encode(const Bus& req);
  /// Count of set bits; result width = ceil(log2(|a|+1)).
  Bus popcount(const Bus& a);
  /// Majority over all bits (true when > half are set; |a| must be odd).
  aig::Lit majority(const Bus& a);
  /// Leading-one detector: index of the highest set bit, plus "none" flag.
  std::pair<Bus, aig::Lit> leading_one(const Bus& a);

 private:
  aig::Aig g_;
};

}  // namespace clo::circuits
