#include "clo/circuits/wordlevel.hpp"

#include <algorithm>
#include <stdexcept>

namespace clo::circuits {

using aig::Lit;
using aig::lit_not;

Bus CircuitBuilder::input_bus(const std::string& name, int width) {
  Bus bus(width);
  for (int i = 0; i < width; ++i) {
    bus[i] = g_.add_pi(name + "[" + std::to_string(i) + "]");
  }
  return bus;
}

void CircuitBuilder::output_bus(const std::string& name, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    g_.add_po(bus[i], name + "[" + std::to_string(i) + "]");
  }
}

Bus CircuitBuilder::constant(int width, std::uint64_t value) const {
  Bus bus(width);
  for (int i = 0; i < width; ++i) {
    bus[i] = ((value >> i) & 1) ? aig::kLitTrue : aig::kLitFalse;
  }
  return bus;
}

Bus CircuitBuilder::bitwise_not(const Bus& a) const {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = lit_not(a[i]);
  return r;
}

Bus CircuitBuilder::bitwise_and(const Bus& a, const Bus& b) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = g_.and_of(a[i], b[i]);
  return r;
}

Bus CircuitBuilder::bitwise_or(const Bus& a, const Bus& b) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = g_.or_of(a[i], b[i]);
  return r;
}

Bus CircuitBuilder::bitwise_xor(const Bus& a, const Bus& b) {
  Bus r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = g_.xor_of(a[i], b[i]);
  return r;
}

Lit CircuitBuilder::reduce_and(const Bus& a) {
  Lit acc = aig::kLitTrue;
  for (Lit l : a) acc = g_.and_of(acc, l);
  return acc;
}

Lit CircuitBuilder::reduce_or(const Bus& a) {
  Lit acc = aig::kLitFalse;
  for (Lit l : a) acc = g_.or_of(acc, l);
  return acc;
}

Lit CircuitBuilder::reduce_xor(const Bus& a) {
  Lit acc = aig::kLitFalse;
  for (Lit l : a) acc = g_.xor_of(acc, l);
  return acc;
}

Bus CircuitBuilder::mux_bus(Lit sel, const Bus& t, const Bus& e) {
  if (t.size() != e.size()) throw std::invalid_argument("mux width mismatch");
  Bus r(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    r[i] = g_.mux_of(sel, t[i], e[i]);
  }
  return r;
}

std::pair<Bus, Lit> CircuitBuilder::add(const Bus& a, const Bus& b,
                                        Lit carry_in) {
  if (a.size() != b.size()) throw std::invalid_argument("add width mismatch");
  Bus sum(a.size());
  Lit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = g_.xor_of(a[i], b[i]);
    sum[i] = g_.xor_of(axb, carry);
    carry = g_.maj_of(a[i], b[i], carry);
  }
  return {sum, carry};
}

std::pair<Bus, Lit> CircuitBuilder::sub(const Bus& a, const Bus& b) {
  return add(a, bitwise_not(b), aig::kLitTrue);
}

Bus CircuitBuilder::mul(const Bus& a, const Bus& b) {
  const int wa = static_cast<int>(a.size());
  const int wb = static_cast<int>(b.size());
  Bus acc = constant(wa + wb, 0);
  for (int j = 0; j < wb; ++j) {
    Bus partial = constant(wa + wb, 0);
    for (int i = 0; i < wa; ++i) partial[i + j] = g_.and_of(a[i], b[j]);
    acc = add(acc, partial).first;
  }
  return acc;
}

std::pair<Bus, Bus> CircuitBuilder::divmod(const Bus& a, const Bus& b) {
  const int w = static_cast<int>(a.size());
  if (b.size() != a.size()) throw std::invalid_argument("divmod width");
  // Restoring division, MSB first. Remainder register one bit wider than b.
  Bus rem = constant(w + 1, 0);
  Bus div(b);
  div.push_back(aig::kLitFalse);
  Bus quot(w, aig::kLitFalse);
  for (int i = w - 1; i >= 0; --i) {
    // rem = (rem << 1) | a[i]
    for (int k = w; k > 0; --k) rem[k] = rem[k - 1];
    rem[0] = a[i];
    auto [diff, no_borrow] = sub(rem, div);
    quot[i] = no_borrow;  // rem >= div
    rem = mux_bus(no_borrow, diff, rem);
  }
  rem.pop_back();
  return {quot, rem};
}

Bus CircuitBuilder::isqrt(const Bus& a) {
  const int w = static_cast<int>(a.size());
  const int rw = (w + 1) / 2;
  // Restoring square root: process two input bits per iteration.
  Bus rem = constant(w + 2, 0);
  Bus root = constant(rw, 0);
  for (int i = rw - 1; i >= 0; --i) {
    // rem = (rem << 2) | a[2i+1..2i]
    for (int k = w + 1; k > 1; --k) rem[k] = rem[k - 2];
    rem[1] = (2 * i + 1 < w) ? a[2 * i + 1] : aig::kLitFalse;
    rem[0] = a[2 * i];
    // trial = (root << 2) | 01
    Bus trial = constant(w + 2, 0);
    trial[0] = aig::kLitTrue;
    for (int k = 0; k < rw; ++k) {
      if (k + 2 < w + 2) trial[k + 2] = root[k];
    }
    auto [diff, no_borrow] = sub(rem, trial);
    rem = mux_bus(no_borrow, diff, rem);
    // root = (root << 1) | no_borrow
    for (int k = rw - 1; k > 0; --k) root[k] = root[k - 1];
    root[0] = no_borrow;
  }
  return root;
}

Lit CircuitBuilder::equal(const Bus& a, const Bus& b) {
  Bus x = bitwise_xor(a, b);
  return lit_not(reduce_or(x));
}

Lit CircuitBuilder::less_than(const Bus& a, const Bus& b) {
  // a < b  <=>  borrow out of a - b.
  return lit_not(sub(a, b).second);
}

Bus CircuitBuilder::max_of(const Bus& a, const Bus& b) {
  return mux_bus(less_than(a, b), b, a);
}

Bus CircuitBuilder::min_of(const Bus& a, const Bus& b) {
  return mux_bus(less_than(a, b), a, b);
}

Bus CircuitBuilder::shift_left(const Bus& a, const Bus& sh) {
  Bus cur(a);
  const int w = static_cast<int>(a.size());
  for (std::size_t s = 0; s < sh.size(); ++s) {
    const int amount = 1 << s;
    Bus shifted = constant(w, 0);
    for (int i = 0; i < w; ++i) {
      if (i - amount >= 0) shifted[i] = cur[i - amount];
    }
    cur = mux_bus(sh[s], shifted, cur);
  }
  return cur;
}

Bus CircuitBuilder::shift_right(const Bus& a, const Bus& sh) {
  Bus cur(a);
  const int w = static_cast<int>(a.size());
  for (std::size_t s = 0; s < sh.size(); ++s) {
    const int amount = 1 << s;
    Bus shifted = constant(w, 0);
    for (int i = 0; i < w; ++i) {
      if (i + amount < w) shifted[i] = cur[i + amount];
    }
    cur = mux_bus(sh[s], shifted, cur);
  }
  return cur;
}

Bus CircuitBuilder::rotate_left(const Bus& a, const Bus& sh) {
  Bus cur(a);
  const int w = static_cast<int>(a.size());
  for (std::size_t s = 0; s < sh.size(); ++s) {
    const int amount = (1 << s) % w;
    Bus rotated(w);
    for (int i = 0; i < w; ++i) rotated[i] = cur[((i - amount) % w + w) % w];
    cur = mux_bus(sh[s], rotated, cur);
  }
  return cur;
}

Bus CircuitBuilder::decode(const Bus& sel) {
  const int k = static_cast<int>(sel.size());
  Bus out(std::size_t{1} << k);
  for (std::size_t m = 0; m < out.size(); ++m) {
    Lit acc = aig::kLitTrue;
    for (int i = 0; i < k; ++i) {
      acc = g_.and_of(acc, ((m >> i) & 1) ? sel[i] : lit_not(sel[i]));
    }
    out[m] = acc;
  }
  return out;
}

std::pair<Bus, Lit> CircuitBuilder::priority_encode(const Bus& req) {
  const int n = static_cast<int>(req.size());
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  Bus index = constant(std::max(bits, 1), 0);
  Lit found = aig::kLitFalse;
  // LSB priority: scan from high index down so lower indices override.
  for (int i = n - 1; i >= 0; --i) {
    const Bus value = constant(index.size(), static_cast<std::uint64_t>(i));
    index = mux_bus(req[i], value, index);
    found = g_.or_of(found, req[i]);
  }
  return {index, found};
}

Bus CircuitBuilder::popcount(const Bus& a) {
  // Tree of bit-serial adders over growing widths.
  std::vector<Bus> terms;
  for (Lit l : a) terms.push_back(Bus{l});
  while (terms.size() > 1) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      Bus x = terms[i];
      Bus y = terms[i + 1];
      const std::size_t w = std::max(x.size(), y.size());
      x.resize(w, aig::kLitFalse);
      y.resize(w, aig::kLitFalse);
      auto [sum, carry] = add(x, y);
      sum.push_back(carry);
      next.push_back(std::move(sum));
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  if (terms.empty()) return Bus{};
  // Truncate to the promised ceil(log2(n+1)) width: the count is at most
  // |a|, so higher carry bits are provably zero.
  Bus result = std::move(terms[0]);
  int needed = 1;
  while ((std::size_t{1} << needed) <= a.size()) ++needed;
  if (static_cast<int>(result.size()) > needed) result.resize(needed);
  return result;
}

Lit CircuitBuilder::majority(const Bus& a) {
  if (a.size() % 2 == 0) throw std::invalid_argument("majority needs odd width");
  Bus count = popcount(a);
  const Bus threshold = constant(static_cast<int>(count.size()),
                                 a.size() / 2);  // count > floor(n/2)
  return lit_not(sub(threshold, count).second);  // threshold < count
}

std::pair<Bus, Lit> CircuitBuilder::leading_one(const Bus& a) {
  const int n = static_cast<int>(a.size());
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  Bus index = constant(std::max(bits, 1), 0);
  Lit found = aig::kLitFalse;
  // MSB priority: scan from low index up so higher indices override.
  for (int i = 0; i < n; ++i) {
    const Bus value = constant(index.size(), static_cast<std::uint64_t>(i));
    index = mux_bus(a[i], value, index);
    found = g_.or_of(found, a[i]);
  }
  return {index, found};
}

}  // namespace clo::circuits
