#pragma once
// Generators for the paper's benchmark suite: structural equivalents of the
// 20 EPFL combinational benchmarks and 11 ISCAS85 netlists, built with the
// word-level builder at reduced bit-widths (see DESIGN.md for the
// substitution rationale). Every generator is deterministic.

#include <string>
#include <vector>

#include "clo/aig/aig.hpp"

namespace clo::circuits {

struct BenchmarkInfo {
  std::string name;
  std::string suite;        ///< "epfl" or "iscas85"
  std::string description;
};

/// All 31 benchmark names in the paper's Table II order.
const std::vector<BenchmarkInfo>& benchmark_catalog();

/// True if `name` is in the catalog.
bool has_benchmark(const std::string& name);

/// Build a benchmark circuit by name. Throws std::invalid_argument for
/// unknown names.
///
/// `full_width` selects the paper-scale variants of the EPFL arithmetic
/// benchmarks (adder 128, bar 128, div 64, hyp 32, max 4x128,
/// multiplier 64x64, sqrt 64, square 64 — the `--full` bench
/// configuration). Benchmarks without a widened variant (the control/random
/// suite, ISCAS85, and the hand-tuned log2/sin generators whose constant
/// tables are width-specific) are identical at either setting. Both
/// settings are deterministic.
aig::Aig make_benchmark(const std::string& name, bool full_width = false);

}  // namespace clo::circuits
