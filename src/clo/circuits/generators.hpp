#pragma once
// Generators for the paper's benchmark suite: structural equivalents of the
// 20 EPFL combinational benchmarks and 11 ISCAS85 netlists, built with the
// word-level builder at reduced bit-widths (see DESIGN.md for the
// substitution rationale). Every generator is deterministic.

#include <string>
#include <vector>

#include "clo/aig/aig.hpp"

namespace clo::circuits {

struct BenchmarkInfo {
  std::string name;
  std::string suite;        ///< "epfl" or "iscas85"
  std::string description;
};

/// All 31 benchmark names in the paper's Table II order.
const std::vector<BenchmarkInfo>& benchmark_catalog();

/// True if `name` is in the catalog.
bool has_benchmark(const std::string& name);

/// Build a benchmark circuit by name. Throws std::invalid_argument for
/// unknown names.
aig::Aig make_benchmark(const std::string& name);

}  // namespace clo::circuits
