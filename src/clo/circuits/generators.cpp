#include "clo/circuits/generators.hpp"

#include <functional>
#include <map>
#include <stdexcept>

#include "clo/circuits/wordlevel.hpp"
#include "clo/util/rng.hpp"

namespace clo::circuits {

using aig::Aig;
using aig::Lit;
using aig::lit_not;

namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Deterministic random two-level control logic: each output is an OR of
/// `cubes` random cubes over a random subset of the inputs. Used for the
/// irregular control benchmarks (cavlc/ctrl/i2c/...) whose exact netlists
/// are not reconstructible from the paper — the optimization landscape only
/// needs "messy multi-output control logic" of the right size.
Bus random_logic(CircuitBuilder& cb, const Bus& in, int num_outputs,
                 int cubes, int cube_width, clo::Rng& rng) {
  Bus out;
  out.reserve(num_outputs);
  for (int o = 0; o < num_outputs; ++o) {
    Lit acc = aig::kLitFalse;
    for (int c = 0; c < cubes; ++c) {
      Lit term = aig::kLitTrue;
      for (int l = 0; l < cube_width; ++l) {
        const Lit x = in[rng.next_below(in.size())];
        term = cb.graph().and_of(term, rng.next_bool() ? x : lit_not(x));
      }
      acc = cb.graph().or_of(acc, term);
    }
    out.push_back(acc);
  }
  return out;
}

// ---------------------------------------------------------------------------
// EPFL arithmetic benchmarks. The default widths are reduced (see DESIGN.md
// for the substitution rationale); `full` selects the paper-scale `--full`
// variants. Structure is identical at either width — only the bus widths
// change — so the reduced circuits remain faithful miniatures.
// ---------------------------------------------------------------------------

Aig gen_adder(bool full) {
  CircuitBuilder cb("adder");
  const int w = full ? 128 : 32;
  const Bus a = cb.input_bus("a", w);
  const Bus b = cb.input_bus("b", w);
  auto [sum, carry] = cb.add(a, b);
  cb.output_bus("sum", sum);
  cb.output("cout", carry);
  return cb.take();
}

Aig gen_bar(bool full) {
  CircuitBuilder cb("bar");
  const Bus data = cb.input_bus("data", full ? 128 : 32);
  const Bus shift = cb.input_bus("shift", full ? 7 : 5);
  cb.output_bus("out", cb.rotate_left(data, shift));
  return cb.take();
}

Aig gen_div(bool full) {
  CircuitBuilder cb("div");
  const int w = full ? 64 : 8;
  const Bus a = cb.input_bus("a", w);
  const Bus b = cb.input_bus("b", w);
  auto [q, r] = cb.divmod(a, b);
  cb.output_bus("quot", q);
  cb.output_bus("rem", r);
  return cb.take();
}

Aig gen_hyp(bool full) {
  CircuitBuilder cb("hyp");
  // Full EPFL hyp is 128-bit (~214k gates) — far beyond what the restoring
  // isqrt tolerates here; 32-bit is the capped paper-scale variant.
  const int w = full ? 32 : 6;
  const Bus x = cb.input_bus("x", w);
  const Bus y = cb.input_bus("y", w);
  const Bus x2 = cb.square(x);
  const Bus y2 = cb.square(y);
  Bus sum = cb.add(x2, y2).first;
  sum.push_back(aig::kLitFalse);  // widen to 2w+1 bits for the carry
  cb.output_bus("hyp", cb.isqrt(sum));
  return cb.take();
}

Aig gen_log2() {
  CircuitBuilder cb("log2");
  const Bus x = cb.input_bus("x", 16);
  auto [exp, any] = cb.leading_one(x);
  // Normalize: shift the leading one to the top, take the fraction bits.
  const Bus left = cb.sub(cb.constant(4, 15), exp).first;
  const Bus norm = cb.shift_left(x, left);
  Bus frac(norm.begin() + 8, norm.begin() + 15);  // bits below the lead one
  // Quadratic correction: frac - frac^2/2 approximates log2(1+f).
  const Bus f2 = cb.mul(frac, frac);     // 14 bits
  Bus corr(f2.begin() + 7, f2.end());    // top 7 bits of frac^2 (/2)
  corr.push_back(aig::kLitFalse);        // widen to 8
  Bus fr(frac);
  fr.push_back(aig::kLitFalse);          // widen to 8
  const Bus mant = cb.sub(fr, corr).first;
  cb.output_bus("exp", exp);
  cb.output_bus("mant", mant);
  cb.output("valid", any);
  return cb.take();
}

Aig gen_max(bool full) {
  CircuitBuilder cb("max");
  const int w = full ? 128 : 16;
  const Bus a = cb.input_bus("a", w);
  const Bus b = cb.input_bus("b", w);
  const Bus c = cb.input_bus("c", w);
  const Bus d = cb.input_bus("d", w);
  const Bus m = cb.max_of(cb.max_of(a, b), cb.max_of(c, d));
  cb.output_bus("max", m);
  return cb.take();
}

Aig gen_multiplier(bool full) {
  CircuitBuilder cb("multiplier");
  const int w = full ? 64 : 8;
  const Bus a = cb.input_bus("a", w);
  const Bus b = cb.input_bus("b", w);
  cb.output_bus("prod", cb.mul(a, b));
  return cb.take();
}

Aig gen_sin() {
  CircuitBuilder cb("sin");
  // CORDIC rotation mode, 10 iterations at 12-bit precision.
  const Bus angle_in = cb.input_bus("angle", 12);
  static const int kAtan[10] = {1608, 949, 501, 254, 127, 63, 31, 15, 7, 3};
  Bus x = cb.constant(12, 1243);  // CORDIC gain-compensated start value
  Bus y = cb.constant(12, 0);
  Bus z = angle_in;
  for (int k = 0; k < 10; ++k) {
    const Lit sign = z[11];  // z < 0 (two's complement sign bit)
    // Arithmetic shift right by k (sign extension of x/y, treated signed).
    auto asr = [&](const Bus& v) {
      Bus s(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) {
        s[i] = (i + k < v.size()) ? v[i + k] : v[v.size() - 1];
      }
      return s;
    };
    const Bus xs = asr(x);
    const Bus ys = asr(y);
    const Bus at = cb.constant(12, static_cast<std::uint64_t>(kAtan[k]) & 0xfff);
    // sign==0 (z >= 0): x -= y>>k, y += x>>k, z -= atan
    // sign==1 (z <  0): x += y>>k, y -= x>>k, z += atan
    const Bus x_minus = cb.sub(x, ys).first;
    const Bus x_plus = cb.add(x, ys).first;
    const Bus y_plus = cb.add(y, xs).first;
    const Bus y_minus = cb.sub(y, xs).first;
    const Bus z_minus = cb.sub(z, at).first;
    const Bus z_plus = cb.add(z, at).first;
    x = cb.mux_bus(sign, x_plus, x_minus);
    y = cb.mux_bus(sign, y_minus, y_plus);
    z = cb.mux_bus(sign, z_plus, z_minus);
  }
  cb.output_bus("sin", y);
  return cb.take();
}

Aig gen_sqrt(bool full) {
  CircuitBuilder cb("sqrt");
  const Bus x = cb.input_bus("x", full ? 64 : 16);
  cb.output_bus("root", cb.isqrt(x));
  return cb.take();
}

Aig gen_square(bool full) {
  CircuitBuilder cb("square");
  const Bus x = cb.input_bus("x", full ? 64 : 8);
  cb.output_bus("sq", cb.square(x));
  return cb.take();
}

// ---------------------------------------------------------------------------
// EPFL random/control benchmarks
// ---------------------------------------------------------------------------

Aig gen_arbiter() {
  CircuitBuilder cb("arbiter");
  const Bus req = cb.input_bus("req", 16);
  const Bus ptr = cb.input_bus("ptr", 4);
  // Round-robin: rotate requests by the pointer, fixed-priority arbitrate,
  // rotate the one-hot grant back.
  const Bus neg = cb.sub(cb.constant(4, 0), ptr).first;  // 16 - ptr mod 16
  const Bus rotated = cb.rotate_left(req, neg);
  Bus grant_rot(16);
  Lit taken = aig::kLitFalse;
  for (int i = 0; i < 16; ++i) {
    grant_rot[i] = cb.graph().and_of(rotated[i], lit_not(taken));
    taken = cb.graph().or_of(taken, rotated[i]);
  }
  const Bus grant = cb.rotate_left(grant_rot, ptr);
  cb.output_bus("grant", grant);
  cb.output("busy", taken);
  return cb.take();
}

Aig gen_cavlc() {
  CircuitBuilder cb("cavlc");
  clo::Rng rng(0xCA71C);
  const Bus in = cb.input_bus("in", 10);
  // Coefficient-token decode flavor: a 4-bit field selects among random
  // code tables applied to the remaining bits.
  const Bus sel(in.begin(), in.begin() + 4);
  const Bus rest(in.begin() + 4, in.end());
  const Bus dec = cb.decode(Bus(sel.begin(), sel.begin() + 3));
  Bus table = random_logic(cb, in, 11, 6, 4, rng);
  Bus gated(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    gated[i] = cb.graph().and_of(table[i], dec[i % dec.size()]);
  }
  const Lit parity = cb.reduce_xor(rest);
  for (auto& l : gated) l = cb.graph().xor_of(l, parity);
  cb.output_bus("out", gated);
  return cb.take();
}

Aig gen_ctrl() {
  CircuitBuilder cb("ctrl");
  clo::Rng rng(0xC781);
  const Bus in = cb.input_bus("in", 7);
  cb.output_bus("out", random_logic(cb, in, 25, 4, 3, rng));
  return cb.take();
}

Aig gen_dec() {
  CircuitBuilder cb("dec");
  const Bus sel = cb.input_bus("sel", 6);
  cb.output_bus("out", cb.decode(sel));
  return cb.take();
}

Aig gen_i2c() {
  CircuitBuilder cb("i2c");
  clo::Rng rng(0x12C);
  const Bus state = cb.input_bus("state", 5);
  const Bus count = cb.input_bus("count", 4);
  const Bus flags = cb.input_bus("flags", 8);
  // Next-state logic: compare the counter, decode the state, mix flags.
  const Bus st_dec = cb.decode(state);
  const Lit cnt_done = cb.equal(count, cb.constant(4, 8));
  Bus all(flags);
  all.insert(all.end(), state.begin(), state.end());
  all.push_back(cnt_done);
  Bus next = random_logic(cb, all, 18, 5, 4, rng);
  for (std::size_t i = 0; i < next.size(); ++i) {
    next[i] = cb.graph().and_of(next[i], lit_not(st_dec[i % 32]));
  }
  cb.output_bus("out", next);
  return cb.take();
}

Aig gen_int2float() {
  CircuitBuilder cb("int2float");
  const Bus x = cb.input_bus("x", 8);
  auto [exp, any] = cb.leading_one(x);
  const Bus left = cb.sub(cb.constant(3, 7), exp).first;
  const Bus norm = cb.shift_left(x, left);
  Bus mant(norm.begin() + 4, norm.begin() + 7);  // 3 bits below the lead one
  cb.output_bus("exp", exp);
  cb.output_bus("mant", mant);
  cb.output("nonzero", any);
  return cb.take();
}

Aig gen_mem_ctrl() {
  CircuitBuilder cb("mem_ctrl");
  clo::Rng rng(0x3E3);
  const Bus addr = cb.input_bus("addr", 12);
  const Bus cmd = cb.input_bus("cmd", 3);
  const Bus bank_state = cb.input_bus("bank_state", 8);
  const Bus timer = cb.input_bus("timer", 6);
  // Bank/row decode.
  const Bus bank = cb.decode(Bus(addr.begin() + 9, addr.end()));
  const Bus row(addr.begin(), addr.begin() + 9);
  const Bus cmd_dec = cb.decode(cmd);
  const Lit timer_zero = cb.equal(timer, cb.constant(6, 0));
  const Lit row_match = cb.equal(Bus(row.begin(), row.begin() + 8), bank_state);
  // Per-bank command enables.
  Bus enables(8);
  for (int i = 0; i < 8; ++i) {
    const Lit act = cb.graph().and_of(cmd_dec[1], lit_not(row_match));
    const Lit rw = cb.graph().and_of(cmd_dec[2], row_match);
    const Lit pre = cb.graph().and_of(cmd_dec[3], timer_zero);
    const Lit any = cb.graph().or_of(act, cb.graph().or_of(rw, pre));
    enables[i] = cb.graph().and_of(any, bank[i]);
  }
  cb.output_bus("en", enables);
  Bus all(addr);
  all.insert(all.end(), bank_state.begin(), bank_state.end());
  all.insert(all.end(), timer.begin(), timer.end());
  all.push_back(row_match);
  all.push_back(timer_zero);
  cb.output_bus("ctl", random_logic(cb, all, 24, 6, 5, rng));
  // Refresh counter compare chain.
  auto [inc, carry] = cb.add(timer, cb.constant(6, 1));
  cb.output_bus("timer_next", inc);
  cb.output("timer_wrap", carry);
  return cb.take();
}

Aig gen_priority() {
  CircuitBuilder cb("priority");
  const Bus req = cb.input_bus("req", 32);
  auto [index, any] = cb.priority_encode(req);
  cb.output_bus("index", index);
  cb.output("valid", any);
  // Daisy-chain grant outputs (what makes EPFL's priority deep).
  Bus grant(32);
  Lit blocked = aig::kLitFalse;
  for (int i = 0; i < 32; ++i) {
    grant[i] = cb.graph().and_of(req[i], lit_not(blocked));
    blocked = cb.graph().or_of(blocked, req[i]);
  }
  cb.output_bus("grant", grant);
  return cb.take();
}

Aig gen_router() {
  CircuitBuilder cb("router");
  clo::Rng rng(0x7013);
  const Bus dest = cb.input_bus("dest", 8);
  const Bus local = cb.input_bus("local", 8);
  const Bus credits = cb.input_bus("credits", 4);
  const Lit is_local = cb.equal(dest, local);
  const Lit go_x = cb.less_than(Bus(dest.begin(), dest.begin() + 4),
                                Bus(local.begin(), local.begin() + 4));
  const Lit go_y = cb.less_than(Bus(dest.begin() + 4, dest.end()),
                                Bus(local.begin() + 4, local.end()));
  Bus port(4);
  port[0] = is_local;
  port[1] = cb.graph().and_of(lit_not(is_local), go_x);
  port[2] = cb.graph().and_of(lit_not(is_local),
                              cb.graph().and_of(lit_not(go_x), go_y));
  port[3] = cb.graph().and_of(lit_not(is_local),
                              cb.graph().and_of(lit_not(go_x), lit_not(go_y)));
  Bus gated(4);
  for (int i = 0; i < 4; ++i) gated[i] = cb.graph().and_of(port[i], credits[i]);
  cb.output_bus("port", gated);
  Bus all(dest);
  all.insert(all.end(), credits.begin(), credits.end());
  cb.output_bus("misc", random_logic(cb, all, 6, 4, 4, rng));
  return cb.take();
}

Aig gen_voter() {
  CircuitBuilder cb("voter");
  const Bus votes = cb.input_bus("v", 31);
  cb.output("maj", cb.majority(votes));
  return cb.take();
}

// ---------------------------------------------------------------------------
// ISCAS85
// ---------------------------------------------------------------------------

Aig gen_c17() {
  // The classic 6-NAND netlist, exactly.
  CircuitBuilder cb("c17");
  Aig& g = cb.graph();
  const Lit n1 = cb.input("1");
  const Lit n2 = cb.input("2");
  const Lit n3 = cb.input("3");
  const Lit n6 = cb.input("6");
  const Lit n7 = cb.input("7");
  const Lit g10 = g.nand_of(n1, n3);
  const Lit g11 = g.nand_of(n3, n6);
  const Lit g16 = g.nand_of(n2, g11);
  const Lit g19 = g.nand_of(g11, n7);
  const Lit g22 = g.nand_of(g10, g16);
  const Lit g23 = g.nand_of(g16, g19);
  cb.output("22", g22);
  cb.output("23", g23);
  return cb.take();
}

Aig gen_c432() {
  // 27-channel interrupt controller flavor: 3 groups of 9 requests with
  // per-group enables and cross-group priority.
  CircuitBuilder cb("c432");
  const Bus a = cb.input_bus("a", 9);
  const Bus b = cb.input_bus("b", 9);
  const Bus c = cb.input_bus("c", 9);
  const Bus en = cb.input_bus("en", 9);
  const Bus ga = cb.bitwise_and(a, en);
  const Lit any_a = cb.reduce_or(ga);
  const Bus gb = cb.bitwise_and(b, en);
  const Lit any_b = cb.reduce_or(gb);
  const Bus gc = cb.bitwise_and(c, en);
  const Lit any_c = cb.reduce_or(gc);
  // Priority a > b > c; selected channel index within winning group.
  Bus sel = cb.mux_bus(any_a, ga, cb.mux_bus(any_b, gb, gc));
  auto [index, any] = cb.priority_encode(sel);
  cb.output("pa", any_a);
  cb.output("pb", cb.graph().and_of(any_b, lit_not(any_a)));
  cb.output("pc", cb.graph().and_of(
                      any_c, lit_not(cb.graph().or_of(any_a, any_b))));
  cb.output_bus("chan", index);
  cb.output("any", any);
  return cb.take();
}

/// Hamming-style single-error-corrector used for the c499/c1355/c1908 family.
Aig gen_ecc(const std::string& name, int data_bits, int extra_mix) {
  CircuitBuilder cb(name);
  int check_bits = 0;
  while ((1 << check_bits) < data_bits + check_bits + 1) ++check_bits;
  const Bus data = cb.input_bus("d", data_bits);
  const Bus check = cb.input_bus("c", check_bits);
  // Syndrome: parity groups by (position+1) bit masks.
  Bus syndrome(check_bits);
  for (int s = 0; s < check_bits; ++s) {
    Lit acc = check[s];
    for (int i = 0; i < data_bits; ++i) {
      if (((i + 1) >> s) & 1) acc = cb.graph().xor_of(acc, data[i]);
    }
    syndrome[s] = acc;
  }
  // Correct: flip data bit whose (index+1) matches the syndrome.
  Bus corrected(data_bits);
  for (int i = 0; i < data_bits; ++i) {
    const Lit hit = cb.equal(
        syndrome, cb.constant(check_bits, static_cast<std::uint64_t>(i + 1)));
    corrected[i] = cb.graph().xor_of(data[i], hit);
  }
  for (int m = 0; m < extra_mix; ++m) {
    // Extra parity planes (c1355 expands c499 logic; we widen similarly).
    Bus rot(corrected.size());
    for (std::size_t i = 0; i < corrected.size(); ++i) {
      rot[i] = corrected[(i + 5 * (m + 1)) % corrected.size()];
    }
    corrected = cb.bitwise_xor(corrected, rot);
  }
  cb.output_bus("out", corrected);
  cb.output("err", cb.reduce_or(syndrome));
  return cb.take();
}

/// Small ALU used for the c880/c2670/c3540/c5315 family.
Bus alu_core(CircuitBuilder& cb, const Bus& a, const Bus& b, const Bus& op) {
  const Bus dec = cb.decode(op);
  const Bus sum = cb.add(a, b).first;
  const Bus diff = cb.sub(a, b).first;
  const Bus andv = cb.bitwise_and(a, b);
  const Bus orv = cb.bitwise_or(a, b);
  const Bus xorv = cb.bitwise_xor(a, b);
  Bus shl(a.size(), aig::kLitFalse);
  for (std::size_t i = 1; i < a.size(); ++i) shl[i] = a[i - 1];
  Bus result(a.size(), aig::kLitFalse);
  auto merge = [&](const Bus& v, Lit sel) {
    for (std::size_t i = 0; i < result.size(); ++i) {
      result[i] = cb.graph().or_of(result[i], cb.graph().and_of(v[i], sel));
    }
  };
  merge(sum, dec[0]);
  merge(diff, dec[1]);
  merge(andv, dec[2]);
  merge(orv, dec[3]);
  merge(xorv, dec[4]);
  merge(shl, dec[5]);
  merge(a, dec[6]);
  merge(cb.bitwise_not(a), dec[7]);
  return result;
}

Aig gen_c880() {
  CircuitBuilder cb("c880");
  const Bus a = cb.input_bus("a", 8);
  const Bus b = cb.input_bus("b", 8);
  const Bus op = cb.input_bus("op", 3);
  const Bus r = alu_core(cb, a, b, op);
  cb.output_bus("r", r);
  cb.output("zero", cb.equal(r, cb.constant(8, 0)));
  cb.output("ovf", cb.add(a, b).second);
  return cb.take();
}

Aig gen_c1908() { return gen_ecc("c1908", 16, 2); }
Aig gen_c499() { return gen_ecc("c499", 32, 0); }
Aig gen_c1355() { return gen_ecc("c1355", 32, 1); }

Aig gen_c2670() {
  CircuitBuilder cb("c2670");
  clo::Rng rng(0x2670);
  const Bus a = cb.input_bus("a", 12);
  const Bus b = cb.input_bus("b", 12);
  const Bus op = cb.input_bus("op", 3);
  const Bus r = alu_core(cb, a, b, op);
  cb.output_bus("r", r);
  cb.output("lt", cb.less_than(a, b));
  cb.output("eq", cb.equal(a, b));
  Bus all(a);
  all.insert(all.end(), b.begin(), b.end());
  cb.output_bus("ctl", random_logic(cb, all, 10, 4, 5, rng));
  return cb.take();
}

Aig gen_c3540() {
  CircuitBuilder cb("c3540");
  const Bus a = cb.input_bus("a", 8);
  const Bus b = cb.input_bus("b", 8);
  const Bus op = cb.input_bus("op", 3);
  const Bus sh = cb.input_bus("sh", 3);
  const Bus r = alu_core(cb, a, b, op);
  const Bus shifted = cb.shift_left(r, sh);
  const Bus rotated = cb.rotate_left(a, sh);
  const Bus mixed = cb.bitwise_xor(shifted, rotated);
  cb.output_bus("r", mixed);
  cb.output("parity", cb.reduce_xor(mixed));
  cb.output("zero", cb.equal(mixed, cb.constant(8, 0)));
  return cb.take();
}

Aig gen_c5315() {
  CircuitBuilder cb("c5315");
  const Bus a = cb.input_bus("a", 9);
  const Bus b = cb.input_bus("b", 9);
  const Bus c = cb.input_bus("c", 9);
  const Bus op = cb.input_bus("op", 3);
  const Bus r1 = alu_core(cb, a, b, op);
  const Bus r2 = alu_core(cb, b, c, op);
  const Lit sel = cb.less_than(a, c);
  const Bus r = cb.mux_bus(sel, r1, r2);
  cb.output_bus("r", r);
  cb.output_bus("min", cb.min_of(cb.min_of(a, b), c));
  cb.output("par", cb.reduce_xor(r));
  return cb.take();
}

Aig gen_c6288() {
  CircuitBuilder cb("c6288");
  const Bus a = cb.input_bus("a", 10);
  const Bus b = cb.input_bus("b", 10);
  cb.output_bus("prod", cb.mul(a, b));
  return cb.take();
}

Aig gen_c7552() {
  CircuitBuilder cb("c7552");
  const Bus a = cb.input_bus("a", 16);
  const Bus b = cb.input_bus("b", 16);
  const Bus c = cb.input_bus("c", 16);
  auto [sum, cout] = cb.add(a, b);
  cb.output_bus("sum", sum);
  cb.output("cout", cout);
  cb.output("eq", cb.equal(sum, c));
  cb.output("lt", cb.less_than(sum, c));
  cb.output("par_a", cb.reduce_xor(a));
  cb.output("par_b", cb.reduce_xor(b));
  cb.output_bus("max", cb.max_of(sum, c));
  return cb.take();
}

/// Every generator takes the full-width flag; fixed-size benchmarks (the
/// control/random suite, ISCAS85, and the width-specific log2/sin constant
/// tables) ignore it via fixed().
using Generator = std::function<Aig(bool full)>;

Generator fixed(Aig (*gen)()) {
  return [gen](bool) { return gen(); };
}

const std::map<std::string, Generator>& generator_map() {
  static const std::map<std::string, Generator> kMap = {
      {"adder", gen_adder},
      {"arbiter", fixed(gen_arbiter)},
      {"bar", gen_bar},
      {"cavlc", fixed(gen_cavlc)},
      {"ctrl", fixed(gen_ctrl)},
      {"dec", fixed(gen_dec)},
      {"div", gen_div},
      {"hyp", gen_hyp},
      {"i2c", fixed(gen_i2c)},
      {"int2float", fixed(gen_int2float)},
      {"log2", fixed(gen_log2)},
      {"max", gen_max},
      {"mem_ctrl", fixed(gen_mem_ctrl)},
      {"multiplier", gen_multiplier},
      {"priority", fixed(gen_priority)},
      {"router", fixed(gen_router)},
      {"sin", fixed(gen_sin)},
      {"sqrt", gen_sqrt},
      {"square", gen_square},
      {"voter", fixed(gen_voter)},
      {"c17", fixed(gen_c17)},
      {"c432", fixed(gen_c432)},
      {"c499", fixed(gen_c499)},
      {"c880", fixed(gen_c880)},
      {"c1355", fixed(gen_c1355)},
      {"c1908", fixed(gen_c1908)},
      {"c2670", fixed(gen_c2670)},
      {"c3540", fixed(gen_c3540)},
      {"c5315", fixed(gen_c5315)},
      {"c6288", fixed(gen_c6288)},
      {"c7552", fixed(gen_c7552)},
  };
  return kMap;
}

}  // namespace

const std::vector<BenchmarkInfo>& benchmark_catalog() {
  static const std::vector<BenchmarkInfo> kCatalog = {
      {"adder", "epfl", "32-bit ripple-carry adder"},
      {"arbiter", "epfl", "16-way round-robin arbiter"},
      {"bar", "epfl", "32-bit barrel rotator"},
      {"cavlc", "epfl", "coefficient-token decode control"},
      {"ctrl", "epfl", "small random control decode"},
      {"dec", "epfl", "6-to-64 decoder"},
      {"div", "epfl", "8-bit restoring divider"},
      {"hyp", "epfl", "6-bit hypotenuse sqrt(x^2+y^2)"},
      {"i2c", "epfl", "bus-controller next-state logic"},
      {"int2float", "epfl", "8-bit int to mini-float converter"},
      {"log2", "epfl", "16-bit log2 with quadratic correction"},
      {"max", "epfl", "max of four 16-bit words"},
      {"mem_ctrl", "epfl", "DRAM command/decode control"},
      {"multiplier", "epfl", "8x8 array multiplier"},
      {"priority", "epfl", "32-bit priority encoder + daisy chain"},
      {"router", "epfl", "XY route computation"},
      {"sin", "epfl", "12-bit CORDIC sine"},
      {"sqrt", "epfl", "16-bit restoring square root"},
      {"square", "epfl", "8-bit squarer"},
      {"voter", "epfl", "31-input majority voter"},
      {"c17", "iscas85", "classic 6-NAND netlist (exact)"},
      {"c432", "iscas85", "27-channel interrupt controller"},
      {"c499", "iscas85", "32-bit SEC circuit"},
      {"c880", "iscas85", "8-bit ALU"},
      {"c1355", "iscas85", "32-bit SEC circuit (expanded)"},
      {"c1908", "iscas85", "16-bit SEC with extra parity planes"},
      {"c2670", "iscas85", "12-bit ALU + comparator + control"},
      {"c3540", "iscas85", "8-bit ALU with shifter"},
      {"c5315", "iscas85", "dual 9-bit ALU selector"},
      {"c6288", "iscas85", "10x10 array multiplier"},
      {"c7552", "iscas85", "16-bit adder/comparator"},
  };
  return kCatalog;
}

bool has_benchmark(const std::string& name) {
  return generator_map().count(name) > 0;
}

Aig make_benchmark(const std::string& name, bool full_width) {
  auto it = generator_map().find(name);
  if (it == generator_map().end()) {
    throw std::invalid_argument("unknown benchmark: " + name);
  }
  Aig g = it->second(full_width);
  g.cleanup();  // drop any construction leftovers; canonical node count
  return g;
}

}  // namespace clo::circuits
