#pragma once
// K-feasible cut enumeration (priority cuts), used by the rewriting pass
// (k = 4) and by the technology mapper (k = 4..6 cell matching).

#include <cstdint>
#include <vector>

#include "clo/aig/aig.hpp"

namespace clo::aig {

/// A cut: sorted leaf node indices. The trivial cut {n} is always present.
struct Cut {
  std::vector<std::uint32_t> leaves;

  bool operator==(const Cut& o) const { return leaves == o.leaves; }

  /// True if every leaf of this cut is also a leaf of `o` (this dominates).
  bool dominates(const Cut& o) const;
};

struct CutParams {
  int max_leaves = 4;     ///< k
  int max_cuts = 8;       ///< priority cuts kept per node
  bool keep_trivial = true;
};

/// Per-node cut sets for all live AND nodes (indexed by node id;
/// PIs get their trivial cut). Nodes not in the PO cones get empty sets.
class CutSet {
 public:
  CutSet(const Aig& g, const CutParams& params);

  const std::vector<Cut>& cuts_of(std::uint32_t node) const {
    return cuts_[node];
  }

 private:
  std::vector<std::vector<Cut>> cuts_;
};

/// Merge two cuts; returns false if the union exceeds k leaves.
bool merge_cuts(const Cut& a, const Cut& b, int k, Cut& out);

}  // namespace clo::aig
