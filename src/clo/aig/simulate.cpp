#include "clo/aig/simulate.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace clo::aig {

std::vector<std::uint64_t> simulate_words(
    const Aig& g, const std::vector<std::uint64_t>& pi_words) {
  if (pi_words.size() != g.num_pis()) {
    throw std::invalid_argument("simulate_words: PI count mismatch");
  }
  std::vector<std::uint64_t> value(g.num_slots(), 0);
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    value[g.pi_node(i)] = pi_words[i];
  }
  auto lit_value = [&](Lit l) {
    const std::uint64_t v = value[lit_node(l)];
    return lit_is_compl(l) ? ~v : v;
  };
  for (std::uint32_t n : g.topo_order()) {
    value[n] = lit_value(g.fanin0(n)) & lit_value(g.fanin1(n));
  }
  std::vector<std::uint64_t> out(g.num_pos());
  for (std::size_t i = 0; i < g.num_pos(); ++i) out[i] = lit_value(g.po(i));
  return out;
}

std::vector<bool> simulate(const Aig& g, const std::vector<bool>& pi_values) {
  std::vector<std::uint64_t> words(pi_values.size());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    words[i] = pi_values[i] ? ~0ULL : 0ULL;
  }
  const auto out = simulate_words(g, words);
  std::vector<bool> result(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) result[i] = (out[i] & 1) != 0;
  return result;
}

std::vector<TruthTable> po_truth_tables(const Aig& g) {
  const int n = static_cast<int>(g.num_pis());
  if (n > 16) throw std::invalid_argument("po_truth_tables: too many PIs");
  std::vector<TruthTable> value;
  value.reserve(g.num_slots());
  for (std::size_t i = 0; i < g.num_slots(); ++i) {
    value.emplace_back(TruthTable::constant(n, false));
  }
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    value[g.pi_node(i)] = TruthTable::variable(n, static_cast<int>(i));
  }
  auto lit_value = [&](Lit l) {
    return lit_is_compl(l) ? ~value[lit_node(l)] : value[lit_node(l)];
  };
  for (std::uint32_t node : g.topo_order()) {
    value[node] = lit_value(g.fanin0(node)) & lit_value(g.fanin1(node));
  }
  std::vector<TruthTable> out;
  out.reserve(g.num_pos());
  for (std::size_t i = 0; i < g.num_pos(); ++i) out.push_back(lit_value(g.po(i)));
  return out;
}

TruthTable cone_truth_table(const Aig& g, Lit root,
                            const std::vector<std::uint32_t>& leaves) {
  const int k = static_cast<int>(leaves.size());
  if (k > 16) throw std::invalid_argument("cone_truth_table: cut too large");
  std::unordered_map<std::uint32_t, TruthTable> value;
  for (int i = 0; i < k; ++i) {
    value.emplace(leaves[i], TruthTable::variable(k, i));
  }
  // Iterative post-order evaluation of the cone.
  std::vector<std::pair<std::uint32_t, int>> stack{{lit_node(root), 0}};
  while (!stack.empty()) {
    auto& [n, phase] = stack.back();
    if (value.count(n)) {
      stack.pop_back();
      continue;
    }
    if (n == 0) {
      value.emplace(n, TruthTable::constant(k, false));
      stack.pop_back();
      continue;
    }
    if (g.is_pi(n)) {
      throw std::logic_error("cone_truth_table: reached PI not in leaves");
    }
    if (phase == 0) {
      phase = 1;
      const std::uint32_t c0 = lit_node(g.fanin0(n));
      const std::uint32_t c1 = lit_node(g.fanin1(n));
      stack.emplace_back(c0, 0);  // may reallocate: n/phase now dangle
      stack.emplace_back(c1, 0);
    } else {
      auto val_of = [&](Lit l) {
        const TruthTable& t = value.at(lit_node(l));
        return lit_is_compl(l) ? ~t : t;
      };
      value.emplace(n, val_of(g.fanin0(n)) & val_of(g.fanin1(n)));
      stack.pop_back();
    }
  }
  const TruthTable& t = value.at(lit_node(root));
  return lit_is_compl(root) ? ~t : t;
}

CecResult cec(const Aig& a, const Aig& b, clo::Rng& rng, int random_words,
              int exhaustive_limit) {
  CecResult result;
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    result.equivalent = false;
    return result;
  }
  const std::size_t n = a.num_pis();
  if (static_cast<int>(n) <= exhaustive_limit) {
    result.exhaustive = true;
    const auto ta = po_truth_tables(a);
    const auto tb = po_truth_tables(b);
    result.patterns_checked = std::size_t{1} << n;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (ta[i] != tb[i]) {
        result.equivalent = false;
        result.failing_po = i;
        return result;
      }
    }
    return result;
  }
  std::vector<std::uint64_t> words(n);
  for (int round = 0; round < random_words; ++round) {
    for (auto& w : words) w = rng.next_u64();
    const auto oa = simulate_words(a, words);
    const auto ob = simulate_words(b, words);
    result.patterns_checked += 64;
    for (std::size_t i = 0; i < oa.size(); ++i) {
      if (oa[i] != ob[i]) {
        result.equivalent = false;
        result.failing_po = i;
        return result;
      }
    }
  }
  return result;
}

}  // namespace clo::aig
