#pragma once
// Reconvergence-driven cut computation (Mishchenko-style): grows a cut of
// bounded width around a root node by greedily expanding the leaf whose
// expansion increases the leaf count the least. Used by refactoring (cone
// collapse) and resubstitution (windowing + divisor collection).

#include <cstdint>
#include <optional>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/aig/truth.hpp"

namespace clo::aig {

/// Reconvergence-driven cut of at most `max_leaves` leaves for `root`.
/// Leaves are node indices (PIs or internal nodes); every path from root
/// to the PIs crosses a leaf.
std::vector<std::uint32_t> reconvergence_cut(const Aig& g, std::uint32_t root,
                                             int max_leaves);

/// All nodes strictly inside the cone of `root` bounded by `leaves`
/// (excluding the leaves, including `root`), in topological order.
std::vector<std::uint32_t> cone_nodes(const Aig& g, std::uint32_t root,
                                      const std::vector<std::uint32_t>& leaves);

/// Bounded cone function extraction: truth table of `root_lit` over
/// `leaves`, or nullopt if the cone escapes the leaves (reaches a PI or
/// const outside them — possible after unrelated graph edits) or visits
/// more than `max_nodes` internal nodes.
std::optional<TruthTable> try_cone_truth_table(
    const Aig& g, Lit root_lit, const std::vector<std::uint32_t>& leaves,
    int max_nodes);

/// Divisor candidates for resubstituting `root`: nodes in the TFI cone of
/// `leaves` side-branches that (a) are not in the MFFC of root and (b) are
/// not root itself. Returned in topological order, capped at `max_divisors`.
std::vector<std::uint32_t> collect_divisors(
    Aig& g, std::uint32_t root, const std::vector<std::uint32_t>& leaves,
    int max_divisors);

}  // namespace clo::aig
