#pragma once
// And-Inverter Graph (AIG) with structural hashing, reference counting, and
// in-place node replacement — the substrate every synthesis transformation
// in this project operates on (mirroring ABC's AIG package).
//
// Representation:
//  * Node 0 is the constant-0 node; literal 0 = const0, literal 1 = const1.
//  * A literal packs (node_index << 1) | complement_bit.
//  * Primary inputs are nodes with no fanins; AND nodes have two fanin
//    literals ordered fanin0 <= fanin1 for canonical hashing.
//  * Primary outputs are literals (possibly complemented).
//
// Editing model: optimization passes call `replace()` to redirect all
// fanouts of a node to another literal. Replacement may leave behind
// trivially reducible nodes (e.g. AND(x, x)); `cleanup()` rebuilds the
// graph compactly, re-folding and re-hashing everything, and is run at the
// end of every pass so reported node counts are exact.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace clo::aig {

/// A literal: node index with a complement bit in the LSB.
using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;
/// Sentinel for "no literal" (used for PI fanins).
inline constexpr Lit kLitNull = 0xffffffffu;

constexpr std::uint32_t lit_node(Lit l) { return l >> 1; }
constexpr bool lit_is_compl(Lit l) { return (l & 1u) != 0; }
constexpr Lit make_lit(std::uint32_t node, bool compl_flag = false) {
  return (node << 1) | (compl_flag ? 1u : 0u);
}
constexpr Lit lit_not(Lit l) { return l ^ 1u; }
constexpr Lit lit_notc(Lit l, bool c) { return c ? (l ^ 1u) : l; }
constexpr Lit lit_regular(Lit l) { return l & ~1u; }

class Aig {
 public:
  Aig() { nodes_.push_back(Node{}); /* node 0 = const0 */ }

  // ---- Construction -----------------------------------------------------

  /// Append a primary input; returns its (non-complemented) literal.
  Lit add_pi(std::string name = "");

  /// Append a primary output driven by `l`; returns the PO index.
  std::uint32_t add_po(Lit l, std::string name = "");

  /// Structurally hashed AND with constant folding and trivial rules.
  Lit and_of(Lit a, Lit b);

  // Derived gates (built from AND/NOT).
  Lit or_of(Lit a, Lit b) { return lit_not(and_of(lit_not(a), lit_not(b))); }
  Lit nand_of(Lit a, Lit b) { return lit_not(and_of(a, b)); }
  Lit nor_of(Lit a, Lit b) { return and_of(lit_not(a), lit_not(b)); }
  Lit xor_of(Lit a, Lit b);
  Lit xnor_of(Lit a, Lit b) { return lit_not(xor_of(a, b)); }
  /// If s then t else e.
  Lit mux_of(Lit s, Lit t, Lit e);
  /// Majority of three.
  Lit maj_of(Lit a, Lit b, Lit c);

  /// Like and_of but never creates a node: returns the folded/hashed
  /// literal if it already exists, std::nullopt otherwise.
  std::optional<Lit> probe_and(Lit a, Lit b) const;

  // ---- Queries -----------------------------------------------------------

  std::size_t num_pis() const { return pis_.size(); }
  std::size_t num_pos() const { return pos_.size(); }
  /// Number of live AND nodes (the paper's "size" metric).
  std::size_t num_ands() const { return num_ands_; }
  /// Total node slots, including PIs, const0, and dead nodes.
  std::size_t num_slots() const { return nodes_.size(); }

  bool is_const0(std::uint32_t n) const { return n == 0; }
  bool is_pi(std::uint32_t n) const { return nodes_[n].is_pi; }
  bool is_and(std::uint32_t n) const {
    return n != 0 && !nodes_[n].is_pi && !nodes_[n].dead;
  }
  bool is_dead(std::uint32_t n) const { return nodes_[n].dead; }

  Lit fanin0(std::uint32_t n) const { return nodes_[n].f0; }
  Lit fanin1(std::uint32_t n) const { return nodes_[n].f1; }
  /// Fanout reference count (POs count as references).
  int nrefs(std::uint32_t n) const { return nodes_[n].nref; }
  const std::vector<std::uint32_t>& fanouts(std::uint32_t n) const {
    return nodes_[n].fanouts;
  }

  Lit pi(std::size_t i) const { return make_lit(pis_[i]); }
  std::uint32_t pi_node(std::size_t i) const { return pis_[i]; }
  Lit po(std::size_t i) const { return pos_[i]; }
  void set_po(std::size_t i, Lit l);

  const std::string& pi_name(std::size_t i) const { return pi_names_[i]; }
  const std::string& po_name(std::size_t i) const { return po_names_[i]; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Longest PI->PO path counted in AND nodes (recomputed on demand).
  int depth() const;

  /// Per-node levels (0 for PIs/const; AND = 1 + max fanin level).
  std::vector<int> levels() const;

  /// Live AND nodes in topological (fanin-before-fanout) order.
  std::vector<std::uint32_t> topo_order() const;

  // ---- Editing -----------------------------------------------------------

  /// Redirect every fanout (and PO) of AND node `n` to literal `with`,
  /// then recursively delete the now-unreferenced cone of `n`.
  /// Precondition: `with`'s cone must not contain `n` (no cycles).
  void replace(std::uint32_t n, Lit with);

  /// Size of the maximum fanout-free cone of `n`: the number of AND nodes
  /// that would die if `n` were removed.
  int mffc_size(std::uint32_t n);

  /// Reclaim the cone of `l` if it is unreferenced (used to discard
  /// speculatively built candidate structures that were not accepted).
  void sweep(Lit l) { kill_if_unreferenced(lit_node(l)); }

  /// The nodes of the maximum fanout-free cone of `n` (including `n`).
  std::vector<std::uint32_t> mffc_nodes(std::uint32_t n);

  /// True if `target` is reachable from `root_lit` going toward the
  /// inputs, stopping at `boundary` nodes (used to guard replace()).
  bool reaches(Lit root_lit, std::uint32_t target,
               const std::vector<std::uint32_t>& boundary) const;

  /// Rebuild into a compact, fully re-hashed graph: drops dead nodes,
  /// re-folds trivial structures left by replace(), preserves PI/PO order
  /// and names. Invalidates node indices.
  void cleanup();

  /// Structural + functional sanity checks (acyclicity via topological
  /// reconstruction, ref-count consistency). Throws std::logic_error.
  void check() const;

 private:
  struct Node {
    Lit f0 = kLitNull;
    Lit f1 = kLitNull;
    int nref = 0;
    bool is_pi = false;
    bool dead = false;
    std::vector<std::uint32_t> fanouts;
  };

  static std::uint64_t strash_key(Lit a, Lit b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void ref_fanins(std::uint32_t n);
  void kill_if_unreferenced(std::uint32_t n);
  void remove_fanout(std::uint32_t node, std::uint32_t fanout);

  // deref/ref walk used by mffc_size.
  int deref_count(std::uint32_t n);
  void ref_restore(std::uint32_t n);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> pis_;
  std::vector<Lit> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::size_t num_ands_ = 0;
  std::string name_ = "aig";
};

/// Convenience: total AND count + depth in one call (used by reports).
struct AigStats {
  std::size_t num_pis = 0;
  std::size_t num_pos = 0;
  std::size_t num_ands = 0;
  int depth = 0;
};
AigStats stats_of(const Aig& g);

}  // namespace clo::aig
