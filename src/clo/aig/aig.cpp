#include "clo/aig/aig.hpp"

#include <algorithm>
#include <stdexcept>

namespace clo::aig {

Lit Aig::add_pi(std::string name) {
  Node node;
  node.is_pi = true;
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  pis_.push_back(index);
  pi_names_.push_back(name.empty() ? "pi" + std::to_string(pis_.size() - 1)
                                   : std::move(name));
  return make_lit(index);
}

std::uint32_t Aig::add_po(Lit l, std::string name) {
  pos_.push_back(l);
  po_names_.push_back(name.empty() ? "po" + std::to_string(pos_.size() - 1)
                                   : std::move(name));
  nodes_[lit_node(l)].nref++;
  return static_cast<std::uint32_t>(pos_.size() - 1);
}

void Aig::set_po(std::size_t i, Lit l) {
  const std::uint32_t old_node = lit_node(pos_[i]);
  pos_[i] = l;
  nodes_[lit_node(l)].nref++;
  nodes_[old_node].nref--;
  kill_if_unreferenced(old_node);
}

std::optional<Lit> Aig::probe_and(Lit a, Lit b) const {
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  auto it = strash_.find(strash_key(a, b));
  if (it != strash_.end()) return make_lit(it->second);
  return std::nullopt;
}

Lit Aig::and_of(Lit a, Lit b) {
  if (auto hit = probe_and(a, b)) return *hit;
  if (a > b) std::swap(a, b);
  Node node;
  node.f0 = a;
  node.f1 = b;
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  strash_.emplace(strash_key(a, b), index);
  ref_fanins(index);
  ++num_ands_;
  return make_lit(index);
}

Lit Aig::xor_of(Lit a, Lit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  const Lit t0 = and_of(a, lit_not(b));
  const Lit t1 = and_of(lit_not(a), b);
  return or_of(t0, t1);
}

Lit Aig::mux_of(Lit s, Lit t, Lit e) {
  const Lit t0 = and_of(s, t);
  const Lit t1 = and_of(lit_not(s), e);
  return or_of(t0, t1);
}

Lit Aig::maj_of(Lit a, Lit b, Lit c) {
  const Lit ab = and_of(a, b);
  const Lit ac = and_of(a, c);
  const Lit bc = and_of(b, c);
  return or_of(ab, or_of(ac, bc));
}

void Aig::ref_fanins(std::uint32_t n) {
  Node& node = nodes_[n];
  nodes_[lit_node(node.f0)].nref++;
  nodes_[lit_node(node.f0)].fanouts.push_back(n);
  nodes_[lit_node(node.f1)].nref++;
  nodes_[lit_node(node.f1)].fanouts.push_back(n);
}

void Aig::remove_fanout(std::uint32_t node, std::uint32_t fanout) {
  auto& fo = nodes_[node].fanouts;
  auto it = std::find(fo.begin(), fo.end(), fanout);
  if (it != fo.end()) {
    *it = fo.back();
    fo.pop_back();
  }
}

void Aig::kill_if_unreferenced(std::uint32_t n) {
  if (n == 0 || nodes_[n].is_pi || nodes_[n].dead) return;
  if (nodes_[n].nref > 0) return;
  Node& node = nodes_[n];
  node.dead = true;
  --num_ands_;
  // Drop the strash entry if it still points at this node.
  Lit a = node.f0, b = node.f1;
  if (a > b) std::swap(a, b);
  auto it = strash_.find(strash_key(a, b));
  if (it != strash_.end() && it->second == n) strash_.erase(it);
  const std::uint32_t c0 = lit_node(node.f0);
  const std::uint32_t c1 = lit_node(node.f1);
  remove_fanout(c0, n);
  nodes_[c0].nref--;
  remove_fanout(c1, n);
  nodes_[c1].nref--;
  node.fanouts.clear();
  kill_if_unreferenced(c0);
  kill_if_unreferenced(c1);
}

void Aig::replace(std::uint32_t n, Lit with) {
  if (make_lit(n) == with) return;
  if (lit_node(with) == n) {
    throw std::logic_error("Aig::replace: self-replacement with complement");
  }
  // Redirect AND fanouts.
  std::vector<std::uint32_t> fanout_copy = nodes_[n].fanouts;
  for (std::uint32_t f : fanout_copy) {
    if (nodes_[f].dead) continue;
    Node& fn = nodes_[f];
    if (lit_node(fn.f0) != n && lit_node(fn.f1) != n) continue;
    // Unhash f under its old fanin pair before mutating it; the entry
    // would otherwise go stale and make strash return wrong nodes.
    {
      Lit a = fn.f0, b = fn.f1;
      if (a > b) std::swap(a, b);
      auto it = strash_.find(strash_key(a, b));
      if (it != strash_.end() && it->second == f) strash_.erase(it);
    }
    if (lit_node(fn.f0) == n) fn.f0 = lit_notc(with, lit_is_compl(fn.f0));
    if (lit_node(fn.f1) == n) fn.f1 = lit_notc(with, lit_is_compl(fn.f1));
    // Re-hash under the new pair unless an equivalent node already holds
    // the slot (duplicate structure is later folded by cleanup()).
    {
      Lit a = fn.f0, b = fn.f1;
      if (a > b) std::swap(a, b);
      strash_.try_emplace(strash_key(a, b), f);
    }
    // Maintain refs/fanouts. A fanout may reference n twice; handle counts
    // by recomputing how many of its fanins point where.
    int moved = 0;
    moved += (lit_node(fn.f0) == lit_node(with)) ? 1 : 0;
    moved += (lit_node(fn.f1) == lit_node(with)) ? 1 : 0;
    // Remove all fanout records of f from n, re-add to `with`'s node.
    int removed = 0;
    auto& fo = nodes_[n].fanouts;
    for (std::size_t i = 0; i < fo.size();) {
      if (fo[i] == f) {
        fo[i] = fo.back();
        fo.pop_back();
        ++removed;
      } else {
        ++i;
      }
    }
    nodes_[n].nref -= removed;
    for (int k = 0; k < moved; ++k) {
      nodes_[lit_node(with)].fanouts.push_back(f);
      nodes_[lit_node(with)].nref++;
    }
    // Note: fn may now be trivially reducible (equal/complement fanins) or
    // duplicate an existing strash entry; cleanup() re-canonicalizes.
  }
  // Redirect POs.
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (lit_node(pos_[i]) == n) {
      const Lit new_po = lit_notc(with, lit_is_compl(pos_[i]));
      pos_[i] = new_po;
      nodes_[lit_node(with)].nref++;
      nodes_[n].nref--;
    }
  }
  kill_if_unreferenced(n);
}

int Aig::deref_count(std::uint32_t n) {
  // Counts AND nodes in the MFFC by simulating deletion via ref counts.
  if (!is_and(n)) return 0;
  int count = 1;
  for (Lit f : {nodes_[n].f0, nodes_[n].f1}) {
    const std::uint32_t c = lit_node(f);
    if (--nodes_[c].nref == 0) count += deref_count(c);
  }
  return count;
}

void Aig::ref_restore(std::uint32_t n) {
  if (!is_and(n)) return;
  for (Lit f : {nodes_[n].f0, nodes_[n].f1}) {
    const std::uint32_t c = lit_node(f);
    if (nodes_[c].nref++ == 0) ref_restore(c);
  }
}

int Aig::mffc_size(std::uint32_t n) {
  if (!is_and(n)) return 0;
  const int count = deref_count(n);
  ref_restore(n);
  return count;
}

std::vector<std::uint32_t> Aig::mffc_nodes(std::uint32_t n) {
  std::vector<std::uint32_t> result;
  if (!is_and(n)) return result;
  // Deref to expose the cone, then walk nodes whose refs dropped to zero.
  deref_count(n);
  std::vector<std::uint32_t> stack{n};
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    result.push_back(v);
    for (Lit f : {nodes_[v].f0, nodes_[v].f1}) {
      const std::uint32_t c = lit_node(f);
      if (is_and(c) && nodes_[c].nref == 0) {
        if (std::find(result.begin(), result.end(), c) == result.end() &&
            std::find(stack.begin(), stack.end(), c) == stack.end()) {
          stack.push_back(c);
        }
      }
    }
  }
  ref_restore(n);
  return result;
}

bool Aig::reaches(Lit root_lit, std::uint32_t target,
                  const std::vector<std::uint32_t>& boundary) const {
  std::vector<std::uint32_t> stack{lit_node(root_lit)};
  std::vector<std::uint32_t> visited;
  auto is_boundary = [&](std::uint32_t v) {
    return std::find(boundary.begin(), boundary.end(), v) != boundary.end();
  };
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    if (v == target) return true;
    if (std::find(visited.begin(), visited.end(), v) != visited.end()) continue;
    visited.push_back(v);
    if (!is_and(v) || is_boundary(v)) continue;
    stack.push_back(lit_node(nodes_[v].f0));
    stack.push_back(lit_node(nodes_[v].f1));
  }
  return false;
}

std::vector<std::uint32_t> Aig::topo_order() const {
  // Nodes are created fanin-first and replace() never introduces cycles,
  // but redirected fanins can point to higher indices, so do a real DFS.
  std::vector<std::uint32_t> order;
  order.reserve(num_ands_);
  std::vector<std::uint8_t> mark(nodes_.size(), 0);
  std::vector<std::pair<std::uint32_t, int>> stack;
  auto visit = [&](std::uint32_t root) {
    if (mark[root]) return;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, phase] = stack.back();
      if (!is_and(v) || mark[v] == 2) {
        mark[v] = 2;
        stack.pop_back();
        continue;
      }
      if (phase == 0) {
        mark[v] = 1;
        phase = 1;
        const std::uint32_t c0 = lit_node(nodes_[v].f0);
        const std::uint32_t c1 = lit_node(nodes_[v].f1);
        if (mark[c0] != 2) stack.emplace_back(c0, 0);
        if (mark[c1] != 2) stack.emplace_back(c1, 0);
      } else {
        mark[v] = 2;
        order.push_back(v);
        stack.pop_back();
      }
    }
  };
  for (Lit po : pos_) visit(lit_node(po));
  return order;
}

std::vector<int> Aig::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (std::uint32_t n : topo_order()) {
    level[n] = 1 + std::max(level[lit_node(nodes_[n].f0)],
                            level[lit_node(nodes_[n].f1)]);
  }
  return level;
}

int Aig::depth() const {
  const auto level = levels();
  int d = 0;
  for (Lit po : pos_) d = std::max(d, level[lit_node(po)]);
  return d;
}

void Aig::cleanup() {
  Aig fresh;
  fresh.name_ = name_;
  std::vector<Lit> map(nodes_.size(), kLitNull);
  map[0] = kLitFalse;
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    map[pis_[i]] = fresh.add_pi(pi_names_[i]);
  }
  for (std::uint32_t n : topo_order()) {
    const Lit a = map[lit_node(nodes_[n].f0)];
    const Lit b = map[lit_node(nodes_[n].f1)];
    map[n] = fresh.and_of(lit_notc(a, lit_is_compl(nodes_[n].f0)),
                          lit_notc(b, lit_is_compl(nodes_[n].f1)));
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    const Lit m = map[lit_node(pos_[i])];
    fresh.add_po(lit_notc(m, lit_is_compl(pos_[i])), po_names_[i]);
  }
  *this = std::move(fresh);
}

void Aig::check() const {
  std::vector<int> refs(nodes_.size(), 0);
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    if (nodes_[n].dead || nodes_[n].is_pi) continue;
    const Lit a = nodes_[n].f0;
    const Lit b = nodes_[n].f1;
    if (a == kLitNull || b == kLitNull) {
      throw std::logic_error("AND node with null fanin");
    }
    if (nodes_[lit_node(a)].dead || nodes_[lit_node(b)].dead) {
      throw std::logic_error("live node references dead fanin");
    }
    refs[lit_node(a)]++;
    refs[lit_node(b)]++;
  }
  for (Lit po : pos_) {
    if (nodes_[lit_node(po)].dead) {
      throw std::logic_error("PO references dead node");
    }
    refs[lit_node(po)]++;
  }
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].dead) continue;
    if (refs[n] != nodes_[n].nref) {
      throw std::logic_error("ref count mismatch at node " +
                             std::to_string(n));
    }
  }
  // topo_order throws implicitly on cycles by never terminating; instead
  // verify it covers all live ANDs reachable from POs and is well ordered.
  const auto order = topo_order();
  std::vector<int> pos_in_order(nodes_.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos_in_order[order[i]] = static_cast<int>(i);
  }
  for (std::uint32_t n : order) {
    for (Lit f : {nodes_[n].f0, nodes_[n].f1}) {
      const std::uint32_t c = lit_node(f);
      if (is_and(c) && pos_in_order[c] >= pos_in_order[n]) {
        throw std::logic_error("topological order violated (cycle?)");
      }
    }
  }
}

AigStats stats_of(const Aig& g) {
  AigStats s;
  s.num_pis = g.num_pis();
  s.num_pos = g.num_pos();
  s.num_ands = g.num_ands();
  s.depth = g.depth();
  return s;
}

}  // namespace clo::aig
