#pragma once
// AIGER (ASCII "aag" and binary "aig") and ISCAS/BENCH readers + writers,
// so the library interoperates with ABC, Yosys, and the public benchmark
// distributions (combinational subset: latches are rejected).

#include <iosfwd>
#include <string>

#include "clo/aig/aig.hpp"

namespace clo::aig {

/// Write ASCII AIGER ("aag" header).
void write_aiger_ascii(const Aig& g, std::ostream& os);
bool write_aiger_ascii(const Aig& g, const std::string& path);

/// Write binary AIGER ("aig" header, delta-encoded ANDs).
void write_aiger_binary(const Aig& g, std::ostream& os);
bool write_aiger_binary(const Aig& g, const std::string& path);

/// Read either AIGER format (auto-detected from the header).
/// Throws std::runtime_error on malformed input or latches.
Aig read_aiger(std::istream& is);
Aig read_aiger_file(const std::string& path);

/// Read an ISCAS-style BENCH netlist (INPUT/OUTPUT/AND/NAND/OR/NOR/
/// XOR/XNOR/NOT/BUF/DFF-free). Throws std::runtime_error on errors.
Aig read_bench(std::istream& is);
Aig read_bench_file(const std::string& path);

/// Write a BENCH netlist (AND/NOT decomposition of the AIG).
void write_bench(const Aig& g, std::ostream& os);

}  // namespace clo::aig
