#include "clo/aig/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace clo::aig {
namespace {

// Maps our internal node ids to dense AIGER variable numbers:
// 0 = const, 1..I = PIs, I+1.. = ANDs in topological order.
struct AigerIndex {
  std::vector<std::uint32_t> var_of;  // node -> aiger variable
  std::vector<std::uint32_t> and_nodes;
};

AigerIndex build_index(const Aig& g) {
  AigerIndex idx;
  idx.var_of.assign(g.num_slots(), 0);
  std::uint32_t var = 1;
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    idx.var_of[g.pi_node(i)] = var++;
  }
  idx.and_nodes = g.topo_order();
  for (std::uint32_t n : idx.and_nodes) idx.var_of[n] = var++;
  return idx;
}

std::uint32_t aiger_lit(const AigerIndex& idx, Lit l) {
  return idx.var_of[lit_node(l)] * 2 + (lit_is_compl(l) ? 1 : 0);
}

void write_symbol_table(const Aig& g, std::ostream& os) {
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    os << 'i' << i << ' ' << g.pi_name(i) << '\n';
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    os << 'o' << i << ' ' << g.po_name(i) << '\n';
  }
  os << "c\n" << g.name() << '\n';
}

}  // namespace

void write_aiger_ascii(const Aig& g, std::ostream& os) {
  const AigerIndex idx = build_index(g);
  const std::size_t m = g.num_pis() + idx.and_nodes.size();
  os << "aag " << m << ' ' << g.num_pis() << " 0 " << g.num_pos() << ' '
     << idx.and_nodes.size() << '\n';
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    os << aiger_lit(idx, g.pi(i)) << '\n';
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    os << aiger_lit(idx, g.po(i)) << '\n';
  }
  for (std::uint32_t n : idx.and_nodes) {
    std::uint32_t lhs = idx.var_of[n] * 2;
    std::uint32_t rhs0 = aiger_lit(idx, g.fanin0(n));
    std::uint32_t rhs1 = aiger_lit(idx, g.fanin1(n));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    os << lhs << ' ' << rhs0 << ' ' << rhs1 << '\n';
  }
  write_symbol_table(g, os);
}

bool write_aiger_ascii(const Aig& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_aiger_ascii(g, out);
  return static_cast<bool>(out);
}

namespace {

void put_delta(std::ostream& os, std::uint32_t delta) {
  while (delta >= 0x80) {
    os.put(static_cast<char>(0x80 | (delta & 0x7f)));
    delta >>= 7;
  }
  os.put(static_cast<char>(delta));
}

std::uint32_t get_delta(std::istream& is) {
  std::uint32_t value = 0;
  int shift = 0;
  while (true) {
    const int c = is.get();
    if (c == EOF) throw std::runtime_error("AIGER: truncated delta code");
    // A well-formed delta fits 32 bits: 5 groups of 7, the last <= 4 bits.
    // Beyond that the shift below would be UB, so reject first.
    if (shift > 28 || (shift == 28 && (c & 0x7f) > 0x0f)) {
      throw std::runtime_error("AIGER: delta code exceeds 32 bits");
    }
    value |= static_cast<std::uint32_t>(c & 0x7f) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
  }
  return value;
}

}  // namespace

void write_aiger_binary(const Aig& g, std::ostream& os) {
  const AigerIndex idx = build_index(g);
  const std::size_t m = g.num_pis() + idx.and_nodes.size();
  os << "aig " << m << ' ' << g.num_pis() << " 0 " << g.num_pos() << ' '
     << idx.and_nodes.size() << '\n';
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    os << aiger_lit(idx, g.po(i)) << '\n';
  }
  for (std::uint32_t n : idx.and_nodes) {
    const std::uint32_t lhs = idx.var_of[n] * 2;
    std::uint32_t rhs0 = aiger_lit(idx, g.fanin0(n));
    std::uint32_t rhs1 = aiger_lit(idx, g.fanin1(n));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    put_delta(os, lhs - rhs0);
    put_delta(os, rhs0 - rhs1);
  }
  write_symbol_table(g, os);
}

bool write_aiger_binary(const Aig& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_aiger_binary(g, out);
  return static_cast<bool>(out);
}

namespace {

void read_symbols(std::istream& is, Aig& /*g*/) {
  // Symbols and comments are tolerated but names are kept as defaults;
  // the benchmark generators give canonical names already.
  std::string line;
  while (std::getline(is, line)) {
  }
}

}  // namespace

Aig read_aiger(std::istream& is) {
  // Generous for any real benchmark, small enough that a lying header
  // cannot drive the index/definition vectors below into an OOM before a
  // single body byte is validated.
  constexpr std::size_t kMaxAigerVars = std::size_t{1} << 24;
  std::string header;
  is >> header;
  if (header != "aag" && header != "aig") {
    throw std::runtime_error("AIGER: bad magic '" + header + "'");
  }
  std::size_t m = 0, num_in = 0, num_latch = 0, num_out = 0, num_and = 0;
  is >> m >> num_in >> num_latch >> num_out >> num_and;
  if (!is) throw std::runtime_error("AIGER: bad header counts");
  if (num_latch != 0) {
    throw std::runtime_error("AIGER: latches unsupported (combinational only)");
  }
  if (m > kMaxAigerVars || num_out > kMaxAigerVars) {
    throw std::runtime_error("AIGER: header counts unreasonably large");
  }
  // The spec requires M >= I + L + A; a header lying about that would let
  // body definitions index past the variable table.
  if (num_in > m || num_and > m || num_in + num_latch + num_and > m) {
    throw std::runtime_error("AIGER: header counts inconsistent (M < I+L+A)");
  }
  Aig g;
  // lit mapping: aiger literal -> our literal.
  std::vector<Lit> of_var(m + 1, kLitNull);
  of_var[0] = kLitFalse;
  auto to_lit = [&](std::uint32_t aiger_literal) {
    const std::uint32_t var = aiger_literal / 2;
    if (var >= of_var.size() || of_var[var] == kLitNull) {
      throw std::runtime_error("AIGER: literal references undefined variable");
    }
    return lit_notc(of_var[var], aiger_literal & 1);
  };

  if (header == "aag") {
    for (std::size_t i = 0; i < num_in; ++i) {
      std::uint32_t l = 0;
      is >> l;
      if (!is || l % 2 != 0 || l / 2 > m || l / 2 == 0) {
        throw std::runtime_error("AIGER: bad input literal");
      }
      if (of_var[l / 2] != kLitNull) {
        throw std::runtime_error("AIGER: duplicate input definition");
      }
      of_var[l / 2] = g.add_pi();
    }
    std::vector<std::uint32_t> out_lits(num_out);
    for (auto& l : out_lits) is >> l;
    struct AndDef {
      std::uint32_t lhs, rhs0, rhs1;
    };
    std::vector<AndDef> ands(num_and);
    for (auto& a : ands) is >> a.lhs >> a.rhs0 >> a.rhs1;
    if (!is) throw std::runtime_error("AIGER: truncated body");
    for (const auto& a : ands) {
      if (a.lhs % 2 != 0 || a.lhs / 2 > m || a.lhs / 2 == 0) {
        throw std::runtime_error("AIGER: and lhs out of range");
      }
      if (a.rhs0 / 2 > m || a.rhs1 / 2 > m) {
        throw std::runtime_error("AIGER: and rhs out of range");
      }
      if (of_var[a.lhs / 2] != kLitNull) {
        throw std::runtime_error("AIGER: and lhs redefines a variable");
      }
    }
    // Definitions may be in any order in aag; resolve iteratively.
    std::size_t remaining = ands.size();
    bool progress = true;
    std::vector<bool> done(ands.size(), false);
    while (remaining > 0 && progress) {
      progress = false;
      for (std::size_t i = 0; i < ands.size(); ++i) {
        if (done[i]) continue;
        const auto& a = ands[i];
        const std::uint32_t v0 = a.rhs0 / 2, v1 = a.rhs1 / 2;
        if (v0 >= of_var.size() || v1 >= of_var.size()) {
          throw std::runtime_error("AIGER: and rhs out of range");
        }
        if (of_var[v0] == kLitNull || of_var[v1] == kLitNull) continue;
        if (of_var[a.lhs / 2] != kLitNull) {
          throw std::runtime_error("AIGER: and lhs redefines a variable");
        }
        of_var[a.lhs / 2] = g.and_of(to_lit(a.rhs0), to_lit(a.rhs1));
        done[i] = true;
        --remaining;
        progress = true;
      }
    }
    if (remaining > 0) throw std::runtime_error("AIGER: cyclic definitions");
    for (std::uint32_t l : out_lits) g.add_po(to_lit(l));
  } else {
    for (std::size_t i = 0; i < num_in; ++i) of_var[i + 1] = g.add_pi();
    std::vector<std::uint32_t> out_lits(num_out);
    for (auto& l : out_lits) is >> l;
    if (!is) throw std::runtime_error("AIGER: truncated output list");
    is.ignore(1);  // newline before binary section
    for (std::size_t i = 0; i < num_and; ++i) {
      const std::uint32_t lhs = static_cast<std::uint32_t>(num_in + 1 + i) * 2;
      const std::uint32_t d0 = get_delta(is);
      const std::uint32_t d1 = get_delta(is);
      // The binary encoding requires lhs > rhs0 >= rhs1; an underflowing
      // delta would wrap into a huge bogus literal.
      if (d0 > lhs) throw std::runtime_error("AIGER: delta underflows lhs");
      const std::uint32_t rhs0 = lhs - d0;
      if (d1 > rhs0) throw std::runtime_error("AIGER: delta underflows rhs0");
      const std::uint32_t rhs1 = rhs0 - d1;
      of_var[lhs / 2] = g.and_of(to_lit(rhs0), to_lit(rhs1));
    }
    for (std::uint32_t l : out_lits) g.add_po(to_lit(l));
  }
  read_symbols(is, g);
  return g;
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_aiger(in);
}

Aig read_bench(std::istream& is) {
  Aig g;
  struct Gate {
    std::string type;
    std::vector<std::string> inputs;
  };
  std::map<std::string, Gate> gates;
  std::map<std::string, Lit> sig;
  std::vector<std::string> outputs;
  std::string line;
  while (std::getline(is, line)) {
    // strip comments and whitespace
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::string compact;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) compact += c;
    }
    if (compact.empty()) continue;
    auto paren = compact.find('(');
    if (compact.rfind("INPUT", 0) == 0) {
      const std::string name =
          compact.substr(6, compact.size() - 7);  // INPUT(name)
      sig[name] = g.add_pi(name);
      continue;
    }
    if (compact.rfind("OUTPUT", 0) == 0) {
      outputs.push_back(compact.substr(7, compact.size() - 8));
      continue;
    }
    const auto eq = compact.find('=');
    if (eq == std::string::npos || paren == std::string::npos) {
      throw std::runtime_error("BENCH: cannot parse line: " + line);
    }
    Gate gate;
    gate.type = compact.substr(eq + 1, paren - eq - 1);
    std::string args = compact.substr(paren + 1, compact.size() - paren - 2);
    std::stringstream ss(args);
    std::string tok;
    while (std::getline(ss, tok, ',')) gate.inputs.push_back(tok);
    gates[compact.substr(0, eq)] = std::move(gate);
  }

  // Recursive elaboration with memoization.
  std::vector<std::string> stack;
  std::function<Lit(const std::string&)> elaborate =
      [&](const std::string& name) -> Lit {
    auto it = sig.find(name);
    if (it != sig.end()) return it->second;
    auto git = gates.find(name);
    if (git == gates.end()) {
      throw std::runtime_error("BENCH: undefined signal " + name);
    }
    if (std::find(stack.begin(), stack.end(), name) != stack.end()) {
      throw std::runtime_error("BENCH: combinational cycle at " + name);
    }
    stack.push_back(name);
    std::vector<Lit> ins;
    for (const auto& in : git->second.inputs) ins.push_back(elaborate(in));
    stack.pop_back();
    const std::string& t = git->second.type;
    auto fold = [&](auto op, Lit unit) {
      Lit acc = unit;
      for (Lit l : ins) acc = op(acc, l);
      return acc;
    };
    Lit out;
    if (t == "AND") {
      out = fold([&](Lit a, Lit b) { return g.and_of(a, b); }, kLitTrue);
    } else if (t == "NAND") {
      out = lit_not(fold([&](Lit a, Lit b) { return g.and_of(a, b); }, kLitTrue));
    } else if (t == "OR") {
      out = fold([&](Lit a, Lit b) { return g.or_of(a, b); }, kLitFalse);
    } else if (t == "NOR") {
      out = lit_not(fold([&](Lit a, Lit b) { return g.or_of(a, b); }, kLitFalse));
    } else if (t == "XOR") {
      out = fold([&](Lit a, Lit b) { return g.xor_of(a, b); }, kLitFalse);
    } else if (t == "XNOR") {
      out = lit_not(fold([&](Lit a, Lit b) { return g.xor_of(a, b); }, kLitFalse));
    } else if (t == "NOT" || t == "INV") {
      out = lit_not(ins.at(0));
    } else if (t == "BUF" || t == "BUFF") {
      out = ins.at(0);
    } else {
      throw std::runtime_error("BENCH: unsupported gate type " + t);
    }
    sig[name] = out;
    return out;
  };
  for (const auto& o : outputs) g.add_po(elaborate(o), o);
  return g;
}

Aig read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_bench(in);
}

void write_bench(const Aig& g, std::ostream& os) {
  os << "# " << g.name() << " (written by clo)\n";
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    os << "INPUT(" << g.pi_name(i) << ")\n";
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    os << "OUTPUT(" << g.po_name(i) << ")\n";
  }
  auto signal = [&](Lit l) -> std::string {
    if (l == kLitFalse) return "const0";
    if (l == kLitTrue) return "const1";
    std::string base;
    const std::uint32_t n = lit_node(l);
    if (g.is_pi(n)) {
      for (std::size_t i = 0; i < g.num_pis(); ++i) {
        if (g.pi_node(i) == n) base = g.pi_name(i);
      }
    } else {
      base = "n";
      base += std::to_string(n);
    }
    if (lit_is_compl(l)) base += "_bar";
    return base;
  };
  bool uses_const = false;
  std::vector<bool> need_inv(g.num_slots(), false);
  const auto order = g.topo_order();
  for (std::uint32_t n : order) {
    for (Lit f : {g.fanin0(n), g.fanin1(n)}) {
      if (lit_node(f) == 0) uses_const = true;
      else if (lit_is_compl(f)) need_inv[lit_node(f)] = true;
    }
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    const Lit f = g.po(i);
    if (lit_node(f) == 0) uses_const = true;
    else if (lit_is_compl(f)) need_inv[lit_node(f)] = true;
  }
  if (uses_const) {
    // const0 = AND(x, NOT x) over the first PI, or a 0-input workaround.
    if (g.num_pis() > 0) {
      os << "const0_inv = NOT(" << g.pi_name(0) << ")\n";
      os << "const0 = AND(" << g.pi_name(0) << ", const0_inv)\n";
      os << "const1 = NOT(const0)\n";
    }
  }
  auto emit_inv = [&](std::uint32_t n) {
    if (need_inv[n]) {
      os << signal(make_lit(n, true)) << " = NOT(" << signal(make_lit(n))
         << ")\n";
    }
  };
  for (std::size_t i = 0; i < g.num_pis(); ++i) emit_inv(g.pi_node(i));
  for (std::uint32_t n : order) {
    os << signal(make_lit(n)) << " = AND(" << signal(g.fanin0(n)) << ", "
       << signal(g.fanin1(n)) << ")\n";
    emit_inv(n);
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    os << g.po_name(i) << " = BUF(" << signal(g.po(i)) << ")\n";
  }
}

}  // namespace clo::aig
