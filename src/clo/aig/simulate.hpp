#pragma once
// Bit-parallel simulation and simulation-based combinational equivalence
// checking. Every synthesis transformation in this project is validated
// against these: exhaustively for small PI counts, with random vectors for
// large circuits (the standard "semi-formal" CEC used in regressions).

#include <cstdint>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/aig/truth.hpp"
#include "clo/util/rng.hpp"

namespace clo::aig {

/// Simulate one 64-pattern word per PI; returns one word per PO.
std::vector<std::uint64_t> simulate_words(
    const Aig& g, const std::vector<std::uint64_t>& pi_words);

/// Simulate single Boolean input vector; returns PO values.
std::vector<bool> simulate(const Aig& g, const std::vector<bool>& pi_values);

/// Exhaustive truth tables of all POs (requires num_pis <= 16).
std::vector<TruthTable> po_truth_tables(const Aig& g);

/// Truth table of `root` over the given `leaves` (cut/window function).
/// All paths from `root` to PIs must pass through `leaves`.
TruthTable cone_truth_table(const Aig& g, Lit root,
                            const std::vector<std::uint32_t>& leaves);

/// Result of an equivalence check.
struct CecResult {
  bool equivalent = true;
  /// Valid when !equivalent: index of first differing PO.
  std::size_t failing_po = 0;
  bool exhaustive = false;
  std::size_t patterns_checked = 0;
};

/// Combinational equivalence check by simulation. Uses exhaustive
/// enumeration when num_pis <= exhaustive_limit, else `random_words`
/// 64-pattern random rounds. Interfaces must match (same PI/PO counts).
CecResult cec(const Aig& a, const Aig& b, clo::Rng& rng,
              int random_words = 256, int exhaustive_limit = 14);

}  // namespace clo::aig
