#include "clo/aig/truth.hpp"

#include <bit>
#include <stdexcept>

namespace clo::aig {
namespace {

// Repeating patterns for variables 0..5 within a 64-bit word.
constexpr std::uint64_t kVarMasks[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > 16) {
    throw std::invalid_argument("TruthTable supports 0..16 variables");
  }
  const std::size_t bits = std::size_t{1} << num_vars;
  words_.assign(bits <= 64 ? 1 : bits / 64, 0);
}

TruthTable TruthTable::constant(int num_vars, bool value) {
  TruthTable t(num_vars);
  if (value) {
    for (auto& w : t.words_) w = ~0ULL;
    t.mask_tail();
  }
  return t;
}

TruthTable TruthTable::variable(int num_vars, int var) {
  TruthTable t(num_vars);
  if (var < 0 || var >= num_vars) {
    throw std::invalid_argument("variable index out of range");
  }
  if (var < 6) {
    for (auto& w : t.words_) w = kVarMasks[var];
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      if ((i / stride) & 1) t.words_[i] = ~0ULL;
    }
  }
  t.mask_tail();
  return t;
}

void TruthTable::mask_tail() {
  if (num_vars_ < 6) {
    words_[0] &= (1ULL << (std::size_t{1} << num_vars_)) - 1;
  }
}

void TruthTable::set_bit(std::size_t i, bool v) {
  if (v) {
    words_[i >> 6] |= 1ULL << (i & 63);
  } else {
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
}

bool TruthTable::is_const0() const {
  for (auto w : words_) {
    if (w) return false;
  }
  return true;
}

bool TruthTable::is_const1() const { return (~*this).is_const0(); }

int TruthTable::count_ones() const {
  int c = 0;
  for (auto w : words_) c += std::popcount(w);
  return c;
}

bool TruthTable::has_var(int var) const {
  return cofactor0(var) != cofactor1(var);
}

TruthTable TruthTable::operator~() const {
  TruthTable t(*this);
  for (auto& w : t.words_) w = ~w;
  t.mask_tail();
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  TruthTable t(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] &= o.words_[i];
  return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  TruthTable t(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] |= o.words_[i];
  return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  TruthTable t(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] ^= o.words_[i];
  return t;
}

bool TruthTable::operator==(const TruthTable& o) const {
  return num_vars_ == o.num_vars_ && words_ == o.words_;
}

TruthTable TruthTable::cofactor0(int var) const {
  TruthTable t(*this);
  if (var < 6) {
    const int shift = 1 << var;
    for (auto& w : t.words_) {
      w &= ~kVarMasks[var];
      w |= w << shift;
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      if ((i / stride) & 1) t.words_[i] = t.words_[i - stride];
    }
  }
  return t;
}

TruthTable TruthTable::cofactor1(int var) const {
  TruthTable t(*this);
  if (var < 6) {
    const int shift = 1 << var;
    for (auto& w : t.words_) {
      w &= kVarMasks[var];
      w |= w >> shift;
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      if (!((i / stride) & 1)) t.words_[i] = t.words_[i + stride];
    }
  }
  return t;
}

std::string TruthTable::to_binary_string() const {
  std::string s;
  s.reserve(num_bits());
  for (std::size_t i = num_bits(); i-- > 0;) s += get_bit(i) ? '1' : '0';
  return s;
}

std::uint16_t TruthTable::to_u16() const {
  if (num_vars_ > 4) throw std::logic_error("to_u16 requires <=4 vars");
  std::uint64_t w = words_[0];
  // Replicate smaller tables up to 16 bits for canonical comparison.
  for (int v = num_vars_; v < 4; ++v) w |= w << (1 << v);
  return static_cast<std::uint16_t>(w & 0xffff);
}

TruthTable TruthTable::from_u16(std::uint16_t bits, int num_vars) {
  TruthTable t(num_vars);
  t.words_[0] = bits;
  t.mask_tail();
  return t;
}

namespace {

// Recursive Minato-Morreale over an interval of don't cares:
// computes an irredundant cover F with on_min <= F <= on_max.
std::vector<Cube> isop_rec(const TruthTable& on_min, const TruthTable& on_max,
                           int var) {
  if (on_min.is_const0()) return {};
  if (on_max.is_const1()) return {Cube{}};  // single empty cube = const1
  // Find the topmost variable either bound depends on.
  int v = var;
  while (v >= 0 && !on_min.has_var(v) && !on_max.has_var(v)) --v;
  if (v < 0) {
    // Bounds are constants: on_min != 0 was handled, so on_min == const1
    // would have forced on_max == const1. Unreachable, but be safe.
    return {Cube{}};
  }
  const TruthTable min0 = on_min.cofactor0(v);
  const TruthTable min1 = on_min.cofactor1(v);
  const TruthTable max0 = on_max.cofactor0(v);
  const TruthTable max1 = on_max.cofactor1(v);

  // Part of ON-set that must be covered with literal !v / v.
  std::vector<Cube> cover0 = isop_rec(min0 & ~max1, max0, v - 1);
  std::vector<Cube> cover1 = isop_rec(min1 & ~max0, max1, v - 1);

  TruthTable covered0 = eval_sop(cover0, on_min.num_vars());
  TruthTable covered1 = eval_sop(cover1, on_min.num_vars());
  // Remainder must be covered without referencing v.
  const TruthTable rem = (min0 & ~covered0) | (min1 & ~covered1);
  std::vector<Cube> cover_rem = isop_rec(rem, max0 & max1, v - 1);

  for (auto& c : cover0) c.mask |= 1u << v;  // add literal !v (polarity 0)
  for (auto& c : cover1) {
    c.mask |= 1u << v;
    c.polarity |= 1u << v;
  }
  std::vector<Cube> all = std::move(cover0);
  all.insert(all.end(), cover1.begin(), cover1.end());
  all.insert(all.end(), cover_rem.begin(), cover_rem.end());
  return all;
}

}  // namespace

std::vector<Cube> isop(const TruthTable& on) {
  return isop_rec(on, on, on.num_vars() - 1);
}

TruthTable eval_sop(const std::vector<Cube>& cubes, int num_vars) {
  TruthTable result = TruthTable::constant(num_vars, false);
  for (const Cube& c : cubes) {
    TruthTable term = TruthTable::constant(num_vars, true);
    for (int v = 0; v < num_vars; ++v) {
      if (!(c.mask & (1u << v))) continue;
      const TruthTable tv = TruthTable::variable(num_vars, v);
      term = term & ((c.polarity & (1u << v)) ? tv : ~tv);
    }
    result = result | term;
  }
  return result;
}

int sop_literals(const std::vector<Cube>& cubes) {
  int n = 0;
  for (const Cube& c : cubes) n += c.num_literals();
  return n;
}

}  // namespace clo::aig
