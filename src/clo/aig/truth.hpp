#pragma once
// Bit-parallel truth tables over up to 16 variables, plus the
// Minato-Morreale irredundant sum-of-products (ISOP) computation used by
// the refactoring and rewriting passes to re-synthesize cut functions.

#include <cstdint>
#include <string>
#include <vector>

namespace clo::aig {

/// Truth table over `num_vars` variables packed in 64-bit words
/// (bit i of the table = function value on minterm i).
class TruthTable {
 public:
  TruthTable() : num_vars_(0), words_(1, 0) {}
  explicit TruthTable(int num_vars);

  static TruthTable constant(int num_vars, bool value);
  /// Elementary table of variable `var` over `num_vars` variables.
  static TruthTable variable(int num_vars, int var);

  int num_vars() const { return num_vars_; }
  std::size_t num_bits() const { return std::size_t{1} << num_vars_; }
  const std::vector<std::uint64_t>& words() const { return words_; }

  bool get_bit(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set_bit(std::size_t i, bool v);

  bool is_const0() const;
  bool is_const1() const;
  int count_ones() const;

  /// True if the function depends on variable `var`.
  bool has_var(int var) const;

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  bool operator==(const TruthTable& o) const;
  bool operator!=(const TruthTable& o) const { return !(*this == o); }

  /// Negative / positive cofactor w.r.t. `var` (result keeps num_vars).
  TruthTable cofactor0(int var) const;
  TruthTable cofactor1(int var) const;

  /// Binary string, minterm 2^n-1 first (matches ABC's print style).
  std::string to_binary_string() const;

  /// 16-bit value for 4-variable tables (requires num_vars <= 4).
  std::uint16_t to_u16() const;
  static TruthTable from_u16(std::uint16_t bits, int num_vars = 4);

 private:
  void mask_tail();
  int num_vars_;
  std::vector<std::uint64_t> words_;
};

/// A product term: `mask` marks participating variables, `polarity` their
/// phase (bit set = positive literal). Cube value = AND of literals.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t polarity = 0;
  int num_literals() const { return __builtin_popcount(mask); }
};

/// Minato-Morreale ISOP: irredundant SOP covering exactly `on` (ISOP of the
/// completely specified function when on == don't-care bound).
/// Returns cubes whose OR equals `on`.
std::vector<Cube> isop(const TruthTable& on);

/// Evaluate a cube list back to a truth table (testing helper).
TruthTable eval_sop(const std::vector<Cube>& cubes, int num_vars);

/// Total literal count of an SOP.
int sop_literals(const std::vector<Cube>& cubes);

}  // namespace clo::aig
