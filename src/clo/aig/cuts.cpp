#include "clo/aig/cuts.hpp"

#include <algorithm>

namespace clo::aig {

bool Cut::dominates(const Cut& o) const {
  if (leaves.size() > o.leaves.size()) return false;
  return std::includes(o.leaves.begin(), o.leaves.end(), leaves.begin(),
                       leaves.end());
}

bool merge_cuts(const Cut& a, const Cut& b, int k, Cut& out) {
  out.leaves.clear();
  std::size_t i = 0, j = 0;
  while (i < a.leaves.size() || j < b.leaves.size()) {
    std::uint32_t next;
    if (j >= b.leaves.size() ||
        (i < a.leaves.size() && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i++];
      if (j < b.leaves.size() && b.leaves[j] == next) ++j;
    } else {
      next = b.leaves[j++];
    }
    out.leaves.push_back(next);
    if (static_cast<int>(out.leaves.size()) > k) return false;
  }
  return true;
}

CutSet::CutSet(const Aig& g, const CutParams& params) {
  cuts_.resize(g.num_slots());
  // Constant node and PIs: trivial cut only.
  cuts_[0].push_back(Cut{{0}});
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    cuts_[g.pi_node(i)].push_back(Cut{{g.pi_node(i)}});
  }
  for (std::uint32_t n : g.topo_order()) {
    const auto& c0 = cuts_[lit_node(g.fanin0(n))];
    const auto& c1 = cuts_[lit_node(g.fanin1(n))];
    std::vector<Cut> result;
    Cut merged;
    for (const Cut& a : c0) {
      for (const Cut& b : c1) {
        if (!merge_cuts(a, b, params.max_leaves, merged)) continue;
        // Drop if dominated by an existing cut; drop existing dominated.
        bool dominated = false;
        for (const Cut& c : result) {
          if (c.dominates(merged)) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        std::erase_if(result, [&](const Cut& c) { return merged.dominates(c); });
        result.push_back(merged);
      }
    }
    // Priority: prefer fewer leaves (cheaper to match / rewrite).
    std::sort(result.begin(), result.end(),
              [](const Cut& a, const Cut& b) {
                return a.leaves.size() < b.leaves.size();
              });
    if (static_cast<int>(result.size()) > params.max_cuts) {
      result.resize(params.max_cuts);
    }
    if (params.keep_trivial) result.push_back(Cut{{n}});
    cuts_[n] = std::move(result);
  }
}

}  // namespace clo::aig
