#include "clo/aig/window.hpp"

#include <algorithm>
#include <unordered_set>

namespace clo::aig {

std::vector<std::uint32_t> reconvergence_cut(const Aig& g, std::uint32_t root,
                                             int max_leaves) {
  std::vector<std::uint32_t> leaves;
  std::unordered_set<std::uint32_t> in_leaves;
  auto add_leaf = [&](std::uint32_t n) {
    if (in_leaves.insert(n).second) leaves.push_back(n);
  };
  if (!g.is_and(root)) return {root};
  add_leaf(lit_node(g.fanin0(root)));
  add_leaf(lit_node(g.fanin1(root)));

  // Cost of expanding leaf n = how many leaves the set grows by.
  auto expansion_cost = [&](std::uint32_t n) {
    int cost = -1;  // the leaf itself disappears
    const std::uint32_t c0 = lit_node(g.fanin0(n));
    const std::uint32_t c1 = lit_node(g.fanin1(n));
    if (!in_leaves.count(c0)) ++cost;
    if (c1 != c0 && !in_leaves.count(c1)) ++cost;
    return cost;
  };

  while (true) {
    int best_cost = 1000;
    int best_index = -1;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      const std::uint32_t n = leaves[i];
      if (!g.is_and(n) || n == root) continue;
      const int cost = expansion_cost(n);
      if (cost < best_cost) {
        best_cost = cost;
        best_index = static_cast<int>(i);
      }
    }
    if (best_index < 0) break;
    if (static_cast<int>(leaves.size()) + best_cost > max_leaves) break;
    const std::uint32_t n = leaves[best_index];
    leaves.erase(leaves.begin() + best_index);
    in_leaves.erase(n);
    add_leaf(lit_node(g.fanin0(n)));
    add_leaf(lit_node(g.fanin1(n)));
  }
  std::sort(leaves.begin(), leaves.end());
  return leaves;
}

std::vector<std::uint32_t> cone_nodes(const Aig& g, std::uint32_t root,
                                      const std::vector<std::uint32_t>& leaves) {
  std::unordered_set<std::uint32_t> leaf_set(leaves.begin(), leaves.end());
  std::vector<std::uint32_t> order;
  std::unordered_set<std::uint32_t> visited;
  std::vector<std::pair<std::uint32_t, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [n, phase] = stack.back();
    stack.pop_back();
    if (phase == 0) {
      if (visited.count(n) || leaf_set.count(n) || !g.is_and(n)) continue;
      visited.insert(n);
      stack.emplace_back(n, 1);
      stack.emplace_back(lit_node(g.fanin0(n)), 0);
      stack.emplace_back(lit_node(g.fanin1(n)), 0);
    } else {
      order.push_back(n);
    }
  }
  return order;
}

std::optional<TruthTable> try_cone_truth_table(
    const Aig& g, Lit root_lit, const std::vector<std::uint32_t>& leaves,
    int max_nodes) {
  const int k = static_cast<int>(leaves.size());
  if (k > 16) return std::nullopt;
  std::unordered_map<std::uint32_t, TruthTable> value;
  for (int i = 0; i < k; ++i) value.emplace(leaves[i], TruthTable::variable(k, i));
  int internal = 0;
  std::vector<std::pair<std::uint32_t, int>> stack{{lit_node(root_lit), 0}};
  while (!stack.empty()) {
    auto [n, phase] = stack.back();
    stack.pop_back();
    if (phase == 0) {
      if (value.count(n)) continue;
      if (n == 0) {
        value.emplace(n, TruthTable::constant(k, false));
        continue;
      }
      if (g.is_pi(n) || g.is_dead(n)) return std::nullopt;  // escaped the cut
      if (++internal > max_nodes) return std::nullopt;
      stack.emplace_back(n, 1);
      stack.emplace_back(lit_node(g.fanin0(n)), 0);
      stack.emplace_back(lit_node(g.fanin1(n)), 0);
    } else {
      auto val_of = [&](Lit l) {
        const TruthTable& t = value.at(lit_node(l));
        return lit_is_compl(l) ? ~t : t;
      };
      value.emplace(n, val_of(g.fanin0(n)) & val_of(g.fanin1(n)));
    }
  }
  const TruthTable& t = value.at(lit_node(root_lit));
  return lit_is_compl(root_lit) ? ~t : t;
}

std::vector<std::uint32_t> collect_divisors(
    Aig& g, std::uint32_t root, const std::vector<std::uint32_t>& leaves,
    int max_divisors) {
  const auto inside = cone_nodes(g, root, leaves);
  const auto mffc = g.mffc_nodes(root);
  std::unordered_set<std::uint32_t> excluded(mffc.begin(), mffc.end());
  std::vector<std::uint32_t> divisors;
  // Leaves first (cheapest divisors: no new structure below them).
  for (std::uint32_t l : leaves) {
    if (g.is_const0(l)) continue;
    divisors.push_back(l);
  }
  for (std::uint32_t n : inside) {
    if (n == root || excluded.count(n)) continue;
    divisors.push_back(n);
    if (static_cast<int>(divisors.size()) >= max_divisors) break;
  }
  return divisors;
}

}  // namespace clo::aig
