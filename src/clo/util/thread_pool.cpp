#include "clo/util/thread_pool.hpp"

namespace clo::util {
namespace {

thread_local bool t_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = resolve_threads(0);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  if (on_worker_thread()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t resolve_threads(int n) {
  if (n >= 1) return static_cast<std::size_t>(n);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace clo::util
