#pragma once
// Tiny command-line flag parser shared by benches and examples.
// Supports "--flag", "--key value" and "--key=value" forms.

#include <map>
#include <string>
#include <vector>

namespace clo {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& flag) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Non-flag positional arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace clo
