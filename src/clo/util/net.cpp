#include "clo/util/net.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

namespace clo::util::net {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa {};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  });
}

int listen_localhost(int port, int backlog, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    *bound_port = ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0
                      ? ntohs(bound.sin_port)
                      : -1;
  }
  return fd;
}

int connect_localhost(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (ready == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string* line, int timeout_ms,
               std::size_t max_len) {
  line->clear();
  char buf[4096];
  for (;;) {
    if (!wait_readable(fd, timeout_ms)) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before a complete line
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        // A line-delimited protocol: anything after the newline belongs to
        // the next request, but our callers strictly alternate
        // request/response on one connection, so trailing bytes here would
        // be a protocol violation; they are dropped.
        return true;
      }
      line->push_back(buf[i]);
      if (line->size() > max_len) return false;
    }
  }
}

}  // namespace clo::util::net
