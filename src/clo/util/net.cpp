#include "clo/util/net.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <mutex>

namespace clo::util::net {

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa {};
    sa.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &sa, nullptr);
  });
}

int listen_localhost(int port, int backlog, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    *bound_port = ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0
                      ? ntohs(bound.sin_port)
                      : -1;
  }
  return fd;
}

int connect_localhost(int port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (timeout_ms < 0) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  // Bounded connect: go non-blocking, start the handshake, poll for
  // writability, then confirm via SO_ERROR and restore blocking mode.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    if (!wait_writable(fd, timeout_ms)) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

namespace {

bool wait_for_events(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (ready == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

/// Deadline helper turning an end-to-end budget into per-poll timeouts:
/// <0 passes through (wait forever), otherwise each call returns the
/// milliseconds left (clamped at 0 so an expired budget still gets one
/// non-blocking poll — data already buffered is not a timeout).
class DeadlineMs {
 public:
  explicit DeadlineMs(int timeout_ms) : unbounded_(timeout_ms < 0) {
    if (!unbounded_) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
    }
  }
  int remaining() const {
    if (unbounded_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline_ - std::chrono::steady_clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  }
  bool expired() const { return !unbounded_ && remaining() == 0; }

 private:
  bool unbounded_;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

bool wait_readable(int fd, int timeout_ms) {
  return wait_for_events(fd, POLLIN, timeout_ms);
}

bool wait_writable(int fd, int timeout_ms) {
  return wait_for_events(fd, POLLOUT, timeout_ms);
}

bool send_all(int fd, const char* data, std::size_t len, int timeout_ms) {
  const DeadlineMs deadline(timeout_ms);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: wait (within the budget) for drain room.
        if (deadline.expired()) return false;
        if (!wait_writable(fd, deadline.remaining())) return false;
        continue;
      }
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_line(int fd, std::string* line, int timeout_ms,
               std::size_t max_len) {
  const DeadlineMs deadline(timeout_ms);
  line->clear();
  char buf[4096];
  for (;;) {
    if (!wait_readable(fd, deadline.remaining())) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (deadline.expired()) return false;
        continue;  // spurious poll wakeup — wait again within the budget
      }
      return false;
    }
    if (n == 0) return false;  // EOF before a complete line
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[i] == '\n') {
        // A line-delimited protocol: anything after the newline belongs to
        // the next request, but our callers strictly alternate
        // request/response on one connection, so trailing bytes here would
        // be a protocol violation; they are dropped.
        return true;
      }
      line->push_back(buf[i]);
      if (line->size() > max_len) return false;
    }
  }
}

}  // namespace clo::util::net
