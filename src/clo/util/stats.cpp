#include "clo/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace clo {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double geomean(const std::vector<double>& v, double floor_value) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(std::max(x, floor_value));
  return std::exp(log_sum / static_cast<double>(v.size()));
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

double min_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

namespace {

std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
  std::vector<double> r(v.size());
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j));
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  return pearson(ranks(a), ranks(b));
}

}  // namespace clo
