#include "clo/util/crc32.hpp"

#include <array>

namespace clo::util {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace clo::util
