#pragma once
// Fixed-size worker pool with exception-propagating futures and
// deterministic parallel_for / parallel_map helpers — the parallel
// execution substrate for QoR labeling, surrogate training, latent
// optimization restarts, and baseline candidate evaluation.
//
// Determinism contract: parallel_for(pool, n, fn) runs fn(0..n-1) with
// results keyed by index, so any code whose per-item work is a pure
// function of (shared inputs, index) produces bit-identical output at any
// worker count — including the serial pool == nullptr path. Randomized
// per-item work stays deterministic by forking one child Rng per item
// *before* the parallel region (see Rng::fork).
//
// Nested submission: tasks submitted from inside a worker thread run
// inline (same thread, immediately). This keeps nested parallel_for calls
// deadlock-free without work stealing; the inner loop simply degrades to
// serial execution.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace clo::util {

class ThreadPool {
 public:
  /// `workers == 0` asks for std::thread::hardware_concurrency() (at least
  /// one). A one-worker pool still runs tasks on its single worker thread;
  /// use a null pool pointer with the free helpers for true inline
  /// execution.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Schedule `fn` and return a future for its result. Exceptions thrown
  /// by `fn` are captured and rethrown from future::get(). Called from a
  /// worker thread of this pool, the task runs inline (see header note).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    if (on_worker_thread()) {
      (*task)();
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// True when the calling thread is one of this pool's workers.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Resolve a --threads style request: n >= 1 is taken literally, n <= 0
/// means hardware concurrency.
std::size_t resolve_threads(int n);

/// Run fn(i) for i in [0, n). With a null pool (or n < 2) the loop runs
/// serially on the calling thread; otherwise items are distributed over
/// the workers via an atomic cursor. Blocks until every item completed.
/// The first exception thrown by any item is rethrown on the caller.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() < 2 || n < 2 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_mu = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();
  const std::size_t tasks = std::min(pool->size(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(pool->submit([&fn, n, cursor, first_error, error_mu,
                                    error] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n) return;
        if (first_error->load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mu);
          if (!*error) *error = std::current_exception();
          first_error->store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (*error) std::rethrow_exception(*error);
}

/// parallel_for that materializes results: out[i] = fn(i), in index order
/// regardless of scheduling.
template <typename R, typename Fn>
std::vector<R> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<R> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace clo::util
