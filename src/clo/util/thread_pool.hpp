#pragma once
// Fixed-size worker pool with exception-propagating futures and
// deterministic parallel_for / parallel_map helpers — the parallel
// execution substrate for QoR labeling, surrogate training, latent
// optimization restarts, and baseline candidate evaluation.
//
// Determinism contract: parallel_for(pool, n, fn) runs fn(0..n-1) with
// results keyed by index, so any code whose per-item work is a pure
// function of (shared inputs, index) produces bit-identical output at any
// worker count — including the serial pool == nullptr path. Randomized
// per-item work stays deterministic by forking one child Rng per item
// *before* the parallel region (see Rng::fork).
//
// Nested submission: tasks submitted from inside a worker thread run
// inline (same thread, immediately). This keeps nested parallel_for calls
// deadlock-free without work stealing; the inner loop simply degrades to
// serial execution.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <string>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace clo::util {

class ThreadPool {
 public:
  /// `workers == 0` asks for std::thread::hardware_concurrency() (at least
  /// one). A one-worker pool still runs tasks on its single worker thread;
  /// use a null pool pointer with the free helpers for true inline
  /// execution.
  explicit ThreadPool(std::size_t workers = 0);
  /// Drains before joining: tasks already queued but not yet started are
  /// still executed (their futures become ready), so submitting work and
  /// immediately destroying the pool never silently drops tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Schedule `fn` and return a future for its result. Exceptions thrown
  /// by `fn` are captured and rethrown from future::get(). Called from a
  /// worker thread of this pool, the task runs inline (see header note).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    if (on_worker_thread()) {
      (*task)();
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Fire-and-forget enqueue: no future, no exception capture — the task
  /// must not throw (completion and errors are tracked by the caller, see
  /// parallel_tiles). Called from a worker thread of this pool, the task
  /// runs inline like submit() does.
  void post(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Resolve a --threads style request: n >= 1 is taken literally, n <= 0
/// means hardware concurrency.
std::size_t resolve_threads(int n);

/// Run fn(i) for i in [0, n). With a null pool (or n < 2) the loop runs
/// serially on the calling thread; otherwise items are distributed over
/// the workers via an atomic cursor. Blocks until every item completed.
/// The first exception thrown by any item is rethrown on the caller.
///
/// Error semantics — silent abandonment: once any item throws, workers
/// stop pulling new indices, so items after the failure MAY NEVER RUN
/// (which ones depends on scheduling). On a throw the caller must treat
/// every per-index output as unspecified — in particular, parallel_map
/// results must not be consumed when it throws. Use parallel_for_collect
/// when every item must be attempted and failures handled per index.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() < 2 || n < 2 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_mu = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();
  const std::size_t tasks = std::min(pool->size(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(pool->submit([&fn, n, cursor, first_error, error_mu,
                                    error] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n) return;
        if (first_error->load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mu);
          if (!*error) *error = std::current_exception();
          first_error->store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (*error) std::rethrow_exception(*error);
}

/// Low-overhead parallel_for variant for fine-grained fan-out (the nn
/// kernel's tiled GEMM): one shared control block and fire-and-forget
/// posts instead of per-task futures, and the CALLING thread also drains
/// the index range, so a 2-tile problem never pays a wake-up latency for
/// tile 0. Same determinism contract as parallel_for — fn(i) must be a
/// pure function of (shared inputs, i) — and the same serial fallback
/// (null/1-worker pool, n < 2, or already on a worker thread). Same
/// abandonment semantics on error: the first exception is rethrown on the
/// caller and later indices may never run.
template <typename Fn>
void parallel_tiles(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() < 2 || n < 2 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct Control {
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> active{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto ctl = std::make_shared<Control>();
  const std::size_t nn = n;
  auto drain = [ctl, &fn, nn] {
    for (;;) {
      const std::size_t i = ctl->cursor.fetch_add(1);
      if (i >= nn) return;
      if (ctl->failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(ctl->mu);
        if (!ctl->error) ctl->error = std::current_exception();
        ctl->failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  // The caller takes one share of the range, so only n - 1 helpers are
  // ever useful. `drain` captures fn by reference: safe because the wait
  // below does not return until every posted helper has finished.
  const std::size_t helpers = std::min(pool->size(), n - 1);
  ctl->active.store(helpers, std::memory_order_relaxed);
  for (std::size_t t = 0; t < helpers; ++t) {
    pool->post([ctl, drain] {
      drain();
      std::lock_guard<std::mutex> lock(ctl->mu);
      if (ctl->active.fetch_sub(1) == 1) ctl->done.notify_all();
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock(ctl->mu);
    ctl->done.wait(lock, [&] { return ctl->active.load() == 0; });
  }
  if (ctl->error) std::rethrow_exception(ctl->error);
}

/// parallel_for that materializes results: out[i] = fn(i), in index order
/// regardless of scheduling. Inherits parallel_for's abandonment
/// semantics: when it throws, the would-be results are lost — never
/// consume partial output.
template <typename R, typename Fn>
std::vector<R> parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<R> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// One failed item of a parallel_for_collect.
struct ItemError {
  std::size_t index = 0;
  std::exception_ptr error;
  std::string message;  ///< what() when the exception derives from std::exception
};

/// Fault-tolerant parallel_for: EVERY item in [0, n) is attempted even
/// after failures, and each failure is gathered instead of aborting the
/// loop. Returns the failures sorted by index (empty = all succeeded);
/// outputs of failed indices are unspecified, outputs of succeeded ones
/// are valid. This is the graceful-degradation primitive the pipeline's
/// optimize/validate phases use to quarantine individual restarts.
template <typename Fn>
std::vector<ItemError> parallel_for_collect(ThreadPool* pool, std::size_t n,
                                            Fn&& fn) {
  auto describe = [](std::exception_ptr ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      return std::string(e.what());
    } catch (...) {
      return std::string("unknown exception");
    }
  };
  std::vector<ItemError> errors;
  if (pool == nullptr || pool->size() < 2 || n < 2 ||
      ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        auto ep = std::current_exception();
        errors.push_back({i, ep, describe(ep)});
      }
    }
    return errors;
  }
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto error_mu = std::make_shared<std::mutex>();
  auto shared_errors = std::make_shared<std::vector<ItemError>>();
  const std::size_t tasks = std::min(pool->size(), n);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(
        pool->submit([&fn, &describe, n, cursor, error_mu, shared_errors] {
          for (;;) {
            const std::size_t i = cursor->fetch_add(1);
            if (i >= n) return;
            try {
              fn(i);
            } catch (...) {
              auto ep = std::current_exception();
              std::lock_guard<std::mutex> lock(*error_mu);
              shared_errors->push_back({i, ep, describe(ep)});
            }
          }
        }));
  }
  for (auto& f : futures) f.get();
  errors = std::move(*shared_errors);
  std::sort(errors.begin(), errors.end(),
            [](const ItemError& a, const ItemError& b) {
              return a.index < b.index;
            });
  return errors;
}

}  // namespace clo::util
