#pragma once
// Wall-clock stopwatch used for the paper's runtime accounting (Fig. 5):
// baseline optimizers time "algorithm" and "synthesis" buckets separately.

#include <chrono>

namespace clo {

/// Simple restartable wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() {
    accumulated_ = std::chrono::steady_clock::duration::zero();
    running_ = false;
  }

  void start() {
    if (running_) return;
    begin_ = std::chrono::steady_clock::now();
    running_ = true;
  }

  void stop() {
    if (!running_) return;
    accumulated_ += std::chrono::steady_clock::now() - begin_;
    running_ = false;
  }

  /// Elapsed seconds, including the in-flight interval if running.
  double seconds() const {
    auto total = accumulated_;
    if (running_) total += std::chrono::steady_clock::now() - begin_;
    return std::chrono::duration<double>(total).count();
  }

 private:
  std::chrono::steady_clock::time_point begin_{};
  std::chrono::steady_clock::duration accumulated_{};
  bool running_ = false;
};

/// RAII guard that accumulates a scope's wall time into a stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace clo
