#include "clo/util/cancel.hpp"

namespace clo::util {

namespace {
thread_local const CancelToken* g_current_token = nullptr;
}  // namespace

const CancelToken* current_cancel_token() { return g_current_token; }

void cancel_point() {
  if (g_current_token != nullptr) g_current_token->check();
}

ScopedCancelToken::ScopedCancelToken(const CancelToken* token)
    : previous_(g_current_token) {
  g_current_token = token;
}

ScopedCancelToken::~ScopedCancelToken() { g_current_token = previous_; }

}  // namespace clo::util
