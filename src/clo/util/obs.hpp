#pragma once
// clo::obs — the observability layer: a thread-safe metrics registry
// (named counters, gauges, and fixed-bucket histograms with percentile
// queries), a scoped tracing API that serializes to Chrome trace-event
// JSON (loadable in chrome://tracing / Perfetto), and a minimal JSON value
// type (build + parse) used for machine-readable run reports.
//
// Cost model: everything is off by default. Each instrumentation macro
// first checks one relaxed atomic (obs::enabled()); when that is false no
// clock is read and no allocation happens. Defining CLO_OBS_DISABLE at
// compile time removes the instrumentation sites entirely (the library
// functions below stay available so callers always link). Counters and
// histograms are sharded per thread and merged on snapshot — the same
// pattern as QorEvaluator's sharded cache — so worker threads never
// contend on a global lock. Instrumentation only reads clocks and bumps
// thread-local state; it never touches an Rng or the computation, so the
// bit-identical cross-thread determinism contract of the parallel
// substrate is unaffected.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace clo::obs {

// ---------------------------------------------------------------------------
// Runtime switch (the compile-time guard is the CLO_OBS_* macro layer).
// ---------------------------------------------------------------------------

/// Whether instrumentation records anything (default false).
bool enabled();
void set_enabled(bool on);

// ---------------------------------------------------------------------------
// Minimal JSON value: enough to build reports and parse them back in tests.
// Objects preserve insertion order; numbers are doubles (integral values
// round-trip as integers up to 2^53).
// ---------------------------------------------------------------------------

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}  // NOLINT(runtime/explicit)
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kNumber), num_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* v) : kind_(Kind::kString), str_(v) {}
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Object access; creates the key (and coerces a null value to an
  /// object) like nlohmann/json does.
  Json& operator[](const std::string& key);
  /// Object lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Array append (coerces a null value to an array).
  void push_back(Json v);

  double as_double() const { return num_; }
  bool as_bool() const { return bool_; }
  const std::string& as_string() const { return str_; }
  std::size_t size() const;
  const Json& at(std::size_t i) const { return arr_[i]; }
  const std::vector<std::pair<std::string, Json>>& items() const {
    return obj_;
  }

  /// Serialize; indent 0 = compact single line.
  std::string dump(int indent = 0) const;

  /// Parse a JSON document. Throws std::runtime_error on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Write a JSON value to a file (2-space pretty printed, trailing newline).
/// Returns false (and logs) on I/O failure.
bool write_json_file(const std::string& path, const Json& value);

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

/// Merged view of one histogram: exact count/sum/min/max plus fixed-bucket
/// counts supporting approximate percentile queries.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;          ///< bucket upper bounds, ascending
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Approximate percentile (p in [0, 100]) by linear interpolation inside
  /// the bucket containing the rank; the exact min/max anchor the two ends.
  double percentile(double p) const;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  Json to_json() const;
  /// Human-readable fixed-width table (the `metrics` shell command and the
  /// --metrics exit dump). Rows are sorted by metric name (the maps above
  /// are ordered), so the output is deterministic for a given snapshot.
  std::string format_table() const;
  /// Prometheus text-exposition rendering (version 0.0.4): counters as
  /// `clo_<name>_total`, gauges as `clo_<name>`, histograms as summaries
  /// with quantile labels. Served by the exporter's --metrics-port
  /// listener.
  std::string to_prometheus() const;
};

/// Sanitize an internal dotted metric name into a legal Prometheus metric
/// name: "clo_" prefix, every character outside [a-zA-Z0-9_:] becomes '_'.
std::string prometheus_name(const std::string& name);
/// Escape a Prometheus label value (backslash, double-quote, newline).
std::string prometheus_escape_label(const std::string& value);

class Registry {
 public:
  /// The process-wide registry every instrumentation site reports to.
  static Registry& instance();

  /// Monotonic named counter (thread-local shard, exact on merge).
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  /// Last-write-wins named value (global map under a mutex; set rarely).
  void set_gauge(const std::string& name, double value);
  /// Record one histogram observation. Bounds come from define_histogram()
  /// or default to log-spaced buckets covering 1e-6..1e3 (tuned for
  /// seconds-scale durations).
  void observe(const std::string& name, double value);
  /// Install explicit bucket upper bounds (ascending). Must be called
  /// before the first observe() of `name`.
  void define_histogram(const std::string& name, std::vector<double> bounds);

  /// Merge every thread's shard into one consistent snapshot.
  MetricsSnapshot snapshot() const;
  /// Zero all counters/gauges/histogram contents (bucket definitions and
  /// thread shards survive). Used between bench repetitions.
  void reset();

 private:
  Registry() = default;
};

// ---------------------------------------------------------------------------
// Progress gauges.
// ---------------------------------------------------------------------------

/// Progress reporter for a long phase with a known step count. Publishes
/// four gauges under "progress.<phase>." — fraction (0..1, monotone
/// non-decreasing within the phase), eta_seconds, done, and total — so the
/// exporter stream shows where a multi-minute run is and how long is left.
///
/// tick() is thread-safe (workers share one Progress through a pointer)
/// and cheap in tight loops: it bumps one relaxed atomic and only touches
/// the registry when progress crosses the next 1/512 of the total, so the
/// registry mutex is taken at most ~512 times per phase regardless of the
/// step count. Inert when observability is off or total == 0.
class Progress {
 public:
  /// `phase` must be a string literal (stored by pointer).
  Progress(const char* phase, std::uint64_t total);
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void tick(std::uint64_t delta = 1);
  bool active() const { return active_; }

 private:
  void publish(std::uint64_t done);

  const char* phase_;
  std::uint64_t total_ = 0;
  bool active_ = false;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> bucket_{0};  ///< last published done*512/total
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Span-derived self-profiler.
// ---------------------------------------------------------------------------

/// One aggregated call path in the profile. `path` joins the span labels
/// from the root with '/' (a top-level span's path is its label), so the
/// same label reached through different parents stays distinct.
struct ProfileNode {
  std::string path;
  std::uint64_t count = 0;  ///< completed spans on this path
  double total_s = 0.0;     ///< wall time including children
  double self_s = 0.0;      ///< wall time excluding child spans
  double p50_s = 0.0;       ///< exact (nearest-rank) median span duration
  double p99_s = 0.0;
};

struct Profile {
  std::vector<ProfileNode> nodes;  ///< sorted by path

  /// clo.profile.v1: {"schema", "run", "nodes": [{path, count, total_s,
  /// self_s, p50_s, p99_s}, ...]}.
  Json to_json() const;
  /// Human-readable table sorted by total time descending (the `profile`
  /// shell command).
  std::string format_table() const;
};

/// Aggregate the recorded span stream into a hierarchical profile: walk
/// each thread's begin/end events with a stack, accumulate per-path count,
/// total and self time, and exact p50/p99 over span durations, then merge
/// the per-thread results by path. Spans still open (or truncated by a
/// mid-span trace toggle) are skipped, never mispaired.
Profile build_profile();

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

/// RAII span: records a begin event at construction and the matching end
/// event at destruction into a per-thread buffer (appends take only the
/// buffer's own uncontended mutex). Balanced by construction — if tracing
/// is toggled mid-span the end event is recorded iff the begin was. Labels
/// must be string literals (stored by pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* label);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* label_;
  bool active_;
};

/// Serialize every recorded span as Chrome trace-event JSON
/// ({"traceEvents": [{"ph": "B"/"E", ...}]}).
void write_trace(std::ostream& os);
/// write_trace to a file; returns false (and logs) on I/O failure.
bool write_trace_file(const std::string& path);
/// Drop all recorded events (buffers stay registered).
void reset_trace();
/// Number of events currently recorded (tests / sanity checks).
std::size_t trace_event_count();

}  // namespace clo::obs

// ---------------------------------------------------------------------------
// Instrumentation macros — the only layer call sites use. Compile away
// entirely under CLO_OBS_DISABLE; otherwise each expands to one relaxed
// atomic check before doing any work.
// ---------------------------------------------------------------------------

#if !defined(CLO_OBS_DISABLE)

#define CLO_OBS_CONCAT_INNER(a, b) a##b
#define CLO_OBS_CONCAT(a, b) CLO_OBS_CONCAT_INNER(a, b)

/// True when instrumentation should record; usable in `if` conditions
/// around code that e.g. reads clocks. Constant-folds to false when
/// observability is compiled out.
#define CLO_OBS_RUNTIME_ENABLED() (::clo::obs::enabled())

#define CLO_TRACE_SPAN(label) \
  ::clo::obs::ScopedSpan CLO_OBS_CONCAT(clo_obs_span_, __LINE__)(label)

#define CLO_OBS_COUNT(name, delta)                              \
  do {                                                          \
    if (::clo::obs::enabled())                                  \
      ::clo::obs::Registry::instance().add_counter(name, delta); \
  } while (0)

#define CLO_OBS_GAUGE(name, value)                              \
  do {                                                          \
    if (::clo::obs::enabled())                                  \
      ::clo::obs::Registry::instance().set_gauge(name, value);  \
  } while (0)

#define CLO_OBS_OBSERVE(name, value)                            \
  do {                                                          \
    if (::clo::obs::enabled())                                  \
      ::clo::obs::Registry::instance().observe(name, value);    \
  } while (0)

#else  // CLO_OBS_DISABLE

#define CLO_OBS_RUNTIME_ENABLED() (false)
#define CLO_TRACE_SPAN(label) \
  do {                        \
  } while (0)
#define CLO_OBS_COUNT(name, delta) \
  do {                             \
  } while (0)
#define CLO_OBS_GAUGE(name, value) \
  do {                             \
  } while (0)
#define CLO_OBS_OBSERVE(name, value) \
  do {                               \
  } while (0)

#endif  // CLO_OBS_DISABLE
