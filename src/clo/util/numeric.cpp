#include "clo/util/numeric.hpp"

#include <charconv>
#include <cmath>

namespace clo::util {

namespace {

/// from_chars rejects a leading '+', which strtod-based callers (CLI
/// flags) historically accepted; strip at most one.
std::string_view drop_leading_plus(std::string_view text) {
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  return text;
}

template <typename T>
bool parse_full(std::string_view text, T* out) {
  if (text.empty()) return false;
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

bool parse_double(std::string_view text, double* out) {
  return parse_full(drop_leading_plus(text), out);
}

bool parse_int(std::string_view text, int* out) {
  return parse_full(drop_leading_plus(text), out);
}

bool parse_uint64(std::string_view text, std::uint64_t* out) {
  return parse_full(drop_leading_plus(text), out);
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) return "0";  // cannot happen with this buffer size
  return std::string(buf, ptr);
}

}  // namespace clo::util
