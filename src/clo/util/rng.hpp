#pragma once
// Deterministic pseudo-random number generation for the whole project.
//
// Everything that consumes randomness (dataset sampling, model init, DDPM
// noise, baseline explorers) takes an explicit Rng so runs are reproducible
// from a single seed. The generator is xoshiro256**, seeded via splitmix64.

#include <cstdint>
#include <vector>

namespace clo {

/// Small, fast, high-quality PRNG (xoshiro256**) with explicit seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [0, 1).
  float next_float();

  /// Standard normal variate (Box-Muller, cached second value).
  double next_gaussian();

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel/submodule use).
  Rng fork();

  /// Full generator state (xoshiro words + the Box-Muller cache), for
  /// checkpoint/resume: restoring a snapshot replays the exact draw
  /// stream from that point.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace clo
