#pragma once
// Aligned allocator for SIMD-friendly buffers. Tensor data/grad storage
// uses the 64-byte default so the AVX2/AVX-512 kernels
// (clo/nn/kernel.hpp) start every buffer on a full cache line (and zmm
// vector boundary); the kernels themselves still use unaligned loads
// (interior slices of a tensor are not aligned), so alignment is a
// performance property, never a correctness requirement.

#include <cstddef>
#include <new>
#include <vector>

namespace clo::util {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must be at least the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) {
  return false;
}

/// 64-byte-aligned float buffer — the Tensor storage type.
using AlignedFloats = std::vector<float, AlignedAllocator<float, 64>>;

}  // namespace clo::util
