#pragma once
// CRC-32 (IEEE 802.3, the zlib polynomial) for checkpoint integrity
// checks: a truncated or bit-flipped checkpoint must be rejected, never
// silently loaded.

#include <cstddef>
#include <cstdint>

namespace clo::util {

/// One-shot CRC-32 of a byte buffer.
std::uint32_t crc32(const void* data, std::size_t size);

/// Incremental form: feed `crc` from the previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size);

}  // namespace clo::util
