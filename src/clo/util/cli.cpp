#include "clo/util/cli.hpp"

#include "clo/util/numeric.hpp"

namespace clo {

CliArgs::CliArgs(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& flag) const {
  return values_.count(flag) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int CliArgs::get_int(const std::string& key, int fallback) const {
  // Locale-independent (atoi/atof honor the global C locale — see
  // util/numeric.hpp); malformed values fall back instead of silently
  // parsing a prefix.
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  int value = fallback;
  util::parse_int(it->second, &value);
  return value;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  double value = fallback;
  util::parse_double(it->second, &value);
  return value;
}

}  // namespace clo
