#pragma once
// Aggregate statistics used by the experiment harnesses: the paper reports
// arithmetic means, geometric means, and per-method ratios (Table II).

#include <cstddef>
#include <vector>

namespace clo {

/// Arithmetic mean. Returns 0 for empty input.
double mean(const std::vector<double>& v);

/// Geometric mean over strictly positive values; non-positive entries are
/// clamped to `floor_value` first (Table II contains only positive QoR).
double geomean(const std::vector<double>& v, double floor_value = 1e-12);

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 values.
double stddev(const std::vector<double>& v);

double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

/// Median (averages the two central elements for even sizes).
double median(std::vector<double> v);

/// Pearson correlation of two equally sized vectors; 0 on degenerate input.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation; 0 on degenerate input. Used to report
/// surrogate fidelity (ranking sequences correctly matters more than MSE).
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace clo
