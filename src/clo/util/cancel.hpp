#pragma once
// Cooperative cancellation with deadlines. A CancelToken is a copyable
// handle over shared state that long-running work polls at natural
// boundaries (pipeline phases, training batches, optimizer timesteps,
// synthesis calls). Cancellation is cooperative and prompt-by-contract:
// every loop that can run longer than a checkpoint-granularity step must
// call check() (or cancel_point() when only the thread-local ambient token
// is reachable), so an expired deadline or an explicit cancel() surfaces
// within one step.
//
// Two hard rules keep the determinism contract intact:
//   * checking a token never perturbs results — a run that is NOT
//     cancelled is byte-identical to one executed with no token at all;
//   * cancellation surfaces as a thrown CancelledError, never as a
//     silently truncated result, so partial work cannot be mistaken for
//     (or cached as) a completed answer.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace clo::util {

/// Why a token fired. kDeadline wins only when the deadline expired before
/// any explicit cancel() call was observed.
enum class CancelReason : int { kNone = 0, kExplicit = 1, kDeadline = 2 };

/// Thrown by CancelToken::check() / cancel_point(). Subclasses
/// runtime_error so existing catch(...) fault paths release resources, but
/// is distinguishable where cancellation must bypass retry machinery
/// (e.g. the tolerant restart driver rethrows instead of quarantining).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(reason == CancelReason::kDeadline
                               ? "cancelled: deadline exceeded"
                               : "cancelled"),
        reason_(reason) {}
  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// Copyable cancellation handle. All copies share one state: cancel() on
/// any copy is observed by every other. Default-constructed tokens are
/// valid, never-cancelled tokens (cheap to pass around as a no-op).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() : state_(std::make_shared<State>()) {}

  /// Arm a wall-clock deadline `ms` milliseconds from now. ms <= 0 means
  /// already expired. A second call tightens or loosens the deadline.
  void set_deadline_ms(std::int64_t ms) {
    state_->deadline_ns.store(
        now_ns() + ms * 1'000'000,
        std::memory_order_release);
  }

  /// Explicitly cancel. Idempotent; an explicit cancel is not overwritten
  /// by a later deadline expiry.
  void cancel(CancelReason reason = CancelReason::kExplicit) {
    int expected = static_cast<int>(CancelReason::kNone);
    state_->reason.compare_exchange_strong(expected,
                                           static_cast<int>(reason),
                                           std::memory_order_acq_rel);
  }

  /// True once cancelled or past deadline. Latches: a deadline observed
  /// expired records kDeadline so later reason() queries are stable.
  bool cancelled() const {
    if (state_->reason.load(std::memory_order_acquire) !=
        static_cast<int>(CancelReason::kNone)) {
      return true;
    }
    const std::int64_t dl =
        state_->deadline_ns.load(std::memory_order_acquire);
    if (dl != kNoDeadline && now_ns() >= dl) {
      int expected = static_cast<int>(CancelReason::kNone);
      state_->reason.compare_exchange_strong(
          expected, static_cast<int>(CancelReason::kDeadline),
          std::memory_order_acq_rel);
      return true;
    }
    return false;
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(
        state_->reason.load(std::memory_order_acquire));
  }

  /// Throws CancelledError when cancelled; otherwise a no-op.
  void check() const {
    if (cancelled()) throw CancelledError(reason());
  }

  /// Milliseconds until the deadline (clamped at 0), or `fallback` when no
  /// deadline is armed. Handy for sizing timed waits.
  std::int64_t remaining_ms(std::int64_t fallback = -1) const {
    const std::int64_t dl =
        state_->deadline_ns.load(std::memory_order_acquire);
    if (dl == kNoDeadline) return fallback;
    const std::int64_t left = (dl - now_ns()) / 1'000'000;
    return left > 0 ? left : 0;
  }

  bool has_deadline() const {
    return state_->deadline_ns.load(std::memory_order_acquire) !=
           kNoDeadline;
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();
  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }
  struct State {
    std::atomic<int> reason{static_cast<int>(CancelReason::kNone)};
    std::atomic<std::int64_t> deadline_ns{kNoDeadline};
  };
  std::shared_ptr<State> state_;
};

/// The ambient (thread-local) token, for code too deep to take a token
/// parameter without churning every signature (truth-table synthesis, the
/// rewrite engine). nullptr when none is installed.
const CancelToken* current_cancel_token();

/// Checks the ambient token if one is installed; no-op otherwise. Cheap
/// enough for per-transform / per-synthesis granularity.
void cancel_point();

/// RAII: installs `token` as the current thread's ambient token for the
/// scope (restoring the previous one on exit). Installed around the
/// single-threaded synthesis block in QorEvaluator::evaluate so opt-layer
/// cancel_point() calls observe the request's token.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(const CancelToken* token);
  ~ScopedCancelToken();
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  const CancelToken* previous_;
};

}  // namespace clo::util
