#pragma once
// Continuous telemetry exporter: a background thread that periodically
// snapshots the global metrics Registry and appends one newline-delimited
// clo.metrics.v1 JSON record per interval to a file, plus an optional
// minimal HTTP/1.0 listener on 127.0.0.1 serving the same snapshot in
// Prometheus text-exposition format — the scrape surface a long-running
// `clo serve` will sit behind.
//
// Record schema (one compact JSON object per line):
//   {"schema": "clo.metrics.v1", "run": "<run id>", "seq": N,
//    "t_ms": <ms since exporter start>, "phase": "<current phase>",
//    "counters": {...}, "gauges": {...},
//    "histograms": {name: {count, sum, mean, min, max, p50, p90, p99}}}
//
// The exporter only ever *reads* the registry (snapshot() merges the
// thread shards under their own mutexes) and samples /proc — it never
// touches an Rng, model state, or any hot-path lock, so enabling it
// cannot perturb results. Everything degrades to an inert object when
// observability is compiled out (CLO_OBS_DISABLE) or the options name no
// sink.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace clo::util {

struct ExporterOptions {
  /// JSONL sink; empty = no file export.
  std::string metrics_path;
  /// Snapshot period for the file exporter.
  int interval_ms = 1000;
  /// TCP port for the Prometheus listener on 127.0.0.1; -1 = no listener,
  /// 0 = pick an ephemeral port (read it back via bound_port()).
  int port = -1;
  /// How long an accepted connection may sit without sending a request
  /// before the listener closes it (<= 0 = the 5000 ms default). A silent
  /// client must never stall the scrape endpoint.
  int idle_timeout_ms = 5000;
};

class Exporter {
 public:
  Exporter() = default;
  explicit Exporter(ExporterOptions options) : options_(std::move(options)) {}
  ~Exporter() { stop(); }
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  void set_options(ExporterOptions options) { options_ = std::move(options); }
  const ExporterOptions& options() const { return options_; }

  /// Start the export thread (and listener when a port is configured).
  /// Idempotent; enables obs recording. Returns false when nothing could
  /// be started (no sinks configured, file unwritable, or bind failed —
  /// failures are logged).
  bool start();

  /// Stop both threads, write one final record (so short runs always
  /// produce at least start + end records), and close the file.
  /// Idempotent; called by the destructor.
  void stop();

  bool running() const { return running_; }
  /// Port the listener actually bound (useful with port = 0); -1 when no
  /// listener is running.
  int bound_port() const { return bound_port_; }
  /// Number of JSONL records written so far.
  std::uint64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }

  /// Snapshot and append one record immediately (also used internally for
  /// the final record on stop()).
  void write_record_now();

 private:
  void export_loop();
  void listener_loop();
  void write_record_locked();

  ExporterOptions options_;
  bool running_ = false;
  int bound_port_ = -1;
  int listen_fd_ = -1;

  std::ofstream out_;
  std::mutex out_mu_;  ///< serializes record writes (loop vs write_record_now)
  std::atomic<std::uint64_t> records_{0};
  std::chrono::steady_clock::time_point start_time_;

  std::thread export_thread_;
  std::thread listener_thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
};

}  // namespace clo::util
