#include "clo/util/obs.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "clo/util/log.hpp"
#include "clo/util/numeric.hpp"

namespace clo::obs {

using util::format_double;
using util::parse_double;

namespace {

std::atomic<bool> g_enabled{false};

// ---------------------------------------------------------------------------
// Metrics storage: one shard per thread, merged on snapshot.
// ---------------------------------------------------------------------------

struct HistogramCells {
  std::shared_ptr<const std::vector<double>> bounds;
  std::vector<std::uint64_t> buckets;  // bounds->size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct Shard {
  std::mutex mu;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramCells> histograms;
};

struct MetricsState {
  std::mutex mu;  // guards shards list, gauges, and bucket definitions
  std::vector<std::shared_ptr<Shard>> shards;
  std::map<std::string, double> gauges;
  std::map<std::string, std::shared_ptr<const std::vector<double>>> bounds;
};

MetricsState& metrics_state() {
  static MetricsState* state = new MetricsState();
  return *state;
}

/// 3 log-spaced buckets per decade over 1e-6..1e3 seconds.
std::shared_ptr<const std::vector<double>> default_bounds() {
  static const auto kBounds = [] {
    auto b = std::make_shared<std::vector<double>>();
    for (int decade = -6; decade <= 2; ++decade) {
      for (double mantissa : {1.0, 2.1544346900318838, 4.6415888336127775}) {
        b->push_back(mantissa * std::pow(10.0, decade));
      }
    }
    b->push_back(1e3);
    return std::shared_ptr<const std::vector<double>>(b);
  }();
  return kBounds;
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    auto s = std::make_shared<Shard>();
    MetricsState& state = metrics_state();
    std::lock_guard<std::mutex> lock(state.mu);
    state.shards.push_back(s);
    return s;
  }();
  return *shard;
}

std::shared_ptr<const std::vector<double>> bounds_for(const std::string& name) {
  MetricsState& state = metrics_state();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.bounds.find(name);
  return it == state.bounds.end() ? default_bounds() : it->second;
}

// ---------------------------------------------------------------------------
// Trace storage: one append-only event buffer per thread.
// ---------------------------------------------------------------------------

struct TraceEvent {
  const char* label;
  std::uint64_t ts_ns;  // since trace epoch
  char phase;           // 'B' or 'E'
};

struct TraceBuffer {
  std::mutex mu;
  int tid = 0;
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState& trace_state() {
  static TraceState* state = new TraceState();
  return *state;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_state().epoch)
          .count());
}

TraceBuffer& local_trace_buffer() {
  thread_local std::shared_ptr<TraceBuffer> buffer = [] {
    auto b = std::make_shared<TraceBuffer>();
    TraceState& state = trace_state();
    std::lock_guard<std::mutex> lock(state.mu);
    b->tid = static_cast<int>(state.buffers.size());
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void record_event(const char* label, char phase) {
  TraceBuffer& buf = local_trace_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({label, now_ns(), phase});
}

// ---------------------------------------------------------------------------
// JSON helpers.
// ---------------------------------------------------------------------------

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  // format_double (std::to_chars) is locale-independent — snprintf %g
  // writes "4,5" under a comma-decimal locale, which is not JSON — and
  // emits the shortest form that parses back to the same bits (>= the old
  // fixed %.17g in fidelity, usually much shorter).
  out += format_double(std::isfinite(v) ? v : 0.0);
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("bad escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs unneeded
          // for anything this codebase writes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj[key] = parse_value();
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    // Number.
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) fail("unexpected character");
    // parse_double (std::from_chars) rather than stod: the latter honors
    // the global C locale and would reject "4.5" under de_DE.
    double value = 0.0;
    if (!parse_double(std::string_view(text).substr(start, pos - start),
                      &value)) {
      fail("bad number");
    }
    return Json(value);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Runtime switch.
// ---------------------------------------------------------------------------

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Json.
// ---------------------------------------------------------------------------

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::operator[]: not an object");
  }
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, Json());
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push_back: not an array");
  }
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        append_escaped(out, obj_[i].first);
        out += indent > 0 ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser{text};
  Json value = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing content");
  return value;
}

bool write_json_file(const std::string& path, const Json& value) {
  // Atomic tmp + rename: readers (and a killed process) only ever see the
  // previous complete file or the new complete file, never a torn one —
  // run reports double as machine-readable crash artifacts.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    if (!f) {
      CLO_LOG_ERROR << "cannot write " << tmp;
      return false;
    }
    f << value.dump(2) << "\n";
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      CLO_LOG_ERROR << "cannot write " << tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    CLO_LOG_ERROR << "cannot rename " << tmp << " to " << path;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

double HistogramSummary::percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  // The exact extremes anchor the ends; in between, interpolate within the
  // bucket containing the rank (the observed min doubles as the first
  // occupied bucket's lower edge, the observed max as the overflow
  // bucket's upper edge — Prometheus-style approximation).
  if (rank <= 0.0) return min;
  if (rank >= static_cast<double>(count)) return max;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (rank > static_cast<double>(cumulative)) continue;
    double lower = b == 0 ? min : bounds[b - 1];
    double upper = b < bounds.size() ? bounds[b] : max;
    // Tighten the interpolation edges with the observed extremes: the
    // FIRST occupied bucket's samples cannot sit below min even when that
    // bucket is not bucket 0 (every histogram whose samples share one
    // bucket hits this), and the LAST occupied bucket's cannot exceed max
    // even when it is not the overflow bucket. Without the clamps a
    // boundary-rank percentile could report values outside [min, max].
    if (before == 0.0) lower = std::max(lower, min);
    if (cumulative == count) upper = std::min(upper, max);
    if (upper < lower) upper = lower;
    const double frac = (rank - before) / static_cast<double>(buckets[b]);
    return std::min(std::max(lower + (upper - lower) * frac, min), max);
  }
  return max;
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::add_counter(const std::string& name, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters[name] += delta;
}

void Registry::set_gauge(const std::string& name, double value) {
  MetricsState& state = metrics_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.gauges[name] = value;
}

void Registry::define_histogram(const std::string& name,
                                std::vector<double> bounds) {
  MetricsState& state = metrics_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.bounds[name] =
      std::make_shared<const std::vector<double>>(std::move(bounds));
}

void Registry::observe(const std::string& name, double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) {
    HistogramCells cells;
    cells.bounds = bounds_for(name);
    cells.buckets.assign(cells.bounds->size() + 1, 0);
    it = shard.histograms.emplace(name, std::move(cells)).first;
  }
  HistogramCells& h = it->second;
  std::size_t b = 0;
  while (b < h.bounds->size() && value > (*h.bounds)[b]) ++b;
  ++h.buckets[b];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.sum += value;
  ++h.count;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  MetricsState& state = metrics_state();
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    shards = state.shards;
    snap.gauges = state.gauges;
  }
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, value] : shard->counters) {
      snap.counters[name] += value;
    }
    for (const auto& [name, cells] : shard->histograms) {
      if (cells.count == 0) continue;
      HistogramSummary& merged = snap.histograms[name];
      if (merged.bounds.empty()) {
        merged.bounds = *cells.bounds;
        merged.buckets.assign(merged.bounds.size() + 1, 0);
      }
      for (std::size_t b = 0; b < cells.buckets.size(); ++b) {
        merged.buckets[b] += cells.buckets[b];
      }
      merged.min = merged.count == 0 ? cells.min : std::min(merged.min, cells.min);
      merged.max = merged.count == 0 ? cells.max : std::max(merged.max, cells.max);
      merged.sum += cells.sum;
      merged.count += cells.count;
    }
  }
  return snap;
}

void Registry::reset() {
  MetricsState& state = metrics_state();
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    shards = state.shards;
    state.gauges.clear();
  }
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->counters.clear();
    shard->histograms.clear();
  }
}

Json MetricsSnapshot::to_json() const {
  Json root = Json::object();
  Json& counter_obj = root["counters"];
  counter_obj = Json::object();
  for (const auto& [name, value] : counters) counter_obj[name] = Json(value);
  Json& gauge_obj = root["gauges"];
  gauge_obj = Json::object();
  for (const auto& [name, value] : gauges) gauge_obj[name] = Json(value);
  Json& hist_obj = root["histograms"];
  hist_obj = Json::object();
  for (const auto& [name, h] : histograms) {
    Json entry = Json::object();
    entry["count"] = Json(h.count);
    entry["sum"] = Json(h.sum);
    entry["mean"] = Json(h.mean());
    entry["min"] = Json(h.min);
    entry["max"] = Json(h.max);
    entry["p50"] = Json(h.percentile(50));
    entry["p90"] = Json(h.percentile(90));
    entry["p99"] = Json(h.percentile(99));
    hist_obj[name] = std::move(entry);
  }
  return root;
}

std::string MetricsSnapshot::format_table() const {
  std::ostringstream os;
  os << "-- counters --\n";
  for (const auto& [name, value] : counters) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "-- gauges --\n";
  for (const auto& [name, value] : gauges) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "-- histograms (count mean p50 p90 p99 max) --\n";
  for (const auto& [name, h] : histograms) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %s: n=%llu mean=%.6g p50=%.6g p90=%.6g p99=%.6g "
                  "max=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.percentile(50), h.percentile(90),
                  h.percentile(99), h.max);
    os << line;
  }
  return os.str();
}

std::string prometheus_name(const std::string& name) {
  std::string out = "clo_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  const auto value_str = [](double v) {
    if (!std::isfinite(v)) return std::string(v > 0 ? "+Inf" : "-Inf");
    return format_double(v);
  };
  for (const auto& [name, value] : counters) {
    const std::string pn = prometheus_name(name) + "_total";
    out += "# TYPE " + pn + " counter\n";
    out += pn + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " gauge\n";
    out += pn + " " + value_str(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string pn = prometheus_name(name);
    out += "# TYPE " + pn + " summary\n";
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"0.5", 50.0},
          {"0.9", 90.0},
          {"0.99", 99.0}}) {
      out += pn + "{quantile=\"" + label + "\"} " +
             value_str(h.percentile(p)) + "\n";
    }
    out += pn + "_sum " + value_str(h.sum) + "\n";
    out += pn + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Progress gauges.
// ---------------------------------------------------------------------------

Progress::Progress(const char* phase, std::uint64_t total)
    : phase_(phase),
      total_(total),
      active_(enabled() && total > 0),
      start_(std::chrono::steady_clock::now()) {
  if (active_) {
    Registry::instance().set_gauge(std::string("progress.") + phase_ +
                                       ".total",
                                   static_cast<double>(total_));
    publish(0);
  }
}

void Progress::tick(std::uint64_t delta) {
  if (!active_) return;
  const std::uint64_t done =
      done_.fetch_add(delta, std::memory_order_relaxed) + delta;
  // Only publish when progress crosses the next 1/512 of the total (or
  // completes), so tight loops do not serialize on the registry mutex.
  const std::uint64_t bucket = done >= total_ ? 512 : done * 512 / total_;
  std::uint64_t prev = bucket_.load(std::memory_order_relaxed);
  if (bucket <= prev ||
      !bucket_.compare_exchange_strong(prev, bucket,
                                       std::memory_order_relaxed)) {
    return;
  }
  publish(done);
}

void Progress::publish(std::uint64_t done) {
  const double fraction =
      std::min(1.0, static_cast<double>(done) / static_cast<double>(total_));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const double eta =
      done == 0 ? 0.0
                : elapsed * static_cast<double>(total_ - std::min(done, total_)) /
                      static_cast<double>(done);
  auto& reg = Registry::instance();
  const std::string prefix = std::string("progress.") + phase_;
  reg.set_gauge(prefix + ".fraction", fraction);
  reg.set_gauge(prefix + ".eta_seconds", eta);
  reg.set_gauge(prefix + ".done", static_cast<double>(done));
}

// ---------------------------------------------------------------------------
// Span-derived self-profiler.
// ---------------------------------------------------------------------------

namespace {

struct ProfileAccumulator {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::vector<std::uint64_t> durations_ns;
};

/// Exact nearest-rank percentile over a sorted sample.
double exact_percentile(const std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = rank <= 1.0
                        ? 0
                        : static_cast<std::size_t>(std::ceil(rank)) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return static_cast<double>(sorted[idx]) * 1e-9;
}

}  // namespace

Profile build_profile() {
  TraceState& state = trace_state();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  std::map<std::string, ProfileAccumulator> paths;
  struct Frame {
    const char* label;
    std::uint64_t begin_ns;
    std::uint64_t child_ns = 0;
    std::string path;
  };
  for (const auto& buffer : buffers) {
    std::vector<TraceEvent> events;
    {
      std::lock_guard<std::mutex> lock(buffer->mu);
      events = buffer->events;
    }
    std::vector<Frame> stack;
    for (const auto& event : events) {
      if (event.phase == 'B') {
        Frame frame;
        frame.label = event.label;
        frame.begin_ns = event.ts_ns;
        frame.path = stack.empty()
                         ? std::string(event.label)
                         : stack.back().path + "/" + event.label;
        stack.push_back(std::move(frame));
        continue;
      }
      // ScopedSpan guarantees balanced pairs per thread, but tolerate
      // arbitrary streams: an end with no matching begin is dropped.
      if (stack.empty() || std::string_view(stack.back().label) !=
                               std::string_view(event.label)) {
        continue;
      }
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const std::uint64_t duration =
          event.ts_ns >= frame.begin_ns ? event.ts_ns - frame.begin_ns : 0;
      ProfileAccumulator& acc = paths[frame.path];
      ++acc.count;
      acc.total_ns += duration;
      acc.self_ns +=
          duration >= frame.child_ns ? duration - frame.child_ns : 0;
      acc.durations_ns.push_back(duration);
      if (!stack.empty()) stack.back().child_ns += duration;
    }
    // Open frames (still-running spans) are intentionally dropped.
  }
  Profile profile;
  profile.nodes.reserve(paths.size());
  for (auto& [path, acc] : paths) {
    std::sort(acc.durations_ns.begin(), acc.durations_ns.end());
    ProfileNode node;
    node.path = path;
    node.count = acc.count;
    node.total_s = static_cast<double>(acc.total_ns) * 1e-9;
    node.self_s = static_cast<double>(acc.self_ns) * 1e-9;
    node.p50_s = exact_percentile(acc.durations_ns, 50.0);
    node.p99_s = exact_percentile(acc.durations_ns, 99.0);
    profile.nodes.push_back(std::move(node));
  }
  return profile;
}

Json Profile::to_json() const {
  Json root = Json::object();
  root["schema"] = "clo.profile.v1";
  root["run"] = run_id();
  Json& node_arr = root["nodes"];
  node_arr = Json::array();
  for (const auto& node : nodes) {
    Json entry = Json::object();
    entry["path"] = node.path;
    entry["count"] = Json(node.count);
    entry["total_s"] = Json(node.total_s);
    entry["self_s"] = Json(node.self_s);
    entry["p50_s"] = Json(node.p50_s);
    entry["p99_s"] = Json(node.p99_s);
    node_arr.push_back(std::move(entry));
  }
  return root;
}

std::string Profile::format_table() const {
  std::vector<const ProfileNode*> by_total;
  by_total.reserve(nodes.size());
  for (const auto& node : nodes) by_total.push_back(&node);
  std::sort(by_total.begin(), by_total.end(),
            [](const ProfileNode* a, const ProfileNode* b) {
              if (a->total_s != b->total_s) return a->total_s > b->total_s;
              return a->path < b->path;
            });
  std::ostringstream os;
  os << "-- profile (total self count p50 p99) --\n";
  for (const ProfileNode* node : by_total) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "  %-40s total=%.6gs self=%.6gs n=%llu p50=%.6gs "
                  "p99=%.6gs\n",
                  node->path.c_str(), node->total_s, node->self_s,
                  static_cast<unsigned long long>(node->count), node->p50_s,
                  node->p99_s);
    os << line;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* label)
    : label_(label), active_(enabled()) {
  if (active_) record_event(label_, 'B');
}

ScopedSpan::~ScopedSpan() {
  if (active_) record_event(label_, 'E');
}

void write_trace(std::ostream& os) {
  Json root = Json::object();
  root["displayTimeUnit"] = "ms";
  Json& events = root["traceEvents"];
  events = Json::array();
  TraceState& state = trace_state();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const auto& event : buffer->events) {
      Json e = Json::object();
      e["name"] = event.label;
      e["cat"] = "clo";
      e["ph"] = std::string(1, event.phase);
      e["ts"] = Json(static_cast<double>(event.ts_ns) / 1000.0);
      e["pid"] = 1;
      e["tid"] = buffer->tid;
      events.push_back(std::move(e));
    }
  }
  os << root.dump(1) << "\n";
}

bool write_trace_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    CLO_LOG_ERROR << "cannot write " << path;
    return false;
  }
  write_trace(f);
  return static_cast<bool>(f);
}

void reset_trace() {
  TraceState& state = trace_state();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

std::size_t trace_event_count() {
  TraceState& state = trace_state();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  std::size_t n = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

}  // namespace clo::obs
