#pragma once
// Minimal localhost TCP helpers shared by the telemetry exporter's
// Prometheus listener and the `clo serve` daemon. Everything here encodes
// the socket discipline a long-running process needs on Linux:
//
//   * writes never raise SIGPIPE — send_all() passes MSG_NOSIGNAL on every
//     ::send, and ignore_sigpipe() additionally blanks the handler once per
//     process (belt and suspenders: a disconnecting peer must never be able
//     to kill the daemon);
//   * reads never block forever — wait_readable()/recv_line() poll with a
//     caller-chosen timeout, so a client that connects and sends nothing
//     ("silent client") gets closed instead of stalling a listener thread;
//   * listeners bind 127.0.0.1 only (the serving surface is deliberately
//     local; remote access goes through a reverse proxy or SSH tunnel).
//
// All functions return -1 / false on failure and never throw; callers that
// want diagnostics read errno immediately.

#include <cstddef>
#include <string>

namespace clo::util::net {

/// Ignore SIGPIPE for the whole process (idempotent, thread-safe). Called
/// by every daemon-ish entry point (exporter listener, serve::Server) so a
/// peer disconnecting mid-write surfaces as an EPIPE error return instead
/// of a fatal signal.
void ignore_sigpipe();

/// Create a TCP socket bound to 127.0.0.1:`port` (0 = ephemeral) and
/// listening with `backlog`. Returns the listen fd, or -1 on failure. When
/// `bound_port` is non-null it receives the actually bound port.
int listen_localhost(int port, int backlog, int* bound_port);

/// Connect to 127.0.0.1:`port`. `timeout_ms` bounds the connect itself
/// (non-blocking connect + poll for writability; <0 = block forever, the
/// pre-timeout behavior). Returns the fd (restored to blocking mode) or
/// -1. A SYN to a dropped port can otherwise hang for minutes.
int connect_localhost(int port, int timeout_ms = -1);

/// Poll `fd` for readability for up to `timeout_ms` (<0 = wait forever).
/// Returns true when readable (or the peer hung up — the next read
/// observes EOF), false on timeout or poll error.
bool wait_readable(int fd, int timeout_ms);

/// Poll `fd` for writability for up to `timeout_ms` (<0 = wait forever).
bool wait_writable(int fd, int timeout_ms);

/// Write all `len` bytes with MSG_NOSIGNAL, retrying short writes and
/// EINTR. Returns false when the peer is gone (EPIPE/ECONNRESET/...) —
/// never raises a signal. `timeout_ms` is an end-to-end budget for the
/// whole write (<0 = no bound): a peer that stops draining its receive
/// buffer makes us fail instead of blocking a worker thread forever.
bool send_all(int fd, const char* data, std::size_t len,
              int timeout_ms = -1);
inline bool send_all(int fd, const std::string& data, int timeout_ms = -1) {
  return send_all(fd, data.data(), data.size(), timeout_ms);
}

/// Read one '\n'-terminated line (the newline is consumed, not returned).
/// `timeout_ms` is an end-to-end wall-clock budget for the whole line
/// (<0 = wait forever): a peer dripping one byte per poll interval cannot
/// stretch the wait beyond the budget. `max_len` caps the line (oversize
/// input fails rather than buffering unboundedly). Returns false on
/// timeout, EOF before a newline, overflow, or a read error.
bool recv_line(int fd, std::string* line, int timeout_ms,
               std::size_t max_len = 1 << 20);

}  // namespace clo::util::net
