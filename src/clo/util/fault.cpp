#include "clo/util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string_view>

#include "clo/util/numeric.hpp"

namespace clo::util::fault {
namespace {

struct Spec {
  // Exactly one of the two trigger modes is active.
  std::uint64_t nth = 0;        ///< fire on this 1-based hit (0 = off)
  double probability = -1.0;    ///< fire per hit with this chance (<0 = off)
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct State {
  std::mutex mu;
  std::map<std::string, Spec> specs;
  std::uint64_t seed = 1;
};

std::atomic<bool> g_armed{false};

State& state() {
  static State s;
  return s;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

bool armed() { return g_armed.load(std::memory_order_relaxed); }

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "checkpoint.read",      "checkpoint.write",
      "diffusion.loss_nan",   "diffusion.train_step",
      "evaluator.synthesize", "optimizer.latent_nan",
      "optimizer.restart",    "serialize.read",
      "serialize.write",      "surrogate.loss_nan",
      "surrogate.train_step",
  };
  return sites;
}

void arm(const std::string& specs) {
  State& s = state();
  std::map<std::string, Spec> parsed;
  std::uint64_t seed = 1;
  std::size_t begin = 0;
  while (begin <= specs.size()) {
    std::size_t end = specs.find(',', begin);
    if (end == std::string::npos) end = specs.size();
    const std::string item = specs.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      throw std::invalid_argument("fault spec '" + item +
                                  "' is not site=trigger");
    }
    const std::string site = item.substr(0, eq);
    const std::string trigger = item.substr(eq + 1);
    if (site == "seed") {
      if (!util::parse_uint64(trigger, &seed)) {
        throw std::invalid_argument("fault seed '" + trigger +
                                    "' must be an unsigned integer");
      }
      continue;
    }
    const auto& known = known_sites();
    if (std::find(known.begin(), known.end(), site) == known.end()) {
      throw std::invalid_argument("unknown fault site '" + site +
                                  "' (see `clo --fault list`)");
    }
    Spec spec;
    if (trigger[0] == 'p') {
      // parse_double is locale-independent: "p0.5" means 0.5 even under a
      // comma-decimal global locale (strtod would stop at the '.').
      if (!util::parse_double(std::string_view(trigger).substr(1),
                              &spec.probability) ||
          spec.probability < 0.0 || spec.probability > 1.0) {
        throw std::invalid_argument("fault probability '" + trigger +
                                    "' must be p<0..1>");
      }
    } else {
      if (!util::parse_uint64(trigger, &spec.nth) || spec.nth == 0) {
        throw std::invalid_argument("fault trigger '" + trigger +
                                    "' must be a positive hit index or p<x>");
      }
    }
    parsed[site] = spec;
  }
  std::lock_guard<std::mutex> lock(s.mu);
  s.specs = std::move(parsed);
  s.seed = seed;
  g_armed.store(!s.specs.empty(), std::memory_order_relaxed);
}

void arm_from_env() {
  const char* env = std::getenv("CLO_FAULT");
  if (env != nullptr && env[0] != '\0') arm(env);
}

void disarm() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.specs.clear();
  g_armed.store(false, std::memory_order_relaxed);
}

bool triggered(const char* site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.specs.find(site);
  if (it == s.specs.end()) return false;
  Spec& spec = it->second;
  const std::uint64_t hit = ++spec.hits;
  bool fire = false;
  if (spec.nth != 0) {
    fire = hit == spec.nth;
  } else if (spec.probability >= 0.0) {
    // Hash (seed, site, hit index) so the firing pattern is a pure
    // function of the spec, not of scheduling or prior sites.
    const std::uint64_t h = splitmix64(s.seed ^ fnv1a(it->first) ^ hit);
    fire = static_cast<double>(h >> 11) * 0x1.0p-53 < spec.probability;
  }
  if (fire) ++spec.fired;
  return fire;
}

std::uint64_t hits(const std::string& site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.specs.find(site);
  return it == s.specs.end() ? 0 : it->second.hits;
}

std::string describe() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out;
  for (const auto& [site, spec] : s.specs) {
    out += site + '=';
    if (spec.nth != 0) {
      out += std::to_string(spec.nth);
    } else {
      out += 'p' + std::to_string(spec.probability);
    }
    out += " (hits=" + std::to_string(spec.hits) +
           ", fired=" + std::to_string(spec.fired) + ")\n";
  }
  return out;
}

}  // namespace clo::util::fault
