#pragma once
// Process resource sampling for the telemetry exporter: resident-set-size
// readings from /proc (with a getrusage fallback) and global heap
// allocation counters maintained by the operator new/delete replacements
// in proc.cpp. Everything here is read-only with respect to the
// computation — sampling never touches an Rng, a lock shared with the hot
// path, or any model state, so the determinism contract is unaffected.
//
// The allocation counters are two relaxed atomics bumped on every scalar /
// array operator new; under -DCLO_OBS=OFF the replacements are compiled
// out entirely and the accessors return 0.

#include <cstdint>

namespace clo::util::proc {

/// Peak resident set size in bytes (VmHWM from /proc/self/status, falling
/// back to getrusage's ru_maxrss). 0 when neither source is available.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (/proc/self/statm). 0 when
/// unavailable.
std::uint64_t current_rss_bytes();

/// Number of operator new / new[] calls since process start (0 when the
/// counting replacements are compiled out under CLO_OBS_DISABLE).
std::uint64_t alloc_count();

/// Total bytes requested from operator new / new[] since process start.
/// Requested, not resident: freed memory is never subtracted, making this
/// a monotonic churn counter (rate = allocation pressure).
std::uint64_t alloc_bytes();

/// Set the "proc.*" gauges (peak/current RSS, alloc count/bytes) on the
/// global metrics registry. Called by the exporter before each snapshot;
/// callable directly for one-shot reports.
void sample_into_registry();

}  // namespace clo::util::proc
