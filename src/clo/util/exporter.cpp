#include "clo/util/exporter.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "clo/util/log.hpp"
#include "clo/util/net.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/proc.hpp"

namespace clo::util {

namespace {

/// Build one clo.metrics.v1 record from a fresh registry snapshot.
obs::Json build_record(std::uint64_t seq, double t_ms) {
  proc::sample_into_registry();
  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  obs::Json record = obs::Json::object();
  record["schema"] = "clo.metrics.v1";
  record["run"] = run_id();
  record["seq"] = obs::Json(seq);
  record["t_ms"] = obs::Json(t_ms);
  record["phase"] = log_phase();
  obs::Json snap_json = snap.to_json();
  for (auto& [key, value] : snap_json.items()) {
    record[key] = value;
  }
  return record;
}

}  // namespace

bool Exporter::start() {
  if (running_) return true;
  const bool want_file = !options_.metrics_path.empty();
  const bool want_listener = options_.port >= 0;
  if (!want_file && !want_listener) return false;

  if (want_file) {
    out_.open(options_.metrics_path, std::ios::app);
    if (!out_) {
      CLO_LOG_ERROR << "exporter: cannot open " << options_.metrics_path;
      return false;
    }
  }

  if (want_listener) {
    // A scraper disconnecting mid-response must never kill the process: we
    // both write with MSG_NOSIGNAL (net::send_all) and blank the process
    // SIGPIPE handler once, here, where the long-running surface starts.
    net::ignore_sigpipe();
    listen_fd_ = net::listen_localhost(options_.port, 4, &bound_port_);
    if (listen_fd_ < 0) {
      CLO_LOG_ERROR << "exporter: cannot listen on port " << options_.port
                    << ": " << std::strerror(errno);
      if (out_.is_open()) out_.close();
      return false;
    }
    CLO_LOG_INFO << "exporter: serving Prometheus text on 127.0.0.1:"
                 << bound_port_;
  }

  obs::set_enabled(true);
  stop_requested_ = false;
  start_time_ = std::chrono::steady_clock::now();
  records_.store(0, std::memory_order_relaxed);
  running_ = true;
  if (want_file) {
    write_record_now();  // a record at t=0 so even instant runs export one
    export_thread_ = std::thread([this] { export_loop(); });
  }
  if (want_listener) {
    listener_thread_ = std::thread([this] { listener_loop(); });
  }
  return true;
}

void Exporter::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (export_thread_.joinable()) export_thread_.join();
  if (listener_thread_.joinable()) listener_thread_.join();
  if (out_.is_open()) {
    write_record_now();  // final state of every counter/gauge
    out_.close();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  bound_port_ = -1;
  running_ = false;
}

void Exporter::write_record_now() {
  std::lock_guard<std::mutex> lock(out_mu_);
  write_record_locked();
}

void Exporter::write_record_locked() {
  if (!out_.is_open()) return;
  const double t_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  const std::uint64_t seq = records_.fetch_add(1, std::memory_order_relaxed);
  out_ << build_record(seq, t_ms).dump(0) << "\n";
  out_.flush();
}

void Exporter::export_loop() {
  const auto interval =
      std::chrono::milliseconds(options_.interval_ms > 0 ? options_.interval_ms
                                                         : 1000);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
    lock.unlock();
    write_record_now();
    lock.lock();
  }
}

void Exporter::listener_loop() {
  while (true) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_requested_) return;
    }
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // A client that connects and never sends ("silent client") must not
    // stall the listener: wait for the request with a bounded poll and
    // close idle connections instead of blocking in recv forever.
    const int idle_ms =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : 5000;
    if (!net::wait_readable(client, idle_ms)) {
      CLO_LOG_DEBUG << "exporter: closing idle client (no request within "
                    << idle_ms << " ms)";
      ::close(client);
      continue;
    }
    // Drain whatever request line arrived (we serve one fixed document for
    // any request, GET / or otherwise), then respond and close.
    char buf[1024];
    (void)::recv(client, buf, sizeof buf, 0);
    proc::sample_into_registry();
    const std::string body =
        obs::Registry::instance().snapshot().to_prometheus();
    const std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    // send_all writes with MSG_NOSIGNAL: a scraper that disconnects
    // mid-response produces a false return here, not a fatal SIGPIPE.
    (void)net::send_all(client, response);
    ::close(client);
  }
}

}  // namespace clo::util
