#include "clo/util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "clo/util/log.hpp"

namespace clo {
namespace {

std::string escape_csv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row_values(const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(fmt_double(v, precision));
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape_csv(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape_csv(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    CLO_LOG_WARN << "CsvWriter: cannot open " << path;
    return false;
  }
  out << to_string();
  return static_cast<bool>(out);
}

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ConsoleTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void ConsoleTable::add_separator() { rows_.emplace_back(); }

std::string ConsoleTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto format_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string();
      const std::size_t pad =
          width[i] > cell.size() ? width[i] - cell.size() : 0;
      s += ' ';
      s.append(pad, ' ');
      s += cell;
      s += " |";
    }
    return s + "\n";
  };
  std::string out = hline() + format_row(header_) + hline();
  for (const auto& row : rows_) {
    out += row.empty() ? hline() : format_row(row);
  }
  out += hline();
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace clo
