#include "clo/util/rng.hpp"

#include <cmath>

namespace clo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t threshold = -n % n;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::next_int(int lo, int hi) {
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_gaussian = cached_gaussian_;
  st.has_cached_gaussian = has_cached_gaussian_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

}  // namespace clo
