#include "clo/util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace clo {
namespace {

std::mutex g_mutex;

/// Initial threshold: the CLO_LOG_LEVEL environment variable when set and
/// recognized (debug/info/warn/error, case-insensitive), else kInfo.
LogLevel level_from_env() {
  const char* env = std::getenv("CLO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  std::string name;
  for (const char* p = env; *p != '\0'; ++p) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// Small sequential id per logging thread (stable within a run, far more
/// readable than the platform thread id).
int thread_tag() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1);
  return id;
}

/// ISO-8601 UTC timestamp with millisecond resolution.
void format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char date[32];
  std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03dZ", date, millis);
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_ref().load())) return;
  char stamp[48];
  format_timestamp(stamp, sizeof stamp);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s [%-5s] [t%02d] %s\n", stamp, level_name(level),
               thread_tag(), msg.c_str());
}

}  // namespace clo
