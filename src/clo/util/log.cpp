#include "clo/util/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace clo {
namespace {

std::mutex g_mutex;

std::string lower(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  return out;
}

/// Initial threshold: the CLO_LOG_LEVEL environment variable when set and
/// recognized (debug/info/warn/error, case-insensitive), else kInfo.
LogLevel level_from_env() {
  const char* env = std::getenv("CLO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string name = lower(env);
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

/// Initial format: CLO_LOG_FORMAT=json switches to structured output.
LogFormat format_from_env() {
  const char* env = std::getenv("CLO_LOG_FORMAT");
  if (env != nullptr && lower(env) == "json") return LogFormat::kJson;
  return LogFormat::kText;
}

std::atomic<LogFormat>& format_ref() {
  static std::atomic<LogFormat> format{format_from_env()};
  return format;
}

std::atomic<const char*>& phase_ref() {
  static std::atomic<const char*> phase{""};
  return phase;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

/// Small sequential id per logging thread (stable within a run, far more
/// readable than the platform thread id).
int thread_tag() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1);
  return id;
}

/// ISO-8601 UTC timestamp with millisecond resolution and an explicit 'Z'
/// suffix — never local time, never ambiguous.
void format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char date[32];
  std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03dZ", date, millis);
}

/// Minimal JSON string escaping (log.cpp cannot use obs::Json — obs sits
/// above log in the dependency order).
void append_json_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string generate_run_id() {
  const char* env = std::getenv("CLO_RUN_ID");
  if (env != nullptr && *env != '\0') return env;
  // Wall clock (ns) mixed with the pid through splitmix64: unique enough
  // across concurrent processes, and telemetry ids carry no determinism
  // contract (results never read them).
  std::uint64_t x = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  x ^= static_cast<std::uint64_t>(::getpid()) << 32;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

std::string& run_id_ref() {
  static std::string* id = new std::string(generate_run_id());
  return *id;
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

void set_log_format(LogFormat format) { format_ref().store(format); }
LogFormat log_format() { return format_ref().load(); }

const std::string& run_id() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return run_id_ref();
}

void set_run_id(std::string id) {
  std::lock_guard<std::mutex> lock(g_mutex);
  run_id_ref() = std::move(id);
}

void set_log_phase(const char* phase) {
  phase_ref().store(phase != nullptr ? phase : "",
                    std::memory_order_relaxed);
}

const char* log_phase() {
  return phase_ref().load(std::memory_order_relaxed);
}

std::string format_log_line(LogLevel level, const std::string& msg) {
  char stamp[48];
  format_timestamp(stamp, sizeof stamp);
  if (log_format() == LogFormat::kText) {
    char prefix[80];
    std::snprintf(prefix, sizeof prefix, "%s [%-5s] [t%02d] ", stamp,
                  level_name(level), thread_tag());
    return std::string(prefix) + msg;
  }
  std::string out = "{\"ts\":\"";
  out += stamp;
  out += "\",\"level\":\"";
  out += level_name_lower(level);
  out += "\",\"tid\":";
  out += std::to_string(thread_tag());
  out += ",\"run\":";
  append_json_escaped(out, run_id());
  const char* phase = log_phase();
  if (phase[0] != '\0') {
    out += ",\"phase\":";
    append_json_escaped(out, phase);
  }
  out += ",\"msg\":";
  append_json_escaped(out, msg);
  out += '}';
  return out;
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(level_ref().load())) return;
  // Format outside the lock, then one write + flush under it: concurrent
  // writers can neither interleave fragments nor reorder a line across a
  // crash boundary (stderr is unbuffered by default, but a redirected
  // stderr is not — the explicit flush keeps tail -f and crash logs live).
  std::string line = format_log_line(level, msg);
  line += '\n';
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace clo
