#include "clo/util/proc.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "clo/util/obs.hpp"

namespace clo::util::proc {

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

/// Parse "VmHWM:   12345 kB" style lines from /proc/self/status.
std::uint64_t status_field_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    unsigned long long value = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) kb = value;
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t kb = status_field_kb("VmHWM")) return kb * 1024;
  // Fallback (containers without /proc): ru_maxrss is in kilobytes on
  // Linux.
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  }
  return 0;
}

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0, resident_pages = 0;
  const int n = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

std::uint64_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t alloc_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}

void sample_into_registry() {
  auto& reg = obs::Registry::instance();
  reg.set_gauge("proc.peak_rss_bytes",
                static_cast<double>(peak_rss_bytes()));
  reg.set_gauge("proc.current_rss_bytes",
                static_cast<double>(current_rss_bytes()));
  reg.set_gauge("proc.alloc_count", static_cast<double>(alloc_count()));
  reg.set_gauge("proc.alloc_bytes", static_cast<double>(alloc_bytes()));
}

}  // namespace clo::util::proc

#if !defined(CLO_OBS_DISABLE)

// ---------------------------------------------------------------------------
// Global allocation counting. Replacing the four basic forms is enough —
// the aligned and placement forms keep their default behavior (and simply
// go uncounted). The counters are relaxed atomics: two uncontended
// fetch_adds per allocation, invisible next to the allocation itself.
// ASan/LSan still interpose malloc below us, so sanitized builds keep
// their full checking.
// ---------------------------------------------------------------------------

namespace {

void* counted_alloc(std::size_t size) {
  clo::util::proc::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  clo::util::proc::g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc();
    }
  }
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !CLO_OBS_DISABLE
