#pragma once
// CSV and fixed-width console table writers used by every bench binary so
// the reproduced tables/figures can be re-plotted from machine-readable
// output as well as read directly from stdout.

#include <string>
#include <vector>

namespace clo {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// separators/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal digits.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  /// Write to file; returns false (and logs) on I/O failure.
  bool write(const std::string& path) const;

  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-width, right-aligned console table (like the paper's Table II).
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Insert a horizontal separator row before the next added row.
  void add_separator();

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Format a double with fixed `precision` decimals.
std::string fmt_double(double v, int precision = 2);

}  // namespace clo
