#pragma once
// Locale-independent number parsing and formatting.
//
// std::atof / std::strtod / std::stod / printf("%g") all honor the global C
// locale: under a comma-decimal locale (de_DE, fr_FR, ...) "4.5" parses as
// 4 and 4.5 prints as "4,5", which silently corrupts CLI flags, fault
// specs, and JSON. These helpers go through std::from_chars/std::to_chars,
// which are defined to use the C locale's "classic" number format
// regardless of any setlocale() call.

#include <cstdint>
#include <string>
#include <string_view>

namespace clo::util {

/// Parse the ENTIRE string as a decimal floating-point number (optional
/// sign, fraction, exponent — the strtod subset minus locale, hex, inf and
/// nan). Returns false (and leaves *out untouched) on empty input,
/// trailing garbage, or overflow.
bool parse_double(std::string_view text, double* out);

/// Parse the entire string as a base-10 signed int. No whitespace, no
/// trailing garbage, no overflow.
bool parse_int(std::string_view text, int* out);

/// Parse the entire string as a base-10 unsigned 64-bit int.
bool parse_uint64(std::string_view text, std::uint64_t* out);

/// Shortest decimal form that round-trips exactly: for every finite v,
/// parse_double(format_double(v)) reproduces v bit for bit. Always uses
/// '.' as the decimal separator. Non-finite values format as "0" (JSON has
/// no inf/nan literals and callers sanitize upstream).
std::string format_double(double v);

}  // namespace clo::util
