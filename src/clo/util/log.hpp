#pragma once
// Minimal leveled logging to stderr with a global threshold. Each line is
// prefixed with an ISO-8601 UTC timestamp, the level tag, and a small
// per-thread id, e.g.:
//
//   2026-08-05T12:34:56.789Z [INFO ] [t00] c432: surrogate ...
//
// The initial threshold honors the CLO_LOG_LEVEL environment variable
// (debug/info/warn/error, case-insensitive); set_log_level overrides it.

#include <sstream>
#include <string>

namespace clo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the minimum level that is emitted (default kInfo, or CLO_LOG_LEVEL).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single log line at `level`.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace clo

#define CLO_LOG_DEBUG ::clo::detail::LogMessage(::clo::LogLevel::kDebug)
#define CLO_LOG_INFO ::clo::detail::LogMessage(::clo::LogLevel::kInfo)
#define CLO_LOG_WARN ::clo::detail::LogMessage(::clo::LogLevel::kWarn)
#define CLO_LOG_ERROR ::clo::detail::LogMessage(::clo::LogLevel::kError)
