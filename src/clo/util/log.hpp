#pragma once
// Minimal leveled logging to stderr with a global threshold and two wire
// formats:
//
//   text (default)
//     2026-08-05T12:34:56.789Z [INFO ] [t00] c432: surrogate ...
//
//   json (CLO_LOG_FORMAT=json or set_log_format) — one JSON object per
//   line carrying the same timestamp plus the run id, current pipeline
//   phase, and thread id, so log lines correlate with spans, metrics
//   records, and the run report:
//     {"ts":"2026-08-05T12:34:56.789Z","level":"info","tid":0,
//      "run":"8f2e...","phase":"optimize","msg":"c432: surrogate ..."}
//
// Timestamps are unambiguous UTC (ISO-8601 with a trailing 'Z',
// millisecond resolution). Each line is formatted completely before a
// single locked write + flush, so concurrent writers can never interleave
// or lose a tail on crash.
//
// The initial threshold honors the CLO_LOG_LEVEL environment variable
// (debug/info/warn/error, case-insensitive); set_log_level overrides it.

#include <sstream>
#include <string>

namespace clo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

enum class LogFormat { kText = 0, kJson = 1 };

/// Set the minimum level that is emitted (default kInfo, or CLO_LOG_LEVEL).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Set the wire format (default kText, or CLO_LOG_FORMAT=json|text).
void set_log_format(LogFormat format);
LogFormat log_format();

/// The process run id: 16 lowercase hex chars, generated once per process
/// from the wall clock and pid (or taken verbatim from CLO_RUN_ID). Shared
/// by structured log lines, clo.metrics.v1 records, clo.profile.v1, and
/// the clo.report.v1 run report so all four artifacts correlate.
const std::string& run_id();
/// Override the run id (tests; accepting a coordinator-assigned id).
void set_run_id(std::string id);

/// The current pipeline phase tag carried by json log lines and metrics
/// records ("" = none). Must be a string literal or otherwise immortal.
void set_log_phase(const char* phase);
const char* log_phase();

/// Render one log line exactly as log_line would write it (without the
/// trailing newline) in the current format — exposed so tests can pin the
/// format without capturing stderr.
std::string format_log_line(LogLevel level, const std::string& msg);

/// Emit a single log line at `level`.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace clo

#define CLO_LOG_DEBUG ::clo::detail::LogMessage(::clo::LogLevel::kDebug)
#define CLO_LOG_INFO ::clo::detail::LogMessage(::clo::LogLevel::kInfo)
#define CLO_LOG_WARN ::clo::detail::LogMessage(::clo::LogLevel::kWarn)
#define CLO_LOG_ERROR ::clo::detail::LogMessage(::clo::LogLevel::kError)
