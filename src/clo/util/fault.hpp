#pragma once
// clo::util::fault — deterministic fault injection for hardening tests and
// chaos-style CI. Code declares named sites with CLO_FAULT_POINT("name");
// nothing happens unless a spec is armed (one relaxed atomic check per
// site, the same cost model as CLO_OBS_*). Armed from the CLI/env with
// specs like
//
//   evaluator.synthesize=3        throw on the 3rd hit of the site
//   diffusion.train_step=p0.25    throw on each hit with probability 0.25
//   seed=42                       seed for the probability mode
//
// joined with ','. Every spec is reproducible: each site keeps its own hit
// counter and the probability mode hashes (seed, site, hit index), so the
// same spec fires at the same hits on every run. Defining
// CLO_FAULT_DISABLE (the CLO_FAULTS=OFF CMake option, mirroring CLO_OBS)
// compiles the sites out entirely; the library functions stay available so
// callers always link.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace clo::util::fault {

/// What an armed CLO_FAULT_POINT throws. Catchable as std::runtime_error,
/// distinguishable from real failures by type.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Whether any spec is armed (one relaxed atomic; the per-site gate).
bool armed();

/// Parse and install comma-separated fault specs (see header comment).
/// Site names must come from known_sites(); throws std::invalid_argument
/// on unknown sites or malformed triggers. Replaces any previous arming
/// and zeroes all hit counters.
void arm(const std::string& specs);

/// arm() from the CLO_FAULT environment variable when it is set and
/// non-empty; no-op otherwise.
void arm_from_env();

/// Clear all specs and hit counters.
void disarm();

/// Count a hit of `site` and report whether the armed spec fires on it.
/// Thread-safe. Call through the macros below, not directly.
bool triggered(const char* site);

/// Hits recorded for `site` since the last arm()/disarm().
std::uint64_t hits(const std::string& site);

/// Every site name declared anywhere in the codebase. The single source
/// of truth for `clo --fault list` and the CI fault matrix; a test pins
/// that arming each entry is accepted.
const std::vector<std::string>& known_sites();

/// Human-readable "site=trigger (hits=N, fired=M)" summary of the current
/// arming, one spec per line; empty string when disarmed. Surfaced in run
/// reports so a failed chaos run documents what was injected.
std::string describe();

}  // namespace clo::util::fault

#if !defined(CLO_FAULT_DISABLE)

/// Declare a named fault site that throws InjectedFault when armed to
/// fire here. `site` must be a string literal listed in known_sites().
#define CLO_FAULT_POINT(site)                          \
  do {                                                 \
    if (::clo::util::fault::armed() &&                 \
        ::clo::util::fault::triggered(site))           \
      throw ::clo::util::fault::InjectedFault(site);   \
  } while (0)

/// Non-throwing variant for sites that corrupt a value instead (e.g.
/// poisoning a latent with NaN): true when the armed spec fires.
#define CLO_FAULT_FIRED(site) \
  (::clo::util::fault::armed() && ::clo::util::fault::triggered(site))

#else  // CLO_FAULT_DISABLE

#define CLO_FAULT_POINT(site) \
  do {                        \
  } while (0)
#define CLO_FAULT_FIRED(site) (false)

#endif  // CLO_FAULT_DISABLE
