#pragma once
// The paper's contribution (Algorithm 2): continuous logic optimization in
// the embedding latent space. Starting from x_T ~ N(0, I), each step
// subtracts the diffusion model's predicted noise (pulling the latent onto
// the feasible-embedding manifold, minimizing H(x)) and the surrogate's
// QoR gradient evaluated at the noise-free reparameterization x̂_t
// (Eq. 12/13). On t = 0 the sequence is retrieved instantly by nearest-
// embedding decode. The ablation mode (Eq. 14) drops the diffusion term.

#include <memory>
#include <string>
#include <vector>

#include "clo/models/diffusion.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/opt/transform.hpp"
#include "clo/util/cancel.hpp"
#include "clo/util/rng.hpp"

namespace clo::util {
class ThreadPool;
}

namespace clo::obs {
class Progress;
}

namespace clo::core {

struct OptimizeParams {
  /// Objective weights over normalized QoR: F̂ = wa*area + wd*delay.
  double weight_area = 0.5;
  double weight_delay = 0.5;
  /// Guidance strength ω (Eq. 13).
  double omega = 2.0;
  /// Ramp the guidance in over the schedule (ω_t = ω (1 - t/T)): early
  /// steps denoise freely (x̂_t is unreliable there), late steps follow the
  /// surrogate hard. Disable to apply constant ω at every step.
  bool guidance_ramp = true;
  /// Clip the per-step QoR gradient to this L2 norm (stability).
  double grad_clip = 1.0;
  /// Eq. 14 ablation: optimize with the surrogate gradient only.
  bool use_diffusion = true;
  /// Step size for the no-diffusion ablation (Eq. 14).
  double ablation_step = 0.05;
};

struct OptimizeTracePoint {
  int t = 0;
  double discrepancy = 0.0;       ///< mean distance to nearest embedding
  double predicted_objective = 0.0;
};

struct OptimizeResult {
  opt::Sequence sequence;
  std::vector<float> latent;        ///< final x_0, flattened [L*d]
  double discrepancy = 0.0;
  double predicted_objective = 0.0; ///< F̂ at the final latent
  std::vector<OptimizeTracePoint> trace;
  double seconds = 0.0;             ///< pure optimization time (no synthesis)
};

class ContinuousOptimizer {
 public:
  ContinuousOptimizer(models::SurrogateModel& surrogate,
                      models::DiffusionModel& diffusion,
                      const models::TransformEmbedding& embedding,
                      OptimizeParams params = {});

  /// One full run of Algorithm 2 from a fresh Gaussian latent.
  OptimizeResult run(clo::Rng& rng);

  /// `count` independent runs (the paper samples several latents and keeps
  /// the best after validation). All Gaussian draws are pre-sampled from
  /// `rng` serially, in the exact order a sequential `run(rng)` loop would
  /// consume them, before the compute fans out — so results are
  /// bit-identical to the historical sequential loop AND for any `pool`
  /// worker count, including the serial `pool == nullptr` path. Model
  /// weights are grad-frozen for the duration (restarts only read them),
  /// which makes the concurrent backward passes through the shared
  /// surrogate race-free.
  ///
  /// With `batched` (the default), restarts advance in lockstep through the
  /// schedule: one [chunk, d, L] U-Net forward and one [chunk, L*d]
  /// surrogate forward+backward per denoising step, one contiguous chunk
  /// per pool worker. No nn op mixes batch rows, so every restart's
  /// trajectory stays the same pure function of its pre-sampled noise as
  /// in the `batched == false` per-restart fan-out — both modes retrieve
  /// identical sequences. `batched == false` keeps the historical
  /// one-thread-per-restart path (the `--no-batch` fallback).
  /// `cancel` (both overloads' trailing parameter) is polled once per
  /// denoising timestep; a fired token aborts every in-flight restart with
  /// util::CancelledError. Cancellation deliberately bypasses the tolerant
  /// driver's retry/quarantine machinery — a cancelled run must surface as
  /// an error, never as a quarantined-but-cacheable result.
  std::vector<OptimizeResult> run_restarts(
      clo::Rng& rng, int count, util::ThreadPool* pool = nullptr,
      bool batched = true, const util::CancelToken* cancel = nullptr);

  /// A restart that failed both its normal run and its fresh-noise retry,
  /// and was therefore quarantined (its result slot left default).
  struct RestartFailure {
    std::size_t index = 0;
    std::string message;
  };

  /// Fault-tolerant run_restarts: identical pre-sampling, so when nothing
  /// fails the results are bit-identical to run_restarts for the same rng
  /// state. A restart that throws (injected fault, synthesis error, or the
  /// non-finite-latent guard) is re-run serially on its original noise —
  /// which also recovers the innocent neighbors of a failed lockstep chunk
  /// without changing their trajectories — and, if it fails again, retried
  /// once on fresh noise drawn from an Rng pre-forked for that restart
  /// (forked after the primary draws, so fault-free trajectories are
  /// unaffected). Restarts that still fail are quarantined: their slot in
  /// the returned vector stays default-constructed (empty sequence) and an
  /// entry is appended to `failures`. Survivors keep the exact sequences
  /// they would have produced with no failures present.
  std::vector<OptimizeResult> run_restarts_tolerant(
      clo::Rng& rng, int count, util::ThreadPool* pool = nullptr,
      bool batched = true, std::vector<RestartFailure>* failures = nullptr,
      const util::CancelToken* cancel = nullptr);

  /// Surrogate objective and its gradient at a flattened latent. With
  /// `grad == nullptr` this is a pure inference query: no autograd graph
  /// is recorded at all.
  double objective_and_grad(const std::vector<float>& x,
                            std::vector<float>* grad);

  /// Batched objective over R stacked latents: one [R, L*d] surrogate
  /// forward (+ one backward when `grads` is non-null) instead of R.
  /// Element r equals objective_and_grad(xs[r], ...) — rows never mix, the
  /// summed backward seeds every row with the same weights, and the L2
  /// clip is applied per row.
  std::vector<double> objective_and_grad_batch(
      const std::vector<std::vector<float>>& xs,
      std::vector<std::vector<float>>* grads);

 private:
  /// Gaussians one run consumes: L*d for the initial latent plus, in
  /// diffusion mode, L*d posterior-noise draws per step with t > 0.
  std::size_t noise_count() const;
  /// Algorithm 2 with every random draw supplied up front.
  OptimizeResult run_impl(const std::vector<float>& noise);
  /// Algorithm 2 over restarts [begin, end) in lockstep, reading row r's
  /// draws from noise[begin + r] and writing results[begin + r].
  void run_impl_batch(const std::vector<std::vector<float>>& noise,
                      std::size_t begin, std::size_t end,
                      std::vector<OptimizeResult>* results);

  models::SurrogateModel& surrogate_;
  models::DiffusionModel& diffusion_;
  const models::TransformEmbedding& embedding_;
  OptimizeParams params_;
  /// Restart-loop progress ("progress.optimize" gauges). Installed by
  /// run_restarts / run_restarts_tolerant for their duration and ticked
  /// once per denoising step by run_impl / run_impl_batch; tick() is
  /// thread-safe, so the concurrent restarts share one reporter. Never
  /// read by the math — purely observational.
  obs::Progress* progress_ = nullptr;
  /// Cancellation token borrowed for the duration of run_restarts /
  /// run_restarts_tolerant (same install/clear discipline as progress_)
  /// and polled per denoising timestep by run_impl / run_impl_batch.
  /// Checks are pure reads: an unfired token cannot perturb results.
  const util::CancelToken* cancel_ = nullptr;
};

}  // namespace clo::core
