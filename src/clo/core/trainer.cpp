#include "clo/core/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "clo/nn/optim.hpp"
#include "clo/util/stats.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

using nn::Tensor;

TrainReport train_surrogate(models::SurrogateModel& model,
                            const models::TransformEmbedding& embedding,
                            const Dataset& dataset, const TrainConfig& config,
                            clo::Rng& rng) {
  Stopwatch watch;
  watch.start();
  const int n = static_cast<int>(dataset.size());
  const int L = model.config().seq_len;
  const int d = model.config().embed_dim;
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  const int holdout = std::min(
      n / 2, static_cast<int>(n * config.holdout_fraction));
  std::vector<int> test(indices.begin(), indices.begin() + holdout);
  std::vector<int> train(indices.begin() + holdout, indices.end());

  auto make_batch = [&](const std::vector<int>& ids, std::size_t begin,
                        std::size_t count, Tensor& x, Tensor& ya, Tensor& yd) {
    const int B = static_cast<int>(count);
    x = Tensor::zeros({B, L * d});
    ya = Tensor::zeros({B, 1});
    yd = Tensor::zeros({B, 1});
    for (int b = 0; b < B; ++b) {
      const int i = ids[begin + b];
      const auto emb = embedding.embed(dataset.sequences[i]);
      std::copy(emb.begin(), emb.end(), x.data().begin() + b * L * d);
      ya.data()[b] = dataset.norm_area(i);
      yd.data()[b] = dataset.norm_delay(i);
    }
  };

  nn::Adam opt(model.parameters(), config.lr);
  TrainReport report;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(train);
    double epoch_loss = 0.0;
    int batches = 0;
    for (std::size_t begin = 0; begin < train.size();
         begin += config.batch_size) {
      const std::size_t count =
          std::min<std::size_t>(config.batch_size, train.size() - begin);
      Tensor x, ya, yd;
      make_batch(train, begin, count, x, ya, yd);
      auto out = model.forward(x);
      Tensor loss =
          nn::add(nn::mse_loss(out.area, ya), nn::mse_loss(out.delay, yd));
      nn::backward(loss);
      opt.step();
      epoch_loss += loss.item();
      ++batches;
    }
    report.train_mse = epoch_loss / std::max(1, batches) / 2.0;
  }

  // Holdout fidelity.
  if (!test.empty()) {
    Tensor x, ya, yd;
    make_batch(test, 0, test.size(), x, ya, yd);
    auto out = model.forward(x);
    std::vector<double> pa, pd, ta, td;
    for (std::size_t i = 0; i < test.size(); ++i) {
      pa.push_back(out.area.data()[i]);
      pd.push_back(out.delay.data()[i]);
      ta.push_back(ya.data()[i]);
      td.push_back(yd.data()[i]);
    }
    double mse = 0.0;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      mse += (pa[i] - ta[i]) * (pa[i] - ta[i]) +
             (pd[i] - td[i]) * (pd[i] - td[i]);
    }
    report.holdout_mse = mse / (2.0 * pa.size());
    report.spearman_area = clo::spearman(pa, ta);
    report.spearman_delay = clo::spearman(pd, td);
  }
  watch.stop();
  report.seconds = watch.seconds();
  return report;
}

}  // namespace clo::core
