#include "clo/core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "clo/nn/kernel.hpp"
#include "clo/nn/optim.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/stats.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

using nn::Tensor;

namespace {

/// Copy master parameter values into a structurally identical replica.
void sync_replica(const std::vector<Tensor>& master,
                  const std::vector<Tensor>& replica) {
  for (std::size_t p = 0; p < master.size(); ++p) {
    replica[p].impl()->data = master[p].impl()->data;
  }
}

}  // namespace

TrainReport train_surrogate(models::SurrogateModel& model,
                            const models::TransformEmbedding& embedding,
                            const Dataset& dataset, const TrainConfig& config,
                            clo::Rng& rng, util::ThreadPool* pool,
                            const SurrogateFactory& replica_factory,
                            const util::CancelToken* cancel) {
  Stopwatch watch;
  watch.start();
  const int n = static_cast<int>(dataset.size());
  const int L = model.config().seq_len;
  const int d = model.config().embed_dim;
  std::vector<int> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  rng.shuffle(indices);
  const int holdout = std::min(
      n / 2, static_cast<int>(n * config.holdout_fraction));
  std::vector<int> test(indices.begin(), indices.begin() + holdout);
  std::vector<int> train(indices.begin() + holdout, indices.end());

  auto make_batch = [&](const std::vector<int>& ids, std::size_t begin,
                        std::size_t count, Tensor& x, Tensor& ya, Tensor& yd) {
    const int B = static_cast<int>(count);
    x = Tensor::zeros({B, L * d});
    ya = Tensor::zeros({B, 1});
    yd = Tensor::zeros({B, 1});
    for (int b = 0; b < B; ++b) {
      const int i = ids[begin + b];
      const auto emb = embedding.embed(dataset.sequences[i]);
      std::copy(emb.begin(), emb.end(), x.data().begin() + b * L * d);
      ya.data()[b] = dataset.norm_area(i);
      yd.data()[b] = dataset.norm_delay(i);
    }
  };

  // Data-parallel setup: one replica per worker so every concurrent
  // per-sample forward/backward owns its whole compute graph.
  const bool data_parallel =
      pool != nullptr && pool->size() >= 2 && replica_factory != nullptr;
  std::vector<std::unique_ptr<models::SurrogateModel>> replicas;
  std::vector<std::vector<Tensor>> replica_params;
  std::vector<Tensor> master_params = model.parameters();
  if (data_parallel) {
    for (std::size_t w = 0; w < pool->size(); ++w) {
      replicas.push_back(replica_factory());
      replica_params.push_back(replicas.back()->parameters());
      if (replica_params.back().size() != master_params.size()) {
        throw std::logic_error(
            "train_surrogate: replica factory produced a different model");
      }
    }
  }

  // One minibatch on the replicas: per-sample losses/grads computed in
  // parallel, snapshots keyed by sample index, reduced in index order onto
  // the master grads. The reduction order (and hence the result) does not
  // depend on which replica handled which sample.
  auto run_batch_parallel = [&](const Tensor& x, const Tensor& ya,
                                const Tensor& yd) -> double {
    const int B = x.dim(0);
    std::vector<double> sample_loss(B, 0.0);
    std::vector<std::vector<nn::FloatBuf>> sample_grads(
        B, std::vector<nn::FloatBuf>(master_params.size()));
    const std::size_t R = replicas.size();
    for (std::size_t r = 0; r < R; ++r) {
      sync_replica(master_params, replica_params[r]);
    }
    std::vector<std::future<void>> futs;
    futs.reserve(R);
    for (std::size_t r = 0; r < R; ++r) {
      futs.push_back(pool->submit([&, r] {
        for (int b = static_cast<int>(r); b < B; b += static_cast<int>(R)) {
          Tensor xb = Tensor::from_data(
              {1, L * d},
              std::vector<float>(x.data().begin() + b * L * d,
                                 x.data().begin() + (b + 1) * L * d));
          Tensor yab = Tensor::from_data({1, 1}, {ya.data()[b]});
          Tensor ydb = Tensor::from_data({1, 1}, {yd.data()[b]});
          auto out = replicas[r]->forward(xb);
          Tensor loss = nn::add(nn::mse_loss(out.area, yab),
                                nn::mse_loss(out.delay, ydb));
          nn::backward(loss);
          sample_loss[b] = loss.item();
          for (std::size_t p = 0; p < master_params.size(); ++p) {
            auto& g = replica_params[r][p].impl()->grad;
            sample_grads[b][p] = g;
            std::fill(g.begin(), g.end(), 0.0f);
          }
        }
      }));
    }
    for (auto& f : futs) f.get();
    // Batched MSE is the mean over samples, so the batch gradient is the
    // per-sample sum scaled by 1/B; summing in sample order keeps the
    // floats independent of worker count.
    const float inv_b = 1.0f / static_cast<float>(B);
    double batch_loss = 0.0;
    for (int b = 0; b < B; ++b) {
      batch_loss += sample_loss[b];
      for (std::size_t p = 0; p < master_params.size(); ++p) {
        if (sample_grads[b][p].empty()) continue;
        auto& g = master_params[p].grad();
        nn::kernel::axpy(g.data(), inv_b, sample_grads[b][p].data(), g.size());
      }
    }
    return batch_loss / B;
  };

  // Divergence guard: keep a copy of the last weights known to produce a
  // finite loss. A NaN/Inf batch rolls back to it, halves the LR (fresh
  // optimizer moments), and training continues — so one poisoned batch or
  // an LR overshoot cannot waste the whole one-time pretraining run.
  std::vector<Tensor> live_params = model.parameters();
  std::vector<nn::FloatBuf> last_good;
  last_good.reserve(live_params.size());
  for (const auto& p : live_params) last_good.push_back(p.impl()->data);
  float lr = config.lr;
  auto opt = std::make_unique<nn::Adam>(model.parameters(), lr);
  TrainReport report;
  report.epoch_loss.reserve(config.epochs);
  obs::Progress progress("surrogate_train",
                         static_cast<std::uint64_t>(
                             config.epochs > 0 ? config.epochs : 0));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    CLO_TRACE_SPAN("trainer.epoch");
    rng.shuffle(train);
    double epoch_loss = 0.0;
    int batches = 0;
    for (std::size_t begin = 0; begin < train.size();
         begin += config.batch_size) {
      if (cancel != nullptr) cancel->check();
      CLO_FAULT_POINT("surrogate.train_step");
      const std::size_t count =
          std::min<std::size_t>(config.batch_size, train.size() - begin);
      Tensor x, ya, yd;
      make_batch(train, begin, count, x, ya, yd);
      double batch_loss;
      if (data_parallel) {
        batch_loss = run_batch_parallel(x, ya, yd);
      } else {
        auto out = model.forward(x);
        Tensor loss =
            nn::add(nn::mse_loss(out.area, ya), nn::mse_loss(out.delay, yd));
        nn::backward(loss);
        batch_loss = loss.item();
      }
      if (CLO_FAULT_FIRED("surrogate.loss_nan")) {
        batch_loss = std::numeric_limits<double>::quiet_NaN();
      }
      if (!std::isfinite(batch_loss)) {
        if (++report.lr_backoffs > kMaxLrBackoffs) {
          throw std::runtime_error(
              "train_surrogate: diverged (non-finite loss after " +
              std::to_string(kMaxLrBackoffs) + " LR backoffs)");
        }
        for (std::size_t p = 0; p < live_params.size(); ++p) {
          live_params[p].impl()->data = last_good[p];
        }
        lr *= 0.5f;
        opt = std::make_unique<nn::Adam>(model.parameters(), lr);
        opt->zero_grad();  // drop the non-finite gradients just accumulated
        CLO_OBS_COUNT("trainer.lr_backoffs", 1);
        continue;
      }
      opt->step();
      epoch_loss += batch_loss;
      ++batches;
    }
    for (std::size_t p = 0; p < live_params.size(); ++p) {
      last_good[p] = live_params[p].impl()->data;
    }
    report.train_mse = epoch_loss / std::max(1, batches) / 2.0;
    report.epoch_loss.push_back(report.train_mse);
    progress.tick();
    CLO_OBS_COUNT("trainer.epochs", 1);
    CLO_OBS_OBSERVE("trainer.epoch_loss", report.train_mse);
  }

  // Holdout fidelity.
  if (!test.empty()) {
    Tensor x, ya, yd;
    make_batch(test, 0, test.size(), x, ya, yd);
    auto out = model.forward(x);
    std::vector<double> pa, pd, ta, td;
    for (std::size_t i = 0; i < test.size(); ++i) {
      pa.push_back(out.area.data()[i]);
      pd.push_back(out.delay.data()[i]);
      ta.push_back(ya.data()[i]);
      td.push_back(yd.data()[i]);
    }
    double mse = 0.0;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      mse += (pa[i] - ta[i]) * (pa[i] - ta[i]) +
             (pd[i] - td[i]) * (pd[i] - td[i]);
    }
    report.holdout_mse = mse / (2.0 * pa.size());
    report.spearman_area = clo::spearman(pa, ta);
    report.spearman_delay = clo::spearman(pd, td);
    CLO_OBS_GAUGE("trainer.holdout_mse", report.holdout_mse);
    CLO_OBS_GAUGE("trainer.spearman_area", report.spearman_area);
    CLO_OBS_GAUGE("trainer.spearman_delay", report.spearman_delay);
  }
  watch.stop();
  report.seconds = watch.seconds();
  return report;
}

}  // namespace clo::core
