#pragma once
// End-to-end CLO pipeline (Fig. 1): pretrain a surrogate + diffusion model
// on randomly synthesized sequences (one-time effort), then optimize in
// the continuous latent space with multiple restarts and validate the
// retrieved sequences with real synthesis — exactly the paper's flow,
// including its runtime accounting (training and validation synthesis are
// excluded from the "optimization time" of Fig. 5).

#include <memory>
#include <string>

#include "clo/core/dataset.hpp"
#include "clo/core/evaluator.hpp"
#include "clo/core/optimizer.hpp"
#include "clo/core/trainer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/sat/cec.hpp"
#include "clo/util/cancel.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/rng.hpp"

namespace clo::util {
class ThreadPool;
}

namespace clo::core {

struct PipelineConfig {
  int seq_len = 20;           ///< L
  int embed_dim = 8;          ///< d
  int dataset_size = 300;     ///< paper: 20000
  int diffusion_steps = 120;  ///< paper: 500
  int diffusion_iters = 600;  ///< denoiser training iterations
  int diffusion_batch = 16;
  float diffusion_lr = 1e-3f;
  int restarts = 4;           ///< paper: 30 repeats, best kept
  std::string surrogate = "mtl";  ///< mtl | lostin | cnn
  TrainConfig surrogate_train;
  OptimizeParams optimize;
  std::uint64_t seed = 1;
  /// Worker threads for dataset labeling, surrogate training, restarts,
  /// and validation. 1 = serial, 0 = hardware concurrency. Dataset
  /// labeling, latent optimization, and validation QoR are bit-identical
  /// at any value; only surrogate training's float rounding differs
  /// between the serial batched path (threads == 1) and the data-parallel
  /// per-sample path (threads >= 2, itself count-independent).
  int threads = 1;
  /// Advance restarts in lockstep through the denoising schedule (one
  /// batched U-Net + surrogate pass per step) instead of one thread per
  /// restart. Retrieved sequences are identical either way; false is the
  /// `--no-batch` fallback.
  bool batch = true;
  /// When non-empty, persist a phase checkpoint (dataset, surrogate,
  /// diffusion) into this directory after each pretraining phase.
  /// Checkpoint I/O failures are warnings, never fatal.
  std::string checkpoint_dir;
  /// Resume from valid checkpoints in `checkpoint_dir` instead of
  /// recomputing. The Rng state stored at each phase boundary makes a
  /// resumed run bit-identical to an uninterrupted one with the same
  /// config; stale or corrupt checkpoints silently fall back to
  /// recomputing the phase.
  bool resume = false;
  /// After validation, prove every distinct surviving sequence equivalent
  /// to the pre-optimization circuit with the SAT-based checker (`--verify`).
  /// Verdicts and per-check latency land in the clo.report.v1 JSON; the
  /// verify phase is excluded from the Fig. 5 optimization time.
  bool verify = false;
};

struct PipelineResult {
  Qor original;
  Qor best;
  opt::Sequence best_sequence;
  double best_discrepancy = 0.0;
  TrainReport surrogate_report;
  models::DiffusionModel::TrainStats diffusion_report;
  // Timing buckets (seconds).
  double dataset_seconds = 0.0;
  double surrogate_train_seconds = 0.0;
  double diffusion_train_seconds = 0.0;
  double optimize_seconds = 0.0;    ///< the Fig. 5 number
  double validate_seconds = 0.0;
  // All restart results (for distribution reporting).
  std::vector<OptimizeResult> restarts;
  std::vector<Qor> restart_qor;
  // Fault-tolerance accounting: restarts quarantined during latent
  // optimization (their `restarts` slot is default-constructed) and
  // restarts whose validation synthesis failed even after a retry (their
  // `restart_qor` slot is default-constructed). Quarantined restarts never
  // compete for `best`.
  std::vector<ContinuousOptimizer::RestartFailure> optimize_quarantined;
  std::vector<ContinuousOptimizer::RestartFailure> validate_quarantined;
  /// Pretraining phases restored from a checkpoint (0 = fresh run, 3 =
  /// dataset + surrogate + diffusion all resumed).
  int resumed_phases = 0;
  /// Worker count the kernel layer's tiled GEMM could fan out over during
  /// optimize (1 = serial). Informational only — bytes are identical at
  /// any value by the kernel determinism contract.
  int kernel_threads = 1;
  /// One SAT equivalence check per distinct surviving sequence (--verify).
  struct VerificationCheck {
    opt::Sequence sequence;
    sat::CecOutcome outcome;
    double seconds = 0.0;
  };
  std::vector<VerificationCheck> verification;
  /// Aggregate verify verdict: "equivalent", "not_equivalent", or
  /// "unknown" (worst individual verdict wins); empty when verify was off.
  std::string verify_verdict;
  double verify_seconds = 0.0;
};

class CloPipeline {
 public:
  explicit CloPipeline(PipelineConfig config) : config_(std::move(config)) {}

  /// Full run against one circuit — exactly pretrain() + optimize().
  /// The optional `cancel` token is polled at phase boundaries, per
  /// training batch/iteration, per optimizer timestep, and per validation
  /// synthesis; when it fires, the run aborts with util::CancelledError.
  /// Cancellation never perturbs an uncancelled run (checks are pure
  /// reads) and never leaves partial state behind: pretrained_ only flips
  /// after every phase completed, and on-disk phase checkpoints are
  /// atomic, so a cancelled run simply resumes or retrains cleanly.
  PipelineResult run(QorEvaluator& evaluator,
                     const util::CancelToken* cancel = nullptr);

  /// Run only the one-time pretraining phases (dataset labeling, surrogate
  /// training, diffusion training), honoring checkpoint_dir/resume, and
  /// record the Rng state at the pretrain/optimize boundary. Idempotent:
  /// a second call is a no-op — this is what lets a long-running server
  /// pay the pretraining cost once per (circuit, config) and answer every
  /// later query from the trained models.
  void pretrain(QorEvaluator& evaluator,
                const util::CancelToken* cancel = nullptr);
  bool pretrained() const { return pretrained_; }

  /// Continuous optimization + validation (+ --verify) from the pretrained
  /// state (pretrain() is invoked first when needed). Every call restarts
  /// the Rng from the recorded boundary state, so repeated calls — and in
  /// particular a registry-warm serve query — return results byte-identical
  /// to a cold run() with the same config.
  PipelineResult optimize(QorEvaluator& evaluator,
                          const util::CancelToken* cancel = nullptr);

  /// Pretraining phases restored from a checkpoint by pretrain()
  /// (0 before pretrain() or on a fresh run, 3 = fully resumed).
  int resumed_phases() const { return pretrain_result_.resumed_phases; }

  /// Share an externally owned worker pool instead of creating one per
  /// run (serve mode: many concurrent sessions multiplex onto one pool).
  /// A pool with fewer than two workers degrades to the serial path.
  /// Must be set before the first pretrain()/run() and outlive the
  /// pipeline's phase calls.
  void set_external_pool(util::ThreadPool* pool) { external_pool_ = pool; }

  /// Access to the trained models after run() (for t-SNE / analysis).
  models::TransformEmbedding* embedding() { return embedding_.get(); }
  models::SurrogateModel* surrogate() { return surrogate_.get(); }
  models::DiffusionModel* diffusion() { return diffusion_.get(); }
  const Dataset& dataset() const { return dataset_; }

  const PipelineConfig& config() const { return config_; }

 private:
  /// The pool phases should fan out on: the external pool when one was
  /// provided (nullptr when it is too small to help), else a per-call pool
  /// stored in `owned`. Null means "run serially".
  util::ThreadPool* acquire_pool(
      std::unique_ptr<util::ThreadPool>* owned) const;
  /// Whether surrogate training uses the data-parallel per-sample path
  /// (part of the checkpoint identity — its float rounding differs from
  /// the serial batched path).
  bool data_parallel() const;

  PipelineConfig config_;
  std::unique_ptr<models::TransformEmbedding> embedding_;
  std::unique_ptr<models::SurrogateModel> surrogate_;
  std::unique_ptr<models::DiffusionModel> diffusion_;
  Dataset dataset_;
  util::ThreadPool* external_pool_ = nullptr;
  bool pretrained_ = false;
  /// Phase results accumulated by pretrain(); optimize() starts every call
  /// from a copy so repeated optimizations are independent and identical.
  PipelineResult pretrain_result_;
  /// Rng state at the pretrain/optimize boundary.
  clo::Rng::State boundary_rng_{};
};

/// The checkpoint/registry identity of one (circuit, config) pair: hashes
/// every knob (plus the circuit fingerprint) that changes the bits a
/// pretraining phase produces. `data_parallel` selects the surrogate
/// training mode (serial batched vs data-parallel per-sample), whose float
/// rounding differs; the thread *count* is deliberately excluded. Shared by
/// checkpoint keying and the serve model registry.
std::uint64_t pipeline_config_hash(const PipelineConfig& config,
                                   const aig::Aig& circuit,
                                   bool data_parallel);

/// Serialize one pipeline run into the stable "clo.report.v1" JSON schema:
/// QoR before/after, per-phase seconds, evaluator cache statistics,
/// surrogate + diffusion loss series, per-restart discrepancy/QoR, and a
/// snapshot of the global metrics registry. Shared by the shell `tune`
/// command, the `--report` CLI flag, and the benches.
obs::Json pipeline_report(const PipelineResult& result,
                          const EvaluatorStats& evaluator_stats);

}  // namespace clo::core
