#pragma once
// Phase-level checkpoint/resume for the pipeline. After each pretraining
// phase (dataset labeling, surrogate training, diffusion training) the
// pipeline persists everything a resumed process needs to continue as if
// it had never died: the phase artifact itself, the Rng state at the phase
// boundary, and the phase's report entries. Files use the CLOCKPT1
// container — a versioned, CRC32-checksummed envelope whose payload embeds
// model weights in the existing CLONN1 format — and are written atomically
// (tmp + rename), so a kill mid-write leaves the previous checkpoint
// intact. A config-hash field ties every checkpoint to the exact
// (circuit, config) combination that produced it; resuming under a
// different configuration silently falls back to recomputing the phase.
//
// Checkpoint I/O is never load-bearing: any write or read failure
// (including the checkpoint.read / checkpoint.write fault-injection
// sites) degrades to "no checkpoint" and the pipeline recomputes.

#include <cstdint>
#include <string>
#include <vector>

#include "clo/core/dataset.hpp"
#include "clo/core/trainer.hpp"
#include "clo/models/diffusion.hpp"
#include "clo/util/rng.hpp"

namespace clo::core {

/// FNV-1a accumulator for the checkpoint config hash. Callers feed every
/// knob that changes a checkpointed phase's bits (circuit fingerprint,
/// seed, model/training hyperparameters, the data-parallel rounding mode)
/// and compare the digest against the one stored in the file.
class ConfigHasher {
 public:
  ConfigHasher& add(std::uint64_t v);
  ConfigHasher& add(double v);
  ConfigHasher& add(const std::string& s);
  std::uint64_t hash() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Everything phase 1 produced: the labeled dataset, the embedding
/// geometry, the baseline QoR, and the Rng state at the phase boundary.
struct DatasetCheckpoint {
  Qor original;
  std::vector<std::vector<float>> embedding_table;
  Dataset dataset;
  double seconds = 0.0;
  clo::Rng::State rng;
};

/// A trained model phase: weights as a CLONN1 blob (surrogate or
/// diffusion), the training report, and the boundary Rng state.
struct SurrogateCheckpoint {
  std::string weights;  ///< CLONN1 blob
  TrainReport report;
  double seconds = 0.0;
  clo::Rng::State rng;
};

struct DiffusionCheckpoint {
  std::string weights;  ///< CLONN1 blob
  models::DiffusionModel::TrainStats stats;
  double seconds = 0.0;
  clo::Rng::State rng;
};

/// One directory of phase checkpoints for one (circuit, config) pair.
/// save_* returns false instead of throwing on any failure; load_* returns
/// false for missing, truncated, corrupted (CRC), version-mismatched, or
/// config-mismatched files.
class CheckpointManager {
 public:
  CheckpointManager(std::string dir, std::uint64_t config_hash);

  bool save_dataset(const DatasetCheckpoint& c);
  bool save_surrogate(const SurrogateCheckpoint& c);
  bool save_diffusion(const DiffusionCheckpoint& c);

  bool load_dataset(DatasetCheckpoint* c);
  bool load_surrogate(SurrogateCheckpoint* c);
  bool load_diffusion(DiffusionCheckpoint* c);

  const std::string& dir() const { return dir_; }
  /// Full path of one phase's checkpoint file ("dataset", "surrogate",
  /// "diffusion").
  std::string path_for(const std::string& phase) const;

 private:
  bool write_file(const std::string& phase, std::uint32_t phase_id,
                  const std::string& payload);
  bool read_file(const std::string& phase, std::uint32_t phase_id,
                 std::string* payload);

  std::string dir_;
  std::uint64_t config_hash_;
};

}  // namespace clo::core
