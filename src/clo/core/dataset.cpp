#include "clo/core/dataset.hpp"

#include <cmath>

namespace clo::core {

Dataset generate_dataset(QorEvaluator& evaluator, int n, int length,
                         clo::Rng& rng) {
  Dataset ds;
  ds.sequences.reserve(n);
  ds.qor.reserve(n);
  for (int i = 0; i < n; ++i) {
    opt::Sequence seq = opt::random_sequence(length, rng);
    ds.qor.push_back(evaluator.evaluate(seq));
    ds.sequences.push_back(std::move(seq));
  }
  double am = 0.0, dm = 0.0;
  for (const auto& q : ds.qor) {
    am += q.area_um2;
    dm += q.delay_ps;
  }
  am /= n;
  dm /= n;
  double av = 0.0, dv = 0.0;
  for (const auto& q : ds.qor) {
    av += (q.area_um2 - am) * (q.area_um2 - am);
    dv += (q.delay_ps - dm) * (q.delay_ps - dm);
  }
  ds.area_mean = am;
  ds.delay_mean = dm;
  ds.area_std = std::max(1e-9, std::sqrt(av / n));
  ds.delay_std = std::max(1e-9, std::sqrt(dv / n));
  return ds;
}

}  // namespace clo::core
