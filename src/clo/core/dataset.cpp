#include "clo/core/dataset.hpp"

#include <cmath>

#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"

namespace clo::core {

Dataset generate_dataset(QorEvaluator& evaluator, int n, int length,
                         clo::Rng& rng, util::ThreadPool* pool,
                         const util::CancelToken* cancel) {
  Dataset ds;
  // Sample every sequence up front from the main rng stream; labeling
  // consumes no randomness, so this draws exactly the values the old
  // sample-then-label loop drew and keeps the result independent of how
  // the labeling work is scheduled.
  ds.sequences.reserve(n);
  for (int i = 0; i < n; ++i) {
    ds.sequences.push_back(opt::random_sequence(length, rng));
  }
  ds.qor.resize(ds.sequences.size());
  obs::Progress progress("dataset", ds.sequences.size());
  util::parallel_for(pool, ds.sequences.size(), [&](std::size_t i) {
    CLO_TRACE_SPAN("dataset.label");
    ds.qor[i] = evaluator.evaluate(ds.sequences[i], cancel);
    progress.tick();
  });
  if (cancel != nullptr) cancel->check();
  double am = 0.0, dm = 0.0;
  for (const auto& q : ds.qor) {
    am += q.area_um2;
    dm += q.delay_ps;
  }
  am /= n;
  dm /= n;
  double av = 0.0, dv = 0.0;
  for (const auto& q : ds.qor) {
    av += (q.area_um2 - am) * (q.area_um2 - am);
    dv += (q.delay_ps - dm) * (q.delay_ps - dm);
  }
  ds.area_mean = am;
  ds.delay_mean = dm;
  ds.area_std = std::max(1e-9, std::sqrt(av / n));
  ds.delay_std = std::max(1e-9, std::sqrt(dv / n));
  return ds;
}

}  // namespace clo::core
