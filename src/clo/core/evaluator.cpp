#include "clo/core/evaluator.hpp"

namespace clo::core {

QorEvaluator::QorEvaluator(aig::Aig circuit, techmap::MapParams map_params)
    : circuit_(std::move(circuit)), lib_(techmap::CellLibrary::asap7()),
      map_params_(map_params) {}

Qor QorEvaluator::evaluate(const opt::Sequence& seq) {
  ++num_queries_;
  const std::string key = opt::sequence_to_string(seq);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  ScopedTimer timer(synth_watch_);
  ++num_runs_;
  aig::Aig g = circuit_;
  opt::run_sequence(g, seq);
  // Report the Pareto endpoints, like ABC's map + area recovery: the area
  // of an area-oriented cover and the delay of a delay-oriented cover.
  techmap::MapParams area_params = map_params_;
  area_params.objective = techmap::MapParams::Objective::kArea;
  techmap::MapParams delay_params = map_params_;
  delay_params.objective = techmap::MapParams::Objective::kDelay;
  const auto area_mapped = techmap::tech_map(g, lib_, area_params);
  const auto delay_mapped = techmap::tech_map(g, lib_, delay_params);
  // Keep the better cover per metric: area flow is a heuristic, so either
  // objective can occasionally win on the other's metric.
  const Qor qor{std::min(area_mapped.area_um2, delay_mapped.area_um2),
                std::min(area_mapped.delay_ps, delay_mapped.delay_ps)};
  cache_.emplace(key, qor);
  return qor;
}

Qor QorEvaluator::original() { return evaluate({}); }

}  // namespace clo::core
