#include "clo/core/evaluator.hpp"

#include <chrono>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "clo/util/fault.hpp"
#include "clo/util/obs.hpp"

namespace clo::core {

QorEvaluator::QorEvaluator(aig::Aig circuit, techmap::MapParams map_params)
    : circuit_(std::move(circuit)), lib_(techmap::CellLibrary::asap7()),
      map_params_(map_params) {}

QorEvaluator::Shard& QorEvaluator::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

Qor QorEvaluator::evaluate(const opt::Sequence& seq,
                           const util::CancelToken* cancel) {
  if (cancel != nullptr) cancel->check();
  num_queries_.fetch_add(1, std::memory_order_relaxed);
  CLO_OBS_COUNT("evaluator.queries", 1);
  const std::string key = opt::sequence_to_string(seq);
  Shard& shard = shard_for(key);
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    for (;;) {
      auto it = shard.cache.find(key);
      if (it != shard.cache.end()) {
        num_hits_.fetch_add(1, std::memory_order_relaxed);
        CLO_OBS_COUNT("evaluator.cache_hits", 1);
        return it->second;
      }
      // Single-flight: if another thread is already synthesizing this key,
      // wait for its insert instead of duplicating the run; re-check the
      // cache on every wake (the wake may be for a different key of this
      // shard, or the owner may have failed and handed the miss back).
      if (shard.inflight.count(key) == 0) break;
      if (cancel != nullptr) {
        // A cancellable waiter must not sleep past its deadline just
        // because another request owns the miss; wake periodically to
        // poll the token.
        cancel->check();
        shard.cv.wait_for(lock, std::chrono::milliseconds(50));
      } else {
        shard.cv.wait(lock);
      }
    }
    shard.inflight.insert(key);
  }
  // Miss owner: synthesize outside the lock so concurrent evaluations of
  // *different* sequences never serialize on the expensive part.
  CLO_TRACE_SPAN("evaluator.synthesize");
  const auto begin = std::chrono::steady_clock::now();
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  CLO_OBS_COUNT("evaluator.synthesis_runs", 1);
  Qor qor;
  try {
    CLO_FAULT_POINT("evaluator.synthesize");
    if (cancel != nullptr) cancel->check();
    // Make the request's token ambient for this thread so per-transform
    // and in-synthesis cancel_point() calls observe it.
    util::ScopedCancelToken ambient(cancel);
    aig::Aig g = circuit_;
    opt::run_sequence(g, seq);
    // Report the Pareto endpoints, like ABC's map + area recovery: the
    // area of an area-oriented cover and the delay of a delay-oriented
    // cover.
    techmap::MapParams area_params = map_params_;
    area_params.objective = techmap::MapParams::Objective::kArea;
    techmap::MapParams delay_params = map_params_;
    delay_params.objective = techmap::MapParams::Objective::kDelay;
    const auto area_mapped = techmap::tech_map(g, lib_, area_params);
    const auto delay_mapped = techmap::tech_map(g, lib_, delay_params);
    // Keep the better cover per metric: area flow is a heuristic, so
    // either objective can occasionally win on the other's metric.
    qor = Qor{std::min(area_mapped.area_um2, delay_mapped.area_um2),
              std::min(area_mapped.delay_ps, delay_mapped.delay_ps)};
    // Never cache (or report) a non-finite QoR: a NaN label would poison
    // dataset normalization and every surrogate gradient downstream.
    if (!std::isfinite(qor.area_um2) || !std::isfinite(qor.delay_ps)) {
      throw std::runtime_error("evaluator: non-finite QoR for sequence '" +
                               key + "'");
    }
  } catch (...) {
    // Hand the miss back so waiters retry rather than hang.
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(key);
    shard.cv.notify_all();
    throw;
  }
  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
  synth_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  CLO_OBS_OBSERVE("evaluator.synth_seconds",
                  static_cast<double>(elapsed_ns) * 1e-9);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.cache.emplace(key, qor);
    shard.inflight.erase(key);
    shard.cv.notify_all();
  }
  return qor;
}

Qor QorEvaluator::original() { return evaluate({}); }

EvaluatorStats QorEvaluator::snapshot() const {
  EvaluatorStats stats;
  stats.queries = num_queries_.load(std::memory_order_relaxed);
  stats.unique_runs = num_runs_.load(std::memory_order_relaxed);
  stats.cache_hits = num_hits_.load(std::memory_order_relaxed);
  stats.hit_rate = stats.queries == 0
                       ? 0.0
                       : static_cast<double>(stats.cache_hits) /
                             static_cast<double>(stats.queries);
  stats.synth_seconds =
      static_cast<double>(synth_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

void QorEvaluator::reset_stats() {
  num_queries_.store(0, std::memory_order_relaxed);
  num_runs_.store(0, std::memory_order_relaxed);
  num_hits_.store(0, std::memory_order_relaxed);
  synth_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace clo::core
