#pragma once
// Surrogate training (Eq. 2): minimize MSE between predicted and measured
// normalized QoR on the dataset, with a held-out split for fidelity
// reporting (Spearman rank correlation is what actually matters for
// optimization quality).

#include "clo/core/dataset.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"

namespace clo::core {

struct TrainConfig {
  int epochs = 60;
  int batch_size = 32;
  float lr = 2e-3f;
  double holdout_fraction = 0.15;
};

struct TrainReport {
  double train_mse = 0.0;
  double holdout_mse = 0.0;
  double spearman_area = 0.0;
  double spearman_delay = 0.0;
  double seconds = 0.0;
};

TrainReport train_surrogate(models::SurrogateModel& model,
                            const models::TransformEmbedding& embedding,
                            const Dataset& dataset, const TrainConfig& config,
                            clo::Rng& rng);

}  // namespace clo::core
