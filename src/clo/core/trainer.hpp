#pragma once
// Surrogate training (Eq. 2): minimize MSE between predicted and measured
// normalized QoR on the dataset, with a held-out split for fidelity
// reporting (Spearman rank correlation is what actually matters for
// optimization quality).

#include <functional>
#include <memory>

#include "clo/core/dataset.hpp"
#include "clo/models/embedding.hpp"
#include "clo/models/surrogate.hpp"

namespace clo::util {
class ThreadPool;
}

namespace clo::core {

struct TrainConfig {
  int epochs = 60;
  int batch_size = 32;
  float lr = 2e-3f;
  double holdout_fraction = 0.15;
};

struct TrainReport {
  double train_mse = 0.0;
  double holdout_mse = 0.0;
  double spearman_area = 0.0;
  double spearman_delay = 0.0;
  double seconds = 0.0;
  /// Per-epoch mean training loss, in epoch order (the loss-curve series
  /// surfaced by run reports).
  std::vector<double> epoch_loss;
  /// Divergence recoveries: times a non-finite batch loss triggered a
  /// rollback to the last good weights plus an LR halving. Training
  /// throws after kMaxLrBackoffs of them.
  int lr_backoffs = 0;
};

/// Divergence recoveries allowed before training gives up (surrogate and
/// diffusion alike).
inline constexpr int kMaxLrBackoffs = 6;

/// Builds a surrogate structurally identical to the model being trained
/// (weights are overwritten with the master's before every batch, so the
/// factory's own initialization never matters). Used to give each worker a
/// private compute graph for data-parallel training.
using SurrogateFactory =
    std::function<std::unique_ptr<models::SurrogateModel>()>;

/// Train `model` on the dataset. With a pool of >= 2 workers and a
/// `replica_factory`, each minibatch is processed sample-per-sample on
/// per-worker replicas and the gradients are reduced in sample-index
/// order — deterministic for any worker count, though its float rounding
/// differs from the serial batched path (which every other configuration
/// uses and which matches the historical behavior exactly).
/// `cancel` is polled once per minibatch; a fired token aborts training
/// with util::CancelledError (the model is abandoned by the caller, so no
/// partial-weight hazard).
TrainReport train_surrogate(models::SurrogateModel& model,
                            const models::TransformEmbedding& embedding,
                            const Dataset& dataset, const TrainConfig& config,
                            clo::Rng& rng, util::ThreadPool* pool = nullptr,
                            const SurrogateFactory& replica_factory = nullptr,
                            const util::CancelToken* cancel = nullptr);

}  // namespace clo::core
