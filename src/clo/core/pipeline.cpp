#include "clo/core/pipeline.hpp"

#include "clo/util/log.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

namespace {

obs::Json series_json(const std::vector<double>& values) {
  obs::Json arr = obs::Json::array();
  for (double v : values) arr.push_back(obs::Json(v));
  return arr;
}

}  // namespace

PipelineResult CloPipeline::run(QorEvaluator& evaluator) {
  PipelineResult result;
  clo::Rng rng(config_.seed);
  // A pool only exists when parallelism was actually requested; every
  // consumer below treats a null pool as "run serially".
  const std::size_t workers = util::resolve_threads(config_.threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (workers >= 2) pool = std::make_unique<util::ThreadPool>(workers);
  result.original = evaluator.original();

  // ---- One-time pretraining (upper half of Fig. 1) -----------------------
  embedding_ = std::make_unique<models::TransformEmbedding>(
      config_.embed_dim, rng);
  {
    CLO_TRACE_SPAN("pipeline.dataset");
    Stopwatch w;
    ScopedTimer st(w);
    dataset_ = generate_dataset(evaluator, config_.dataset_size,
                                config_.seq_len, rng, pool.get());
    result.dataset_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.dataset_seconds", result.dataset_seconds);
  }
  models::SurrogateConfig scfg;
  scfg.seq_len = config_.seq_len;
  scfg.embed_dim = config_.embed_dim;
  surrogate_ = models::make_surrogate(config_.surrogate, evaluator.circuit(),
                                      scfg, rng);
  {
    CLO_TRACE_SPAN("pipeline.surrogate_train");
    Stopwatch w;
    ScopedTimer st(w);
    // Replicas only borrow the master's architecture; their init weights
    // are overwritten before use, so a fixed factory seed is fine.
    SurrogateFactory factory = [this, &evaluator, scfg] {
      clo::Rng factory_rng(config_.seed ^ 0x5caff01dULL);
      return models::make_surrogate(config_.surrogate, evaluator.circuit(),
                                    scfg, factory_rng);
    };
    result.surrogate_report =
        train_surrogate(*surrogate_, *embedding_, dataset_,
                        config_.surrogate_train, rng, pool.get(), factory);
    result.surrogate_train_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.surrogate_train_seconds",
                  result.surrogate_train_seconds);
  }
  CLO_LOG_INFO << evaluator.circuit().name() << ": surrogate '"
               << config_.surrogate << "' holdout mse "
               << result.surrogate_report.holdout_mse << ", spearman(area) "
               << result.surrogate_report.spearman_area;

  models::DiffusionConfig dcfg;
  dcfg.seq_len = config_.seq_len;
  dcfg.embed_dim = config_.embed_dim;
  dcfg.num_steps = config_.diffusion_steps;
  diffusion_ = std::make_unique<models::DiffusionModel>(dcfg, rng);
  {
    CLO_TRACE_SPAN("pipeline.diffusion_train");
    Stopwatch w;
    ScopedTimer st(w);
    std::vector<std::vector<float>> data;
    data.reserve(dataset_.size());
    for (const auto& seq : dataset_.sequences) {
      data.push_back(embedding_->embed(seq));
    }
    result.diffusion_report = diffusion_->train(data, config_.diffusion_iters,
                                                config_.diffusion_batch,
                                                config_.diffusion_lr, rng);
    result.diffusion_train_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.diffusion_train_seconds",
                  result.diffusion_train_seconds);
    CLO_LOG_INFO << evaluator.circuit().name() << ": diffusion loss "
                 << result.diffusion_report.final_loss << " after "
                 << result.diffusion_report.iterations << " iters";
  }

  // ---- Continuous optimization (lower half of Fig. 1) --------------------
  ContinuousOptimizer optimizer(*surrogate_, *diffusion_, *embedding_,
                                config_.optimize);
  {
    CLO_TRACE_SPAN("pipeline.optimize");
    Stopwatch w;
    ScopedTimer st(w);
    result.restarts = optimizer.run_restarts(rng, config_.restarts,
                                             pool.get(), config_.batch);
    result.optimize_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.optimize_seconds", result.optimize_seconds);
  }

  // ---- Validation with real synthesis (outside the optimization loop) ----
  {
    CLO_TRACE_SPAN("pipeline.validate");
    Stopwatch w;
    ScopedTimer st(w);
    // Label every restart in parallel, then pick the winner serially so
    // the first-lowest tie-break is scheduling-independent.
    result.restart_qor.resize(result.restarts.size());
    util::parallel_for(pool.get(), result.restarts.size(), [&](std::size_t i) {
      result.restart_qor[i] = evaluator.evaluate(result.restarts[i].sequence);
    });
    double best_score = 1e300;
    for (std::size_t i = 0; i < result.restarts.size(); ++i) {
      const auto& restart = result.restarts[i];
      const Qor q = result.restart_qor[i];
      const double score =
          config_.optimize.weight_area *
              (q.area_um2 - dataset_.area_mean) / dataset_.area_std +
          config_.optimize.weight_delay *
              (q.delay_ps - dataset_.delay_mean) / dataset_.delay_std;
      if (score < best_score) {
        best_score = score;
        result.best = q;
        result.best_sequence = restart.sequence;
        result.best_discrepancy = restart.discrepancy;
      }
    }
    result.validate_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.validate_seconds", result.validate_seconds);
  }
  return result;
}

obs::Json pipeline_report(const PipelineResult& result,
                          const EvaluatorStats& evaluator_stats) {
  obs::Json report = obs::Json::object();
  report["schema"] = obs::Json(std::string("clo.report.v1"));

  obs::Json qor = obs::Json::object();
  qor["original_area_um2"] = obs::Json(result.original.area_um2);
  qor["original_delay_ps"] = obs::Json(result.original.delay_ps);
  qor["best_area_um2"] = obs::Json(result.best.area_um2);
  qor["best_delay_ps"] = obs::Json(result.best.delay_ps);
  qor["best_sequence"] = obs::Json(opt::sequence_to_string(
      result.best_sequence));
  qor["best_discrepancy"] = obs::Json(result.best_discrepancy);
  report["qor"] = qor;

  obs::Json phases = obs::Json::object();
  phases["dataset"] = obs::Json(result.dataset_seconds);
  phases["surrogate_train"] = obs::Json(result.surrogate_train_seconds);
  phases["diffusion_train"] = obs::Json(result.diffusion_train_seconds);
  phases["optimize"] = obs::Json(result.optimize_seconds);
  phases["validate"] = obs::Json(result.validate_seconds);
  report["phase_seconds"] = phases;

  obs::Json ev = obs::Json::object();
  ev["queries"] = obs::Json(static_cast<std::uint64_t>(
      evaluator_stats.queries));
  ev["unique_runs"] = obs::Json(static_cast<std::uint64_t>(
      evaluator_stats.unique_runs));
  ev["cache_hits"] = obs::Json(static_cast<std::uint64_t>(
      evaluator_stats.cache_hits));
  ev["hit_rate"] = obs::Json(evaluator_stats.hit_rate);
  ev["synth_seconds"] = obs::Json(evaluator_stats.synth_seconds);
  report["evaluator"] = ev;

  obs::Json surrogate = obs::Json::object();
  surrogate["train_mse"] = obs::Json(result.surrogate_report.train_mse);
  surrogate["holdout_mse"] = obs::Json(result.surrogate_report.holdout_mse);
  surrogate["spearman_area"] =
      obs::Json(result.surrogate_report.spearman_area);
  surrogate["spearman_delay"] =
      obs::Json(result.surrogate_report.spearman_delay);
  surrogate["seconds"] = obs::Json(result.surrogate_report.seconds);
  surrogate["loss_series"] = series_json(result.surrogate_report.epoch_loss);
  report["surrogate"] = surrogate;

  obs::Json diffusion = obs::Json::object();
  diffusion["iterations"] = obs::Json(result.diffusion_report.iterations);
  diffusion["final_loss"] = obs::Json(result.diffusion_report.final_loss);
  diffusion["loss_series"] = series_json(result.diffusion_report.loss_curve);
  report["diffusion"] = diffusion;

  obs::Json restarts = obs::Json::array();
  for (std::size_t i = 0; i < result.restarts.size(); ++i) {
    const auto& r = result.restarts[i];
    obs::Json entry = obs::Json::object();
    entry["discrepancy"] = obs::Json(r.discrepancy);
    entry["predicted_objective"] = obs::Json(r.predicted_objective);
    entry["seconds"] = obs::Json(r.seconds);
    if (i < result.restart_qor.size()) {
      entry["area_um2"] = obs::Json(result.restart_qor[i].area_um2);
      entry["delay_ps"] = obs::Json(result.restart_qor[i].delay_ps);
    }
    restarts.push_back(std::move(entry));
  }
  report["restarts"] = restarts;

  report["metrics"] = obs::Registry::instance().snapshot().to_json();
  return report;
}

}  // namespace clo::core
