#include "clo/core/pipeline.hpp"

#include "clo/util/log.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

PipelineResult CloPipeline::run(QorEvaluator& evaluator) {
  PipelineResult result;
  clo::Rng rng(config_.seed);
  // A pool only exists when parallelism was actually requested; every
  // consumer below treats a null pool as "run serially".
  const std::size_t workers = util::resolve_threads(config_.threads);
  std::unique_ptr<util::ThreadPool> pool;
  if (workers >= 2) pool = std::make_unique<util::ThreadPool>(workers);
  result.original = evaluator.original();

  // ---- One-time pretraining (upper half of Fig. 1) -----------------------
  embedding_ = std::make_unique<models::TransformEmbedding>(
      config_.embed_dim, rng);
  {
    Stopwatch w;
    ScopedTimer st(w);
    dataset_ = generate_dataset(evaluator, config_.dataset_size,
                                config_.seq_len, rng, pool.get());
    result.dataset_seconds = w.seconds();
  }
  models::SurrogateConfig scfg;
  scfg.seq_len = config_.seq_len;
  scfg.embed_dim = config_.embed_dim;
  surrogate_ = models::make_surrogate(config_.surrogate, evaluator.circuit(),
                                      scfg, rng);
  {
    Stopwatch w;
    ScopedTimer st(w);
    // Replicas only borrow the master's architecture; their init weights
    // are overwritten before use, so a fixed factory seed is fine.
    SurrogateFactory factory = [this, &evaluator, scfg] {
      clo::Rng factory_rng(config_.seed ^ 0x5caff01dULL);
      return models::make_surrogate(config_.surrogate, evaluator.circuit(),
                                    scfg, factory_rng);
    };
    result.surrogate_report =
        train_surrogate(*surrogate_, *embedding_, dataset_,
                        config_.surrogate_train, rng, pool.get(), factory);
    result.surrogate_train_seconds = w.seconds();
  }
  CLO_LOG_INFO << evaluator.circuit().name() << ": surrogate '"
               << config_.surrogate << "' holdout mse "
               << result.surrogate_report.holdout_mse << ", spearman(area) "
               << result.surrogate_report.spearman_area;

  models::DiffusionConfig dcfg;
  dcfg.seq_len = config_.seq_len;
  dcfg.embed_dim = config_.embed_dim;
  dcfg.num_steps = config_.diffusion_steps;
  diffusion_ = std::make_unique<models::DiffusionModel>(dcfg, rng);
  {
    Stopwatch w;
    ScopedTimer st(w);
    std::vector<std::vector<float>> data;
    data.reserve(dataset_.size());
    for (const auto& seq : dataset_.sequences) {
      data.push_back(embedding_->embed(seq));
    }
    const auto ts = diffusion_->train(data, config_.diffusion_iters,
                                      config_.diffusion_batch,
                                      config_.diffusion_lr, rng);
    result.diffusion_train_seconds = w.seconds();
    CLO_LOG_INFO << evaluator.circuit().name() << ": diffusion loss "
                 << ts.final_loss << " after " << ts.iterations << " iters";
  }

  // ---- Continuous optimization (lower half of Fig. 1) --------------------
  ContinuousOptimizer optimizer(*surrogate_, *diffusion_, *embedding_,
                                config_.optimize);
  {
    Stopwatch w;
    ScopedTimer st(w);
    result.restarts = optimizer.run_restarts(rng, config_.restarts,
                                             pool.get());
    result.optimize_seconds = w.seconds();
  }

  // ---- Validation with real synthesis (outside the optimization loop) ----
  {
    Stopwatch w;
    ScopedTimer st(w);
    // Label every restart in parallel, then pick the winner serially so
    // the first-lowest tie-break is scheduling-independent.
    result.restart_qor.resize(result.restarts.size());
    util::parallel_for(pool.get(), result.restarts.size(), [&](std::size_t i) {
      result.restart_qor[i] = evaluator.evaluate(result.restarts[i].sequence);
    });
    double best_score = 1e300;
    for (std::size_t i = 0; i < result.restarts.size(); ++i) {
      const auto& restart = result.restarts[i];
      const Qor q = result.restart_qor[i];
      const double score =
          config_.optimize.weight_area *
              (q.area_um2 - dataset_.area_mean) / dataset_.area_std +
          config_.optimize.weight_delay *
              (q.delay_ps - dataset_.delay_mean) / dataset_.delay_std;
      if (score < best_score) {
        best_score = score;
        result.best = q;
        result.best_sequence = restart.sequence;
        result.best_discrepancy = restart.discrepancy;
      }
    }
    result.validate_seconds = w.seconds();
  }
  return result;
}

}  // namespace clo::core
