#include "clo/core/pipeline.hpp"

#include <set>
#include <sstream>

#include "clo/core/checkpoint.hpp"
#include "clo/opt/transform.hpp"
#include "clo/nn/kernel.hpp"
#include "clo/nn/serialize.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/log.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

namespace {

obs::Json series_json(const std::vector<double>& values) {
  obs::Json arr = obs::Json::array();
  for (double v : values) arr.push_back(obs::Json(v));
  return arr;
}

}  // namespace

std::uint64_t pipeline_config_hash(const PipelineConfig& config,
                                   const aig::Aig& circuit,
                                   bool data_parallel) {
  ConfigHasher h;
  h.add(circuit.name())
      .add(static_cast<std::uint64_t>(circuit.num_pis()))
      .add(static_cast<std::uint64_t>(circuit.num_pos()))
      .add(static_cast<std::uint64_t>(circuit.num_ands()))
      .add(config.seed)
      .add(static_cast<std::uint64_t>(config.seq_len))
      .add(static_cast<std::uint64_t>(config.embed_dim))
      .add(static_cast<std::uint64_t>(config.dataset_size))
      .add(static_cast<std::uint64_t>(config.diffusion_steps))
      .add(static_cast<std::uint64_t>(config.diffusion_iters))
      .add(static_cast<std::uint64_t>(config.diffusion_batch))
      .add(static_cast<double>(config.diffusion_lr))
      .add(config.surrogate)
      .add(static_cast<std::uint64_t>(config.surrogate_train.epochs))
      .add(static_cast<std::uint64_t>(config.surrogate_train.batch_size))
      .add(static_cast<double>(config.surrogate_train.lr))
      .add(config.surrogate_train.holdout_fraction)
      .add(static_cast<std::uint64_t>(data_parallel ? 1 : 0));
  return h.hash();
}

util::ThreadPool* CloPipeline::acquire_pool(
    std::unique_ptr<util::ThreadPool>* owned) const {
  if (external_pool_ != nullptr) {
    return external_pool_->size() >= 2 ? external_pool_ : nullptr;
  }
  const std::size_t workers = util::resolve_threads(config_.threads);
  if (workers < 2) return nullptr;
  *owned = std::make_unique<util::ThreadPool>(workers);
  return owned->get();
}

bool CloPipeline::data_parallel() const {
  if (external_pool_ != nullptr) return external_pool_->size() >= 2;
  return util::resolve_threads(config_.threads) >= 2;
}

PipelineResult CloPipeline::run(QorEvaluator& evaluator,
                                const util::CancelToken* cancel) {
  pretrain(evaluator, cancel);
  return optimize(evaluator, cancel);
}

void CloPipeline::pretrain(QorEvaluator& evaluator,
                           const util::CancelToken* cancel) {
  if (pretrained_) return;
  if (cancel != nullptr) cancel->check();
  PipelineResult result;
  clo::Rng rng(config_.seed);
  // A pool only exists when parallelism was actually requested; every
  // consumer below treats a null pool as "run serially".
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = acquire_pool(&owned_pool);
  // Let the nn kernels tile large matmuls over the same pool for the
  // duration of this phase (bytes are pool-invariant by contract).
  nn::kernel::PoolGuard kernel_pool(pool);

  std::unique_ptr<CheckpointManager> ckpt;
  if (!config_.checkpoint_dir.empty()) {
    ckpt = std::make_unique<CheckpointManager>(
        config_.checkpoint_dir,
        pipeline_config_hash(config_, evaluator.circuit(), data_parallel()));
  }
  DatasetCheckpoint dck;
  SurrogateCheckpoint sck;
  DiffusionCheckpoint fck;
  bool have_dataset = false, have_surrogate = false, have_diffusion = false;
  if (ckpt != nullptr && config_.resume) {
    // Phases chain: a later checkpoint is only usable when every earlier
    // one loaded (its Rng state continues the earlier phase's stream).
    have_dataset = ckpt->load_dataset(&dck);
    if (have_dataset) {
      have_surrogate = ckpt->load_surrogate(&sck);
      if (have_surrogate) have_diffusion = ckpt->load_diffusion(&fck);
    }
  }

  // ---- One-time pretraining (upper half of Fig. 1) -----------------------
  if (have_dataset) {
    embedding_ = std::make_unique<models::TransformEmbedding>(
        std::move(dck.embedding_table));
    dataset_ = std::move(dck.dataset);
    result.original = dck.original;
    result.dataset_seconds = dck.seconds;
    rng.set_state(dck.rng);
    ++result.resumed_phases;
    CLO_LOG_INFO << evaluator.circuit().name()
                 << ": resumed dataset phase from checkpoint ("
                 << dataset_.size() << " labeled sequences)";
  } else {
    result.original = evaluator.original();
    embedding_ = std::make_unique<models::TransformEmbedding>(
        config_.embed_dim, rng);
    {
      CLO_TRACE_SPAN("pipeline.dataset");
      clo::set_log_phase("dataset");
      Stopwatch w;
      ScopedTimer st(w);
      dataset_ = generate_dataset(evaluator, config_.dataset_size,
                                  config_.seq_len, rng, pool, cancel);
      result.dataset_seconds = w.seconds();
      CLO_OBS_GAUGE("pipeline.dataset_seconds", result.dataset_seconds);
    }
    if (ckpt != nullptr) {
      DatasetCheckpoint c;
      c.original = result.original;
      c.embedding_table = embedding_->table();
      c.dataset = dataset_;
      c.seconds = result.dataset_seconds;
      c.rng = rng.state();
      if (!ckpt->save_dataset(c)) {
        CLO_LOG_WARN << "checkpoint: dataset save failed (continuing)";
      }
    }
  }

  models::SurrogateConfig scfg;
  scfg.seq_len = config_.seq_len;
  scfg.embed_dim = config_.embed_dim;
  if (have_surrogate) {
    // Architecture from a throwaway rng (every weight is overwritten by
    // the checkpoint), then the post-phase Rng stream.
    clo::Rng init_rng(config_.seed ^ 0x5caffe17ULL);
    surrogate_ = models::make_surrogate(config_.surrogate,
                                        evaluator.circuit(), scfg, init_rng);
    bool loaded = false;
    try {
      auto params = surrogate_->parameters();
      std::istringstream is(sck.weights);
      loaded = nn::load_parameters(params, is);
    } catch (const std::exception&) {
      loaded = false;
    }
    if (loaded) {
      result.surrogate_report = sck.report;
      result.surrogate_train_seconds = sck.seconds;
      rng.set_state(sck.rng);
      ++result.resumed_phases;
      CLO_LOG_INFO << evaluator.circuit().name()
                   << ": resumed surrogate phase from checkpoint";
    } else {
      CLO_LOG_WARN << "checkpoint: surrogate weights unreadable; retraining";
      have_surrogate = false;
      have_diffusion = false;
      surrogate_.reset();
    }
  }
  if (!have_surrogate) {
    // Phase boundary: don't start a training phase that is already doomed.
    if (cancel != nullptr) cancel->check();
    surrogate_ = models::make_surrogate(config_.surrogate,
                                        evaluator.circuit(), scfg, rng);
    {
      CLO_TRACE_SPAN("pipeline.surrogate_train");
      clo::set_log_phase("surrogate_train");
      Stopwatch w;
      ScopedTimer st(w);
      // Replicas only borrow the master's architecture; their init weights
      // are overwritten before use, so a fixed factory seed is fine.
      SurrogateFactory factory = [this, &evaluator, scfg] {
        clo::Rng factory_rng(config_.seed ^ 0x5caff01dULL);
        return models::make_surrogate(config_.surrogate, evaluator.circuit(),
                                      scfg, factory_rng);
      };
      result.surrogate_report =
          train_surrogate(*surrogate_, *embedding_, dataset_,
                          config_.surrogate_train, rng, pool, factory,
                          cancel);
      result.surrogate_train_seconds = w.seconds();
      CLO_OBS_GAUGE("pipeline.surrogate_train_seconds",
                    result.surrogate_train_seconds);
    }
    if (ckpt != nullptr) {
      bool saved = false;
      try {
        SurrogateCheckpoint c;
        std::ostringstream os;
        if (nn::save_parameters(surrogate_->parameters(), os)) {
          c.weights = os.str();
          c.report = result.surrogate_report;
          c.seconds = result.surrogate_train_seconds;
          c.rng = rng.state();
          saved = ckpt->save_surrogate(c);
        }
      } catch (const std::exception&) {
        saved = false;
      }
      if (!saved) {
        CLO_LOG_WARN << "checkpoint: surrogate save failed (continuing)";
      }
    }
  }
  CLO_LOG_INFO << evaluator.circuit().name() << ": surrogate '"
               << config_.surrogate << "' holdout mse "
               << result.surrogate_report.holdout_mse << ", spearman(area) "
               << result.surrogate_report.spearman_area;

  models::DiffusionConfig dcfg;
  dcfg.seq_len = config_.seq_len;
  dcfg.embed_dim = config_.embed_dim;
  dcfg.num_steps = config_.diffusion_steps;
  if (have_diffusion) {
    clo::Rng init_rng(config_.seed ^ 0xd1ff0517ULL);
    diffusion_ = std::make_unique<models::DiffusionModel>(dcfg, init_rng);
    bool loaded = false;
    try {
      auto params = diffusion_->unet().parameters();
      std::istringstream is(fck.weights);
      loaded = nn::load_parameters(params, is);
    } catch (const std::exception&) {
      loaded = false;
    }
    if (loaded) {
      result.diffusion_report = fck.stats;
      result.diffusion_train_seconds = fck.seconds;
      rng.set_state(fck.rng);
      ++result.resumed_phases;
      CLO_LOG_INFO << evaluator.circuit().name()
                   << ": resumed diffusion phase from checkpoint";
    } else {
      CLO_LOG_WARN << "checkpoint: diffusion weights unreadable; retraining";
      have_diffusion = false;
      diffusion_.reset();
    }
  }
  if (!have_diffusion) {
    if (cancel != nullptr) cancel->check();
    diffusion_ = std::make_unique<models::DiffusionModel>(dcfg, rng);
    {
      CLO_TRACE_SPAN("pipeline.diffusion_train");
      clo::set_log_phase("diffusion_train");
      Stopwatch w;
      ScopedTimer st(w);
      std::vector<std::vector<float>> data;
      data.reserve(dataset_.size());
      for (const auto& seq : dataset_.sequences) {
        data.push_back(embedding_->embed(seq));
      }
      result.diffusion_report = diffusion_->train(
          data, config_.diffusion_iters, config_.diffusion_batch,
          config_.diffusion_lr, rng, cancel);
      result.diffusion_train_seconds = w.seconds();
      CLO_OBS_GAUGE("pipeline.diffusion_train_seconds",
                    result.diffusion_train_seconds);
      CLO_LOG_INFO << evaluator.circuit().name() << ": diffusion loss "
                   << result.diffusion_report.final_loss << " after "
                   << result.diffusion_report.iterations << " iters";
    }
    if (ckpt != nullptr) {
      bool saved = false;
      try {
        DiffusionCheckpoint c;
        std::ostringstream os;
        if (nn::save_parameters(diffusion_->unet().parameters(), os)) {
          c.weights = os.str();
          c.stats = result.diffusion_report;
          c.seconds = result.diffusion_train_seconds;
          c.rng = rng.state();
          saved = ckpt->save_diffusion(c);
        }
      } catch (const std::exception&) {
        saved = false;
      }
      if (!saved) {
        CLO_LOG_WARN << "checkpoint: diffusion save failed (continuing)";
      }
    }
  }
  clo::set_log_phase("");
  boundary_rng_ = rng.state();
  pretrain_result_ = std::move(result);
  pretrained_ = true;
}

PipelineResult CloPipeline::optimize(QorEvaluator& evaluator,
                                     const util::CancelToken* cancel) {
  pretrain(evaluator, cancel);
  if (cancel != nullptr) cancel->check();
  // Start from a copy of the pretraining result and the boundary Rng
  // state: every optimize() call replays the identical stream, so a warm
  // query's best_sequence is byte-identical to a cold run().
  PipelineResult result = pretrain_result_;
  clo::Rng rng(config_.seed);
  rng.set_state(boundary_rng_);
  std::unique_ptr<util::ThreadPool> owned_pool;
  util::ThreadPool* pool = acquire_pool(&owned_pool);
  nn::kernel::PoolGuard kernel_pool(pool);
  result.kernel_threads = static_cast<int>(nn::kernel::threads());

  // ---- Continuous optimization (lower half of Fig. 1) --------------------
  ContinuousOptimizer optimizer(*surrogate_, *diffusion_, *embedding_,
                                config_.optimize);
  {
    CLO_TRACE_SPAN("pipeline.optimize");
    clo::set_log_phase("optimize");
    Stopwatch w;
    ScopedTimer st(w);
    result.restarts = optimizer.run_restarts_tolerant(
        rng, config_.restarts, pool, config_.batch,
        &result.optimize_quarantined, cancel);
    result.optimize_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.optimize_seconds", result.optimize_seconds);
    for (const auto& f : result.optimize_quarantined) {
      CLO_LOG_WARN << "optimize: quarantined restart " << f.index << ": "
                   << f.message;
    }
  }

  // ---- Validation with real synthesis (outside the optimization loop) ----
  {
    CLO_TRACE_SPAN("pipeline.validate");
    clo::set_log_phase("validate");
    Stopwatch w;
    ScopedTimer st(w);
    // Label every restart in parallel, then pick the winner serially so
    // the first-lowest tie-break is scheduling-independent. Every restart
    // is attempted even when one fails; failures get one serial retry
    // (recovers one-shot faults) before the restart is quarantined.
    result.restart_qor.resize(result.restarts.size());
    std::vector<char> valid(result.restarts.size(), 1);
    for (const auto& f : result.optimize_quarantined) valid[f.index] = 0;
    obs::Progress progress("validate", result.restarts.size());
    const auto errors = util::parallel_for_collect(
        pool, result.restarts.size(), [&](std::size_t i) {
          if (!valid[i]) return;
          result.restart_qor[i] =
              evaluator.evaluate(result.restarts[i].sequence, cancel);
          progress.tick();
        });
    // Cancellation bypasses the serial retry: a cancelled validation pass
    // must surface as an error, not as a wave of quarantined restarts.
    if (cancel != nullptr) cancel->check();
    for (const auto& e : errors) {
      try {
        result.restart_qor[e.index] =
            evaluator.evaluate(result.restarts[e.index].sequence, cancel);
      } catch (const util::CancelledError&) {
        throw;
      } catch (const std::exception& ex) {
        valid[e.index] = 0;
        result.validate_quarantined.push_back({e.index, ex.what()});
        CLO_OBS_COUNT("pipeline.quarantined_validations", 1);
        CLO_LOG_WARN << "validate: quarantined restart " << e.index << ": "
                     << ex.what();
      }
    }
    double best_score = 1e300;
    bool any_valid = false;
    for (std::size_t i = 0; i < result.restarts.size(); ++i) {
      if (!valid[i]) continue;
      const auto& restart = result.restarts[i];
      const Qor q = result.restart_qor[i];
      const double score =
          config_.optimize.weight_area *
              (q.area_um2 - dataset_.area_mean) / dataset_.area_std +
          config_.optimize.weight_delay *
              (q.delay_ps - dataset_.delay_mean) / dataset_.delay_std;
      if (score < best_score) {
        best_score = score;
        result.best = q;
        result.best_sequence = restart.sequence;
        result.best_discrepancy = restart.discrepancy;
        any_valid = true;
      }
    }
    if (!any_valid) {
      // Every restart failed: report the unmodified circuit rather than a
      // zero-QoR artifact.
      result.best = result.original;
      result.best_sequence.clear();
      result.best_discrepancy = 0.0;
    }
    result.validate_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.validate_seconds", result.validate_seconds);
  }

  // ---- SAT equivalence verification (--verify) ---------------------------
  // Replay every distinct surviving sequence on a copy of the original
  // circuit and prove it equivalent with the miter-based checker. Like
  // validation, this runs outside the optimization loop and is excluded
  // from the Fig. 5 time.
  if (config_.verify) {
    CLO_TRACE_SPAN("pipeline.verify");
    clo::set_log_phase("verify");
    Stopwatch w;
    ScopedTimer st(w);
    std::vector<char> valid(result.restarts.size(), 1);
    for (const auto& f : result.optimize_quarantined) valid[f.index] = 0;
    for (const auto& f : result.validate_quarantined) valid[f.index] = 0;
    std::vector<opt::Sequence> sequences;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < result.restarts.size(); ++i) {
      if (!valid[i]) continue;
      const auto& seq = result.restarts[i].sequence;
      if (seen.insert(opt::sequence_to_string(seq)).second) {
        sequences.push_back(seq);
      }
    }
    // When every restart was quarantined, `best` falls back to the
    // original circuit with an empty sequence — still worth one (trivial)
    // check so the report always carries a verdict.
    if (sequences.empty()) sequences.push_back(result.best_sequence);
    result.verify_verdict = "equivalent";
    for (const auto& seq : sequences) {
      if (cancel != nullptr) cancel->check();
      Stopwatch check_watch;
      ScopedTimer check_timer(check_watch);
      aig::Aig optimized = evaluator.circuit();
      opt::run_sequence(optimized, seq);
      const auto outcome =
          sat::check_equivalence(evaluator.circuit(), optimized);
      result.verification.push_back({seq, outcome, check_watch.seconds()});
      if (outcome.verdict == sat::CecVerdict::kNotEquivalent) {
        result.verify_verdict = "not_equivalent";
        CLO_LOG_ERROR << "verify: sequence '" << opt::sequence_to_string(seq)
                      << "' is NOT equivalent to the original (PO "
                      << outcome.failing_po << ")";
      } else if (outcome.verdict == sat::CecVerdict::kUnknown &&
                 result.verify_verdict == "equivalent") {
        result.verify_verdict = "unknown";
      }
    }
    result.verify_seconds = w.seconds();
    CLO_OBS_GAUGE("pipeline.verify_seconds", result.verify_seconds);
    CLO_LOG_INFO << evaluator.circuit().name() << ": verify "
                 << result.verify_verdict << " (" << sequences.size()
                 << " sequence(s), " << result.verify_seconds << " s)";
  }
  clo::set_log_phase("");
  return result;
}

obs::Json pipeline_report(const PipelineResult& result,
                          const EvaluatorStats& evaluator_stats) {
  obs::Json report = obs::Json::object();
  report["schema"] = obs::Json(std::string("clo.report.v1"));
  report["run"] = obs::Json(clo::run_id());
  report["status"] = obs::Json(std::string("ok"));
  // Which nn kernel dispatch target produced these numbers ("avx512",
  // "avx2", or "scalar") and how many pool workers the tiled GEMM could
  // fan out over. All targets and thread counts are bitwise identical by
  // contract; recording them lets CI diff a --no-simd or --threads run
  // against a default run.
  report["kernel_target"] = obs::Json(std::string(nn::kernel::active_target()));
  report["kernel_threads"] = obs::Json(result.kernel_threads);

  obs::Json resume = obs::Json::object();
  resume["resumed_phases"] = obs::Json(result.resumed_phases);
  report["resume"] = resume;

  // Fault-tolerance accounting: which restarts were quarantined and why,
  // plus the active fault-injection arming (if any) so a chaos run's
  // report documents exactly what was injected.
  obs::Json quarantine = obs::Json::object();
  auto failures_json =
      [](const std::vector<ContinuousOptimizer::RestartFailure>& v) {
        obs::Json arr = obs::Json::array();
        for (const auto& f : v) {
          obs::Json e = obs::Json::object();
          e["restart"] = obs::Json(static_cast<std::uint64_t>(f.index));
          e["message"] = obs::Json(f.message);
          arr.push_back(std::move(e));
        }
        return arr;
      };
  quarantine["optimize"] = failures_json(result.optimize_quarantined);
  quarantine["validate"] = failures_json(result.validate_quarantined);
  quarantine["total"] = obs::Json(static_cast<std::uint64_t>(
      result.optimize_quarantined.size() +
      result.validate_quarantined.size()));
  report["quarantine"] = quarantine;
  {
    const std::string fault = util::fault::describe();
    if (!fault.empty()) report["fault"] = obs::Json(fault);
  }

  obs::Json qor = obs::Json::object();
  qor["original_area_um2"] = obs::Json(result.original.area_um2);
  qor["original_delay_ps"] = obs::Json(result.original.delay_ps);
  qor["best_area_um2"] = obs::Json(result.best.area_um2);
  qor["best_delay_ps"] = obs::Json(result.best.delay_ps);
  qor["best_sequence"] = obs::Json(opt::sequence_to_string(
      result.best_sequence));
  qor["best_discrepancy"] = obs::Json(result.best_discrepancy);
  report["qor"] = qor;

  obs::Json phases = obs::Json::object();
  phases["dataset"] = obs::Json(result.dataset_seconds);
  phases["surrogate_train"] = obs::Json(result.surrogate_train_seconds);
  phases["diffusion_train"] = obs::Json(result.diffusion_train_seconds);
  phases["optimize"] = obs::Json(result.optimize_seconds);
  phases["validate"] = obs::Json(result.validate_seconds);
  if (!result.verify_verdict.empty()) {
    phases["verify"] = obs::Json(result.verify_seconds);
  }
  report["phase_seconds"] = phases;

  // SAT verification results (present only when --verify ran): the
  // aggregate verdict plus one entry per checked sequence with its method
  // ("interface"/"sim"/"sat") and per-check latency.
  if (!result.verify_verdict.empty()) {
    report["verify"] = obs::Json(result.verify_verdict);
    obs::Json verification = obs::Json::object();
    verification["seconds"] = obs::Json(result.verify_seconds);
    obs::Json checks = obs::Json::array();
    for (const auto& check : result.verification) {
      obs::Json entry = obs::Json::object();
      entry["sequence"] =
          obs::Json(opt::sequence_to_string(check.sequence));
      entry["verdict"] = obs::Json(
          std::string(sat::cec_verdict_name(check.outcome.verdict)));
      entry["method"] = obs::Json(check.outcome.method);
      entry["patterns_simulated"] = obs::Json(
          static_cast<std::uint64_t>(check.outcome.patterns_simulated));
      entry["conflicts"] = obs::Json(check.outcome.solver_stats.conflicts);
      entry["seconds"] = obs::Json(check.seconds);
      checks.push_back(std::move(entry));
    }
    verification["checks"] = checks;
    report["verification"] = verification;
  }

  obs::Json ev = obs::Json::object();
  ev["queries"] = obs::Json(static_cast<std::uint64_t>(
      evaluator_stats.queries));
  ev["unique_runs"] = obs::Json(static_cast<std::uint64_t>(
      evaluator_stats.unique_runs));
  ev["cache_hits"] = obs::Json(static_cast<std::uint64_t>(
      evaluator_stats.cache_hits));
  ev["hit_rate"] = obs::Json(evaluator_stats.hit_rate);
  ev["synth_seconds"] = obs::Json(evaluator_stats.synth_seconds);
  report["evaluator"] = ev;

  obs::Json surrogate = obs::Json::object();
  surrogate["train_mse"] = obs::Json(result.surrogate_report.train_mse);
  surrogate["holdout_mse"] = obs::Json(result.surrogate_report.holdout_mse);
  surrogate["spearman_area"] =
      obs::Json(result.surrogate_report.spearman_area);
  surrogate["spearman_delay"] =
      obs::Json(result.surrogate_report.spearman_delay);
  surrogate["seconds"] = obs::Json(result.surrogate_report.seconds);
  surrogate["loss_series"] = series_json(result.surrogate_report.epoch_loss);
  report["surrogate"] = surrogate;

  obs::Json diffusion = obs::Json::object();
  diffusion["iterations"] = obs::Json(result.diffusion_report.iterations);
  diffusion["final_loss"] = obs::Json(result.diffusion_report.final_loss);
  diffusion["loss_series"] = series_json(result.diffusion_report.loss_curve);
  report["diffusion"] = diffusion;

  std::vector<std::string> restart_status(result.restarts.size(), "ok");
  for (const auto& f : result.optimize_quarantined) {
    if (f.index < restart_status.size()) restart_status[f.index] = "quarantined";
  }
  for (const auto& f : result.validate_quarantined) {
    if (f.index < restart_status.size()) {
      restart_status[f.index] = "validate_failed";
    }
  }
  obs::Json restarts = obs::Json::array();
  for (std::size_t i = 0; i < result.restarts.size(); ++i) {
    const auto& r = result.restarts[i];
    obs::Json entry = obs::Json::object();
    entry["status"] = obs::Json(restart_status[i]);
    entry["discrepancy"] = obs::Json(r.discrepancy);
    entry["predicted_objective"] = obs::Json(r.predicted_objective);
    entry["seconds"] = obs::Json(r.seconds);
    if (i < result.restart_qor.size() && restart_status[i] == "ok") {
      entry["area_um2"] = obs::Json(result.restart_qor[i].area_um2);
      entry["delay_ps"] = obs::Json(result.restart_qor[i].delay_ps);
    }
    restarts.push_back(std::move(entry));
  }
  report["restarts"] = restarts;

  report["metrics"] = obs::Registry::instance().snapshot().to_json();
  return report;
}

}  // namespace clo::core
