#include "clo/core/pipeline.hpp"

#include "clo/util/log.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

PipelineResult CloPipeline::run(QorEvaluator& evaluator) {
  PipelineResult result;
  clo::Rng rng(config_.seed);
  result.original = evaluator.original();

  // ---- One-time pretraining (upper half of Fig. 1) -----------------------
  embedding_ = std::make_unique<models::TransformEmbedding>(
      config_.embed_dim, rng);
  {
    Stopwatch w;
    ScopedTimer st(w);
    dataset_ = generate_dataset(evaluator, config_.dataset_size,
                                config_.seq_len, rng);
    result.dataset_seconds = w.seconds();
  }
  models::SurrogateConfig scfg;
  scfg.seq_len = config_.seq_len;
  scfg.embed_dim = config_.embed_dim;
  surrogate_ = models::make_surrogate(config_.surrogate, evaluator.circuit(),
                                      scfg, rng);
  {
    Stopwatch w;
    ScopedTimer st(w);
    result.surrogate_report = train_surrogate(
        *surrogate_, *embedding_, dataset_, config_.surrogate_train, rng);
    result.surrogate_train_seconds = w.seconds();
  }
  CLO_LOG_INFO << evaluator.circuit().name() << ": surrogate '"
               << config_.surrogate << "' holdout mse "
               << result.surrogate_report.holdout_mse << ", spearman(area) "
               << result.surrogate_report.spearman_area;

  models::DiffusionConfig dcfg;
  dcfg.seq_len = config_.seq_len;
  dcfg.embed_dim = config_.embed_dim;
  dcfg.num_steps = config_.diffusion_steps;
  diffusion_ = std::make_unique<models::DiffusionModel>(dcfg, rng);
  {
    Stopwatch w;
    ScopedTimer st(w);
    std::vector<std::vector<float>> data;
    data.reserve(dataset_.size());
    for (const auto& seq : dataset_.sequences) {
      data.push_back(embedding_->embed(seq));
    }
    const auto ts = diffusion_->train(data, config_.diffusion_iters,
                                      config_.diffusion_batch,
                                      config_.diffusion_lr, rng);
    result.diffusion_train_seconds = w.seconds();
    CLO_LOG_INFO << evaluator.circuit().name() << ": diffusion loss "
                 << ts.final_loss << " after " << ts.iterations << " iters";
  }

  // ---- Continuous optimization (lower half of Fig. 1) --------------------
  ContinuousOptimizer optimizer(*surrogate_, *diffusion_, *embedding_,
                                config_.optimize);
  {
    Stopwatch w;
    ScopedTimer st(w);
    for (int r = 0; r < config_.restarts; ++r) {
      result.restarts.push_back(optimizer.run(rng));
    }
    result.optimize_seconds = w.seconds();
  }

  // ---- Validation with real synthesis (outside the optimization loop) ----
  {
    Stopwatch w;
    ScopedTimer st(w);
    double best_score = 1e300;
    for (const auto& restart : result.restarts) {
      const Qor q = evaluator.evaluate(restart.sequence);
      result.restart_qor.push_back(q);
      const double score =
          config_.optimize.weight_area *
              (q.area_um2 - dataset_.area_mean) / dataset_.area_std +
          config_.optimize.weight_delay *
              (q.delay_ps - dataset_.delay_mean) / dataset_.delay_std;
      if (score < best_score) {
        best_score = score;
        result.best = q;
        result.best_sequence = restart.sequence;
        result.best_discrepancy = restart.discrepancy;
      }
    }
    result.validate_seconds = w.seconds();
  }
  return result;
}

}  // namespace clo::core
