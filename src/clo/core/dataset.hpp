#pragma once
// Training data for the surrogate + diffusion models: randomly generated
// sequences labeled by real synthesis (the paper uses 20000 random
// ABC-synthesized sequences per circuit; the count here is a scale knob).

#include <vector>

#include "clo/core/evaluator.hpp"
#include "clo/opt/transform.hpp"
#include "clo/util/cancel.hpp"
#include "clo/util/rng.hpp"

namespace clo::util {
class ThreadPool;
}

namespace clo::core {

struct Dataset {
  std::vector<opt::Sequence> sequences;
  std::vector<Qor> qor;
  // z-normalization constants for the labels.
  double area_mean = 0.0, area_std = 1.0;
  double delay_mean = 0.0, delay_std = 1.0;

  std::size_t size() const { return sequences.size(); }
  float norm_area(std::size_t i) const {
    return static_cast<float>((qor[i].area_um2 - area_mean) / area_std);
  }
  float norm_delay(std::size_t i) const {
    return static_cast<float>((qor[i].delay_ps - delay_mean) / delay_std);
  }
  /// Invert normalization (for reporting predicted QoR).
  double denorm_area(double v) const { return v * area_std + area_mean; }
  double denorm_delay(double v) const { return v * delay_std + delay_mean; }
};

/// Sample `n` random length-`length` sequences and label them. Sequences
/// are drawn serially from `rng`; labeling fans out over `pool` when one
/// is given. The result is bit-identical for any worker count (including
/// the serial `pool == nullptr` path). `cancel` is polled per labeled
/// item; a fired token aborts with util::CancelledError (parallel_for
/// rethrows the first worker exception).
Dataset generate_dataset(QorEvaluator& evaluator, int n, int length,
                         clo::Rng& rng, util::ThreadPool* pool = nullptr,
                         const util::CancelToken* cancel = nullptr);

}  // namespace clo::core
