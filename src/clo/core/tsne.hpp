#pragma once
// Barnes-Hut-free exact t-SNE (van der Maaten & Hinton, 2008) for the
// paper's latent-space visualizations (Figs. 2 and 7). Exact pairwise
// computation is fine at the scale used there (tens to hundreds of points).

#include <vector>

#include "clo/util/rng.hpp"

namespace clo::core {

struct TsneParams {
  double perplexity = 12.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;
  int exaggeration_iters = 100;
  double momentum = 0.5;
  double final_momentum = 0.8;
};

/// Project `points` (each a vector of equal dimension) to 2-D.
/// Returns one (x, y) pair per input point.
std::vector<std::pair<double, double>> tsne(
    const std::vector<std::vector<float>>& points, const TsneParams& params,
    clo::Rng& rng);

}  // namespace clo::core
