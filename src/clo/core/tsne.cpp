#include "clo/core/tsne.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace clo::core {
namespace {

/// Binary-search the Gaussian bandwidth for one row to hit the target
/// perplexity; returns the row of conditional probabilities p_{j|i}.
std::vector<double> conditional_probs(const std::vector<double>& d2_row,
                                      std::size_t self, double perplexity) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_min = 0.0, beta_max = 1e12;
  std::vector<double> p(d2_row.size(), 0.0);
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0;
    for (std::size_t j = 0; j < d2_row.size(); ++j) {
      p[j] = (j == self) ? 0.0 : std::exp(-beta * d2_row[j]);
      sum += p[j];
    }
    if (sum <= 0.0) sum = 1e-12;
    double entropy = 0.0;
    for (std::size_t j = 0; j < d2_row.size(); ++j) {
      p[j] /= sum;
      if (p[j] > 1e-12) entropy -= p[j] * std::log(p[j]);
    }
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0) {
      beta_min = beta;
      beta = (beta_max > 1e11) ? beta * 2 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = 0.5 * (beta + beta_min);
    }
  }
  return p;
}

}  // namespace

std::vector<std::pair<double, double>> tsne(
    const std::vector<std::vector<float>>& points, const TsneParams& params,
    clo::Rng& rng) {
  const std::size_t n = points.size();
  if (n < 3) throw std::invalid_argument("tsne: need at least 3 points");
  const std::size_t dim = points[0].size();
  // Pairwise squared distances.
  std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < dim; ++k) {
        const double d = points[i][k] - points[j][k];
        s += d * d;
      }
      d2[i][j] = d2[j][i] = s;
    }
  }
  // Symmetrized joint probabilities.
  const double perplexity =
      std::min(params.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = conditional_probs(d2[i], i, perplexity);
    for (std::size_t j = 0; j < n; ++j) p[i][j] = row[j];
  }
  double psum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p[i][j] = 0.5 * (p[i][j] + p[j][i]);
      psum += p[i][j];
    }
  }
  for (auto& row : p) {
    for (auto& v : row) v = std::max(v / psum, 1e-12);
  }

  // Gradient descent on the 2-D embedding.
  std::vector<std::array<double, 2>> y(n), vel(n, {0.0, 0.0});
  for (auto& yi : y) {
    yi = {rng.next_gaussian() * 1e-2, rng.next_gaussian() * 1e-2};
  }
  std::vector<std::vector<double>> q(n, std::vector<double>(n, 0.0));
  for (int iter = 0; iter < params.iterations; ++iter) {
    const double exaggeration =
        iter < params.exaggeration_iters ? params.early_exaggeration : 1.0;
    const double momentum =
        iter < params.exaggeration_iters ? params.momentum
                                         : params.final_momentum;
    // Student-t similarities.
    double qsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dx = y[i][0] - y[j][0];
        const double dy = y[i][1] - y[j][1];
        const double w = 1.0 / (1.0 + dx * dx + dy * dy);
        q[i][j] = q[j][i] = w;
        qsum += 2.0 * w;
      }
    }
    // Gradient step.
    for (std::size_t i = 0; i < n; ++i) {
      double gx = 0.0, gy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double qij = std::max(q[i][j] / qsum, 1e-12);
        const double mult =
            (exaggeration * p[i][j] - qij) * q[i][j];  // (p-q) * w
        gx += 4.0 * mult * (y[i][0] - y[j][0]);
        gy += 4.0 * mult * (y[i][1] - y[j][1]);
      }
      vel[i][0] = momentum * vel[i][0] - params.learning_rate * gx;
      vel[i][1] = momentum * vel[i][1] - params.learning_rate * gy;
    }
    for (std::size_t i = 0; i < n; ++i) {
      y[i][0] += vel[i][0];
      y[i][1] += vel[i][1];
    }
  }
  std::vector<std::pair<double, double>> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = {y[i][0], y[i][1]};
  return out;
}

}  // namespace clo::core
