#include "clo/core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "clo/nn/ops.hpp"
#include "clo/util/fault.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

using nn::Tensor;

namespace {

/// Clip a gradient to L2 norm `max_norm` — keeps the guidance term
/// well-scaled vs the noise term. Shared by the per-restart and batched
/// objective paths (per restart, so batching cannot change the clip).
void clip_gradient(std::vector<float>* grad, double max_norm) {
  double norm2 = 0.0;
  for (float g : *grad) norm2 += static_cast<double>(g) * g;
  const double norm = std::sqrt(norm2);
  if (norm > max_norm && norm > 0.0) {
    const float s = static_cast<float>(max_norm / norm);
    for (auto& g : *grad) g *= s;
  }
}

/// Clears ContinuousOptimizer::progress_ on scope exit so the borrowed
/// stack reporter can never dangle, even when a restart throws.
struct ProgressInstall {
  obs::Progress** slot;
  ProgressInstall(obs::Progress** s, obs::Progress* p) : slot(s) {
    *slot = p;
  }
  ~ProgressInstall() { *slot = nullptr; }
  ProgressInstall(const ProgressInstall&) = delete;
  ProgressInstall& operator=(const ProgressInstall&) = delete;
};

/// Same discipline for the borrowed cancellation token.
struct CancelInstall {
  const util::CancelToken** slot;
  CancelInstall(const util::CancelToken** s, const util::CancelToken* t)
      : slot(s) {
    *slot = t;
  }
  ~CancelInstall() { *slot = nullptr; }
  CancelInstall(const CancelInstall&) = delete;
  CancelInstall& operator=(const CancelInstall&) = delete;
};

/// The non-finite-latent guard: a NaN/Inf latent would silently decode to
/// a garbage nearest-embedding sequence, so surface it as a failure the
/// tolerant restart driver can retry instead.
void check_latent_finite(const std::vector<float>& x) {
  for (float v : x) {
    if (!std::isfinite(v)) {
      throw std::runtime_error("optimizer: non-finite latent after denoising");
    }
  }
}

}  // namespace

ContinuousOptimizer::ContinuousOptimizer(
    models::SurrogateModel& surrogate, models::DiffusionModel& diffusion,
    const models::TransformEmbedding& embedding, OptimizeParams params)
    : surrogate_(surrogate), diffusion_(diffusion), embedding_(embedding),
      params_(params) {}

double ContinuousOptimizer::objective_and_grad(const std::vector<float>& x,
                                               std::vector<float>* grad) {
  if (grad == nullptr) {
    // Inference-only query: no autograd graph at all. (The old path built
    // and retained the full graph just to read one scalar.)
    nn::NoGradGuard no_grad;
    Tensor input = Tensor::from_data({1, static_cast<int>(x.size())}, x);
    auto out = surrogate_.forward(input);
    Tensor objective =
        nn::add(nn::scale(out.area, static_cast<float>(params_.weight_area)),
                nn::scale(out.delay, static_cast<float>(params_.weight_delay)));
    return objective.item();
  }
  Tensor input = Tensor::from_data(
      {1, static_cast<int>(x.size())}, x, /*requires_grad=*/true);
  auto out = surrogate_.forward(input);
  Tensor objective =
      nn::add(nn::scale(out.area, static_cast<float>(params_.weight_area)),
              nn::scale(out.delay, static_cast<float>(params_.weight_delay)));
  nn::backward(objective);
  grad->assign(input.grad().begin(), input.grad().end());
  clip_gradient(grad, params_.grad_clip);
  return objective.item();
}

std::vector<double> ContinuousOptimizer::objective_and_grad_batch(
    const std::vector<std::vector<float>>& xs,
    std::vector<std::vector<float>>* grads) {
  if (xs.empty()) return {};
  const int R = static_cast<int>(xs.size());
  const int n = static_cast<int>(xs[0].size());
  std::vector<float> stacked;
  stacked.reserve(static_cast<std::size_t>(R) * n);
  for (const auto& x : xs) stacked.insert(stacked.end(), x.begin(), x.end());
  const float wa = static_cast<float>(params_.weight_area);
  const float wd = static_cast<float>(params_.weight_delay);

  if (grads == nullptr) {
    nn::NoGradGuard no_grad;
    Tensor input = Tensor::from_data({R, n}, std::move(stacked));
    auto out = surrogate_.forward(input);
    std::vector<double> objs(R);
    for (int r = 0; r < R; ++r) {
      objs[r] = wa * out.area.data()[r] + wd * out.delay.data()[r];
    }
    return objs;
  }

  Tensor input =
      Tensor::from_data({R, n}, std::move(stacked), /*requires_grad=*/true);
  auto out = surrogate_.forward(input);
  // Per-row objective values with the same float arithmetic as the
  // per-restart objective tensor (wa*area then + wd*delay).
  std::vector<double> objs(R);
  for (int r = 0; r < R; ++r) {
    objs[r] = wa * out.area.data()[r] + wd * out.delay.data()[r];
  }
  // One backward from the sum of row objectives. Rows are independent
  // (no op mixes batch rows), so each input row's gradient equals its own
  // single-restart gradient: the sum merely seeds every row with the same
  // d(total)/d(row objective) = 1.
  Tensor total = nn::add(nn::scale(nn::sum_all(out.area), wa),
                         nn::scale(nn::sum_all(out.delay), wd));
  nn::backward(total);
  const auto& g = input.grad();
  grads->assign(R, std::vector<float>(n));
  for (int r = 0; r < R; ++r) {
    std::copy(g.begin() + static_cast<std::ptrdiff_t>(r) * n,
              g.begin() + static_cast<std::ptrdiff_t>(r + 1) * n,
              (*grads)[r].begin());
    clip_gradient(&(*grads)[r], params_.grad_clip);
  }
  return objs;
}

std::size_t ContinuousOptimizer::noise_count() const {
  const auto& cfg = diffusion_.config();
  const std::size_t elems =
      static_cast<std::size_t>(cfg.seq_len) * cfg.embed_dim;
  if (!params_.use_diffusion) return elems;
  return elems * diffusion_.schedule().num_steps();
}

OptimizeResult ContinuousOptimizer::run(clo::Rng& rng) {
  std::vector<float> noise(noise_count());
  for (auto& v : noise) v = static_cast<float>(rng.next_gaussian());
  return run_impl(noise);
}

OptimizeResult ContinuousOptimizer::run_impl(const std::vector<float>& noise) {
  CLO_TRACE_SPAN("optimize.restart");
  CLO_FAULT_POINT("optimizer.restart");
  Stopwatch watch;
  watch.start();
  const auto& cfg = diffusion_.config();
  const int L = cfg.seq_len, d = cfg.embed_dim;
  const auto& sched = diffusion_.schedule();
  const int T = sched.num_steps();

  OptimizeResult result;
  std::size_t cursor = 0;
  std::vector<float> x(static_cast<std::size_t>(L) * d);
  for (auto& v : x) v = noise[cursor++];
  if (CLO_FAULT_FIRED("optimizer.latent_nan")) {
    x[0] = std::numeric_limits<float>::quiet_NaN();
  }

  if (!params_.use_diffusion) {
    // Eq. 14: gradient-only continuous optimization (ablation).
    std::vector<float> grad;
    for (int t = T - 1; t >= 0; --t) {
      CLO_TRACE_SPAN("optimize.step");
      CLO_OBS_COUNT("optimizer.denoise_steps", 1);
      if (progress_ != nullptr) progress_->tick();
      if (cancel_ != nullptr) cancel_->check();
      const double obj = objective_and_grad(x, &grad);
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] -= static_cast<float>(params_.ablation_step *
                                   params_.omega) * grad[i];
      }
      // Record the final t == 0 point explicitly, mirroring the diffusion
      // branch — Fig. 4 ablation traces must end at the converged latent.
      if (t % std::max(1, T / 16) == 0 || t == 0) {
        result.trace.push_back(
            {t, embedding_.discrepancy(x, L), obj});
      }
    }
  } else {
    // Eq. 13: denoise + guided gradient at the reparameterized x̂_t.
    std::vector<float> grad;
    for (int t = T - 1; t >= 0; --t) {
      CLO_TRACE_SPAN("optimize.step");
      CLO_OBS_COUNT("optimizer.denoise_steps", 1);
      if (progress_ != nullptr) progress_->tick();
      if (cancel_ != nullptr) cancel_->check();
      const auto eps = diffusion_.predict_noise(x, t);
      const float ab = sched.alpha_bar(t);
      const float sqrt_ab = std::sqrt(ab);
      const float sqrt_1mab = std::sqrt(1.0f - ab);
      // Eq. 12: noise-free reconstruction x̂_t.
      std::vector<float> x_hat(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_hat[i] = (x[i] - sqrt_1mab * eps[i]) / sqrt_ab;
      }
      const double obj = objective_and_grad(x_hat, &grad);
      // Guided noise: eps~ = eps + ω sqrt(1-ᾱ_t) ∇F̂(x̂_t) (Eq. 13 with the
      // DDPM constants folded into η), then an x̂0-clipped posterior step —
      // the clamp keeps denoiser error from compounding over the schedule.
      const float c0 = sched.coef_x0(t);
      const float ct = sched.coef_xt(t);
      const double omega_t =
          params_.guidance_ramp
              ? params_.omega * (1.0 - static_cast<double>(t) / T)
              : params_.omega;
      const float guide = static_cast<float>(omega_t) * sqrt_1mab;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float eps_tilde = eps[i] + guide * grad[i];
        float x0 = (x[i] - sqrt_1mab * eps_tilde) / sqrt_ab;
        x0 = std::min(3.0f, std::max(-3.0f, x0));  // data coords lie in [-sqrt(d), sqrt(d)]
        x[i] = c0 * x0 + ct * x[i];
        if (t > 0) {
          x[i] += sched.sigma(t) * noise[cursor++];
        }
      }
      if (t % std::max(1, T / 16) == 0 || t == 0) {
        result.trace.push_back({t, embedding_.discrepancy(x, L), obj});
      }
    }
  }

  check_latent_finite(x);
  result.latent = x;
  result.sequence = embedding_.retrieve(x, L);
  result.discrepancy = embedding_.discrepancy(x, L);
  result.predicted_objective = objective_and_grad(x, nullptr);
  watch.stop();
  result.seconds = watch.seconds();
  CLO_OBS_OBSERVE("optimizer.discrepancy", result.discrepancy);
  CLO_OBS_OBSERVE("optimizer.predicted_objective", result.predicted_objective);
  CLO_OBS_OBSERVE("optimizer.restart_seconds", result.seconds);
  return result;
}

void ContinuousOptimizer::run_impl_batch(
    const std::vector<std::vector<float>>& noise, std::size_t begin,
    std::size_t end, std::vector<OptimizeResult>* results) {
  CLO_TRACE_SPAN("optimize.batch");
  Stopwatch watch;
  watch.start();
  const auto& cfg = diffusion_.config();
  const int L = cfg.seq_len, d = cfg.embed_dim;
  const auto& sched = diffusion_.schedule();
  const int T = sched.num_steps();
  const std::size_t R = end - begin;
  const std::size_t elems = static_cast<std::size_t>(L) * d;

  std::vector<std::vector<float>> x(R, std::vector<float>(elems));
  std::vector<std::size_t> cursor(R, elems);
  for (std::size_t r = 0; r < R; ++r) {
    CLO_FAULT_POINT("optimizer.restart");
    std::copy(noise[begin + r].begin(), noise[begin + r].begin() + elems,
              x[r].begin());
    if (CLO_FAULT_FIRED("optimizer.latent_nan")) {
      x[r][0] = std::numeric_limits<float>::quiet_NaN();
    }
  }

  std::vector<std::vector<float>> grads;
  std::vector<std::vector<OptimizeTracePoint>> traces(R);

  if (!params_.use_diffusion) {
    // Eq. 14 in lockstep: one [R, L*d] surrogate forward+backward per step.
    for (int t = T - 1; t >= 0; --t) {
      CLO_TRACE_SPAN("optimize.step");
      CLO_OBS_COUNT("optimizer.denoise_steps", R);
      if (progress_ != nullptr) progress_->tick(R);
      if (cancel_ != nullptr) cancel_->check();
      const auto objs = objective_and_grad_batch(x, &grads);
      const float step =
          static_cast<float>(params_.ablation_step * params_.omega);
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t i = 0; i < elems; ++i) x[r][i] -= step * grads[r][i];
      }
      if (t % std::max(1, T / 16) == 0 || t == 0) {
        const auto disc = embedding_.discrepancy_batch(x, L);
        for (std::size_t r = 0; r < R; ++r) {
          traces[r].push_back({t, disc[r], objs[r]});
        }
      }
    }
  } else {
    // Eq. 13 in lockstep: one [R, d, L] U-Net forward and one [R, L*d]
    // surrogate forward+backward per denoising step, shared by every
    // restart — the per-step constants and per-restart update are
    // identical to run_impl.
    std::vector<std::vector<float>> x_hat(R, std::vector<float>(elems));
    for (int t = T - 1; t >= 0; --t) {
      CLO_TRACE_SPAN("optimize.step");
      CLO_OBS_COUNT("optimizer.denoise_steps", R);
      if (progress_ != nullptr) progress_->tick(R);
      if (cancel_ != nullptr) cancel_->check();
      const auto eps = diffusion_.predict_noise_batch(x, t);
      const float ab = sched.alpha_bar(t);
      const float sqrt_ab = std::sqrt(ab);
      const float sqrt_1mab = std::sqrt(1.0f - ab);
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t i = 0; i < elems; ++i) {
          x_hat[r][i] = (x[r][i] - sqrt_1mab * eps[r][i]) / sqrt_ab;
        }
      }
      const auto objs = objective_and_grad_batch(x_hat, &grads);
      const float c0 = sched.coef_x0(t);
      const float ct = sched.coef_xt(t);
      const double omega_t =
          params_.guidance_ramp
              ? params_.omega * (1.0 - static_cast<double>(t) / T)
              : params_.omega;
      const float guide = static_cast<float>(omega_t) * sqrt_1mab;
      for (std::size_t r = 0; r < R; ++r) {
        for (std::size_t i = 0; i < elems; ++i) {
          const float eps_tilde = eps[r][i] + guide * grads[r][i];
          float x0 = (x[r][i] - sqrt_1mab * eps_tilde) / sqrt_ab;
          x0 = std::min(3.0f, std::max(-3.0f, x0));
          x[r][i] = c0 * x0 + ct * x[r][i];
          if (t > 0) {
            x[r][i] += sched.sigma(t) * noise[begin + r][cursor[r]++];
          }
        }
      }
      if (t % std::max(1, T / 16) == 0 || t == 0) {
        const auto disc = embedding_.discrepancy_batch(x, L);
        for (std::size_t r = 0; r < R; ++r) {
          traces[r].push_back({t, disc[r], objs[r]});
        }
      }
    }
  }

  // A single poisoned row cannot contaminate its neighbors (no nn op mixes
  // batch rows), but it must still abort the chunk: the tolerant driver
  // re-runs the chunk's restarts individually to sort good from bad.
  for (std::size_t r = 0; r < R; ++r) check_latent_finite(x[r]);

  // Batched finalize: one table scan retrieves sequence + discrepancy,
  // one inference-only surrogate forward predicts every restart's F̂.
  std::vector<double> disc;
  auto seqs = embedding_.retrieve_batch(x, L, &disc);
  const auto preds = objective_and_grad_batch(x, nullptr);
  watch.stop();
  // Lockstep restarts share the wall clock; attribute an equal slice to
  // each so that summing per-restart seconds still yields the batch's
  // total wall time (the Fig. 5 accounting).
  const double per_run_seconds = watch.seconds() / static_cast<double>(R);
  for (std::size_t r = 0; r < R; ++r) {
    OptimizeResult& res = (*results)[begin + r];
    res.latent = std::move(x[r]);
    res.sequence = std::move(seqs[r]);
    res.discrepancy = disc[r];
    res.predicted_objective = preds[r];
    res.trace = std::move(traces[r]);
    res.seconds = per_run_seconds;
    CLO_OBS_OBSERVE("optimizer.discrepancy", res.discrepancy);
    CLO_OBS_OBSERVE("optimizer.predicted_objective",
                    res.predicted_objective);
    CLO_OBS_OBSERVE("optimizer.restart_seconds", res.seconds);
  }
}

std::vector<OptimizeResult> ContinuousOptimizer::run_restarts(
    clo::Rng& rng, int count, util::ThreadPool* pool, bool batched,
    const util::CancelToken* cancel) {
  // Pre-draw every Gaussian serially, restart by restart, in the exact
  // order a sequential `run(rng)` loop would consume them (including the
  // Box-Muller cache carried across restarts). The trajectories are then a
  // pure function of the latent index, so both the parallel fan-out and
  // the batched lockstep below match the historical sequential loop.
  const std::size_t per_run = noise_count();
  std::vector<std::vector<float>> noise(count);
  for (int r = 0; r < count; ++r) {
    noise[r].resize(per_run);
    for (auto& v : noise[r]) v = static_cast<float>(rng.next_gaussian());
  }
  // Restarts only read the model weights; freeze them so the backward
  // passes in objective_and_grad never touch shared grad buffers (neither
  // concurrently across workers nor cumulatively across lockstep steps).
  auto frozen_params = surrogate_.parameters();
  {
    auto dp = diffusion_.unet().parameters();
    frozen_params.insert(frozen_params.end(), dp.begin(), dp.end());
  }
  nn::GradFreeze freeze(frozen_params);
  obs::Progress progress(
      "optimize", static_cast<std::uint64_t>(
                      diffusion_.schedule().num_steps()) *
                      static_cast<std::uint64_t>(count > 0 ? count : 0));
  ProgressInstall install(&progress_, &progress);
  CancelInstall cancel_install(&cancel_, cancel);
  std::vector<OptimizeResult> results(count);
  if (batched) {
    // One lockstep chunk per worker. Chunk composition cannot change the
    // numbers: no nn op mixes batch rows, so each restart's trajectory is
    // the same pure function of its pre-sampled noise in any chunking —
    // including the single-chunk serial path.
    const std::size_t workers = pool != nullptr ? pool->size() : 1;
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min(workers, static_cast<std::size_t>(count)));
    util::parallel_for(pool, chunks, [&](std::size_t c) {
      const std::size_t lo = c * static_cast<std::size_t>(count) / chunks;
      const std::size_t hi =
          (c + 1) * static_cast<std::size_t>(count) / chunks;
      if (lo < hi) run_impl_batch(noise, lo, hi, &results);
    });
  } else {
    util::parallel_for(pool, static_cast<std::size_t>(count),
                       [&](std::size_t r) { results[r] = run_impl(noise[r]); });
  }
  return results;
}

std::vector<OptimizeResult> ContinuousOptimizer::run_restarts_tolerant(
    clo::Rng& rng, int count, util::ThreadPool* pool, bool batched,
    std::vector<RestartFailure>* failures, const util::CancelToken* cancel) {
  // Primary draws come first, in the exact run_restarts order, so the
  // fault-free trajectories are bit-identical to run_restarts. The retry
  // Rngs are forked only afterwards: they perturb the main stream's state
  // but nothing pre-sampled, so they are invisible unless a retry happens.
  const std::size_t per_run = noise_count();
  std::vector<std::vector<float>> noise(count);
  for (int r = 0; r < count; ++r) {
    noise[r].resize(per_run);
    for (auto& v : noise[r]) v = static_cast<float>(rng.next_gaussian());
  }
  std::vector<clo::Rng> retry_rng;
  retry_rng.reserve(count);
  for (int r = 0; r < count; ++r) retry_rng.push_back(rng.fork());

  auto frozen_params = surrogate_.parameters();
  {
    auto dp = diffusion_.unet().parameters();
    frozen_params.insert(frozen_params.end(), dp.begin(), dp.end());
  }
  nn::GradFreeze freeze(frozen_params);
  obs::Progress progress(
      "optimize", static_cast<std::uint64_t>(
                      diffusion_.schedule().num_steps()) *
                      static_cast<std::uint64_t>(count > 0 ? count : 0));
  ProgressInstall install(&progress_, &progress);
  CancelInstall cancel_install(&cancel_, cancel);

  std::vector<OptimizeResult> results(count);
  std::vector<char> pending(count, 0);

  if (batched) {
    const std::size_t workers = pool != nullptr ? pool->size() : 1;
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min(workers, static_cast<std::size_t>(count)));
    const auto chunk_errors =
        util::parallel_for_collect(pool, chunks, [&](std::size_t c) {
          const std::size_t lo = c * static_cast<std::size_t>(count) / chunks;
          const std::size_t hi =
              (c + 1) * static_cast<std::size_t>(count) / chunks;
          if (lo < hi) run_impl_batch(noise, lo, hi, &results);
        });
    for (const auto& e : chunk_errors) {
      // A chunk failure poisons every restart sharing the chunk; most are
      // innocent and recover bit-identically in the per-restart pass below
      // (run_impl matches run_impl_batch exactly on the same noise).
      const std::size_t lo =
          e.index * static_cast<std::size_t>(count) / chunks;
      const std::size_t hi =
          (e.index + 1) * static_cast<std::size_t>(count) / chunks;
      for (std::size_t r = lo; r < hi; ++r) pending[r] = 1;
    }
  } else {
    const auto errors = util::parallel_for_collect(
        pool, static_cast<std::size_t>(count),
        [&](std::size_t r) { results[r] = run_impl(noise[r]); });
    for (const auto& e : errors) pending[e.index] = 1;
  }

  // Cancellation bypasses recovery entirely: the parallel pass above may
  // have marked every restart pending (each worker threw CancelledError),
  // and retrying/quarantining them would fabricate an all-quarantined
  // "result" that a caller could cache. Surface the cancellation instead.
  if (cancel != nullptr) cancel->check();

  // Serial recovery: original noise first (recovers chunk neighbors and
  // one-shot faults without changing any trajectory), then one fresh-noise
  // retry from the restart's own pre-forked Rng (the escape hatch for a
  // latent that deterministically goes non-finite). Still failing ->
  // quarantine.
  for (int r = 0; r < count; ++r) {
    if (!pending[r]) continue;
    try {
      results[r] = run_impl(noise[r]);
      continue;
    } catch (const util::CancelledError&) {
      throw;  // never quarantine a cancellation
    } catch (const std::exception&) {
      // Fall through to the fresh-noise retry.
    }
    try {
      std::vector<float> fresh(per_run);
      for (auto& v : fresh) {
        v = static_cast<float>(retry_rng[r].next_gaussian());
      }
      results[r] = run_impl(fresh);
      CLO_OBS_COUNT("optimizer.restart_retries", 1);
    } catch (const util::CancelledError&) {
      throw;  // never quarantine a cancellation
    } catch (const std::exception& e) {
      results[r] = OptimizeResult{};
      if (failures != nullptr) {
        failures->push_back({static_cast<std::size_t>(r), e.what()});
      }
      CLO_OBS_COUNT("optimizer.quarantined_restarts", 1);
    }
  }
  return results;
}

}  // namespace clo::core
