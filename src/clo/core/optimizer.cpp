#include "clo/core/optimizer.hpp"

#include <cmath>

#include "clo/nn/ops.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

using nn::Tensor;

ContinuousOptimizer::ContinuousOptimizer(
    models::SurrogateModel& surrogate, models::DiffusionModel& diffusion,
    const models::TransformEmbedding& embedding, OptimizeParams params)
    : surrogate_(surrogate), diffusion_(diffusion), embedding_(embedding),
      params_(params) {}

double ContinuousOptimizer::objective_and_grad(const std::vector<float>& x,
                                               std::vector<float>* grad) {
  Tensor input = Tensor::from_data(
      {1, static_cast<int>(x.size())}, x, /*requires_grad=*/true);
  auto out = surrogate_.forward(input);
  Tensor objective =
      nn::add(nn::scale(out.area, static_cast<float>(params_.weight_area)),
              nn::scale(out.delay, static_cast<float>(params_.weight_delay)));
  if (grad != nullptr) {
    nn::backward(objective);
    *grad = input.grad();
    // Clip to keep the guidance term well-scaled vs the noise term.
    double norm2 = 0.0;
    for (float g : *grad) norm2 += static_cast<double>(g) * g;
    const double norm = std::sqrt(norm2);
    if (norm > params_.grad_clip && norm > 0.0) {
      const float s = static_cast<float>(params_.grad_clip / norm);
      for (auto& g : *grad) g *= s;
    }
  }
  return objective.item();
}

std::size_t ContinuousOptimizer::noise_count() const {
  const auto& cfg = diffusion_.config();
  const std::size_t elems =
      static_cast<std::size_t>(cfg.seq_len) * cfg.embed_dim;
  if (!params_.use_diffusion) return elems;
  return elems * diffusion_.schedule().num_steps();
}

OptimizeResult ContinuousOptimizer::run(clo::Rng& rng) {
  std::vector<float> noise(noise_count());
  for (auto& v : noise) v = static_cast<float>(rng.next_gaussian());
  return run_impl(noise);
}

OptimizeResult ContinuousOptimizer::run_impl(const std::vector<float>& noise) {
  CLO_TRACE_SPAN("optimize.restart");
  Stopwatch watch;
  watch.start();
  const auto& cfg = diffusion_.config();
  const int L = cfg.seq_len, d = cfg.embed_dim;
  const auto& sched = diffusion_.schedule();
  const int T = sched.num_steps();

  OptimizeResult result;
  std::size_t cursor = 0;
  std::vector<float> x(static_cast<std::size_t>(L) * d);
  for (auto& v : x) v = noise[cursor++];

  if (!params_.use_diffusion) {
    // Eq. 14: gradient-only continuous optimization (ablation).
    std::vector<float> grad;
    for (int t = T - 1; t >= 0; --t) {
      CLO_TRACE_SPAN("optimize.step");
      CLO_OBS_COUNT("optimizer.denoise_steps", 1);
      const double obj = objective_and_grad(x, &grad);
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] -= static_cast<float>(params_.ablation_step *
                                   params_.omega) * grad[i];
      }
      if (t % std::max(1, T / 16) == 0) {
        result.trace.push_back(
            {t, embedding_.discrepancy(x, L), obj});
      }
    }
  } else {
    // Eq. 13: denoise + guided gradient at the reparameterized x̂_t.
    std::vector<float> grad;
    for (int t = T - 1; t >= 0; --t) {
      CLO_TRACE_SPAN("optimize.step");
      CLO_OBS_COUNT("optimizer.denoise_steps", 1);
      const auto eps = diffusion_.predict_noise(x, t);
      const float ab = sched.alpha_bar(t);
      const float sqrt_ab = std::sqrt(ab);
      const float sqrt_1mab = std::sqrt(1.0f - ab);
      // Eq. 12: noise-free reconstruction x̂_t.
      std::vector<float> x_hat(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_hat[i] = (x[i] - sqrt_1mab * eps[i]) / sqrt_ab;
      }
      const double obj = objective_and_grad(x_hat, &grad);
      // Guided noise: eps~ = eps + ω sqrt(1-ᾱ_t) ∇F̂(x̂_t) (Eq. 13 with the
      // DDPM constants folded into η), then an x̂0-clipped posterior step —
      // the clamp keeps denoiser error from compounding over the schedule.
      const float c0 = sched.coef_x0(t);
      const float ct = sched.coef_xt(t);
      const double omega_t =
          params_.guidance_ramp
              ? params_.omega * (1.0 - static_cast<double>(t) / T)
              : params_.omega;
      const float guide = static_cast<float>(omega_t) * sqrt_1mab;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const float eps_tilde = eps[i] + guide * grad[i];
        float x0 = (x[i] - sqrt_1mab * eps_tilde) / sqrt_ab;
        x0 = std::min(3.0f, std::max(-3.0f, x0));  // data coords lie in [-sqrt(d), sqrt(d)]
        x[i] = c0 * x0 + ct * x[i];
        if (t > 0) {
          x[i] += sched.sigma(t) * noise[cursor++];
        }
      }
      if (t % std::max(1, T / 16) == 0 || t == 0) {
        result.trace.push_back({t, embedding_.discrepancy(x, L), obj});
      }
    }
  }

  result.latent = x;
  result.sequence = embedding_.retrieve(x, L);
  result.discrepancy = embedding_.discrepancy(x, L);
  result.predicted_objective = objective_and_grad(x, nullptr);
  watch.stop();
  result.seconds = watch.seconds();
  CLO_OBS_OBSERVE("optimizer.discrepancy", result.discrepancy);
  CLO_OBS_OBSERVE("optimizer.predicted_objective", result.predicted_objective);
  CLO_OBS_OBSERVE("optimizer.restart_seconds", result.seconds);
  return result;
}

std::vector<OptimizeResult> ContinuousOptimizer::run_restarts(
    clo::Rng& rng, int count, util::ThreadPool* pool) {
  // Pre-draw every Gaussian serially, restart by restart, in the exact
  // order a sequential `run(rng)` loop would consume them (including the
  // Box-Muller cache carried across restarts). The trajectories are then a
  // pure function of the latent index, so the parallel fan-out below is
  // bit-identical to the historical sequential loop at any worker count.
  const std::size_t per_run = noise_count();
  std::vector<std::vector<float>> noise(count);
  for (int r = 0; r < count; ++r) {
    noise[r].resize(per_run);
    for (auto& v : noise[r]) v = static_cast<float>(rng.next_gaussian());
  }
  // Restarts only read the model weights; freeze them so the concurrent
  // backward passes in objective_and_grad never touch shared grad buffers.
  auto frozen_params = surrogate_.parameters();
  {
    auto dp = diffusion_.unet().parameters();
    frozen_params.insert(frozen_params.end(), dp.begin(), dp.end());
  }
  nn::GradFreeze freeze(frozen_params);
  std::vector<OptimizeResult> results(count);
  util::parallel_for(pool, static_cast<std::size_t>(count),
                     [&](std::size_t r) { results[r] = run_impl(noise[r]); });
  return results;
}

}  // namespace clo::core
