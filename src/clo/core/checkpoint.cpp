#include "clo/core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "clo/util/crc32.hpp"
#include "clo/util/fault.hpp"

namespace clo::core {
namespace {

constexpr char kMagic[8] = {'C', 'L', 'O', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kPhaseDataset = 1;
constexpr std::uint32_t kPhaseSurrogate = 2;
constexpr std::uint32_t kPhaseDiffusion = 3;

// Sanity caps for payload decoding: a CRC-valid file can still have been
// produced by a buggy writer, and no count read from disk may size an
// allocation unchecked.
constexpr std::uint64_t kMaxCount = 1ULL << 26;
constexpr std::uint64_t kMaxBlob = 1ULL << 31;

// ---- payload primitives (little-endian POD, length-prefixed blobs) -----

template <typename T>
void put_pod(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

void put_bytes(std::string& out, const std::string& bytes) {
  put_pod(out, static_cast<std::uint64_t>(bytes.size()));
  out.append(bytes);
}

/// Bounds-checked cursor over a decoded payload. Every getter throws on
/// short reads; CheckpointManager::load_* turns that into `false`.
struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  template <typename T>
  T get() {
    if (buf.size() - pos < sizeof(T)) {
      throw std::runtime_error("checkpoint payload truncated");
    }
    T v;
    std::memcpy(&v, buf.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::uint64_t get_count(std::uint64_t cap) {
    const auto n = get<std::uint64_t>();
    if (n > cap) throw std::runtime_error("checkpoint payload count too big");
    return n;
  }

  std::string get_bytes() {
    const auto n = get_count(kMaxBlob);
    if (buf.size() - pos < n) {
      throw std::runtime_error("checkpoint payload truncated");
    }
    std::string out = buf.substr(pos, n);
    pos += n;
    return out;
  }
};

void put_rng(std::string& out, const clo::Rng::State& s) {
  for (int i = 0; i < 4; ++i) put_pod(out, s.s[i]);
  put_pod(out, s.cached_gaussian);
  put_pod(out, static_cast<std::uint8_t>(s.has_cached_gaussian ? 1 : 0));
}

clo::Rng::State get_rng(Reader& r) {
  clo::Rng::State s;
  for (int i = 0; i < 4; ++i) s.s[i] = r.get<std::uint64_t>();
  s.cached_gaussian = r.get<double>();
  s.has_cached_gaussian = r.get<std::uint8_t>() != 0;
  return s;
}

void put_doubles(std::string& out, const std::vector<double>& v) {
  put_pod(out, static_cast<std::uint64_t>(v.size()));
  for (double x : v) put_pod(out, x);
}

std::vector<double> get_doubles(Reader& r) {
  const auto n = r.get_count(kMaxCount);
  std::vector<double> v(n);
  for (auto& x : v) x = r.get<double>();
  return v;
}

}  // namespace

ConfigHasher& ConfigHasher::add(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffULL;
    h_ *= 0x100000001b3ULL;
  }
  return *this;
}

ConfigHasher& ConfigHasher::add(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return add(bits);
}

ConfigHasher& ConfigHasher::add(const std::string& s) {
  for (unsigned char c : s) {
    h_ ^= c;
    h_ *= 0x100000001b3ULL;
  }
  return add(static_cast<std::uint64_t>(s.size()));
}

CheckpointManager::CheckpointManager(std::string dir,
                                     std::uint64_t config_hash)
    : dir_(std::move(dir)), config_hash_(config_hash) {}

std::string CheckpointManager::path_for(const std::string& phase) const {
  return dir_ + "/" + phase + ".ckpt";
}

bool CheckpointManager::write_file(const std::string& phase,
                                   std::uint32_t phase_id,
                                   const std::string& payload) {
  try {
    CLO_FAULT_POINT("checkpoint.write");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // Envelope: magic, version, phase, config hash, payload, CRC32 of the
    // payload. Assembled fully in memory and written to a temp file that
    // is renamed into place — a kill at any point leaves either the old
    // checkpoint or none, never a torn file under the final name.
    std::string file;
    file.append(kMagic, sizeof(kMagic));
    put_pod(file, kVersion);
    put_pod(file, phase_id);
    put_pod(file, config_hash_);
    put_bytes(file, payload);
    put_pod(file, util::crc32(payload.data(), payload.size()));

    const std::string path = path_for(phase);
    const std::string tmp = path + ".tmp";
    // Durable atomic publish: write + fsync the temp file BEFORE the
    // rename (so the final name can never point at bytes the kernel has
    // not persisted — without this, a power loss shortly after the rename
    // can leave a zero-length "committed" checkpoint), then fsync the
    // directory AFTER the rename (so the name change itself survives the
    // same crash). A kill at any point leaves the previous checkpoint or
    // none, never a torn or empty file under the final name.
    {
      const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) return false;
      std::size_t written = 0;
      while (written < file.size()) {
        const ssize_t n = ::write(fd, file.data() + written,
                                  file.size() - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          ::close(fd);
          std::remove(tmp.c_str());
          return false;
        }
        written += static_cast<std::size_t>(n);
      }
      if (::fsync(fd) != 0) {
        ::close(fd);
        std::remove(tmp.c_str());
        return false;
      }
      ::close(fd);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    {
      const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
      if (dir_fd >= 0) {
        // Directory fsync failures (e.g. filesystems that reject it) are
        // not fatal: the data itself is already durable, only the rename's
        // durability window widens back to the kernel's writeback horizon.
        (void)::fsync(dir_fd);
        ::close(dir_fd);
      }
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool CheckpointManager::read_file(const std::string& phase,
                                  std::uint32_t phase_id,
                                  std::string* payload) {
  try {
    CLO_FAULT_POINT("checkpoint.read");
    std::ifstream is(path_for(phase), std::ios::binary);
    if (!is) return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string file = ss.str();

    Reader r{file};
    char magic[sizeof(kMagic)];
    if (file.size() < sizeof(kMagic)) return false;
    std::memcpy(magic, file.data(), sizeof(kMagic));
    r.pos = sizeof(kMagic);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
    if (r.get<std::uint32_t>() != kVersion) return false;
    if (r.get<std::uint32_t>() != phase_id) return false;
    if (r.get<std::uint64_t>() != config_hash_) return false;
    *payload = r.get_bytes();
    const auto crc = r.get<std::uint32_t>();
    if (crc != util::crc32(payload->data(), payload->size())) return false;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool CheckpointManager::save_dataset(const DatasetCheckpoint& c) {
  std::string p;
  put_pod(p, c.original.area_um2);
  put_pod(p, c.original.delay_ps);
  put_pod(p, static_cast<std::uint64_t>(c.embedding_table.size()));
  for (const auto& row : c.embedding_table) {
    put_pod(p, static_cast<std::uint64_t>(row.size()));
    for (float v : row) put_pod(p, v);
  }
  put_pod(p, static_cast<std::uint64_t>(c.dataset.size()));
  for (std::size_t i = 0; i < c.dataset.size(); ++i) {
    const auto& seq = c.dataset.sequences[i];
    put_pod(p, static_cast<std::uint64_t>(seq.size()));
    for (auto t : seq) put_pod(p, static_cast<std::uint8_t>(t));
    put_pod(p, c.dataset.qor[i].area_um2);
    put_pod(p, c.dataset.qor[i].delay_ps);
  }
  put_pod(p, c.dataset.area_mean);
  put_pod(p, c.dataset.area_std);
  put_pod(p, c.dataset.delay_mean);
  put_pod(p, c.dataset.delay_std);
  put_pod(p, c.seconds);
  put_rng(p, c.rng);
  return write_file("dataset", kPhaseDataset, p);
}

bool CheckpointManager::load_dataset(DatasetCheckpoint* c) {
  std::string p;
  if (!read_file("dataset", kPhaseDataset, &p)) return false;
  try {
    Reader r{p};
    DatasetCheckpoint out;
    out.original.area_um2 = r.get<double>();
    out.original.delay_ps = r.get<double>();
    const auto rows = r.get_count(kMaxCount);
    out.embedding_table.resize(rows);
    for (auto& row : out.embedding_table) {
      row.resize(r.get_count(kMaxCount));
      for (auto& v : row) v = r.get<float>();
    }
    const auto n = r.get_count(kMaxCount);
    out.dataset.sequences.resize(n);
    out.dataset.qor.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      auto& seq = out.dataset.sequences[i];
      seq.resize(r.get_count(kMaxCount));
      for (auto& t : seq) {
        const auto v = r.get<std::uint8_t>();
        if (v >= opt::kNumTransforms) {
          throw std::runtime_error("checkpoint: bad transform id");
        }
        t = static_cast<opt::Transform>(v);
      }
      out.dataset.qor[i].area_um2 = r.get<double>();
      out.dataset.qor[i].delay_ps = r.get<double>();
    }
    out.dataset.area_mean = r.get<double>();
    out.dataset.area_std = r.get<double>();
    out.dataset.delay_mean = r.get<double>();
    out.dataset.delay_std = r.get<double>();
    out.seconds = r.get<double>();
    out.rng = get_rng(r);
    *c = std::move(out);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

namespace {

std::string model_payload(const std::string& weights, double seconds,
                          const clo::Rng::State& rng,
                          const std::string& report_blob) {
  std::string p;
  put_bytes(p, weights);
  put_pod(p, seconds);
  put_rng(p, rng);
  put_bytes(p, report_blob);
  return p;
}

}  // namespace

bool CheckpointManager::save_surrogate(const SurrogateCheckpoint& c) {
  std::string rep;
  put_pod(rep, c.report.train_mse);
  put_pod(rep, c.report.holdout_mse);
  put_pod(rep, c.report.spearman_area);
  put_pod(rep, c.report.spearman_delay);
  put_pod(rep, c.report.seconds);
  put_doubles(rep, c.report.epoch_loss);
  put_pod(rep, static_cast<std::int32_t>(c.report.lr_backoffs));
  return write_file("surrogate", kPhaseSurrogate,
                    model_payload(c.weights, c.seconds, c.rng, rep));
}

bool CheckpointManager::load_surrogate(SurrogateCheckpoint* c) {
  std::string p;
  if (!read_file("surrogate", kPhaseSurrogate, &p)) return false;
  try {
    Reader r{p};
    SurrogateCheckpoint out;
    out.weights = r.get_bytes();
    out.seconds = r.get<double>();
    out.rng = get_rng(r);
    const std::string rep = r.get_bytes();
    Reader rr{rep};
    out.report.train_mse = rr.get<double>();
    out.report.holdout_mse = rr.get<double>();
    out.report.spearman_area = rr.get<double>();
    out.report.spearman_delay = rr.get<double>();
    out.report.seconds = rr.get<double>();
    out.report.epoch_loss = get_doubles(rr);
    out.report.lr_backoffs = rr.get<std::int32_t>();
    *c = std::move(out);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool CheckpointManager::save_diffusion(const DiffusionCheckpoint& c) {
  std::string rep;
  put_pod(rep, static_cast<std::int32_t>(c.stats.iterations));
  put_pod(rep, c.stats.final_loss);
  put_doubles(rep, c.stats.loss_curve);
  put_pod(rep, static_cast<std::int32_t>(c.stats.lr_backoffs));
  return write_file("diffusion", kPhaseDiffusion,
                    model_payload(c.weights, c.seconds, c.rng, rep));
}

bool CheckpointManager::load_diffusion(DiffusionCheckpoint* c) {
  std::string p;
  if (!read_file("diffusion", kPhaseDiffusion, &p)) return false;
  try {
    Reader r{p};
    DiffusionCheckpoint out;
    out.weights = r.get_bytes();
    out.seconds = r.get<double>();
    out.rng = get_rng(r);
    const std::string rep = r.get_bytes();
    Reader rr{rep};
    out.stats.iterations = rr.get<std::int32_t>();
    out.stats.final_loss = rr.get<double>();
    out.stats.loss_curve = get_doubles(rr);
    out.stats.lr_backoffs = rr.get<std::int32_t>();
    *c = std::move(out);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace clo::core
