#pragma once
// QoR evaluation service: applies a synthesis sequence to (a copy of) the
// target circuit, technology-maps it, and returns area/delay — the role
// ABC + ASAP7 plays in the paper. Tracks synthesis wall time and call
// counts separately so optimizers can report algorithm-only runtime the
// way the paper's Fig. 5 does (ABC time subtracted).

#include <cstddef>
#include <map>
#include <string>

#include "clo/aig/aig.hpp"
#include "clo/opt/transform.hpp"
#include "clo/techmap/tech_map.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

struct Qor {
  double area_um2 = 0.0;
  double delay_ps = 0.0;
};

class QorEvaluator {
 public:
  explicit QorEvaluator(aig::Aig circuit,
                        techmap::MapParams map_params = {});

  /// Synthesize with `seq` and map; memoized per distinct sequence.
  Qor evaluate(const opt::Sequence& seq);

  /// QoR of the unoptimized circuit (empty sequence).
  Qor original();

  const aig::Aig& circuit() const { return circuit_; }

  /// Wall time spent inside synthesis+mapping (the "ABC time" bucket).
  double synthesis_seconds() const { return synth_watch_.seconds(); }
  /// Number of non-memoized synthesis runs.
  std::size_t num_synthesis_runs() const { return num_runs_; }
  /// Number of evaluate() calls including cache hits.
  std::size_t num_queries() const { return num_queries_; }

 private:
  aig::Aig circuit_;
  techmap::CellLibrary lib_;
  techmap::MapParams map_params_;
  std::map<std::string, Qor> cache_;
  Stopwatch synth_watch_;
  std::size_t num_runs_ = 0;
  std::size_t num_queries_ = 0;
};

}  // namespace clo::core
