#pragma once
// QoR evaluation service: applies a synthesis sequence to (a copy of) the
// target circuit, technology-maps it, and returns area/delay — the role
// ABC + ASAP7 plays in the paper. Tracks synthesis wall time and call
// counts separately so optimizers can report algorithm-only runtime the
// way the paper's Fig. 5 does (ABC time subtracted).
//
// Thread-safety contract: evaluate() may be called concurrently from any
// number of threads. The memo cache is sharded (hash of the sequence key
// picks a mutex-guarded shard) and synthesis itself runs outside any lock;
// two threads racing on the same uncached sequence may both synthesize,
// but the result is a pure function of the sequence so either insert wins
// with an identical value. Counters are atomic, and synthesis wall time is
// accumulated per call as atomic nanoseconds, so concurrent runs sum their
// (possibly overlapping) synthesis intervals — the same "total ABC time"
// bucket the serial accounting reports.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "clo/aig/aig.hpp"
#include "clo/opt/transform.hpp"
#include "clo/techmap/tech_map.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

struct Qor {
  double area_um2 = 0.0;
  double delay_ps = 0.0;
};

class QorEvaluator {
 public:
  explicit QorEvaluator(aig::Aig circuit,
                        techmap::MapParams map_params = {});

  /// Synthesize with `seq` and map; memoized per distinct sequence.
  /// Safe to call concurrently (see thread-safety contract above).
  Qor evaluate(const opt::Sequence& seq);

  /// QoR of the unoptimized circuit (empty sequence).
  Qor original();

  const aig::Aig& circuit() const { return circuit_; }

  /// Wall time spent inside synthesis+mapping (the "ABC time" bucket).
  /// Concurrent synthesis runs each contribute their full duration.
  double synthesis_seconds() const {
    return static_cast<double>(synth_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  /// Number of non-memoized synthesis runs.
  std::size_t num_synthesis_runs() const {
    return num_runs_.load(std::memory_order_relaxed);
  }
  /// Number of evaluate() calls including cache hits.
  std::size_t num_queries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kNumShards = 16;
  struct Shard {
    std::mutex mu;
    std::map<std::string, Qor> cache;
  };

  Shard& shard_for(const std::string& key);

  aig::Aig circuit_;
  techmap::CellLibrary lib_;
  techmap::MapParams map_params_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<std::uint64_t> synth_ns_{0};
  std::atomic<std::size_t> num_runs_{0};
  std::atomic<std::size_t> num_queries_{0};
};

}  // namespace clo::core
