#pragma once
// QoR evaluation service: applies a synthesis sequence to (a copy of) the
// target circuit, technology-maps it, and returns area/delay — the role
// ABC + ASAP7 plays in the paper. Tracks synthesis wall time and call
// counts separately so optimizers can report algorithm-only runtime the
// way the paper's Fig. 5 does (ABC time subtracted).
//
// Thread-safety contract: evaluate() may be called concurrently from any
// number of threads. The memo cache is sharded (hash of the sequence key
// picks a mutex-guarded shard) and synthesis itself runs outside any lock.
// Misses are single-flight per key: the first thread to miss synthesizes,
// and any thread racing on the same key waits on the shard's condition
// variable for that result instead of duplicating the run — so
// `unique_runs` counts exactly one synthesis per distinct sequence and
// `synth_seconds` never double-bills a sequence. Counters are atomic, and
// synthesis wall time is accumulated per call as atomic nanoseconds, so
// concurrent runs of *different* sequences still sum their (possibly
// overlapping) intervals — the same "total ABC time" bucket the serial
// accounting reports.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "clo/aig/aig.hpp"
#include "clo/opt/transform.hpp"
#include "clo/techmap/tech_map.hpp"
#include "clo/util/cancel.hpp"
#include "clo/util/timer.hpp"

namespace clo::core {

struct Qor {
  double area_um2 = 0.0;
  double delay_ps = 0.0;
};

/// Consistent view of the evaluator's usage counters — the single stats
/// surface (the raw atomics are an implementation detail).
struct EvaluatorStats {
  std::size_t queries = 0;       ///< evaluate() calls, cache hits included
  std::size_t unique_runs = 0;   ///< non-memoized synthesis runs
  std::size_t cache_hits = 0;    ///< queries answered from the memo cache
  double hit_rate = 0.0;         ///< cache_hits / queries (0 when idle)
  double synth_seconds = 0.0;    ///< wall time inside synthesis+mapping
};

class QorEvaluator {
 public:
  explicit QorEvaluator(aig::Aig circuit,
                        techmap::MapParams map_params = {});

  /// Synthesize with `seq` and map; memoized per distinct sequence.
  /// Safe to call concurrently (see thread-safety contract above).
  /// `cancel` is polled on entry, while waiting on another thread's
  /// in-flight synthesis of the same key, and (via the thread-local
  /// ambient token) inside the synthesis transforms themselves; a fired
  /// token throws util::CancelledError. A cancelled miss owner hands the
  /// miss back exactly like any other failure, so racing threads retry
  /// and the cache never holds partial results.
  Qor evaluate(const opt::Sequence& seq,
               const util::CancelToken* cancel = nullptr);

  /// QoR of the unoptimized circuit (empty sequence).
  Qor original();

  const aig::Aig& circuit() const { return circuit_; }

  /// Usage counters since construction (or the last reset_stats()).
  /// `synth_seconds` is the "ABC time" bucket; concurrent synthesis runs
  /// each contribute their full duration.
  EvaluatorStats snapshot() const;

  /// Zero the usage counters (the memo cache is kept — bench repetitions
  /// reset accounting without paying for re-synthesis).
  void reset_stats();

 private:
  static constexpr std::size_t kNumShards = 16;
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;         ///< signaled when an in-flight key lands
    std::map<std::string, Qor> cache;
    std::set<std::string> inflight;     ///< keys some thread is synthesizing
  };

  Shard& shard_for(const std::string& key);

  aig::Aig circuit_;
  techmap::CellLibrary lib_;
  techmap::MapParams map_params_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<std::uint64_t> synth_ns_{0};
  std::atomic<std::size_t> num_runs_{0};
  std::atomic<std::size_t> num_queries_{0};
  std::atomic<std::size_t> num_hits_{0};
};

}  // namespace clo::core
