#include "clo/techmap/cell_library.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <numeric>

namespace clo::techmap {
namespace {

/// Build a truth table from a boolean lambda over the input bits.
template <typename F>
std::uint16_t tt_of(int num_inputs, F f) {
  std::uint16_t bits = 0;
  for (int m = 0; m < (1 << num_inputs); ++m) {
    std::array<bool, 4> in{};
    for (int i = 0; i < num_inputs; ++i) in[i] = (m >> i) & 1;
    if (f(in)) bits |= static_cast<std::uint16_t>(1u << m);
  }
  return bits;
}

/// Apply an input permutation + phase assignment to a function:
/// result(x) = f(y) with y[pin_of_input[i]] = x[i] ^ phase[i].
std::uint16_t permute_function(std::uint16_t f, int num_inputs,
                               const std::vector<int>& pin_of_input,
                               const std::vector<bool>& phase) {
  std::uint16_t result = 0;
  for (int m = 0; m < (1 << num_inputs); ++m) {
    int cell_minterm = 0;
    for (int i = 0; i < num_inputs; ++i) {
      const bool x = ((m >> i) & 1) != 0;
      if (x != phase[i]) cell_minterm |= 1 << pin_of_input[i];
    }
    if ((f >> cell_minterm) & 1) result |= static_cast<std::uint16_t>(1u << m);
  }
  return result;
}

}  // namespace

void CellLibrary::add_cell(Cell cell) {
  if (cell.name == "INVx1") inverter_index_ = static_cast<int>(cells_.size());
  cells_.push_back(std::move(cell));
}

CellLibrary CellLibrary::asap7() {
  CellLibrary lib;
  using In = std::array<bool, 4>;
  auto add = [&](const std::string& name, int k, auto fn, double area,
                 double delay) {
    lib.add_cell(Cell{name, k, tt_of(k, fn), area, delay});
  };
  // Areas in um^2 / delays in ps, scaled so the classic c17 netlist
  // (6 NAND2, 3 levels) maps to 3.73 um^2 and 18.52 ps like the paper.
  add("INVx1", 1, [](In a) { return !a[0]; }, 0.4665, 4.16);
  add("BUFx2", 1, [](In a) { return a[0]; }, 0.6216, 7.52);
  add("NAND2x1", 2, [](In a) { return !(a[0] && a[1]); }, 0.6216, 6.1733);
  add("NOR2x1", 2, [](In a) { return !(a[0] || a[1]); }, 0.6216, 7.08);
  add("AND2x2", 2, [](In a) { return a[0] && a[1]; }, 0.8289, 9.31);
  add("OR2x2", 2, [](In a) { return a[0] || a[1]; }, 0.8289, 10.14);
  add("NAND3x1", 3, [](In a) { return !(a[0] && a[1] && a[2]); }, 0.8289,
      8.84);
  add("NOR3x1", 3, [](In a) { return !(a[0] || a[1] || a[2]); }, 0.8289,
      10.51);
  add("NAND4x1", 4, [](In a) { return !(a[0] && a[1] && a[2] && a[3]); },
      1.0362, 11.32);
  add("NOR4x1", 4, [](In a) { return !(a[0] || a[1] || a[2] || a[3]); },
      1.0362, 13.61);
  add("AND3x2", 3, [](In a) { return a[0] && a[1] && a[2]; }, 1.0362, 11.02);
  add("OR3x2", 3, [](In a) { return a[0] || a[1] || a[2]; }, 1.0362, 12.33);
  add("AOI21x1", 3, [](In a) { return !((a[0] && a[1]) || a[2]); }, 0.8289,
      9.43);
  add("OAI21x1", 3, [](In a) { return !((a[0] || a[1]) && a[2]); }, 0.8289,
      9.61);
  add("AOI22x1", 4,
      [](In a) { return !((a[0] && a[1]) || (a[2] && a[3])); }, 1.0362,
      11.18);
  add("OAI22x1", 4,
      [](In a) { return !((a[0] || a[1]) && (a[2] || a[3])); }, 1.0362,
      11.47);
  add("XOR2x1", 2, [](In a) { return a[0] != a[1]; }, 1.2432, 12.41);
  add("XNOR2x1", 2, [](In a) { return a[0] == a[1]; }, 1.2432, 12.83);
  add("MUX21x1", 3, [](In a) { return a[2] ? a[1] : a[0]; }, 1.4508, 13.06);
  add("MAJ3x1", 3,
      [](In a) {
        return (a[0] && a[1]) || (a[0] && a[2]) || (a[1] && a[2]);
      },
      1.4508, 13.92);
  lib.build_match_table();
  return lib;
}

void CellLibrary::build_match_table() {
  for (int ci = 0; ci < static_cast<int>(cells_.size()); ++ci) {
    const Cell& cell = cells_[ci];
    const int k = cell.num_inputs;
    std::vector<int> perm(k);
    std::iota(perm.begin(), perm.end(), 0);
    do {
      for (int phase_bits = 0; phase_bits < (1 << k); ++phase_bits) {
        std::vector<bool> phase(k);
        for (int i = 0; i < k; ++i) phase[i] = (phase_bits >> i) & 1;
        const std::uint16_t f =
            permute_function(cell.function, k, perm, phase);
        auto& bucket = match_table_[std::make_pair(k, f)];
        // Keep one match per cell: the one with the fewest phased inputs
        // (each phase is a potential extra inverter downstream).
        const int new_phases = __builtin_popcount(phase_bits);
        auto existing = std::find_if(
            bucket.begin(), bucket.end(),
            [&](const CellMatch& m) { return m.cell_index == ci; });
        auto phases_of = [](const CellMatch& m) {
          int n = 0;
          for (bool p : m.input_phase) n += p ? 1 : 0;
          return n;
        };
        if (existing == bucket.end() || new_phases < phases_of(*existing)) {
          CellMatch m;
          m.cell_index = ci;
          m.pin_of_input = perm;
          m.input_phase = phase;
          if (existing == bucket.end()) {
            bucket.push_back(std::move(m));
          } else {
            *existing = std::move(m);
          }
        }
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

const std::vector<CellMatch>& CellLibrary::matches(std::uint16_t function,
                                                   int num_vars) const {
  static const std::vector<CellMatch> kEmpty;
  auto it = match_table_.find(std::make_pair(num_vars, function));
  return it == match_table_.end() ? kEmpty : it->second;
}

CellMatch CellLibrary::match(std::uint16_t function, int num_vars) const {
  const auto& all = matches(function, num_vars);
  CellMatch best;
  double best_area = 1e300;
  for (const CellMatch& m : all) {
    if (cells_[m.cell_index].area_um2 < best_area) {
      best_area = cells_[m.cell_index].area_um2;
      best = m;
    }
  }
  return best;
}

int CellLibrary::find(const std::string& name) const {
  for (int i = 0; i < static_cast<int>(cells_.size()); ++i) {
    if (cells_[i].name == name) return i;
  }
  return -1;
}

}  // namespace clo::techmap
