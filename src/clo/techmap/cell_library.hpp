#pragma once
// Standard-cell library model for technology mapping. The built-in library
// is a 7-nm-class set (INV/NAND/NOR/AOI/OAI/XOR/MUX/MAJ) with areas in
// square microns and pin-to-pin delays in picoseconds scaled to ASAP7 RVT
// magnitudes (the PDK the paper maps with). The matcher supports input
// permutation; input/output negation is realized through polarity-aware
// mapping with explicit inverters.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clo::techmap {

struct Cell {
  std::string name;
  int num_inputs = 0;
  /// Truth table bits over num_inputs variables (bit i = value on
  /// minterm i, input 0 = LSB of the minterm index).
  std::uint16_t function = 0;
  double area_um2 = 0.0;
  double delay_ps = 0.0;  ///< worst pin-to-pin delay
};

/// A pattern match: which cell implements a cut function and how the cut
/// leaves connect to its pins.
struct CellMatch {
  int cell_index = -1;
  /// pin_of_input[i] = which cut input drives cell pin i.
  std::vector<int> pin_of_input;
  /// input_phase[i] = true if cut input i must be complemented.
  std::vector<bool> input_phase;
};

class CellLibrary {
 public:
  /// The built-in ASAP7-flavored library.
  static CellLibrary asap7();

  const std::vector<Cell>& cells() const { return cells_; }
  const Cell& cell(int index) const { return cells_[index]; }
  int inverter_index() const { return inverter_index_; }
  const Cell& inverter() const { return cells_[inverter_index_]; }

  /// All matches for `function` over `num_vars` support variables — at
  /// most one (cheapest-phase) match per cell. Empty if unmatchable.
  const std::vector<CellMatch>& matches(std::uint16_t function,
                                        int num_vars) const;

  /// Convenience: the smallest-area match (cell_index == -1 if none).
  CellMatch match(std::uint16_t function, int num_vars) const;

  /// Cell index by name (-1 if absent).
  int find(const std::string& name) const;

 private:
  void add_cell(Cell cell);
  void build_match_table();

  std::vector<Cell> cells_;
  int inverter_index_ = -1;
  /// (num_vars, function) -> one match per matching cell.
  std::map<std::pair<int, std::uint16_t>, std::vector<CellMatch>> match_table_;
};

}  // namespace clo::techmap
