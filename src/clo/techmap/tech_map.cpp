#include "clo/techmap/tech_map.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <functional>
#include <limits>
#include <ostream>
#include <set>
#include <vector>

#include "clo/aig/truth.hpp"

#include "clo/aig/cuts.hpp"
#include "clo/aig/simulate.hpp"

namespace clo::techmap {

using aig::Aig;
using aig::Cut;
using aig::Lit;
using aig::TruthTable;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Choice {
  int cell_index = -1;               ///< -1 = unresolved, -2 = wire
  bool via_inverter = false;         ///< implemented as INV(other polarity)
  std::vector<std::uint32_t> leaves; ///< cut leaves in match input order
  std::vector<bool> leaf_phase;      ///< polarity required of each leaf
  std::vector<int> pin_of_input;     ///< cell pin driven by each leaf
};

struct NodeCost {
  double arrival[2] = {kInf, kInf};
  double aflow[2] = {kInf, kInf};
  Choice choice[2];
};

/// Reduce `tt` to its support variables; fills `support` with the indices
/// of participating variables and returns the packed bits of the reduced
/// function (over support.size() <= 4 variables).
std::uint16_t reduce_support(const TruthTable& tt, std::vector<int>& support) {
  support.clear();
  for (int v = 0; v < tt.num_vars(); ++v) {
    if (tt.has_var(v)) support.push_back(v);
  }
  const int m = static_cast<int>(support.size());
  std::uint16_t bits = 0;
  for (int minterm = 0; minterm < (1 << m); ++minterm) {
    std::size_t full = 0;
    for (int i = 0; i < m; ++i) {
      if ((minterm >> i) & 1) full |= std::size_t{1} << support[i];
    }
    if (tt.get_bit(full)) bits |= static_cast<std::uint16_t>(1u << minterm);
  }
  return bits;
}

}  // namespace

MappingResult tech_map(const Aig& g, const CellLibrary& lib,
                       const MapParams& params) {
  const bool delay_oriented = params.objective == MapParams::Objective::kDelay;
  aig::CutParams cut_params;
  cut_params.max_leaves = params.cut_leaves;
  cut_params.max_cuts = params.max_cuts;
  cut_params.keep_trivial = true;
  const aig::CutSet cuts(g, cut_params);

  std::vector<NodeCost> cost(g.num_slots());
  const Cell& inv = lib.inverter();

  // Area-flow reference estimate: structural fanout count in round 0;
  // after a provisional cover exists, the *actual* number of cover
  // references (classic iterative area recovery — fixes the area-flow
  // double-counting that can make a greedy "area" cover larger than the
  // delay cover).
  std::vector<int> cover_refs;
  auto refs_of = [&](std::uint32_t n) {
    if (!cover_refs.empty()) return std::max(1, cover_refs[n]);
    return std::max(1, g.nrefs(n));
  };

  const auto order = g.topo_order();
  auto run_selection = [&] {
  cost.assign(g.num_slots(), NodeCost{});
  // Constant node: free, arrival 0 (tie cells are ignored, like ABC).
  cost[0].arrival[0] = cost[0].arrival[1] = 0.0;
  cost[0].aflow[0] = cost[0].aflow[1] = 0.0;
  // PIs: positive free; negative via inverter.
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    NodeCost& c = cost[g.pi_node(i)];
    c.arrival[0] = 0.0;
    c.aflow[0] = 0.0;
    c.arrival[1] = inv.delay_ps;
    c.aflow[1] = inv.area_um2;
    c.choice[1].via_inverter = true;
  }
  for (std::uint32_t n : order) {
    NodeCost& c = cost[n];
    for (const Cut& cut : cuts.cuts_of(n)) {
      if (cut.leaves.size() == 1 && cut.leaves[0] == n) continue;  // trivial
      const TruthTable tt = aig::cone_truth_table(g, aig::make_lit(n), cut.leaves);
      std::vector<int> support;
      const std::uint16_t bits = reduce_support(tt, support);
      const int m = static_cast<int>(support.size());
      if (m == 0) continue;  // semantically constant cone: skip this cut
      const std::uint16_t mask =
          static_cast<std::uint16_t>((1u << (1 << m)) - 1);
      for (int pol = 0; pol < 2; ++pol) {
        const std::uint16_t f = pol ? static_cast<std::uint16_t>(~bits & mask)
                                    : bits;
        // Single-support wire: the function is a leaf or its complement.
        if (m == 1) {
          const std::uint32_t leaf = cut.leaves[support[0]];
          const bool phase = (f == 0x1);  // f == !x
          const double arr = cost[leaf].arrival[phase];
          const double af = cost[leaf].aflow[phase];
          const bool better = delay_oriented
                                  ? (arr < c.arrival[pol] ||
                                     (arr == c.arrival[pol] && af < c.aflow[pol]))
                                  : (af < c.aflow[pol] ||
                                     (af == c.aflow[pol] && arr < c.arrival[pol]));
          if (better) {
            c.arrival[pol] = arr;
            c.aflow[pol] = af;
            c.choice[pol] = Choice{-2, false, {leaf}, {phase}, {}};  // wire
          }
          continue;
        }
        for (const CellMatch& match : lib.matches(f, m)) {
          const Cell& cell = lib.cell(match.cell_index);
          double arr = 0.0;
          double af = cell.area_um2;
          std::vector<std::uint32_t> leaves(m);
          std::vector<bool> phases(m);
          bool feasible = true;
          for (int i = 0; i < m; ++i) {
            const std::uint32_t leaf = cut.leaves[support[i]];
            const bool phase = match.input_phase[i];
            if (cost[leaf].arrival[phase] == kInf) {
              feasible = false;
              break;
            }
            arr = std::max(arr, cost[leaf].arrival[phase]);
            af += cost[leaf].aflow[phase] / refs_of(leaf);
            leaves[i] = leaf;
            phases[i] = phase;
          }
          if (!feasible) continue;
          arr += cell.delay_ps;
          const bool better =
              delay_oriented
                  ? (arr < c.arrival[pol] ||
                     (arr == c.arrival[pol] && af < c.aflow[pol]))
                  : (af < c.aflow[pol] ||
                     (af == c.aflow[pol] && arr < c.arrival[pol]));
          if (better) {
            c.arrival[pol] = arr;
            c.aflow[pol] = af;
            c.choice[pol] = Choice{match.cell_index, false, std::move(leaves),
                                   std::move(phases), match.pin_of_input};
          }
        }
      }
    }
    // Inverter relaxation between the two polarities.
    for (int round = 0; round < 2; ++round) {
      for (int pol = 0; pol < 2; ++pol) {
        const int other = 1 - pol;
        if (c.arrival[other] == kInf) continue;
        const double arr = c.arrival[other] + inv.delay_ps;
        const double af = c.aflow[other] + inv.area_um2;
        const bool better = delay_oriented
                                ? (arr < c.arrival[pol] ||
                                   (arr == c.arrival[pol] && af < c.aflow[pol]))
                                : (af < c.aflow[pol] ||
                                   (af == c.aflow[pol] && arr < c.arrival[pol]));
        if (better) {
          c.arrival[pol] = arr;
          c.aflow[pol] = af;
          Choice ch;
          ch.via_inverter = true;
          c.choice[pol] = ch;
        }
      }
    }
  }
  };  // run_selection

  run_selection();
  if (!delay_oriented) {
    // Iterative area recovery: count how often each node is actually
    // referenced by the provisional cover, then reselect with true refs.
    for (int round = 0; round < 2; ++round) {
      cover_refs.assign(g.num_slots(), 0);
      std::vector<std::array<bool, 2>> seen(g.num_slots(), {false, false});
      std::vector<std::pair<std::uint32_t, int>> work;
      auto touch = [&](std::uint32_t n, int pol) {
        ++cover_refs[n];
        if (!seen[n][pol]) {
          seen[n][pol] = true;
          work.emplace_back(n, pol);
        }
      };
      for (std::size_t i = 0; i < g.num_pos(); ++i) {
        touch(aig::lit_node(g.po(i)), aig::lit_is_compl(g.po(i)) ? 1 : 0);
      }
      while (!work.empty()) {
        const auto [n, pol] = work.back();
        work.pop_back();
        if (n == 0 || g.is_pi(n)) continue;
        const Choice& ch = cost[n].choice[pol];
        if (ch.via_inverter) {
          touch(n, 1 - pol);
        } else if (ch.cell_index == -2) {
          touch(ch.leaves[0], ch.leaf_phase[0] ? 1 : 0);
        } else if (ch.cell_index >= 0) {
          for (std::size_t i = 0; i < ch.leaves.size(); ++i) {
            touch(ch.leaves[i], ch.leaf_phase[i] ? 1 : 0);
          }
        }
      }
      run_selection();
    }
  }

  // ---- Cover extraction ---------------------------------------------------
  MappingResult result;

  // Net naming, with alias resolution for "wire" choices (a node whose cut
  // function degenerates to one leaf or its complement).
  std::vector<std::string> pi_net(g.num_slots());
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    std::string s = g.pi_name(i);
    for (char& ch : s) {
      if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_') ch = '_';
    }
    if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) {
      s = "s" + s;  // keep in sync with sanitize() below
    }
    pi_net[g.pi_node(i)] = s;
  }
  std::map<std::pair<std::uint32_t, int>, std::pair<std::uint32_t, int>> alias;
  std::function<std::string(std::uint32_t, int)> net_of =
      [&](std::uint32_t n, int pol) -> std::string {
    auto it = alias.find({n, pol});
    if (it != alias.end()) return net_of(it->second.first, it->second.second);
    if (n == 0) return pol ? "const1" : "const0";
    if (g.is_pi(n)) return pol ? pi_net[n] + "_bar" : pi_net[n];
    return pol ? "n" + std::to_string(n) + "_bar" : "n" + std::to_string(n);
  };

  std::vector<std::array<bool, 2>> required(g.num_slots(), {false, false});
  std::vector<std::pair<std::uint32_t, int>> stack;
  auto require = [&](std::uint32_t n, int pol) {
    if (required[n][pol]) return;
    required[n][pol] = true;
    stack.emplace_back(n, pol);
  };
  // Pre-resolve wire aliases so instance inputs name the real driver.
  for (std::uint32_t n : order) {
    for (int pol = 0; pol < 2; ++pol) {
      const Choice& ch = cost[n].choice[pol];
      if (ch.cell_index == -2 && !ch.via_inverter) {
        alias[{n, pol}] = {ch.leaves[0], ch.leaf_phase[0] ? 1 : 0};
      }
    }
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    const Lit po = g.po(i);
    require(aig::lit_node(po), aig::lit_is_compl(po) ? 1 : 0);
    const double arr =
        cost[aig::lit_node(po)].arrival[aig::lit_is_compl(po) ? 1 : 0];
    if (arr != kInf) result.delay_ps = std::max(result.delay_ps, arr);
    if (params.keep_netlist) {
      result.po_nets.push_back(
          net_of(aig::lit_node(po), aig::lit_is_compl(po) ? 1 : 0));
    }
  }
  auto add_instance = [&](const Cell& cell, int cell_index,
                          std::string output_net,
                          std::vector<std::string> input_nets) {
    result.area_um2 += cell.area_um2;
    result.num_cells += 1;
    result.cell_histogram[cell.name] += 1;
    if (params.keep_netlist) {
      result.instances.push_back(CellInstance{
          cell_index, std::move(output_net), std::move(input_nets)});
    }
  };
  while (!stack.empty()) {
    const auto [n, pol] = stack.back();
    stack.pop_back();
    if (n == 0) continue;  // constant: tied off, no cell
    if (g.is_pi(n)) {
      if (pol == 1) {
        add_instance(inv, lib.inverter_index(), net_of(n, 1), {net_of(n, 0)});
      }
      continue;
    }
    const Choice& ch = cost[n].choice[pol];
    if (ch.via_inverter) {
      add_instance(inv, lib.inverter_index(), net_of(n, pol),
                   {net_of(n, 1 - pol)});
      require(n, 1 - pol);
      continue;
    }
    if (ch.cell_index == -2) {  // wire through support reduction
      require(ch.leaves[0], ch.leaf_phase[0] ? 1 : 0);
      continue;
    }
    if (ch.cell_index < 0) continue;  // unmapped (should not happen)
    const Cell& cell = lib.cell(ch.cell_index);
    std::vector<std::string> input_nets(cell.num_inputs);
    for (std::size_t i = 0; i < ch.leaves.size(); ++i) {
      input_nets[ch.pin_of_input[i]] =
          net_of(ch.leaves[i], ch.leaf_phase[i] ? 1 : 0);
      require(ch.leaves[i], ch.leaf_phase[i] ? 1 : 0);
    }
    add_instance(cell, ch.cell_index, net_of(n, pol), std::move(input_nets));
  }
  return result;
}

namespace {

std::string sanitize(const std::string& name) {
  std::string s = name;
  for (char& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_') ch = '_';
  }
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) {
    s = "s" + s;
  }
  return s;
}

/// Behavioral expression of a cell function over pins I0..I{k-1}.
std::string cell_expression(const Cell& cell) {
  aig::TruthTable tt(cell.num_inputs);
  for (int m = 0; m < (1 << cell.num_inputs); ++m) {
    tt.set_bit(m, (cell.function >> m) & 1);
  }
  if (tt.is_const0()) return "1'b0";
  if (tt.is_const1()) return "1'b1";
  const auto cubes = aig::isop(tt);
  std::string expr;
  for (std::size_t c = 0; c < cubes.size(); ++c) {
    if (c) expr += " | ";
    std::string term;
    for (int v = 0; v < cell.num_inputs; ++v) {
      if (!(cubes[c].mask & (1u << v))) continue;
      if (!term.empty()) term += " & ";
      if (!(cubes[c].polarity & (1u << v))) term += "~";
      term += "I" + std::to_string(v);
    }
    expr += term.empty() ? "1'b1" : "(" + term + ")";
  }
  return expr;
}

}  // namespace

void write_verilog(const MappingResult& result, const CellLibrary& lib,
                   const aig::Aig& g, std::ostream& os) {
  // Cell module definitions (only the cells actually used).
  std::set<int> used;
  for (const auto& inst : result.instances) used.insert(inst.cell_index);
  for (int ci : used) {
    const Cell& cell = lib.cell(ci);
    os << "module " << cell.name << "(";
    for (int i = 0; i < cell.num_inputs; ++i) {
      os << "input I" << i << ", ";
    }
    os << "output Y);\n  assign Y = " << cell_expression(cell)
       << ";\nendmodule\n\n";
  }

  // Top module.
  os << "module " << sanitize(g.name()) << "(";
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    os << "input " << sanitize(g.pi_name(i)) << ", ";
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    if (i) os << ", ";
    os << "output " << sanitize(g.po_name(i));
  }
  os << ");\n";
  os << "  wire const0 = 1'b0;\n  wire const1 = 1'b1;\n";
  std::set<std::string> declared;
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    declared.insert(sanitize(g.pi_name(i)));
  }
  declared.insert("const0");
  declared.insert("const1");
  for (const auto& inst : result.instances) {
    if (declared.insert(inst.output_net).second) {
      os << "  wire " << inst.output_net << ";\n";
    }
  }
  int index = 0;
  for (const auto& inst : result.instances) {
    const Cell& cell = lib.cell(inst.cell_index);
    os << "  " << cell.name << " u" << index++ << "(";
    for (std::size_t i = 0; i < inst.input_nets.size(); ++i) {
      os << ".I" << i << "(" << inst.input_nets[i] << "), ";
    }
    os << ".Y(" << inst.output_net << "));\n";
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    os << "  assign " << sanitize(g.po_name(i)) << " = "
       << result.po_nets[i] << ";\n";
  }
  os << "endmodule\n";
}

}  // namespace clo::techmap
