#pragma once
// Cut-based standard-cell technology mapping with static timing analysis.
// This is the QoR oracle of the project: after a synthesis sequence is
// applied to the AIG, `tech_map` produces the mapped area (um^2) and
// critical-path delay (ps) that the optimizers minimize — the same role
// ABC's `map` + ASAP7 plays in the paper.

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/techmap/cell_library.hpp"

namespace clo::techmap {

struct MapParams {
  /// Primary objective: kDelay picks min-arrival matches (area-flow
  /// tie-break), kArea picks min-area-flow matches (arrival tie-break).
  enum class Objective { kDelay, kArea };
  Objective objective = Objective::kDelay;
  int cut_leaves = 4;
  int max_cuts = 12;
  /// Record the full instance list (needed for write_verilog).
  bool keep_netlist = false;
};

/// One placed cell in the mapped netlist.
struct CellInstance {
  int cell_index = -1;
  std::string output_net;
  std::vector<std::string> input_nets;  ///< in cell pin order
};

struct MappingResult {
  double area_um2 = 0.0;
  double delay_ps = 0.0;
  int num_cells = 0;
  std::map<std::string, int> cell_histogram;
  /// Full netlist (filled when MapParams::keep_netlist).
  std::vector<CellInstance> instances;
  /// Net driving each PO, in PO order (when keep_netlist).
  std::vector<std::string> po_nets;
};

/// Map `g` onto `lib`. The graph is not modified.
MappingResult tech_map(const aig::Aig& g, const CellLibrary& lib,
                       const MapParams& params = {});

/// Emit the mapped netlist as structural Verilog, including `module`
/// definitions (assign-based) for every used cell. Requires a result
/// produced with keep_netlist = true.
void write_verilog(const MappingResult& result, const CellLibrary& lib,
                   const aig::Aig& g, std::ostream& os);

}  // namespace clo::techmap
