#pragma once
// Rewrite-engine fuzzing: generate random AIGs, run random transform
// sequences over them, and cross-check every result against the original
// with the SAT equivalence checker. A failing case (inequivalence, or a
// pass that throws) is shrunk to a minimal reproducer — first the
// sequence (delta-debugging each step away), then the circuit (dropping
// POs, collapsing AND nodes to a fanin or to constant 0, pruning dead
// PIs) — so the artifact a CI failure uploads is small enough to debug by
// hand. The transform runner is pluggable: tests inject a deliberately
// broken rewrite to prove the checker and shrinker actually catch bugs.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "clo/aig/aig.hpp"
#include "clo/opt/transform.hpp"
#include "clo/sat/cec.hpp"
#include "clo/util/rng.hpp"

namespace clo::sat {

/// Uniformly random strashed AIG: `num_ands` AND attempts over random
/// (possibly complemented) fanin pairs, POs biased toward deep nodes.
/// Structural hashing and constant folding may make the result smaller
/// than requested. Dead logic is cleaned up before returning.
aig::Aig random_aig(clo::Rng& rng, int num_pis, int num_ands, int num_pos);

/// Applies a sequence to a circuit in place. The default is
/// opt::run_sequence; tests substitute broken variants.
using SequenceRunner =
    std::function<void(aig::Aig&, const opt::Sequence&)>;

struct FuzzOptions {
  int min_pis = 3;
  int max_pis = 10;
  int min_ands = 8;
  int max_ands = 80;
  int max_pos = 4;
  int min_seq_len = 3;
  int max_seq_len = 10;
  /// CEC settings for the cross-check and for every shrink probe.
  CecOptions cec;

  FuzzOptions() {
    cec.sim_rounds = 8;
    cec.conflict_budget = 200000;
  }
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  aig::Aig reproducer;      ///< shrunk input circuit
  opt::Sequence sequence;   ///< shrunk transform sequence
  /// "not_equivalent" or "exception".
  std::string kind;
  std::string detail;       ///< failing PO / exception message
  std::vector<bool> counterexample;  ///< when kind == "not_equivalent"
};

/// Does (circuit, sequence) fail under `runner`? A failure is either an
/// exception out of the runner / the structural check, or a
/// simulator-confirmed inequivalence vs the untouched circuit. Fills
/// `kind`/`detail`/`counterexample` of `failure` when it returns true.
bool check_case(const aig::Aig& circuit, const opt::Sequence& sequence,
                const SequenceRunner& runner, const CecOptions& cec,
                FuzzFailure* failure);

/// Shrink a failing case in place: smaller sequence first, then circuit.
/// Every accepted reduction re-runs check_case, so the reduced pair still
/// fails the same way when this returns.
void shrink_failure(FuzzFailure* failure, const SequenceRunner& runner,
                    const CecOptions& cec);

/// Run one fuzz seed end to end: derive sizes and contents from `seed`,
/// cross-check, shrink on failure. std::nullopt means the seed passed.
std::optional<FuzzFailure> fuzz_one(std::uint64_t seed,
                                    const FuzzOptions& options,
                                    const SequenceRunner& runner = nullptr);

}  // namespace clo::sat
