#pragma once
// A compact CDCL SAT solver in the MiniSat lineage: two-literal watches,
// first-UIP conflict analysis with local clause minimization, VSIDS-style
// variable activities with phase saving, and Luby restarts. It exists to
// give the equivalence checker an exact UNSAT verdict (random simulation
// can only ever refute); instances here are AIG miters, so the solver
// favors simplicity over every last trick — no clause-database reduction,
// no preprocessing beyond level-0 simplification. A conflict budget turns
// "too hard" into an explicit kUnknown instead of an open-ended run.

#include <cstdint>
#include <vector>

#include "clo/sat/cnf.hpp"

namespace clo::sat {

enum class Verdict { kSat, kUnsat, kUnknown };

struct SolveStats {
  std::uint64_t decisions = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;
};

class Solver {
 public:
  Solver() = default;
  /// Load a whole formula (clauses are simplified against level-0 units).
  explicit Solver(const Cnf& cnf);

  /// Allocate a fresh variable; returns its (1-based) index.
  int new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Add one clause. Returns false when the formula became trivially
  /// unsatisfiable (empty clause / conflicting units); the solver stays
  /// usable and solve() will report kUnsat.
  bool add_clause(std::vector<Lit> lits);

  /// Solve, optionally under assumptions (each forced true for this call
  /// only). `conflict_budget` of 0 means unlimited; when exhausted the
  /// result is kUnknown and the solver can be re-solved with a larger
  /// budget.
  Verdict solve(std::uint64_t conflict_budget = 0);
  Verdict solve(const std::vector<Lit>& assumptions,
                std::uint64_t conflict_budget = 0);

  /// Truth of `l` in the model of the last kSat solve().
  bool model_value(Lit l) const;

  const SolveStats& stats() const { return stats_; }

 private:
  // Internal literal: 2*var + sign with 0-based vars.
  using ILit = int;
  static ILit ilit(Lit l) {
    return 2 * (lit_var(l) - 1) + (lit_sign(l) ? 1 : 0);
  }
  static int ivar(ILit p) { return p >> 1; }

  struct Clause {
    std::vector<ILit> lits;
  };
  struct Watch {
    int cref;
    ILit blocker;
  };

  // -1 = unassigned, else the value of the variable (0/1).
  int lit_val(ILit p) const {
    const int v = value_[ivar(p)];
    return v < 0 ? -1 : (v ^ (p & 1));
  }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void ensure_var(int var);
  void enqueue(ILit p, int reason);
  int propagate();  ///< returns the conflicting clause index, or -1
  void analyze(int confl, std::vector<ILit>* learnt, int* bt_level);
  void backtrack(int level);
  void attach(int cref);
  void bump(int var);
  void decay();
  Verdict search(std::uint64_t restart_budget,
                 const std::vector<ILit>& assumptions,
                 std::uint64_t conflict_budget);

  // Activity-ordered decision heap (indexed binary max-heap).
  void heap_insert(int var);
  void heap_up(int i);
  void heap_down(int i);
  int heap_pop();

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watch>> watches_;  ///< indexed by internal literal
  std::vector<std::int8_t> value_;           ///< per var: -1/0/1
  std::vector<std::int8_t> phase_;           ///< saved polarity per var
  std::vector<int> level_;
  std::vector<int> reason_;  ///< clause index or -1
  std::vector<ILit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<int> heap_;
  std::vector<int> heap_pos_;  ///< var -> heap index, -1 if absent

  std::vector<char> seen_;
  std::vector<int> to_clear_;

  std::vector<std::int8_t> model_;
  SolveStats stats_;
};

}  // namespace clo::sat
