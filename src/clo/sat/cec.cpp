#include "clo/sat/cec.hpp"

#include <stdexcept>

#include "clo/aig/simulate.hpp"

namespace clo::sat {
namespace {

/// Replay `pattern` through both circuits and check they disagree on
/// `failing_po` — the confirmation step every counterexample must pass.
bool confirm_counterexample(const aig::Aig& a, const aig::Aig& b,
                            const std::vector<bool>& pattern,
                            std::size_t failing_po) {
  const auto oa = aig::simulate(a, pattern);
  const auto ob = aig::simulate(b, pattern);
  return oa[failing_po] != ob[failing_po];
}

}  // namespace

const char* cec_verdict_name(CecVerdict v) {
  switch (v) {
    case CecVerdict::kEquivalent: return "equivalent";
    case CecVerdict::kNotEquivalent: return "not_equivalent";
    case CecVerdict::kUnknown: return "unknown";
  }
  return "?";
}

Cnf build_miter(const aig::Aig& a, const aig::Aig& b,
                std::vector<int>* pi_vars) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("build_miter: interface mismatch");
  }
  Cnf cnf;
  std::vector<int> pis;
  pis.reserve(a.num_pis());
  for (std::size_t i = 0; i < a.num_pis(); ++i) pis.push_back(cnf.new_var());
  const TseitinMap ma = tseitin_encode(a, &cnf, &pis);
  const TseitinMap mb = tseitin_encode(b, &cnf, &pis);
  // One difference variable per PO pair: d_i <-> (po_a_i XOR po_b_i).
  std::vector<Lit> any_diff;
  any_diff.reserve(a.num_pos());
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    const Lit x = ma.cnf_lit(a.po(i));
    const Lit y = mb.cnf_lit(b.po(i));
    const int d = cnf.new_var();
    cnf.add_ternary(-d, x, y);
    cnf.add_ternary(-d, -x, -y);
    cnf.add_ternary(d, -x, y);
    cnf.add_ternary(d, x, -y);
    any_diff.push_back(d);
  }
  cnf.add_clause(std::move(any_diff));  // some output must differ
  if (pi_vars != nullptr) *pi_vars = pis;
  return cnf;
}

CecOutcome check_equivalence(const aig::Aig& a, const aig::Aig& b,
                             const CecOptions& options) {
  CecOutcome out;
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    out.verdict = CecVerdict::kNotEquivalent;
    out.method = "interface";
    return out;
  }
  if (a.num_pos() == 0) {
    out.verdict = CecVerdict::kEquivalent;
    out.method = "interface";
    return out;
  }

  // ---- Stage 1: random-pattern counterexample search ----------------------
  const std::size_t n = a.num_pis();
  clo::Rng rng(options.sim_seed);
  std::vector<std::uint64_t> words(n);
  for (int round = 0; round < options.sim_rounds; ++round) {
    for (auto& w : words) w = rng.next_u64();
    // Round 0 pins pattern slot 0 to all-zero inputs and slot 1 to
    // all-one inputs: cheap constant probes random words can miss on
    // wide AND cones.
    if (round == 0) {
      for (auto& w : words) w = (w & ~3ULL) | 2ULL;
    }
    const auto oa = aig::simulate_words(a, words);
    const auto ob = aig::simulate_words(b, words);
    out.patterns_simulated += 64;
    for (std::size_t i = 0; i < oa.size(); ++i) {
      const std::uint64_t diff = oa[i] ^ ob[i];
      if (diff == 0) continue;
      // Extract the first differing pattern as a concrete input vector.
      int bit = 0;
      while (((diff >> bit) & 1ULL) == 0) ++bit;
      std::vector<bool> pattern(n);
      for (std::size_t k = 0; k < n; ++k) {
        pattern[k] = ((words[k] >> bit) & 1ULL) != 0;
      }
      if (!confirm_counterexample(a, b, pattern, i)) {
        throw std::logic_error("cec: simulation counterexample replay failed");
      }
      out.verdict = CecVerdict::kNotEquivalent;
      out.method = "sim";
      out.counterexample = std::move(pattern);
      out.failing_po = i;
      return out;
    }
  }

  // ---- Stage 2: SAT on the miter -----------------------------------------
  std::vector<int> pi_vars;
  const Cnf miter = build_miter(a, b, &pi_vars);
  Solver solver(miter);
  const Verdict v = solver.solve(options.conflict_budget);
  out.solver_stats = solver.stats();
  out.method = "sat";
  if (v == Verdict::kUnsat) {
    out.verdict = CecVerdict::kEquivalent;
    return out;
  }
  if (v == Verdict::kUnknown) {
    out.verdict = CecVerdict::kUnknown;
    return out;
  }
  // SAT: the model's PI assignment is a candidate counterexample. Never
  // trust the solver blindly — replay it through the simulator.
  std::vector<bool> pattern(n);
  for (std::size_t k = 0; k < n; ++k) {
    pattern[k] = solver.model_value(pi_vars[k]);
  }
  const auto oa = aig::simulate(a, pattern);
  const auto ob = aig::simulate(b, pattern);
  bool confirmed = false;
  for (std::size_t i = 0; i < oa.size(); ++i) {
    if (oa[i] != ob[i]) {
      out.failing_po = i;
      confirmed = true;
      break;
    }
  }
  if (!confirmed) {
    throw std::logic_error("cec: SAT counterexample replay failed");
  }
  out.verdict = CecVerdict::kNotEquivalent;
  out.counterexample = std::move(pattern);
  return out;
}

}  // namespace clo::sat
