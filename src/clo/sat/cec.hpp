#pragma once
// SAT-based combinational equivalence checking: the trust layer under the
// rewrite engine. A check runs in two stages:
//
//  1. Simulation pre-filter — rounds of 64-pattern random simulation on
//     both circuits with shared inputs. Most real inequivalences (a buggy
//     rewrite) fall here in microseconds, with a concrete counterexample.
//  2. SAT verdict — a miter (shared PIs, per-PO XOR, OR of all XORs forced
//     true) is Tseitin-encoded and handed to the CDCL solver. UNSAT is a
//     *proof* of equivalence — the thing random simulation can never give.
//     A SAT answer is a counterexample, which is replayed through the
//     simulator before being believed; a model the simulator rejects means
//     the checker itself is broken, and throws.
//
// This is the role ABC's `cec` plays for sequence-search methods (DRiLLS,
// BOiLS): every aggressive sequence is safe because every output is
// checked. The shell's `cec` command, the pipeline's `--verify` gate, and
// the clo_fuzz cross-checker all funnel into check_equivalence().

#include <cstdint>
#include <string>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/sat/solver.hpp"
#include "clo/util/rng.hpp"

namespace clo::sat {

enum class CecVerdict {
  kEquivalent,     ///< proven by SAT (UNSAT miter) or exhaustive patterns
  kNotEquivalent,  ///< simulator-confirmed counterexample in hand
  kUnknown,        ///< conflict budget exhausted before a verdict
};

const char* cec_verdict_name(CecVerdict v);

struct CecOptions {
  /// Rounds of 64-pattern random simulation before SAT (0 disables).
  int sim_rounds = 32;
  /// Seed for the pre-filter patterns (fixed default: checks reproduce).
  std::uint64_t sim_seed = 0xC0FFEE5EEDULL;
  /// CDCL conflict cap; 0 = unlimited (verdicts are then always exact).
  std::uint64_t conflict_budget = 0;
};

struct CecOutcome {
  CecVerdict verdict = CecVerdict::kUnknown;
  /// Which stage decided: "interface" (PI/PO counts differ), "sim", "sat".
  std::string method;
  /// Valid when kNotEquivalent (and method != "interface").
  std::vector<bool> counterexample;
  std::size_t failing_po = 0;
  /// Work accounting.
  std::size_t patterns_simulated = 0;
  SolveStats solver_stats;

  bool equivalent() const { return verdict == CecVerdict::kEquivalent; }
};

/// Check combinational equivalence of `a` and `b`. Interfaces must match
/// (same PI and PO counts); a mismatch is kNotEquivalent with method
/// "interface" and no counterexample. Throws std::logic_error if the SAT
/// stage produces a counterexample the simulator does not confirm.
CecOutcome check_equivalence(const aig::Aig& a, const aig::Aig& b,
                             const CecOptions& options = {});

/// Build the miter CNF of `a` vs `b` (shared PI variables, OR of the
/// per-PO XORs asserted true): SAT iff the circuits differ somewhere.
/// Exposed for tests; `pi_vars` receives the shared input variables.
Cnf build_miter(const aig::Aig& a, const aig::Aig& b,
                std::vector<int>* pi_vars);

}  // namespace clo::sat
