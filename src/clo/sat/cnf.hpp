#pragma once
// CNF formulas and the Tseitin transformation of an AIG into one — the
// front end of the clo::sat equivalence checker. Variables are 1-based and
// literals are signed DIMACS-style integers (+v = v true, -v = v false), so
// hand-written test formulas and dumped instances read like standard CNF.

#include <cstdint>
#include <vector>

#include "clo/aig/aig.hpp"

namespace clo::sat {

/// A DIMACS-style literal: +var or -var, var >= 1.
using Lit = int;

inline int lit_var(Lit l) { return l < 0 ? -l : l; }
inline bool lit_sign(Lit l) { return l < 0; }

/// A CNF formula under construction. Clauses are stored as written; the
/// solver does its own preprocessing (dedup, tautology removal) on load.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  /// Allocate a fresh variable; returns its index (1-based).
  int new_var() { return ++num_vars; }

  void add_clause(std::vector<Lit> lits) { clauses.push_back(std::move(lits)); }
  void add_unit(Lit a) { clauses.push_back({a}); }
  void add_binary(Lit a, Lit b) { clauses.push_back({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { clauses.push_back({a, b, c}); }

  std::size_t num_clauses() const { return clauses.size(); }
};

/// Variable assignment of one AIG's nodes produced by tseitin_encode().
struct TseitinMap {
  /// CNF variable per AIG node slot (0 for dead/unencoded nodes).
  std::vector<int> node_var;
  /// CNF variable per primary input, in PI order.
  std::vector<int> pi_vars;

  /// Signed CNF literal for an AIG literal (applies the complement bit).
  Lit cnf_lit(aig::Lit l) const {
    const int v = node_var[aig::lit_node(l)];
    return aig::lit_is_compl(l) ? -v : v;
  }
};

/// Tseitin-encode the combinational logic of `g` into `cnf`: every live
/// node reachable from a PO gets a variable, each AND node contributes the
/// three standard clauses, and the constant-0 node (when referenced) is
/// pinned false with a unit clause. When `pi_vars` is non-null its entries
/// are used as the PI variables instead of allocating fresh ones — this is
/// how a miter shares inputs between two circuits (size must match
/// g.num_pis()). PO literals are NOT asserted; use map.cnf_lit(g.po(i)).
TseitinMap tseitin_encode(const aig::Aig& g, Cnf* cnf,
                          const std::vector<int>* pi_vars = nullptr);

}  // namespace clo::sat
