#include "clo/sat/solver.hpp"

#include <algorithm>
#include <stdexcept>

namespace clo::sat {
namespace {

constexpr double kVarDecay = 0.95;
constexpr double kActivityRescale = 1e100;
constexpr std::uint64_t kRestartBase = 128;

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t x) {
  std::uint64_t size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return 1ULL << seq;
}

}  // namespace

Solver::Solver(const Cnf& cnf) {
  ensure_var(cnf.num_vars);
  for (const auto& clause : cnf.clauses) add_clause(clause);
}

int Solver::new_var() {
  ensure_var(num_vars() + 1);
  return num_vars();
}

void Solver::ensure_var(int var) {
  while (num_vars() < var) {
    const int v = num_vars();
    activity_.push_back(0.0);
    value_.push_back(-1);
    phase_.push_back(0);
    level_.push_back(0);
    reason_.push_back(-1);
    seen_.push_back(0);
    heap_pos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
  }
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  if (decision_level() != 0) {
    throw std::logic_error("add_clause: only allowed at decision level 0");
  }
  std::vector<ILit> c;
  c.reserve(lits.size());
  for (Lit l : lits) {
    if (lit_var(l) == 0) throw std::invalid_argument("literal 0 in clause");
    ensure_var(lit_var(l));
    c.push_back(ilit(l));
  }
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  std::size_t j = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i + 1 < c.size() && (c[i] ^ 1) == c[i + 1]) return true;  // tautology
    const int v = lit_val(c[i]);
    if (v == 1) return true;  // satisfied at level 0
    if (v == 0) continue;     // falsified at level 0: drop the literal
    c[j++] = c[i];
  }
  c.resize(j);
  if (c.empty()) {
    ok_ = false;
    return false;
  }
  if (c.size() == 1) {
    enqueue(c[0], -1);
    if (propagate() != -1) ok_ = false;
    return ok_;
  }
  clauses_.push_back(Clause{std::move(c)});
  attach(static_cast<int>(clauses_.size()) - 1);
  return true;
}

void Solver::attach(int cref) {
  const auto& c = clauses_[cref].lits;
  watches_[c[0]].push_back({cref, c[1]});
  watches_[c[1]].push_back({cref, c[0]});
}

void Solver::enqueue(ILit p, int reason) {
  const int v = ivar(p);
  value_[v] = static_cast<std::int8_t>((p & 1) ^ 1);
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(p);
  ++stats_.propagations;
}

int Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const ILit p = trail_[qhead_++];  // p just became true
    const ILit false_lit = p ^ 1;
    auto& ws = watches_[false_lit];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watch w = ws[i++];
      if (lit_val(w.blocker) == 1) {
        ws[j++] = w;
        continue;
      }
      auto& c = clauses_[w.cref].lits;
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (lit_val(c[0]) == 1) {
        ws[j++] = {w.cref, c[0]};
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (lit_val(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[c[1]].push_back({w.cref, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting under the current assignment.
      ws[j++] = {w.cref, c[0]};
      if (lit_val(c[0]) == 0) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        return w.cref;
      }
      enqueue(c[0], w.cref);
    }
    ws.resize(j);
  }
  return -1;
}

void Solver::analyze(int confl, std::vector<ILit>* learnt, int* bt_level) {
  learnt->clear();
  learnt->push_back(0);  // slot for the asserting literal
  int path_count = 0;
  ILit p = -1;
  int idx = static_cast<int>(trail_.size()) - 1;
  do {
    const auto& c = clauses_[confl].lits;
    for (std::size_t k = (p == -1 ? 0 : 1); k < c.size(); ++k) {
      const ILit q = c[k];
      const int v = ivar(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      to_clear_.push_back(v);
      bump(v);
      if (level_[v] >= decision_level()) {
        ++path_count;
      } else {
        learnt->push_back(q);
      }
    }
    while (!seen_[ivar(trail_[idx])]) --idx;
    p = trail_[idx--];
    confl = reason_[ivar(p)];
    seen_[ivar(p)] = 0;
    --path_count;
  } while (path_count > 0);
  (*learnt)[0] = p ^ 1;

  // Local minimization: a literal is redundant when its reason clause is
  // entirely covered by the rest of the learnt clause.
  std::size_t j = 1;
  for (std::size_t k = 1; k < learnt->size(); ++k) {
    const int v = ivar((*learnt)[k]);
    const int r = reason_[v];
    bool redundant = r != -1;
    if (redundant) {
      const auto& rc = clauses_[r].lits;
      for (std::size_t m = 1; m < rc.size(); ++m) {
        const int u = ivar(rc[m]);
        if (!seen_[u] && level_[u] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) (*learnt)[j++] = (*learnt)[k];
  }
  learnt->resize(j);

  if (learnt->size() == 1) {
    *bt_level = 0;
  } else {
    // Second-highest decision level in the clause asserts at that level.
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < learnt->size(); ++k) {
      if (level_[ivar((*learnt)[k])] > level_[ivar((*learnt)[max_i])]) {
        max_i = k;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *bt_level = level_[ivar((*learnt)[1])];
  }
  for (int v : to_clear_) seen_[v] = 0;
  to_clear_.clear();
}

void Solver::backtrack(int level) {
  if (decision_level() <= level) return;
  const std::size_t keep = trail_lim_[level];
  for (std::size_t k = trail_.size(); k-- > keep;) {
    const int v = ivar(trail_[k]);
    phase_[v] = value_[v];
    value_[v] = -1;
    if (heap_pos_[v] < 0) heap_insert(v);
  }
  trail_.resize(keep);
  trail_lim_.resize(level);
  qhead_ = keep;
}

void Solver::bump(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > kActivityRescale) {
    for (double& a : activity_) a /= kActivityRescale;
    var_inc_ /= kActivityRescale;
  }
  if (heap_pos_[var] >= 0) heap_up(heap_pos_[var]);
}

void Solver::decay() { var_inc_ /= kVarDecay; }

void Solver::heap_insert(int var) {
  heap_pos_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_up(heap_pos_[var]);
}

void Solver::heap_up(int i) {
  const int var = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = var;
  heap_pos_[var] = i;
}

void Solver::heap_down(int i) {
  const int var = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[var] >= activity_[heap_[child]]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = var;
  heap_pos_[var] = i;
}

int Solver::heap_pop() {
  const int var = heap_[0];
  heap_pos_[var] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return var;
}

Verdict Solver::search(std::uint64_t restart_budget,
                       const std::vector<ILit>& assumptions,
                       std::uint64_t conflict_budget) {
  std::uint64_t conflicts_here = 0;
  std::vector<ILit> learnt;
  for (;;) {
    const int confl = propagate();
    if (confl != -1) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0) return Verdict::kUnsat;
      int bt_level = 0;
      analyze(confl, &learnt, &bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        clauses_.push_back(Clause{learnt});
        const int cref = static_cast<int>(clauses_.size()) - 1;
        attach(cref);
        ++stats_.learned;
        enqueue(learnt[0], cref);
      }
      decay();
      if (conflict_budget != 0 && stats_.conflicts >= conflict_budget) {
        backtrack(0);
        return Verdict::kUnknown;
      }
      if (conflicts_here >= restart_budget) {
        ++stats_.restarts;
        backtrack(0);
        return Verdict::kUnknown;  // restart (caller loops)
      }
      continue;
    }
    if (decision_level() < static_cast<int>(assumptions.size())) {
      // Re-establish the next assumption as a pseudo-decision.
      const ILit a = assumptions[decision_level()];
      const int v = lit_val(a);
      if (v == 0) return Verdict::kUnsat;  // conflicts with learnt units
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      if (v == -1) enqueue(a, -1);
      continue;
    }
    ILit decision = -1;
    while (!heap_.empty()) {
      const int var = heap_pop();
      if (value_[var] < 0) {
        decision = 2 * var + (phase_[var] == 0 ? 1 : 0);
        break;
      }
    }
    if (decision == -1) {
      model_.assign(value_.begin(), value_.end());
      return Verdict::kSat;
    }
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(decision, -1);
  }
}

Verdict Solver::solve(std::uint64_t conflict_budget) {
  return solve({}, conflict_budget);
}

Verdict Solver::solve(const std::vector<Lit>& assumptions,
                      std::uint64_t conflict_budget) {
  if (!ok_) return Verdict::kUnsat;
  std::vector<ILit> assume;
  assume.reserve(assumptions.size());
  for (Lit l : assumptions) {
    ensure_var(lit_var(l));
    assume.push_back(ilit(l));
  }
  if (propagate() != -1) {
    ok_ = false;
    return Verdict::kUnsat;
  }
  const std::uint64_t budget_end =
      conflict_budget == 0 ? 0 : stats_.conflicts + conflict_budget;
  Verdict result = Verdict::kUnknown;
  for (std::uint64_t round = 0; result == Verdict::kUnknown; ++round) {
    result = search(luby(round) * kRestartBase, assume, budget_end);
    if (result == Verdict::kUnknown && budget_end != 0 &&
        stats_.conflicts >= budget_end) {
      break;  // out of budget, not just restarting
    }
  }
  backtrack(0);
  return result;
}

bool Solver::model_value(Lit l) const {
  const int v = lit_var(l) - 1;
  if (v < 0 || v >= static_cast<int>(model_.size()) || model_[v] < 0) {
    throw std::logic_error("model_value: no model for this literal");
  }
  return lit_sign(l) ? model_[v] == 0 : model_[v] == 1;
}

}  // namespace clo::sat
