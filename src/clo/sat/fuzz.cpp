#include "clo/sat/fuzz.hpp"

#include <stdexcept>
#include <utility>

namespace clo::sat {
namespace {

aig::Lit xlate(const std::vector<aig::Lit>& map, aig::Lit l) {
  return aig::lit_notc(map[aig::lit_node(l)], aig::lit_is_compl(l));
}

/// One topological re-walk serving every shrink move: optionally collapse
/// one AND node (to const0 / fanin0 / fanin1), drop POs, prune dead PIs.
struct RebuildSpec {
  std::uint32_t replace_node = 0;  ///< 0 = none (node 0 is never an AND)
  int replace_mode = 0;            ///< 0 const0, 1 fanin0, 2 fanin1
  const std::vector<char>* keep_po = nullptr;
  bool prune_unused_pis = false;
};

aig::Aig rebuild(const aig::Aig& g, const RebuildSpec& spec) {
  aig::Aig out;
  out.set_name(g.name());
  std::vector<aig::Lit> map(g.num_slots(), aig::kLitNull);
  map[0] = aig::kLitFalse;
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    if (spec.prune_unused_pis && g.nrefs(g.pi_node(i)) == 0) continue;
    map[g.pi_node(i)] = out.add_pi(g.pi_name(i));
  }
  for (std::uint32_t n : g.topo_order()) {
    const aig::Lit f0 = xlate(map, g.fanin0(n));
    const aig::Lit f1 = xlate(map, g.fanin1(n));
    if (n == spec.replace_node) {
      map[n] = spec.replace_mode == 0   ? aig::kLitFalse
               : spec.replace_mode == 1 ? f0
                                        : f1;
    } else {
      map[n] = out.and_of(f0, f1);
    }
  }
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    if (spec.keep_po != nullptr && !(*spec.keep_po)[i]) continue;
    out.add_po(xlate(map, g.po(i)), g.po_name(i));
  }
  out.cleanup();
  return out;
}

void adopt(FuzzFailure* failure, const FuzzFailure& probe) {
  failure->kind = probe.kind;
  failure->detail = probe.detail;
  failure->counterexample = probe.counterexample;
}

}  // namespace

aig::Aig random_aig(clo::Rng& rng, int num_pis, int num_ands, int num_pos) {
  aig::Aig g;
  std::vector<aig::Lit> pool;
  pool.reserve(static_cast<std::size_t>(num_pis) + num_ands);
  for (int i = 0; i < num_pis; ++i) pool.push_back(g.add_pi());
  for (int i = 0; i < num_ands; ++i) {
    const aig::Lit a = pool[rng.next_below(pool.size())];
    const aig::Lit b = pool[rng.next_below(pool.size())];
    pool.push_back(g.and_of(aig::lit_notc(a, rng.next_bool()),
                            aig::lit_notc(b, rng.next_bool())));
  }
  for (int i = 0; i < num_pos; ++i) {
    // Bias toward recently built (deep) nodes so POs see real logic.
    const std::size_t lo = pool.size() / 2;
    const std::size_t idx = lo + rng.next_below(pool.size() - lo);
    g.add_po(aig::lit_notc(pool[idx], rng.next_bool()));
  }
  g.cleanup();
  return g;
}

bool check_case(const aig::Aig& circuit, const opt::Sequence& sequence,
                const SequenceRunner& runner, const CecOptions& cec,
                FuzzFailure* failure) {
  aig::Aig optimized = circuit;
  try {
    if (runner) {
      runner(optimized, sequence);
    } else {
      opt::run_sequence(optimized, sequence);
    }
    optimized.check();
  } catch (const std::exception& e) {
    failure->kind = "exception";
    failure->detail = e.what();
    failure->counterexample.clear();
    return true;
  }
  const CecOutcome out = check_equivalence(circuit, optimized, cec);
  if (out.verdict == CecVerdict::kNotEquivalent) {
    failure->kind = "not_equivalent";
    failure->detail = out.method == "interface"
                          ? "interface changed"
                          : "po " + std::to_string(out.failing_po) +
                                " differs (found by " + out.method + ")";
    failure->counterexample = out.counterexample;
    return true;
  }
  return false;
}

void shrink_failure(FuzzFailure* failure, const SequenceRunner& runner,
                    const CecOptions& cec) {
  FuzzFailure probe;
  // Stage 1: drop sequence steps (ddmin with single-element removals).
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = failure->sequence.size(); i-- > 0;) {
      opt::Sequence cand = failure->sequence;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      if (check_case(failure->reproducer, cand, runner, cec, &probe)) {
        failure->sequence = std::move(cand);
        adopt(failure, probe);
        improved = true;
      }
    }
  }
  // Stage 2: shrink the circuit — drop POs, collapse AND nodes. Restart
  // after every accepted move (cleanup invalidates node indices).
  improved = true;
  while (improved) {
    improved = false;
    if (failure->reproducer.num_pos() > 1) {
      for (std::size_t i = 0; i < failure->reproducer.num_pos(); ++i) {
        std::vector<char> keep(failure->reproducer.num_pos(), 1);
        keep[i] = 0;
        RebuildSpec spec;
        spec.keep_po = &keep;
        aig::Aig cand = rebuild(failure->reproducer, spec);
        if (check_case(cand, failure->sequence, runner, cec, &probe)) {
          failure->reproducer = std::move(cand);
          adopt(failure, probe);
          improved = true;
          break;
        }
      }
      if (improved) continue;
    }
    const auto nodes = failure->reproducer.topo_order();
    for (std::size_t k = nodes.size(); k-- > 0 && !improved;) {
      for (int mode = 0; mode < 3 && !improved; ++mode) {
        RebuildSpec spec;
        spec.replace_node = nodes[k];
        spec.replace_mode = mode;
        aig::Aig cand = rebuild(failure->reproducer, spec);
        if (cand.num_ands() >= failure->reproducer.num_ands()) continue;
        if (check_case(cand, failure->sequence, runner, cec, &probe)) {
          failure->reproducer = std::move(cand);
          adopt(failure, probe);
          improved = true;
        }
      }
    }
  }
  // Stage 3: drop primary inputs nothing references anymore.
  RebuildSpec spec;
  spec.prune_unused_pis = true;
  aig::Aig pruned = rebuild(failure->reproducer, spec);
  if (pruned.num_pis() < failure->reproducer.num_pis() &&
      check_case(pruned, failure->sequence, runner, cec, &probe)) {
    failure->reproducer = std::move(pruned);
    adopt(failure, probe);
  }
}

std::optional<FuzzFailure> fuzz_one(std::uint64_t seed,
                                    const FuzzOptions& options,
                                    const SequenceRunner& runner) {
  clo::Rng rng(seed ^ 0xF022ED5EEDULL);
  const int pis = rng.next_int(options.min_pis, options.max_pis);
  const int ands = rng.next_int(options.min_ands, options.max_ands);
  const int pos = rng.next_int(1, options.max_pos);
  aig::Aig g = random_aig(rng, pis, ands, pos);
  g.set_name("fuzz_" + std::to_string(seed));
  const int len = rng.next_int(options.min_seq_len, options.max_seq_len);
  const opt::Sequence seq = opt::random_sequence(len, rng);
  FuzzFailure failure;
  failure.seed = seed;
  failure.reproducer = g;
  failure.sequence = seq;
  if (!check_case(g, seq, runner, options.cec, &failure)) {
    return std::nullopt;
  }
  shrink_failure(&failure, runner, options.cec);
  return failure;
}

}  // namespace clo::sat
