#include "clo/sat/cnf.hpp"

#include <stdexcept>

namespace clo::sat {

TseitinMap tseitin_encode(const aig::Aig& g, Cnf* cnf,
                          const std::vector<int>* pi_vars) {
  if (pi_vars != nullptr && pi_vars->size() != g.num_pis()) {
    throw std::invalid_argument("tseitin_encode: pi_vars size mismatch");
  }
  TseitinMap map;
  map.node_var.assign(g.num_slots(), 0);
  map.pi_vars.resize(g.num_pis());
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    const int v = pi_vars != nullptr ? (*pi_vars)[i] : cnf->new_var();
    map.pi_vars[i] = v;
    map.node_var[g.pi_node(i)] = v;
  }
  // Only encode the constant node when something actually references it;
  // a dangling always-false variable would be harmless but noisy.
  bool const_used = false;
  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    if (aig::lit_node(g.po(i)) == 0) const_used = true;
  }
  const auto topo = g.topo_order();
  for (std::uint32_t n : topo) {
    if (aig::lit_node(g.fanin0(n)) == 0 || aig::lit_node(g.fanin1(n)) == 0) {
      const_used = true;
    }
  }
  if (const_used) {
    const int v = cnf->new_var();
    map.node_var[0] = v;
    cnf->add_unit(-v);  // node 0 is constant false
  }
  // Each AND node n = a & b becomes (-n a), (-n b), (n -a -b).
  for (std::uint32_t n : topo) {
    const int v = cnf->new_var();
    map.node_var[n] = v;
    const Lit a = map.cnf_lit(g.fanin0(n));
    const Lit b = map.cnf_lit(g.fanin1(n));
    cnf->add_binary(-v, a);
    cnf->add_binary(-v, b);
    cnf->add_ternary(v, -a, -b);
  }
  return map;
}

}  // namespace clo::sat
