// DRiLLS [5]: advantage-actor-critic reinforcement learning over synthesis
// state features. Each episode rolls out a full sequence; per-step rewards
// come from AIG statistics deltas (node/depth reduction), the terminal
// reward from real mapped QoR. Policy and value nets update per episode.

#include <cmath>

#include "clo/baselines/baseline.hpp"
#include "clo/nn/modules.hpp"
#include "clo/nn/optim.hpp"
#include "clo/util/timer.hpp"

namespace clo::baselines {
namespace {

using nn::Tensor;

class DrillsOptimizer final : public SequenceOptimizer {
 public:
  const std::string& name() const override { return name_; }

  BaselineResult optimize(core::QorEvaluator& evaluator,
                          const BaselineParams& params,
                          clo::Rng& rng) override {
    Stopwatch total;
    total.start();
    const double synth_before = evaluator.synthesis_seconds();
    const std::size_t runs_before = evaluator.num_synthesis_runs();

    const int kFeatures = 4 + opt::kNumTransforms;
    nn::Mlp policy(kFeatures, 24, opt::kNumTransforms, rng);
    nn::Mlp value(kFeatures, 24, 1, rng);
    auto pparams = policy.parameters();
    {
      auto vp = value.parameters();
      pparams.insert(pparams.end(), vp.begin(), vp.end());
    }
    nn::Adam optimizer(pparams, 5e-3f);

    const core::Qor original = evaluator.original();
    Stopwatch local_synth;  // stepwise transform time = "ABC time"

    BaselineResult result;
    result.objective = 1e300;
    const int episodes = std::max(1, params.eval_budget);
    for (int ep = 0; ep < episodes; ++ep) {
      aig::Aig g = evaluator.circuit();
      const double orig_nodes = static_cast<double>(g.num_ands());
      const double orig_depth = std::max(1, g.depth());
      opt::Sequence seq;
      std::vector<Tensor> log_probs, values;
      std::vector<double> rewards;
      int last_action = -1;
      double prev_nodes = 1.0, prev_depth = 1.0;
      for (int step = 0; step < params.seq_len; ++step) {
        // State features.
        Tensor state = Tensor::zeros({1, kFeatures});
        const double nodes_ratio = g.num_ands() / std::max(1.0, orig_nodes);
        const double depth_ratio = g.depth() / orig_depth;
        state.data()[0] = static_cast<float>(nodes_ratio);
        state.data()[1] = static_cast<float>(depth_ratio);
        state.data()[2] =
            static_cast<float>(step) / static_cast<float>(params.seq_len);
        state.data()[3] = 1.0f;
        if (last_action >= 0) state.data()[4 + last_action] = 1.0f;
        Tensor probs = nn::softmax_rows(policy.forward(state));
        // Sample an action.
        const double u = rng.next_double();
        double acc = 0.0;
        int action = opt::kNumTransforms - 1;
        for (int a = 0; a < opt::kNumTransforms; ++a) {
          acc += probs.data()[a];
          if (u < acc) {
            action = a;
            break;
          }
        }
        // log pi(a|s) kept differentiable: log(prob[a]) via slice.
        Tensor pa = nn::slice_cols(probs, action, action + 1);
        // log via custom: use tanh-free approach: loss uses -log(p); build
        // log with the identity log(p) = log(p); implement via unary chain:
        log_probs.push_back(pa);
        values.push_back(value.forward(state));
        {
          ScopedTimer st(local_synth);
          opt::apply_transform(g, static_cast<opt::Transform>(action));
        }
        const double nodes_now = g.num_ands() / std::max(1.0, orig_nodes);
        const double depth_now = g.depth() / orig_depth;
        rewards.push_back((prev_nodes - nodes_now) * params.weight_area +
                          (prev_depth - depth_now) * params.weight_delay);
        prev_nodes = nodes_now;
        prev_depth = depth_now;
        last_action = action;
        seq.push_back(static_cast<opt::Transform>(action));
      }
      // Terminal reward: mapped QoR relative to original.
      const core::Qor q = evaluator.evaluate(seq);
      const double objective = relative_objective(q, original, params);
      rewards.back() += 1.0 - objective;
      if (objective < result.objective) {
        result.objective = objective;
        result.best_qor = q;
        result.best_sequence = seq;
      }
      // A2C update: advantage-weighted policy loss + value regression.
      double ret = 0.0;
      Tensor loss = Tensor::scalar(0.0f);
      for (int step = params.seq_len - 1; step >= 0; --step) {
        ret = rewards[step] + 0.98 * ret;
        const double advantage = ret - values[step].item();
        // -advantage * log(p): d/dp(-A log p) = -A/p; emulate log with a
        // numerically safe surrogate: -A * p / p_detached acts as score.
        const float p_now = std::max(1e-6f, log_probs[step].item());
        Tensor policy_term = nn::reshape(
            nn::scale(log_probs[step], static_cast<float>(-advantage) / p_now),
            {1});
        Tensor ret_t = Tensor::from_data({1, 1}, {static_cast<float>(ret)});
        Tensor value_term = nn::mse_loss(values[step], ret_t);
        loss = nn::add(loss, nn::add(policy_term, value_term));
      }
      nn::backward(loss);
      optimizer.step();
    }

    total.stop();
    result.total_seconds = total.seconds();
    const double synth_delta =
        (evaluator.synthesis_seconds() - synth_before) + local_synth.seconds();
    result.algorithm_seconds = std::max(0.0, result.total_seconds - synth_delta);
    result.synthesis_runs = evaluator.num_synthesis_runs() - runs_before;
    return result;
  }

 private:
  std::string name_ = "DRiLLS";
};

}  // namespace

std::unique_ptr<SequenceOptimizer> make_drills() {
  return std::make_unique<DrillsOptimizer>();
}

}  // namespace clo::baselines
