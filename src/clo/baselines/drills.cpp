// DRiLLS [5]: advantage-actor-critic reinforcement learning over synthesis
// state features. Each episode rolls out a full sequence; per-step rewards
// come from AIG statistics deltas (node/depth reduction), the terminal
// reward from real mapped QoR. Policy and value nets update per episode.

#include <cmath>

#include "clo/baselines/baseline.hpp"
#include "clo/nn/modules.hpp"
#include "clo/nn/optim.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::baselines {
namespace {

using nn::Tensor;

/// One frozen-policy rollout, recorded for sequential replay.
struct DrillsEpisode {
  opt::Sequence seq;
  std::vector<std::vector<float>> states;  ///< per-step feature vectors
  std::vector<int> actions;
  std::vector<double> rewards;
  core::Qor qor;
  double objective = 0.0;
  double transform_seconds = 0.0;  ///< stepwise AIG transform time
};

class DrillsOptimizer final : public SequenceOptimizer {
 public:
  const std::string& name() const override { return name_; }

  BaselineResult optimize(core::QorEvaluator& evaluator,
                          const BaselineParams& params,
                          clo::Rng& rng) override {
    Stopwatch total;
    total.start();
    const core::EvaluatorStats stats_before = evaluator.snapshot();

    const int kFeatures = 4 + opt::kNumTransforms;
    nn::Mlp policy(kFeatures, 24, opt::kNumTransforms, rng);
    nn::Mlp value(kFeatures, 24, 1, rng);
    auto pparams = policy.parameters();
    {
      auto vp = value.parameters();
      pparams.insert(pparams.end(), vp.begin(), vp.end());
    }
    nn::Adam optimizer(pparams, 5e-3f);

    const core::Qor original = evaluator.original();
    double transform_seconds = 0.0;  // stepwise transform time = "ABC time"

    // One rollout under the current (frozen) policy: forward passes only,
    // with everything the replay step needs recorded by value.
    auto rollout = [&](clo::Rng& ep_rng) {
      DrillsEpisode ep;
      Stopwatch local_synth;
      aig::Aig g = evaluator.circuit();
      const double orig_nodes = static_cast<double>(g.num_ands());
      const double orig_depth = std::max(1, g.depth());
      int last_action = -1;
      double prev_nodes = 1.0, prev_depth = 1.0;
      for (int step = 0; step < params.seq_len; ++step) {
        // State features.
        std::vector<float> features(kFeatures, 0.0f);
        const double nodes_ratio = g.num_ands() / std::max(1.0, orig_nodes);
        const double depth_ratio = g.depth() / orig_depth;
        features[0] = static_cast<float>(nodes_ratio);
        features[1] = static_cast<float>(depth_ratio);
        features[2] =
            static_cast<float>(step) / static_cast<float>(params.seq_len);
        features[3] = 1.0f;
        if (last_action >= 0) features[4 + last_action] = 1.0f;
        Tensor state = Tensor::from_data({1, kFeatures}, features);
        Tensor probs = nn::softmax_rows(policy.forward(state));
        // Sample an action.
        const double u = ep_rng.next_double();
        double acc = 0.0;
        int action = opt::kNumTransforms - 1;
        for (int a = 0; a < opt::kNumTransforms; ++a) {
          acc += probs.data()[a];
          if (u < acc) {
            action = a;
            break;
          }
        }
        {
          ScopedTimer st(local_synth);
          opt::apply_transform(g, static_cast<opt::Transform>(action));
        }
        const double nodes_now = g.num_ands() / std::max(1.0, orig_nodes);
        const double depth_now = g.depth() / orig_depth;
        ep.rewards.push_back((prev_nodes - nodes_now) * params.weight_area +
                             (prev_depth - depth_now) * params.weight_delay);
        prev_nodes = nodes_now;
        prev_depth = depth_now;
        last_action = action;
        ep.states.push_back(std::move(features));
        ep.actions.push_back(action);
        ep.seq.push_back(static_cast<opt::Transform>(action));
      }
      // Terminal reward: mapped QoR relative to original.
      ep.qor = evaluator.evaluate(ep.seq);
      ep.objective = relative_objective(ep.qor, original, params);
      ep.rewards.back() += 1.0 - ep.objective;
      ep.transform_seconds = local_synth.seconds();
      return ep;
    };

    BaselineResult result;
    result.objective = 1e300;
    const int episodes = std::max(1, params.eval_budget);
    // Rollout-then-replay: roll out up to one episode per worker under the
    // round-start policy (weights grad-frozen, each rollout's rng forked
    // serially), then replay the round sequentially — recomputing the
    // cheap policy/value forwards against the then-current weights — so
    // every A2C update still happens one episode at a time. With one
    // worker (or no pool) the round size is 1, the main rng stream is
    // consumed exactly as before, and replay reproduces the historical
    // floats bit for bit.
    const std::size_t round_size =
        params.pool != nullptr && params.pool->size() >= 2
            ? params.pool->size()
            : 1;
    for (int base = 0; base < episodes;
         base += static_cast<int>(round_size)) {
      CLO_TRACE_SPAN("drills.round");
      const std::size_t count = std::min<std::size_t>(
          round_size, static_cast<std::size_t>(episodes - base));
      std::vector<DrillsEpisode> round(count);
      if (count == 1) {
        round[0] = rollout(rng);
      } else {
        std::vector<clo::Rng> rngs;
        rngs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) rngs.push_back(rng.fork());
        nn::GradFreeze freeze(pparams);
        util::parallel_for(params.pool, count,
                           [&](std::size_t i) { round[i] = rollout(rngs[i]); });
      }
      for (const auto& ep : round) {
        transform_seconds += ep.transform_seconds;
        if (ep.objective < result.objective) {
          result.objective = ep.objective;
          result.best_qor = ep.qor;
          result.best_sequence = ep.seq;
        }
        // A2C update: advantage-weighted policy loss + value regression.
        std::vector<Tensor> log_probs, values;
        for (int step = 0; step < params.seq_len; ++step) {
          Tensor state = Tensor::from_data({1, kFeatures}, ep.states[step]);
          Tensor probs = nn::softmax_rows(policy.forward(state));
          // log pi(a|s) kept differentiable: log(prob[a]) via slice.
          log_probs.push_back(
              nn::slice_cols(probs, ep.actions[step], ep.actions[step] + 1));
          values.push_back(value.forward(state));
        }
        double ret = 0.0;
        Tensor loss = Tensor::scalar(0.0f);
        for (int step = params.seq_len - 1; step >= 0; --step) {
          ret = ep.rewards[step] + 0.98 * ret;
          const double advantage = ret - values[step].item();
          // -advantage * log(p): d/dp(-A log p) = -A/p; emulate log with a
          // numerically safe surrogate: -A * p / p_detached acts as score.
          const float p_now = std::max(1e-6f, log_probs[step].item());
          Tensor policy_term = nn::reshape(
              nn::scale(log_probs[step],
                        static_cast<float>(-advantage) / p_now),
              {1});
          Tensor ret_t = Tensor::from_data({1, 1}, {static_cast<float>(ret)});
          Tensor value_term = nn::mse_loss(values[step], ret_t);
          loss = nn::add(loss, nn::add(policy_term, value_term));
        }
        nn::backward(loss);
        optimizer.step();
      }
    }

    total.stop();
    result.total_seconds = total.seconds();
    const core::EvaluatorStats stats_after = evaluator.snapshot();
    const double synth_delta =
        (stats_after.synth_seconds - stats_before.synth_seconds) +
        transform_seconds;
    result.algorithm_seconds = std::max(0.0, result.total_seconds - synth_delta);
    result.synthesis_runs = stats_after.unique_runs - stats_before.unique_runs;
    return result;
  }

 private:
  std::string name_ = "DRiLLS";
};

}  // namespace

std::unique_ptr<SequenceOptimizer> make_drills() {
  return std::make_unique<DrillsOptimizer>();
}

}  // namespace clo::baselines
