// BOiLS [9]: Bayesian optimization over the discrete sequence space. A
// Gaussian process with an exponential-Hamming kernel models the objective
// over one-hot sequence encodings; the expected-improvement acquisition is
// optimized by mutation-based local search before each (expensive) real
// synthesis evaluation. GP refits (O(m^3) Cholesky) dominate the
// algorithm-time bucket as observations accumulate.

#include <cmath>

#include "clo/baselines/baseline.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::baselines {
namespace {

/// Exponential-Hamming kernel between sequences.
double kernel(const opt::Sequence& a, const opt::Sequence& b,
              double length_scale) {
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] != b[i] ? 1 : 0;
  return std::exp(-static_cast<double>(diff) / length_scale);
}

/// Dense Cholesky: returns false if not positive definite.
bool cholesky(std::vector<double>& m, int n) {
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = m[i * n + j];
      for (int k = 0; k < j; ++k) s -= m[i * n + k] * m[j * n + k];
      if (i == j) {
        if (s <= 0.0) return false;
        m[i * n + i] = std::sqrt(s);
      } else {
        m[i * n + j] = s / m[j * n + j];
      }
    }
  }
  return true;
}

/// Solve L L^T x = b given the Cholesky factor (lower triangle of m).
std::vector<double> chol_solve(const std::vector<double>& L, int n,
                               std::vector<double> b) {
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < i; ++k) b[i] -= L[i * n + k] * b[k];
    b[i] /= L[i * n + i];
  }
  for (int i = n - 1; i >= 0; --i) {
    for (int k = i + 1; k < n; ++k) b[i] -= L[k * n + i] * b[k];
    b[i] /= L[i * n + i];
  }
  return b;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }
double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979);
}

class BoilsOptimizer final : public SequenceOptimizer {
 public:
  const std::string& name() const override { return name_; }

  BaselineResult optimize(core::QorEvaluator& evaluator,
                          const BaselineParams& params,
                          clo::Rng& rng) override {
    Stopwatch total;
    total.start();
    const core::EvaluatorStats stats_before = evaluator.snapshot();
    const core::Qor original = evaluator.original();

    const double length_scale = 6.0;
    const double noise = 1e-4;
    std::vector<opt::Sequence> xs;
    std::vector<double> ys;

    BaselineResult result;
    result.objective = 1e300;
    auto observe = [&](const opt::Sequence& seq) {
      const core::Qor q = evaluator.evaluate(seq);
      const double y = relative_objective(q, original, params);
      xs.push_back(seq);
      ys.push_back(y);
      if (y < result.objective) {
        result.objective = y;
        result.best_qor = q;
        result.best_sequence = seq;
      }
    };

    // Initial design: random sequences. Draw them all from `rng` first,
    // then (optionally) synthesize them in parallel so the sequential
    // observe() calls below hit the memo cache — same draws, same
    // observation order, bit-identical to the serial run.
    const int init = std::max(4, params.eval_budget / 5);
    std::vector<opt::Sequence> init_design;
    init_design.reserve(init);
    for (int i = 0; i < init; ++i) {
      init_design.push_back(opt::random_sequence(params.seq_len, rng));
    }
    if (params.pool != nullptr && params.pool->size() >= 2) {
      util::parallel_for(params.pool, init_design.size(), [&](std::size_t i) {
        evaluator.evaluate(init_design[i]);
      });
    }
    for (const auto& seq : init_design) observe(seq);

    for (int it = init; it < params.eval_budget; ++it) {
      CLO_TRACE_SPAN("boils.round");
      // Fit GP: K + noise I, Cholesky, alpha = K^-1 y.
      const int m = static_cast<int>(xs.size());
      std::vector<double> K(static_cast<std::size_t>(m) * m);
      // Kernel rows are independent and the kernel is pure, so the matrix
      // is bit-identical however the rows are scheduled.
      util::parallel_for(params.pool, static_cast<std::size_t>(m),
                         [&](std::size_t i) {
        for (int j = 0; j < m; ++j) {
          K[i * m + j] = kernel(xs[i], xs[j], length_scale) +
                         (static_cast<int>(i) == j ? noise : 0.0);
        }
      });
      double y_mean = 0.0;
      for (double y : ys) y_mean += y;
      y_mean /= m;
      std::vector<double> centered(ys);
      for (auto& y : centered) y -= y_mean;
      if (!cholesky(K, m)) break;  // numerically degenerate; stop early
      const std::vector<double> alpha = chol_solve(K, m, centered);

      auto posterior = [&](const opt::Sequence& s, double& mu, double& var) {
        std::vector<double> k(m);
        for (int i = 0; i < m; ++i) k[i] = kernel(s, xs[i], length_scale);
        mu = y_mean;
        for (int i = 0; i < m; ++i) mu += k[i] * alpha[i];
        const std::vector<double> v = chol_solve(K, m, k);
        var = 1.0;
        for (int i = 0; i < m; ++i) var -= k[i] * v[i];
        var = std::max(var, 1e-10);
      };
      const double best_y = result.objective;
      auto expected_improvement = [&](const opt::Sequence& s) {
        double mu, var;
        posterior(s, mu, var);
        const double sd = std::sqrt(var);
        const double z = (best_y - mu) / sd;
        return (best_y - mu) * normal_cdf(z) + sd * normal_pdf(z);
      };

      // Acquisition optimization: mutation hill-climb from the incumbent.
      opt::Sequence cand = result.best_sequence;
      double cand_ei = expected_improvement(cand);
      for (int trial = 0; trial < 60; ++trial) {
        opt::Sequence mut = cand;
        const int pos = rng.next_int(0, params.seq_len - 1);
        mut[pos] = static_cast<opt::Transform>(
            rng.next_int(0, opt::kNumTransforms - 1));
        if (rng.next_bool(0.3)) {  // occasionally a second mutation
          const int pos2 = rng.next_int(0, params.seq_len - 1);
          mut[pos2] = static_cast<opt::Transform>(
              rng.next_int(0, opt::kNumTransforms - 1));
        }
        const double ei = expected_improvement(mut);
        if (ei > cand_ei) {
          cand_ei = ei;
          cand = mut;
        }
      }
      observe(cand);
    }

    total.stop();
    result.total_seconds = total.seconds();
    const core::EvaluatorStats stats_after = evaluator.snapshot();
    const double synth_delta =
        stats_after.synth_seconds - stats_before.synth_seconds;
    result.algorithm_seconds = std::max(0.0, result.total_seconds - synth_delta);
    result.synthesis_runs = stats_after.unique_runs - stats_before.unique_runs;
    return result;
  }

 private:
  std::string name_ = "BOiLS";
};

}  // namespace

std::unique_ptr<SequenceOptimizer> make_boils() {
  return std::make_unique<BoilsOptimizer>();
}

}  // namespace clo::baselines
