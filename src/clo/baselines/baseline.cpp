#include "clo/baselines/baseline.hpp"

#include <stdexcept>

namespace clo::baselines {

double relative_objective(const core::Qor& q, const core::Qor& original,
                          const BaselineParams& params) {
  const double area_ref = original.area_um2 > 0 ? original.area_um2 : 1.0;
  const double delay_ref = original.delay_ps > 0 ? original.delay_ps : 1.0;
  return params.weight_area * q.area_um2 / area_ref +
         params.weight_delay * q.delay_ps / delay_ref;
}

std::unique_ptr<SequenceOptimizer> make_baseline(const std::string& name) {
  if (name == "drills") return make_drills();
  if (name == "abcrl") return make_abcrl();
  if (name == "boils") return make_boils();
  if (name == "flowtune") return make_flowtune();
  throw std::invalid_argument("unknown baseline: " + name);
}

}  // namespace clo::baselines
