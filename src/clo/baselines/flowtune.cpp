// FlowTune [8]: domain-specific multi-armed bandit. The sequence is built
// stage by stage; at each stage a UCB bandit chooses among a library of
// candidate sub-flows, pulling arms with real synthesis evaluations of the
// committed prefix + arm, then commits the best arm. Almost all wall time
// is synthesis (arm pulls), so its algorithm-only time is tiny — matching
// the paper's Fig. 5.

#include <cmath>

#include "clo/baselines/baseline.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::baselines {
namespace {

using opt::Transform;

/// Candidate sub-flows per stage (length-4 fragments of proven recipes —
/// resyn/resyn2-style motifs over the paper's S).
const std::vector<opt::Sequence>& arm_library() {
  static const std::vector<opt::Sequence> kArms = {
      {Transform::kB, Transform::kRw, Transform::kRwz, Transform::kB},
      {Transform::kRw, Transform::kRf, Transform::kRw, Transform::kB},
      {Transform::kRs, Transform::kRw, Transform::kRs, Transform::kB},
      {Transform::kRf, Transform::kRfz, Transform::kB, Transform::kRwz},
      {Transform::kRs, Transform::kRsz, Transform::kRw, Transform::kRwz},
      {Transform::kB, Transform::kRs, Transform::kRf, Transform::kRw},
      {Transform::kRwz, Transform::kRfz, Transform::kRsz, Transform::kB},
      {Transform::kRw, Transform::kRw, Transform::kRs, Transform::kRf},
      {Transform::kB, Transform::kB, Transform::kRw, Transform::kRs},
      {Transform::kRfz, Transform::kRwz, Transform::kRsz, Transform::kRw},
      {Transform::kRs, Transform::kRf, Transform::kRsz, Transform::kRfz},
      {Transform::kRw, Transform::kB, Transform::kRwz, Transform::kRsz},
  };
  return kArms;
}

class FlowTuneOptimizer final : public SequenceOptimizer {
 public:
  const std::string& name() const override { return name_; }

  BaselineResult optimize(core::QorEvaluator& evaluator,
                          const BaselineParams& params,
                          clo::Rng& rng) override {
    Stopwatch total;
    total.start();
    const core::EvaluatorStats stats_before = evaluator.snapshot();
    const core::Qor original = evaluator.original();
    const auto& arms = arm_library();
    const int stage_len = static_cast<int>(arms[0].size());
    const int num_stages = params.seq_len / stage_len;
    const int pulls_per_stage =
        std::max(static_cast<int>(arms.size()),
                 params.eval_budget / std::max(1, num_stages));

    BaselineResult result;
    result.objective = 1e300;
    opt::Sequence prefix;
    for (int stage = 0; stage < num_stages; ++stage) {
      CLO_TRACE_SPAN("flowtune.stage");
      // The first UCB sweep pulls every arm exactly once, and those pulls
      // are independent of one another — prefetch them in parallel. The
      // sequential loop below then finds each result memoized, so the
      // bandit's decisions (and the final flow) are bit-identical to the
      // serial run.
      if (params.pool != nullptr && params.pool->size() >= 2) {
        util::parallel_for(params.pool, arms.size(), [&](std::size_t a) {
          opt::Sequence seq = prefix;
          seq.insert(seq.end(), arms[a].begin(), arms[a].end());
          evaluator.evaluate(seq);
        });
      }
      std::vector<int> pulls(arms.size(), 0);
      std::vector<double> mean_reward(arms.size(), 0.0);
      int best_arm = 0;
      double best_arm_objective = 1e300;
      for (int pull = 0; pull < pulls_per_stage; ++pull) {
        // UCB1 arm selection (first sweep plays every arm once).
        int arm;
        if (pull < static_cast<int>(arms.size())) {
          arm = pull;
        } else {
          double best_ucb = -1e300;
          arm = 0;
          for (std::size_t a = 0; a < arms.size(); ++a) {
            const double ucb =
                mean_reward[a] +
                std::sqrt(2.0 * std::log(static_cast<double>(pull + 1)) /
                          pulls[a]);
            if (ucb > best_ucb) {
              best_ucb = ucb;
              arm = static_cast<int>(a);
            }
          }
        }
        opt::Sequence seq = prefix;
        seq.insert(seq.end(), arms[arm].begin(), arms[arm].end());
        const core::Qor q = evaluator.evaluate(seq);
        const double objective = relative_objective(q, original, params);
        const double reward = 1.0 - objective;
        pulls[arm] += 1;
        mean_reward[arm] += (reward - mean_reward[arm]) / pulls[arm];
        if (objective < best_arm_objective) {
          best_arm_objective = objective;
          best_arm = arm;
        }
        if (seq.size() == static_cast<std::size_t>(params.seq_len) &&
            objective < result.objective) {
          result.objective = objective;
          result.best_qor = q;
          result.best_sequence = seq;
        }
        (void)rng;
      }
      prefix.insert(prefix.end(), arms[best_arm].begin(),
                    arms[best_arm].end());
    }
    // Final committed flow.
    {
      const core::Qor q = evaluator.evaluate(prefix);
      const double objective = relative_objective(q, original, params);
      if (objective < result.objective) {
        result.objective = objective;
        result.best_qor = q;
        result.best_sequence = prefix;
      }
    }

    total.stop();
    result.total_seconds = total.seconds();
    const core::EvaluatorStats stats_after = evaluator.snapshot();
    const double synth_delta =
        stats_after.synth_seconds - stats_before.synth_seconds;
    result.algorithm_seconds = std::max(0.0, result.total_seconds - synth_delta);
    result.synthesis_runs = stats_after.unique_runs - stats_before.unique_runs;
    return result;
  }

 private:
  std::string name_ = "FlowTune";
};

}  // namespace

std::unique_ptr<SequenceOptimizer> make_flowtune() {
  return std::make_unique<FlowTuneOptimizer>();
}

}  // namespace clo::baselines
