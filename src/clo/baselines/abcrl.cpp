// abcRL [6]: REINFORCE policy-gradient agent whose state is extracted by a
// graph neural network over the *current* AIG — rebuilt after every applied
// transformation. That per-step graph extraction is what makes abcRL the
// slowest method in the paper's Fig. 5, and it is faithfully reproduced
// here (the GNN forward counts as algorithm time, not synthesis time).

#include <cmath>

#include "clo/baselines/baseline.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/nn/modules.hpp"
#include "clo/nn/optim.hpp"
#include "clo/util/timer.hpp"

namespace clo::baselines {
namespace {

using nn::Tensor;

class AbcRlOptimizer final : public SequenceOptimizer {
 public:
  const std::string& name() const override { return name_; }

  BaselineResult optimize(core::QorEvaluator& evaluator,
                          const BaselineParams& params,
                          clo::Rng& rng) override {
    Stopwatch total;
    total.start();
    const double synth_before = evaluator.synthesis_seconds();
    const std::size_t runs_before = evaluator.num_synthesis_runs();

    const int kGraphDim = 16;
    const int kFeatures = kGraphDim + 2;
    nn::Mlp policy(kFeatures, 32, opt::kNumTransforms, rng);
    nn::Adam optimizer(policy.parameters(), 5e-3f);

    const core::Qor original = evaluator.original();
    Stopwatch local_synth;

    BaselineResult result;
    result.objective = 1e300;
    const int episodes = std::max(1, params.eval_budget);
    for (int ep = 0; ep < episodes; ++ep) {
      aig::Aig g = evaluator.circuit();
      opt::Sequence seq;
      std::vector<Tensor> log_probs;
      clo::Rng enc_rng(0xABC0 + ep);  // fresh encoder weights are fine here
      for (int step = 0; step < params.seq_len; ++step) {
        // The expensive part: build a graph encoder over the current AIG
        // and run message passing to get the state embedding.
        models::AigEncoder encoder(g, kGraphDim, 2048, enc_rng);
        Tensor graph_emb = encoder.forward();  // [1, kGraphDim]
        Tensor state = Tensor::zeros({1, kFeatures});
        for (int i = 0; i < kGraphDim; ++i) {
          state.data()[i] = graph_emb.data()[i];
        }
        state.data()[kGraphDim] =
            static_cast<float>(step) / static_cast<float>(params.seq_len);
        state.data()[kGraphDim + 1] = 1.0f;
        Tensor probs = nn::softmax_rows(policy.forward(state));
        const double u = rng.next_double();
        double acc = 0.0;
        int action = opt::kNumTransforms - 1;
        for (int a = 0; a < opt::kNumTransforms; ++a) {
          acc += probs.data()[a];
          if (u < acc) {
            action = a;
            break;
          }
        }
        log_probs.push_back(nn::slice_cols(probs, action, action + 1));
        {
          ScopedTimer st(local_synth);
          opt::apply_transform(g, static_cast<opt::Transform>(action));
        }
        seq.push_back(static_cast<opt::Transform>(action));
      }
      const core::Qor q = evaluator.evaluate(seq);
      const double objective = relative_objective(q, original, params);
      if (objective < result.objective) {
        result.objective = objective;
        result.best_qor = q;
        result.best_sequence = seq;
      }
      // REINFORCE with the terminal reward only.
      const double reward = 1.0 - objective;
      Tensor loss = Tensor::scalar(0.0f);
      for (auto& lp : log_probs) {
        const float p_now = std::max(1e-6f, lp.item());
        loss = nn::add(
            loss, nn::reshape(
                      nn::scale(lp, static_cast<float>(-reward) / p_now), {1}));
      }
      nn::backward(loss);
      optimizer.step();
    }

    total.stop();
    result.total_seconds = total.seconds();
    const double synth_delta =
        (evaluator.synthesis_seconds() - synth_before) + local_synth.seconds();
    result.algorithm_seconds = std::max(0.0, result.total_seconds - synth_delta);
    result.synthesis_runs = evaluator.num_synthesis_runs() - runs_before;
    return result;
  }

 private:
  std::string name_ = "abcRL";
};

}  // namespace

std::unique_ptr<SequenceOptimizer> make_abcrl() {
  return std::make_unique<AbcRlOptimizer>();
}

}  // namespace clo::baselines
