// abcRL [6]: REINFORCE policy-gradient agent whose state is extracted by a
// graph neural network over the *current* AIG — rebuilt after every applied
// transformation. That per-step graph extraction is what makes abcRL the
// slowest method in the paper's Fig. 5, and it is faithfully reproduced
// here (the GNN forward counts as algorithm time, not synthesis time).

#include <cmath>

#include "clo/baselines/baseline.hpp"
#include "clo/models/surrogate.hpp"
#include "clo/nn/modules.hpp"
#include "clo/nn/optim.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::baselines {
namespace {

using nn::Tensor;

/// One frozen-policy rollout, recorded for sequential replay. The state
/// embeddings are recorded by value: the per-step graph encoder does not
/// feed gradients into the policy, so the replay only has to recompute the
/// policy forward itself.
struct AbcRlEpisode {
  opt::Sequence seq;
  std::vector<std::vector<float>> states;
  std::vector<int> actions;
  core::Qor qor;
  double objective = 0.0;
  double transform_seconds = 0.0;
};

class AbcRlOptimizer final : public SequenceOptimizer {
 public:
  const std::string& name() const override { return name_; }

  BaselineResult optimize(core::QorEvaluator& evaluator,
                          const BaselineParams& params,
                          clo::Rng& rng) override {
    Stopwatch total;
    total.start();
    const core::EvaluatorStats stats_before = evaluator.snapshot();

    const int kGraphDim = 16;
    const int kFeatures = kGraphDim + 2;
    nn::Mlp policy(kFeatures, 32, opt::kNumTransforms, rng);
    nn::Adam optimizer(policy.parameters(), 5e-3f);

    const core::Qor original = evaluator.original();
    double transform_seconds = 0.0;

    // One rollout under the current (frozen) policy. `ep_index` keeps the
    // per-episode encoder rng tied to the absolute episode number, so the
    // rollout is the same whether it runs in a round of one or eight.
    auto rollout = [&](int ep_index, clo::Rng& ep_rng) {
      AbcRlEpisode ep;
      Stopwatch local_synth;
      aig::Aig g = evaluator.circuit();
      clo::Rng enc_rng(0xABC0 + ep_index);  // fresh encoder weights are fine
      for (int step = 0; step < params.seq_len; ++step) {
        // The expensive part: build a graph encoder over the current AIG
        // and run message passing to get the state embedding.
        models::AigEncoder encoder(g, kGraphDim, 2048, enc_rng);
        Tensor graph_emb = encoder.forward();  // [1, kGraphDim]
        std::vector<float> features(kFeatures, 0.0f);
        for (int i = 0; i < kGraphDim; ++i) {
          features[i] = graph_emb.data()[i];
        }
        features[kGraphDim] =
            static_cast<float>(step) / static_cast<float>(params.seq_len);
        features[kGraphDim + 1] = 1.0f;
        Tensor state = Tensor::from_data({1, kFeatures}, features);
        Tensor probs = nn::softmax_rows(policy.forward(state));
        const double u = ep_rng.next_double();
        double acc = 0.0;
        int action = opt::kNumTransforms - 1;
        for (int a = 0; a < opt::kNumTransforms; ++a) {
          acc += probs.data()[a];
          if (u < acc) {
            action = a;
            break;
          }
        }
        {
          ScopedTimer st(local_synth);
          opt::apply_transform(g, static_cast<opt::Transform>(action));
        }
        ep.states.push_back(std::move(features));
        ep.actions.push_back(action);
        ep.seq.push_back(static_cast<opt::Transform>(action));
      }
      ep.qor = evaluator.evaluate(ep.seq);
      ep.objective = relative_objective(ep.qor, original, params);
      ep.transform_seconds = local_synth.seconds();
      return ep;
    };

    BaselineResult result;
    result.objective = 1e300;
    const int episodes = std::max(1, params.eval_budget);
    // Rollout-then-replay, same scheme as DRiLLS: parallel frozen-policy
    // rollouts per round, sequential REINFORCE updates recomputing the
    // cheap policy forwards. One worker = the historical serial behavior,
    // bit for bit.
    const std::size_t round_size =
        params.pool != nullptr && params.pool->size() >= 2
            ? params.pool->size()
            : 1;
    for (int base = 0; base < episodes;
         base += static_cast<int>(round_size)) {
      CLO_TRACE_SPAN("abcrl.round");
      const std::size_t count = std::min<std::size_t>(
          round_size, static_cast<std::size_t>(episodes - base));
      std::vector<AbcRlEpisode> round(count);
      if (count == 1) {
        round[0] = rollout(base, rng);
      } else {
        std::vector<clo::Rng> rngs;
        rngs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) rngs.push_back(rng.fork());
        nn::GradFreeze freeze(policy.parameters());
        util::parallel_for(params.pool, count, [&](std::size_t i) {
          round[i] = rollout(base + static_cast<int>(i), rngs[i]);
        });
      }
      for (const auto& ep : round) {
        transform_seconds += ep.transform_seconds;
        if (ep.objective < result.objective) {
          result.objective = ep.objective;
          result.best_qor = ep.qor;
          result.best_sequence = ep.seq;
        }
        // REINFORCE with the terminal reward only.
        const double reward = 1.0 - ep.objective;
        Tensor loss = Tensor::scalar(0.0f);
        for (int step = 0; step < params.seq_len; ++step) {
          Tensor state = Tensor::from_data({1, kFeatures}, ep.states[step]);
          Tensor probs = nn::softmax_rows(policy.forward(state));
          Tensor lp =
              nn::slice_cols(probs, ep.actions[step], ep.actions[step] + 1);
          const float p_now = std::max(1e-6f, lp.item());
          loss = nn::add(
              loss, nn::reshape(
                        nn::scale(lp, static_cast<float>(-reward) / p_now),
                        {1}));
        }
        nn::backward(loss);
        optimizer.step();
      }
    }

    total.stop();
    result.total_seconds = total.seconds();
    const core::EvaluatorStats stats_after = evaluator.snapshot();
    const double synth_delta =
        (stats_after.synth_seconds - stats_before.synth_seconds) +
        transform_seconds;
    result.algorithm_seconds = std::max(0.0, result.total_seconds - synth_delta);
    result.synthesis_runs = stats_after.unique_runs - stats_before.unique_runs;
    return result;
  }

 private:
  std::string name_ = "abcRL";
};

}  // namespace

std::unique_ptr<SequenceOptimizer> make_abcrl() {
  return std::make_unique<AbcRlOptimizer>();
}

}  // namespace clo::baselines
