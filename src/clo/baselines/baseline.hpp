#pragma once
// Common interface for the four prior-work sequence optimizers the paper
// compares against (Table II / Fig. 5): DRiLLS [5], abcRL [6], BOiLS [9],
// and FlowTune [8]. Each reports both total wall time and algorithm-only
// time (synthesis/mapping time subtracted, matching the paper's Fig. 5
// accounting).

#include <memory>
#include <string>

#include "clo/core/evaluator.hpp"
#include "clo/opt/transform.hpp"
#include "clo/util/rng.hpp"

namespace clo::util {
class ThreadPool;
}

namespace clo::baselines {

struct BaselineParams {
  int seq_len = 20;
  /// Budget in real synthesis evaluations (the expensive resource).
  int eval_budget = 60;
  /// Objective weights over (area, delay) relative to the original QoR.
  double weight_area = 0.5;
  double weight_delay = 0.5;
  /// Optional worker pool. Each baseline exploits it where its algorithm
  /// allows — batched candidate evaluation, parallel GP algebra, parallel
  /// policy rollouts — and stays serial (today's exact behavior) when
  /// null. See each implementation for its determinism notes.
  util::ThreadPool* pool = nullptr;
};

struct BaselineResult {
  opt::Sequence best_sequence;
  core::Qor best_qor;
  double objective = 0.0;          ///< weighted relative score (lower=better)
  double total_seconds = 0.0;
  double algorithm_seconds = 0.0;  ///< total minus synthesis time
  std::size_t synthesis_runs = 0;
};

class SequenceOptimizer {
 public:
  virtual ~SequenceOptimizer() = default;
  virtual const std::string& name() const = 0;
  virtual BaselineResult optimize(core::QorEvaluator& evaluator,
                                  const BaselineParams& params,
                                  clo::Rng& rng) = 0;
};

std::unique_ptr<SequenceOptimizer> make_drills();
std::unique_ptr<SequenceOptimizer> make_abcrl();
std::unique_ptr<SequenceOptimizer> make_boils();
std::unique_ptr<SequenceOptimizer> make_flowtune();

/// By name: "drills" | "abcrl" | "boils" | "flowtune".
std::unique_ptr<SequenceOptimizer> make_baseline(const std::string& name);

/// Weighted relative objective used by every baseline:
/// wa * area/orig_area + wd * delay/orig_delay (lower is better).
double relative_objective(const core::Qor& q, const core::Qor& original,
                          const BaselineParams& params);

}  // namespace clo::baselines
