#include "clo/serve/registry.hpp"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "clo/circuits/generators.hpp"
#include "clo/util/log.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::serve {

namespace {

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

ModelRegistry::Entry::Entry(std::string key_, aig::Aig circuit,
                            core::PipelineConfig config)
    : key(std::move(key_)),
      evaluator(std::move(circuit)),
      pipeline(std::move(config)) {}

std::string ModelRegistry::key_for(const aig::Aig& circuit,
                                   const core::PipelineConfig& config) const {
  const bool data_parallel =
      options_.pool != nullptr && options_.pool->size() >= 2;
  return circuit.name() + "-" +
         hex16(core::pipeline_config_hash(config, circuit, data_parallel));
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::get_or_train(
    const std::string& circuit_name, core::PipelineConfig config) {
  // Unknown benchmark names throw before any registry state is touched.
  aig::Aig circuit = circuits::make_benchmark(circuit_name);
  const std::string key = key_for(circuit, config);

  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = ready_.find(key);
      if (it != ready_.end()) {
        CLO_OBS_COUNT("serve.registry_hits", 1);
        return it->second;
      }
      if (inflight_.insert(key).second) break;  // we train
      // Someone else is training this key: wait for their result instead
      // of duplicating hundreds of synthesis runs (single-flight).
      cv_.wait(lock);
    }
  }

  try {
    if (!options_.dir.empty()) {
      config.checkpoint_dir = options_.dir + "/" + key;
      config.resume = true;
    }
    auto entry = std::make_shared<Entry>(key, std::move(circuit),
                                         std::move(config));
    entry->pipeline.set_external_pool(options_.pool);
    const bool on_disk =
        !options_.dir.empty() &&
        std::filesystem::exists(entry->pipeline.config().checkpoint_dir +
                                "/dataset.ckpt");
    Stopwatch watch;
    {
      ScopedTimer timer(watch);
      entry->pipeline.pretrain(entry->evaluator);
    }
    entry->pretrain_seconds = watch.seconds();
    entry->resumed_phases = entry->pipeline.resumed_phases();
    if (on_disk && entry->resumed_phases == 0) {
      // The directory held an entry but none of it was usable (corrupt,
      // truncated, or written under a different config): skip and warn,
      // never abort — the retrained entry overwrites it below.
      CLO_LOG_WARN << "registry: entry '" << key
                   << "' on disk was unreadable or stale; retrained";
    }
    trainings_.fetch_add(1, std::memory_order_relaxed);
    CLO_OBS_COUNT("serve.registry_trainings", 1);
    CLO_OBS_GAUGE("serve.registry_pretrain_seconds",
                  entry->pretrain_seconds);
    CLO_LOG_INFO << "registry: entry '" << key << "' ready in "
                 << entry->pretrain_seconds << " s (" << entry->resumed_phases
                 << " phase(s) from disk)";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_[key] = entry;
      inflight_.erase(key);
    }
    cv_.notify_all();
    return entry;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    cv_.notify_all();
    throw;
  }
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size();
}

std::vector<std::string> ModelRegistry::keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ready_.size());
  for (const auto& [key, entry] : ready_) out.push_back(key);
  return out;
}

}  // namespace clo::serve
