#include "clo/serve/registry.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "clo/circuits/generators.hpp"
#include "clo/util/log.hpp"
#include "clo/util/obs.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::serve {

namespace {

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Total bytes under one registry entry directory; 0 on any filesystem
/// error (an unreadable directory must not wedge eviction).
std::uintmax_t dir_bytes(const std::filesystem::path& dir) {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      const auto sz = it->file_size(ec);
      if (!ec) total += sz;
    }
  }
  return total;
}

}  // namespace

ModelRegistry::Entry::Entry(std::string key_, aig::Aig circuit,
                            core::PipelineConfig config)
    : key(std::move(key_)),
      evaluator(std::move(circuit)),
      pipeline(std::move(config)) {}

std::string ModelRegistry::key_for(const aig::Aig& circuit,
                                   const core::PipelineConfig& config) const {
  const bool data_parallel =
      options_.pool != nullptr && options_.pool->size() >= 2;
  return circuit.name() + "-" +
         hex16(core::pipeline_config_hash(config, circuit, data_parallel));
}

std::shared_ptr<ModelRegistry::Entry> ModelRegistry::get_or_train(
    const std::string& circuit_name, core::PipelineConfig config,
    const util::CancelToken* cancel) {
  // Unknown benchmark names throw before any registry state is touched.
  aig::Aig circuit = circuits::make_benchmark(circuit_name);
  const std::string key = key_for(circuit, config);

  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = ready_.find(key);
      if (it != ready_.end()) {
        CLO_OBS_COUNT("serve.registry_hits", 1);
        touch_locked(key);
        return it->second;
      }
      if (inflight_.insert(key).second) break;  // we train
      // Someone else is training this key: wait for their result instead
      // of duplicating hundreds of synthesis runs (single-flight). A
      // cancellable waiter polls its token so an expired deadline gives
      // up promptly without disturbing the trainer.
      if (cancel != nullptr) {
        cancel->check();
        cv_.wait_for(lock, std::chrono::milliseconds(50));
      } else {
        cv_.wait(lock);
      }
    }
  }

  try {
    if (!options_.dir.empty()) {
      config.checkpoint_dir = options_.dir + "/" + key;
      config.resume = true;
    }
    auto entry = std::make_shared<Entry>(key, std::move(circuit),
                                         std::move(config));
    entry->pipeline.set_external_pool(options_.pool);
    const bool on_disk =
        !options_.dir.empty() &&
        std::filesystem::exists(entry->pipeline.config().checkpoint_dir +
                                "/dataset.ckpt");
    Stopwatch watch;
    {
      ScopedTimer timer(watch);
      entry->pipeline.pretrain(entry->evaluator, cancel);
    }
    entry->pretrain_seconds = watch.seconds();
    entry->resumed_phases = entry->pipeline.resumed_phases();
    if (on_disk && entry->resumed_phases == 0) {
      // The directory held an entry but none of it was usable (corrupt,
      // truncated, or written under a different config): skip and warn,
      // never abort — the retrained entry overwrites it below.
      CLO_LOG_WARN << "registry: entry '" << key
                   << "' on disk was unreadable or stale; retrained";
    }
    trainings_.fetch_add(1, std::memory_order_relaxed);
    CLO_OBS_COUNT("serve.registry_trainings", 1);
    CLO_OBS_GAUGE("serve.registry_pretrain_seconds",
                  entry->pretrain_seconds);
    CLO_LOG_INFO << "registry: entry '" << key << "' ready in "
                 << entry->pretrain_seconds << " s (" << entry->resumed_phases
                 << " phase(s) from disk)";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_[key] = entry;
      inflight_.erase(key);
      touch_locked(key);
      enforce_budgets_locked(key);
    }
    cv_.notify_all();
    return entry;
  } catch (...) {
    // Any failure — training fault, cancellation, deadline — releases the
    // in-flight slot so racers retry; nothing was inserted into ready_,
    // so the registry holds no partial entry. On-disk phase checkpoints
    // written before the failure are individually valid (atomic
    // tmp+rename) and simply accelerate the next attempt.
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);
    }
    cv_.notify_all();
    throw;
  }
}

void ModelRegistry::touch_locked(const std::string& key) {
  last_access_[key] = ++access_seq_;
}

void ModelRegistry::enforce_budgets_locked(const std::string& protect) {
  const auto lru_of = [this](const std::string& key) {
    const auto it = last_access_.find(key);
    // Keys never touched this process (e.g. directories left by an
    // earlier daemon run) are the oldest possible.
    return it == last_access_.end() ? std::uint64_t{0} : it->second;
  };

  // In-memory budget: drop LRU entries from ready_. Their checkpoints
  // stay on disk, so a later request warm-loads instead of retraining,
  // and sessions holding the shared_ptr finish unharmed.
  if (options_.max_entries > 0) {
    while (ready_.size() > options_.max_entries) {
      auto victim = ready_.end();
      for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (it->first == protect) continue;
        if (victim == ready_.end() ||
            lru_of(it->first) < lru_of(victim->first)) {
          victim = it;
        }
      }
      if (victim == ready_.end()) break;  // only the protected entry left
      CLO_LOG_INFO << "registry: evicted in-memory entry '" << victim->first
                   << "' (max-entries " << options_.max_entries << ")";
      ready_.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      CLO_OBS_COUNT("serve.registry_evictions", 1);
    }
  }

  // Disk budget: delete LRU entry directories until under max_mb. Keys
  // being trained right now (inflight_) and the just-trained key are
  // exempt; deleting a live in-memory entry's directory is safe (the
  // models are in RAM — only a future cold start pays).
  if (options_.max_mb == 0 || options_.dir.empty()) return;
  std::error_code ec;
  std::vector<std::pair<std::string, std::uintmax_t>> on_disk;
  std::uintmax_t total = 0;
  for (std::filesystem::directory_iterator it(options_.dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_directory(ec)) continue;
    const std::string key = it->path().filename().string();
    const std::uintmax_t bytes = dir_bytes(it->path());
    total += bytes;
    if (key == protect || inflight_.count(key) != 0) continue;
    on_disk.emplace_back(key, bytes);
  }
  const std::uintmax_t budget =
      static_cast<std::uintmax_t>(options_.max_mb) * 1024 * 1024;
  if (total <= budget) return;
  std::sort(on_disk.begin(), on_disk.end(),
            [&](const auto& a, const auto& b) {
              return lru_of(a.first) < lru_of(b.first);
            });
  for (const auto& [key, bytes] : on_disk) {
    if (total <= budget) break;
    std::filesystem::remove_all(
        std::filesystem::path(options_.dir) / key, ec);
    if (ec) {
      CLO_LOG_WARN << "registry: failed to evict disk entry '" << key
                   << "': " << ec.message();
      continue;
    }
    total -= std::min(total, bytes);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CLO_OBS_COUNT("serve.registry_evictions", 1);
    CLO_LOG_INFO << "registry: evicted disk entry '" << key << "' ("
                 << bytes / 1024 << " KiB, max-mb " << options_.max_mb
                 << ")";
  }
  if (total > budget) {
    CLO_LOG_WARN << "registry: still over disk budget after eviction ("
                 << total / (1024 * 1024) << " MiB > " << options_.max_mb
                 << " MiB)";
  }
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size();
}

std::vector<std::string> ModelRegistry::keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ready_.size());
  for (const auto& [key, entry] : ready_) out.push_back(key);
  return out;
}

}  // namespace clo::serve
