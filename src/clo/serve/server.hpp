#pragma once
// The `clo serve` daemon: a localhost TCP listener speaking clo.serve.v1
// (one JSON object per line), a bounded queue of accepted connections, and
// a small crew of session workers that multiplex tune/QoR requests onto a
// single shared ThreadPool through the persistent ModelRegistry.
//
// Failure discipline (the bugs this server exists to not have):
//   * every socket write goes through net::send_all (MSG_NOSIGNAL) and
//     SIGPIPE is ignored process-wide — a client that disconnects
//     mid-response costs one closed fd, never the process;
//   * every socket read polls with a timeout — a silent client is closed
//     after idle_timeout_ms and cannot stall a worker forever;
//   * when the session queue is full, new connections get one line of
//     backpressure JSON (code "busy") and a clean close — never an
//     unbounded queue;
//   * every tune/qor carries a CancelToken registered in an in-flight
//     table. A request's own deadline_ms, a client `cancel` op, or the
//     watchdog thread fires the token; the pipeline polls it at phase /
//     batch / timestep granularity and unwinds with a clean error line,
//     handing the session worker back — one runaway pretrain can no
//     longer occupy a worker forever.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clo/serve/protocol.hpp"
#include "clo/serve/registry.hpp"
#include "clo/util/cancel.hpp"
#include "clo/util/thread_pool.hpp"
#include "clo/util/timer.hpp"

namespace clo::serve {

struct ServerOptions {
  /// Listen port; 0 = ephemeral (read the bound port from port()).
  int port = 0;
  /// Model registry persistence root; empty = in-memory only.
  std::string registry_dir;
  /// Maximum accepted-but-unserved connections; beyond this new clients
  /// are rejected with a "server busy" error line. 0 rejects whenever all
  /// session workers are occupied.
  int max_queue = 32;
  /// Concurrent session workers (each owns one client connection at a
  /// time; pipelines inside them share the worker pool).
  int sessions = 2;
  /// Worker threads in the shared pipeline pool: 1 = serial, 0 = hardware
  /// concurrency. This is part of the registry key (serial vs
  /// data-parallel surrogate training differ in float rounding).
  int threads = 0;
  /// Idle limit for client reads; a connection with no complete request
  /// line for this long is closed.
  int idle_timeout_ms = 5000;
  /// Registry LRU budgets, forwarded to ModelRegistry::Options: maximum
  /// in-memory entries and maximum registry-directory size in MiB
  /// (0 = unlimited).
  std::size_t registry_max_entries = 0;
  std::size_t registry_max_mb = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listener and start the accept thread + session workers.
  /// Returns false (with a log line) when the port cannot be bound.
  bool start();

  /// Block until a shutdown request arrives (or stop() is called from
  /// another thread). Does not tear down — call stop() after.
  void wait();

  /// Stop accepting, drain workers, close the listener. Idempotent; safe
  /// after wait() or standalone.
  void stop();

  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// True once a shutdown request has arrived (wait() has unblocked or is
  /// about to) — pollable by owners that cannot block in wait(), e.g. a
  /// main() that also watches for SIGINT.
  bool stop_requested() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  ModelRegistry& registry() { return *registry_; }
  util::ThreadPool* pool() { return pool_.get(); }

  struct Stats {
    std::uint64_t accepted = 0;  ///< connections handed to a worker
    std::uint64_t served = 0;    ///< requests answered (ok or error)
    std::uint64_t shed = 0;      ///< connections refused by backpressure
    std::uint64_t cancelled = 0;          ///< requests stopped by cancel op
    std::uint64_t deadline_exceeded = 0;  ///< requests past deadline_ms
    std::size_t queue_depth = 0;
    std::size_t inflight = 0;  ///< tune/qor requests currently executing
    double uptime_s = 0.0;
  };
  Stats stats() const;

 private:
  /// One executing tune/qor, addressable by the cancel op (via the
  /// client-chosen id tag or the circuit name) and watched by the
  /// watchdog. The CancelToken is a shared handle: firing it here is seen
  /// by every pipeline check downstream.
  struct Inflight {
    std::string id;       ///< client tag ("" = not addressable by target)
    std::string circuit;  ///< benchmark name (tune/qor)
    util::CancelToken token;
    bool deadline_logged = false;  ///< watchdog warns once per request
  };

  void accept_loop();
  void session_loop();
  /// Cancels over-deadline in-flight requests every ~100 ms. Enforcement
  /// is cooperative (the pipeline polls the token), but the watchdog makes
  /// it independent of which phase the work is in and logs the expiry.
  void watchdog_loop();
  /// Serve one client connection until EOF/idle/shutdown; closes the fd.
  void handle_connection(int fd);
  /// One request line -> one response line. Returns false when the
  /// connection should close (shutdown op or write failure).
  bool handle_line(int fd, const std::string& line);

  obs::Json do_tune(const Request& req, const util::CancelToken* cancel);
  obs::Json do_qor(const Request& req, const util::CancelToken* cancel);
  obs::Json do_cancel(const Request& req);
  obs::Json do_status(const Request& req);

  /// Register/unregister one executing request in the in-flight table.
  std::uint64_t inflight_add(const Request& req,
                             const util::CancelToken& token);
  void inflight_remove(std::uint64_t slot);

  ServerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<ModelRegistry> registry_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a session worker
  int idle_workers_ = 0;     ///< guarded by queue_mu_; part of capacity

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;

  std::thread watchdog_thread_;
  mutable std::mutex inflight_mu_;
  std::map<std::uint64_t, Inflight> inflight_;  ///< slot -> request
  std::uint64_t inflight_seq_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> next_request_{0};
  Stopwatch uptime_;
};

}  // namespace clo::serve
