#pragma once
// Tiny clo.serve.v1 client used by `clo query`, the serve tests, and
// bench_serve. One connection, line-in/line-out; no threads — callers that
// want concurrency open one Client per thread.
//
// Retry discipline: transport failures (daemon restarting, connection
// refused, mid-response disconnect) and the "busy" error code are the ONLY
// retryable outcomes — both mean "nothing happened yet, try again".
// Semantic errors ("bad_request", "cancelled", "deadline_exceeded",
// "internal") are final: retrying a malformed request can never succeed,
// and retrying cancelled work would resurrect what the user just killed.
// Backoff is exponential with deterministic jitter (seeded, reproducible
// in tests) so a thundering herd of shed clients decorrelates instead of
// re-stampeding the queue in lockstep.

#include <cstdint>
#include <string>

#include "clo/util/obs.hpp"

namespace clo::serve {

/// Backoff schedule for query_with_retry: attempt k (0-based) sleeps
/// jitter(base * 2^k) capped at max_backoff_ms, where jitter multiplies by
/// a deterministic value in [0.5, 1.0] derived from (jitter_seed, k).
struct RetryPolicy {
  int retries = 0;  ///< extra attempts after the first (0 = no retry)
  int base_backoff_ms = 50;
  int max_backoff_ms = 2000;
  std::uint64_t jitter_seed = 1;
};

/// Backoff before retry attempt `attempt` (0-based), in ms — exposed for
/// tests (the schedule is part of the client's contract).
int retry_backoff_ms(const RetryPolicy& policy, int attempt);

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:`port`, giving up after `connect_timeout_ms`
  /// (-1 = the OS default). Returns false when the daemon is not there.
  bool connect(int port, int connect_timeout_ms = 2000);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request line and read the one response line under a single
  /// end-to-end wall-clock budget of `timeout_ms` — the send and the
  /// receive share it, so a peer that accepts bytes slowly cannot stretch
  /// the call past the budget. Returns false on any socket failure or
  /// budget exhaustion (connection is closed afterwards — reconnect to
  /// continue).
  bool request_line(const std::string& request, std::string* response,
                    int timeout_ms = 30000);

  /// JSON-in/JSON-out convenience over request_line(). A transport failure
  /// returns false; a daemon-side "status":"error" still returns true —
  /// inspect the response.
  bool request(const obs::Json& req, obs::Json* response,
               int timeout_ms = 30000);

 private:
  int fd_ = -1;
};

/// One-shot: connect, one request, one response, close.
bool query_once(int port, const std::string& request, std::string* response,
                int timeout_ms = 30000);

/// One request with retry/backoff: reconnects per attempt, retries on
/// connect failure, transport failure, and the "busy" error code (see the
/// header comment for why nothing else retries). Returns true when a
/// response was obtained (even an error response — inspect it); false when
/// every attempt failed at the transport level. `attempts_out` (optional)
/// reports how many attempts ran.
bool query_with_retry(int port, const obs::Json& req, obs::Json* response,
                      const RetryPolicy& policy, int timeout_ms = 30000,
                      int* attempts_out = nullptr);

}  // namespace clo::serve
