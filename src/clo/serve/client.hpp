#pragma once
// Tiny clo.serve.v1 client used by `clo query`, the serve tests, and
// bench_serve. One connection, line-in/line-out; no retries, no threads —
// callers that want concurrency open one Client per thread.

#include <string>

#include "clo/util/obs.hpp"

namespace clo::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to 127.0.0.1:`port`. Returns false when the daemon is not
  /// there.
  bool connect(int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request line and read the one response line, each bounded by
  /// `timeout_ms`. Returns false on any socket failure (connection is
  /// closed afterwards — reconnect to continue).
  bool request_line(const std::string& request, std::string* response,
                    int timeout_ms = 30000);

  /// JSON-in/JSON-out convenience over request_line(). A transport failure
  /// returns false; a daemon-side "status":"error" still returns true —
  /// inspect the response.
  bool request(const obs::Json& req, obs::Json* response,
               int timeout_ms = 30000);

 private:
  int fd_ = -1;
};

/// One-shot: connect, one request, one response, close.
bool query_once(int port, const std::string& request, std::string* response,
                int timeout_ms = 30000);

}  // namespace clo::serve
