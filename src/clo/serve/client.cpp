#include "clo/serve/client.hpp"

#include <unistd.h>

#include <stdexcept>

#include "clo/util/net.hpp"

namespace clo::serve {

bool Client::connect(int port) {
  close();
  util::net::ignore_sigpipe();
  fd_ = util::net::connect_localhost(port);
  return fd_ >= 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::request_line(const std::string& request, std::string* response,
                          int timeout_ms) {
  if (fd_ < 0) return false;
  std::string line = request;
  if (line.empty() || line.back() != '\n') line += '\n';
  if (!util::net::send_all(fd_, line)) {
    close();
    return false;
  }
  if (!util::net::recv_line(fd_, response, timeout_ms)) {
    close();
    return false;
  }
  return true;
}

bool Client::request(const obs::Json& req, obs::Json* response,
                     int timeout_ms) {
  std::string raw;
  if (!request_line(req.dump(), &raw, timeout_ms)) return false;
  try {
    *response = obs::Json::parse(raw);
  } catch (const std::exception&) {
    close();
    return false;
  }
  return true;
}

bool query_once(int port, const std::string& request, std::string* response,
                int timeout_ms) {
  Client client;
  if (!client.connect(port)) return false;
  return client.request_line(request, response, timeout_ms);
}

}  // namespace clo::serve
