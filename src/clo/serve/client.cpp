#include "clo/serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "clo/util/net.hpp"

namespace clo::serve {

namespace {

/// splitmix64: cheap, well-mixed, deterministic — the jitter source.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int retry_backoff_ms(const RetryPolicy& policy, int attempt) {
  const int base = std::max(1, policy.base_backoff_ms);
  const int cap = std::max(base, policy.max_backoff_ms);
  // base * 2^attempt without overflow: stop doubling once past the cap.
  std::int64_t raw = base;
  for (int i = 0; i < attempt && raw < cap; ++i) raw *= 2;
  raw = std::min<std::int64_t>(raw, cap);
  // Deterministic jitter in [0.5, 1.0]: decorrelates a herd of clients
  // with different seeds while keeping any one client reproducible.
  const std::uint64_t h =
      mix64(policy.jitter_seed ^ (static_cast<std::uint64_t>(attempt) << 32));
  const double jitter = 0.5 + 0.5 * (static_cast<double>(h % 1024) / 1023.0);
  return std::max(1, static_cast<int>(static_cast<double>(raw) * jitter));
}

bool Client::connect(int port, int connect_timeout_ms) {
  close();
  util::net::ignore_sigpipe();
  fd_ = util::net::connect_localhost(port, connect_timeout_ms);
  return fd_ >= 0;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::request_line(const std::string& request, std::string* response,
                          int timeout_ms) {
  if (fd_ < 0) return false;
  std::string line = request;
  if (line.empty() || line.back() != '\n') line += '\n';
  // One wall-clock budget across send AND receive: whatever the send
  // spends (a peer draining its buffer slowly) is no longer available to
  // the receive, so the call returns within ~timeout_ms regardless of how
  // the peer misbehaves. Negative = unbounded, matching the net layer.
  const auto start = std::chrono::steady_clock::now();
  const auto remaining = [&]() -> int {
    if (timeout_ms < 0) return -1;
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    return static_cast<int>(
        std::max<std::int64_t>(0, timeout_ms - spent));
  };
  if (!util::net::send_all(fd_, line, remaining())) {
    close();
    return false;
  }
  if (!util::net::recv_line(fd_, response, remaining())) {
    close();
    return false;
  }
  return true;
}

bool Client::request(const obs::Json& req, obs::Json* response,
                     int timeout_ms) {
  std::string raw;
  if (!request_line(req.dump(), &raw, timeout_ms)) return false;
  try {
    *response = obs::Json::parse(raw);
  } catch (const std::exception&) {
    close();
    return false;
  }
  return true;
}

bool query_once(int port, const std::string& request, std::string* response,
                int timeout_ms) {
  Client client;
  if (!client.connect(port)) return false;
  return client.request_line(request, response, timeout_ms);
}

bool query_with_retry(int port, const obs::Json& req, obs::Json* response,
                      const RetryPolicy& policy, int timeout_ms,
                      int* attempts_out) {
  const int attempts = 1 + std::max(0, policy.retries);
  bool got_response = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(retry_backoff_ms(policy, attempt - 1)));
    }
    Client client;
    if (!client.connect(port)) continue;  // daemon absent/restarting
    if (!client.request(req, response, timeout_ms)) continue;
    got_response = true;
    const obs::Json* status = response->find("status");
    const obs::Json* code = response->find("code");
    const bool busy = status != nullptr && status->is_string() &&
                      status->as_string() == "error" && code != nullptr &&
                      code->is_string() && code->as_string() == "busy";
    if (!busy) {
      if (attempts_out != nullptr) *attempts_out = attempt + 1;
      return true;
    }
  }
  if (attempts_out != nullptr) *attempts_out = attempts;
  // All attempts failed or the last one was still "busy": report whether
  // the caller has anything to inspect.
  return got_response;
}

}  // namespace clo::serve
