#include "clo/serve/protocol.hpp"

#include <stdexcept>

namespace clo::serve {

namespace {

/// Fetch an integer field, defaulting when absent; rejects non-numbers and
/// values outside [lo, hi] (a hostile peer must not be able to request a
/// 2^31-restart pipeline).
int get_int_field(const obs::Json& doc, const std::string& key, int fallback,
                  int lo, int hi) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw std::runtime_error("field '" + key + "' must be a number");
  }
  const double d = v->as_double();
  if (d < lo || d > hi) {
    throw std::runtime_error("field '" + key + "' out of range [" +
                             std::to_string(lo) + ", " + std::to_string(hi) +
                             "]");
  }
  return static_cast<int>(d);
}

std::string get_string_field(const obs::Json& doc, const std::string& key) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) return "";
  if (!v->is_string()) {
    throw std::runtime_error("field '" + key + "' must be a string");
  }
  return v->as_string();
}

bool get_bool_field(const obs::Json& doc, const std::string& key,
                    bool fallback) {
  const obs::Json* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->kind() != obs::Json::Kind::kBool) {
    throw std::runtime_error("field '" + key + "' must be a boolean");
  }
  return v->as_bool();
}

}  // namespace

Request parse_request(const std::string& line) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(line);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) {
    throw std::runtime_error("request must be a JSON object");
  }
  Request req;
  const std::string op = get_string_field(doc, "op");
  if (op == "tune") {
    req.op = Request::Op::kTune;
  } else if (op == "qor") {
    req.op = Request::Op::kQor;
  } else if (op == "status") {
    req.op = Request::Op::kStatus;
  } else if (op == "cancel") {
    req.op = Request::Op::kCancel;
  } else if (op == "shutdown") {
    req.op = Request::Op::kShutdown;
  } else if (op.empty()) {
    throw std::runtime_error("missing required field 'op'");
  } else {
    throw std::runtime_error("unknown op '" + op +
                             "' (expected tune|qor|status|cancel|shutdown)");
  }
  req.id = get_string_field(doc, "id");
  req.circuit = get_string_field(doc, "circuit");
  req.sequence = get_string_field(doc, "sequence");
  req.target = get_string_field(doc, "target");
  req.dataset = get_int_field(doc, "dataset", req.dataset, 4, 100000);
  req.restarts = get_int_field(doc, "restarts", req.restarts, 1, 1000);
  req.seed = static_cast<std::uint64_t>(
      get_int_field(doc, "seed", static_cast<int>(req.seed), 0, 1 << 30));
  req.verify = get_bool_field(doc, "verify", false);
  req.want_report = get_bool_field(doc, "report", false);
  // A day-long deadline is the sane ceiling; anything larger is a typo or
  // an attack, and 0 keeps the pre-deadline behavior (unbounded).
  req.deadline_ms = get_int_field(doc, "deadline_ms", 0, 0, 86400000);
  if ((req.op == Request::Op::kTune || req.op == Request::Op::kQor) &&
      req.circuit.empty()) {
    throw std::runtime_error("op '" + op +
                             "' requires a 'circuit' field (see `list`)");
  }
  if (req.op == Request::Op::kCancel && req.target.empty() &&
      req.circuit.empty()) {
    throw std::runtime_error(
        "op 'cancel' requires a 'target' (request id) or 'circuit' field");
  }
  return req;
}

core::PipelineConfig pipeline_config(const Request& req) {
  // Mirrors the shell `tune` command exactly: a serve answer for
  // (circuit, dataset, restarts, seed) must be byte-identical to
  // `clo -c "gen <circuit>; tune <dataset> <restarts>"`.
  core::PipelineConfig config;
  config.dataset_size = req.dataset;
  config.restarts = req.restarts;
  config.diffusion_steps = 60;
  config.seed = req.seed;
  config.verify = req.verify;
  return config;
}

obs::Json ok_response(const Request* req) {
  obs::Json r = obs::Json::object();
  r["schema"] = kSchema;
  if (req != nullptr && !req->id.empty()) r["id"] = req->id;
  r["status"] = "ok";
  return r;
}

obs::Json error_response(const std::string& message, const Request* req,
                         const std::string& code) {
  obs::Json r = obs::Json::object();
  r["schema"] = kSchema;
  if (req != nullptr && !req->id.empty()) r["id"] = req->id;
  r["status"] = "error";
  r["error"] = message;
  r["code"] = code;
  return r;
}

}  // namespace clo::serve
