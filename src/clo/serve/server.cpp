#include "clo/serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <utility>

#include "clo/opt/transform.hpp"
#include "clo/util/log.hpp"
#include "clo/util/net.hpp"
#include "clo/util/obs.hpp"

namespace clo::serve {

namespace {

/// How often blocked loops re-check the stop flag.
constexpr int kPollMs = 200;
/// How often the watchdog scans the in-flight table for expired deadlines.
constexpr int kWatchdogMs = 100;

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  const std::size_t workers = util::resolve_threads(options_.threads);
  if (workers >= 2) pool_ = std::make_unique<util::ThreadPool>(workers);
  ModelRegistry::Options reg;
  reg.dir = options_.registry_dir;
  reg.pool = pool_.get();
  reg.max_entries = options_.registry_max_entries;
  reg.max_mb = options_.registry_max_mb;
  registry_ = std::make_unique<ModelRegistry>(reg);
  if (options_.sessions < 1) options_.sessions = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  if (options_.idle_timeout_ms <= 0) options_.idle_timeout_ms = 5000;
}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  util::net::ignore_sigpipe();
  listen_fd_ = util::net::listen_localhost(options_.port, 16, &port_);
  if (listen_fd_ < 0) {
    CLO_LOG_ERROR << "serve: cannot bind 127.0.0.1:" << options_.port;
    return false;
  }
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  uptime_.reset();
  uptime_.start();
  accept_thread_ = std::thread([this] { accept_loop(); });
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.sessions));
  for (int i = 0; i < options_.sessions; ++i) {
    workers_.emplace_back([this] { session_loop(); });
  }
  CLO_LOG_INFO << "serve: listening on 127.0.0.1:" << port_ << " ("
               << options_.sessions << " session(s), pool="
               << (pool_ ? pool_->size() : 1) << ", max_queue="
               << options_.max_queue << ")";
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return stop_requested_.load(std::memory_order_acquire);
  });
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
  queue_cv_.notify_all();
  // Fire every in-flight token so workers blocked inside a pipeline
  // unwind within one cancellation-poll step instead of finishing
  // (possibly minutes of) doomed work.
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto& [slot, entry] : inflight_) entry.token.cancel();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Reject-and-close anything still queued (workers are gone).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : pending_) {
      util::net::send_all(
          fd, error_response("server shutting down", nullptr).dump() + "\n");
      ::close(fd);
    }
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  uptime_.stop();
  CLO_LOG_INFO << "serve: stopped (served "
               << served_.load(std::memory_order_relaxed) << " request(s))";
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = pending_.size();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    s.inflight = inflight_.size();
  }
  s.uptime_s = uptime_.seconds();
  return s;
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    if (!util::net::wait_readable(listen_fd_, kPollMs)) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    bool reject = false;
    {
      // Capacity = max_queue waiting connections on top of however many
      // workers are idle right now; max_queue == 0 therefore rejects
      // exactly when every session worker is occupied.
      std::lock_guard<std::mutex> lock(queue_mu_);
      const std::size_t capacity =
          static_cast<std::size_t>(options_.max_queue) +
          static_cast<std::size_t>(idle_workers_);
      if (pending_.size() >= capacity) {
        reject = true;
      } else {
        pending_.push_back(client);
      }
    }
    if (reject) {
      // Load shedding, not OOM: one line of JSON with code "busy" (the
      // one code clients are allowed to retry on), then a clean close.
      shed_.fetch_add(1, std::memory_order_relaxed);
      CLO_OBS_COUNT("serve.shed", 1);
      util::net::send_all(
          client,
          error_response("server busy (queue full, retry later)", nullptr,
                         "busy")
                  .dump() +
              "\n");
      ::close(client);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    CLO_OBS_COUNT("serve.accepted", 1);
    queue_cv_.notify_one();
  }
}

void Server::session_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      ++idle_workers_;
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      --idle_workers_;
      if (pending_.empty()) return;  // shutting down
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  std::string line;
  while (running_.load(std::memory_order_acquire)) {
    if (!util::net::recv_line(fd, &line, options_.idle_timeout_ms)) {
      break;  // EOF, idle timeout, or oversized line: close quietly
    }
    if (line.empty()) continue;
    if (!handle_line(fd, line)) break;
  }
  ::close(fd);
}

bool Server::handle_line(int fd, const std::string& line) {
  const std::string req_id =
      run_id() + "-" + std::to_string(next_request_.fetch_add(
                           1, std::memory_order_relaxed));
  obs::Json response;
  bool keep_open = true;
  Request req;
  bool parsed = false;
  try {
    req = parse_request(line);
    parsed = true;
  } catch (const std::exception& e) {
    response = error_response(e.what(), nullptr, "bad_request");
  }
  if (parsed) {
    // tune/qor run under a fresh CancelToken: armed with the request's
    // deadline_ms, registered in the in-flight table (so `cancel` ops and
    // the watchdog can fire it), unregistered on every exit path.
    const bool tracked =
        req.op == Request::Op::kTune || req.op == Request::Op::kQor;
    util::CancelToken token;
    std::uint64_t slot = 0;
    if (tracked) {
      if (req.deadline_ms > 0) token.set_deadline_ms(req.deadline_ms);
      slot = inflight_add(req, token);
    }
    try {
      switch (req.op) {
        case Request::Op::kTune:
          response = do_tune(req, &token);
          break;
        case Request::Op::kQor:
          response = do_qor(req, &token);
          break;
        case Request::Op::kStatus:
          response = do_status(req);
          break;
        case Request::Op::kCancel:
          response = do_cancel(req);
          break;
        case Request::Op::kShutdown:
          response = ok_response(&req);
          response["shutting_down"] = true;
          keep_open = false;
          stop_requested_.store(true, std::memory_order_release);
          shutdown_cv_.notify_all();
          break;
      }
    } catch (const util::CancelledError& e) {
      // Cancelled work unwound cleanly: the registry holds no partial
      // entry and the worker is free again. Tell the client which kind.
      const bool deadline = e.reason() == util::CancelReason::kDeadline;
      if (deadline) {
        deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
        CLO_OBS_COUNT("serve.deadline_exceeded", 1);
      } else {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
        CLO_OBS_COUNT("serve.cancelled", 1);
      }
      response = error_response(e.what(), &req,
                                deadline ? "deadline_exceeded" : "cancelled");
    } catch (const std::exception& e) {
      // A bad circuit name or a failed pipeline is the request's problem,
      // never the daemon's: report and keep serving.
      response = error_response(e.what(), &req);
    }
    if (tracked) inflight_remove(slot);
  }
  response["req"] = req_id;
  served_.fetch_add(1, std::memory_order_relaxed);
  CLO_OBS_COUNT("serve.served", 1);
  if (!util::net::send_all(fd, response.dump() + "\n")) {
    // Peer went away mid-response; MSG_NOSIGNAL turned the would-be
    // SIGPIPE into this false return. Close and move on.
    CLO_LOG_DEBUG << "serve: client disconnected mid-response";
    return false;
  }
  return keep_open;
}

namespace {

/// The Entry single-flight protocol for the one-time optimize(): exactly
/// one session runs it (flagged by `optimizing`); everyone else does timed
/// cv waits polling their own token, so a waiter's deadline or cancel
/// fires promptly without disturbing the runner. Throwing (cancellation
/// included) clears the flag and wakes a waiter to take over — `result`
/// is only ever written from a completed optimize(), so no partial result
/// can be cached.
core::PipelineResult optimize_once(ModelRegistry::Entry& entry,
                                   const util::CancelToken* cancel,
                                   bool* warm) {
  std::unique_lock<std::mutex> lock(entry.mu);
  while (!entry.has_result && entry.optimizing) {
    if (cancel != nullptr) {
      cancel->check();
      entry.cv.wait_for(lock, std::chrono::milliseconds(50));
    } else {
      entry.cv.wait(lock);
    }
  }
  if (entry.has_result) {
    if (warm != nullptr) *warm = true;
    return entry.result;
  }
  if (warm != nullptr) *warm = false;
  entry.optimizing = true;
  lock.unlock();
  core::PipelineResult result;
  try {
    // Deterministic from the pretrain boundary: this run is
    // byte-identical to a cold CLI `tune` of the same circuit/config.
    result = entry.pipeline.optimize(entry.evaluator, cancel);
  } catch (...) {
    lock.lock();
    entry.optimizing = false;
    entry.cv.notify_all();
    throw;
  }
  lock.lock();
  entry.result = result;
  entry.has_result = true;
  entry.optimizing = false;
  entry.cv.notify_all();
  return result;
}

}  // namespace

obs::Json Server::do_tune(const Request& req,
                          const util::CancelToken* cancel) {
  auto entry =
      registry_->get_or_train(req.circuit, pipeline_config(req), cancel);
  bool warm = true;
  const core::PipelineResult result = optimize_once(*entry, cancel, &warm);
  obs::Json r = ok_response(&req);
  r["circuit"] = req.circuit;
  r["warm"] = warm;
  r["best_sequence"] = opt::sequence_to_string(result.best_sequence);
  r["best_area_um2"] = result.best.area_um2;
  r["best_delay_ps"] = result.best.delay_ps;
  r["original_area_um2"] = result.original.area_um2;
  r["original_delay_ps"] = result.original.delay_ps;
  r["train_seconds"] = entry->pretrain_seconds;
  r["optimize_seconds"] = result.optimize_seconds;
  r["resumed_phases"] = entry->resumed_phases;
  if (!result.verify_verdict.empty()) {
    r["verify_verdict"] = result.verify_verdict;
  }
  if (req.want_report) {
    r["report"] = core::pipeline_report(result, entry->evaluator.snapshot());
  }
  return r;
}

obs::Json Server::do_qor(const Request& req,
                         const util::CancelToken* cancel) {
  auto entry =
      registry_->get_or_train(req.circuit, pipeline_config(req), cancel);
  opt::Sequence seq;
  if (!req.sequence.empty()) {
    seq = opt::parse_sequence(req.sequence);
  } else {
    // Empty sequence = "the registry's best for this circuit": run the
    // one-time optimization if nobody has yet.
    seq = optimize_once(*entry, cancel, nullptr).best_sequence;
  }
  const core::Qor qor = entry->evaluator.evaluate(seq, cancel);
  const core::EvaluatorStats stats = entry->evaluator.snapshot();
  obs::Json r = ok_response(&req);
  r["circuit"] = req.circuit;
  r["sequence"] = opt::sequence_to_string(seq);
  r["area_um2"] = qor.area_um2;
  r["delay_ps"] = qor.delay_ps;
  obs::Json ev = obs::Json::object();
  ev["queries"] = static_cast<double>(stats.queries);
  ev["unique_runs"] = static_cast<double>(stats.unique_runs);
  ev["cache_hits"] = static_cast<double>(stats.cache_hits);
  r["evaluator"] = std::move(ev);
  return r;
}

obs::Json Server::do_cancel(const Request& req) {
  // Fire the token of every in-flight request matching the target id (or,
  // without a target, every request on the named circuit). The work
  // unwinds at its next cancellation poll; the match count tells the
  // client how many requests were signalled (0 = nothing matched, e.g.
  // the request already finished — not an error).
  int matched = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (auto& [slot, entry] : inflight_) {
      const bool by_id = !req.target.empty() && entry.id == req.target;
      const bool by_circuit =
          req.target.empty() && entry.circuit == req.circuit;
      if (by_id || by_circuit) {
        entry.token.cancel();
        ++matched;
      }
    }
  }
  CLO_OBS_COUNT("serve.cancel_ops", 1);
  CLO_LOG_INFO << "serve: cancel "
               << (req.target.empty() ? "circuit '" + req.circuit + "'"
                                      : "target '" + req.target + "'")
               << " signalled " << matched << " request(s)";
  obs::Json r = ok_response(&req);
  r["cancelled"] = static_cast<double>(matched);
  return r;
}

obs::Json Server::do_status(const Request& req) {
  const Stats s = stats();
  obs::Json r = ok_response(&req);
  obs::Json circuits = obs::Json::array();
  for (const auto& key : registry_->keys()) circuits.push_back(obs::Json(key));
  r["circuits"] = std::move(circuits);
  r["trainings"] = static_cast<double>(registry_->trainings());
  r["accepted"] = static_cast<double>(s.accepted);
  r["served"] = static_cast<double>(s.served);
  // "rejected" is the clo.serve.v1 name for shed connections; "shed" is
  // the same counter under the overload-hardening vocabulary.
  r["rejected"] = static_cast<double>(s.shed);
  r["shed"] = static_cast<double>(s.shed);
  r["cancelled"] = static_cast<double>(s.cancelled);
  r["deadline_exceeded"] = static_cast<double>(s.deadline_exceeded);
  r["evictions"] = static_cast<double>(registry_->evictions());
  r["queue_depth"] = static_cast<double>(s.queue_depth);
  r["inflight"] = static_cast<double>(s.inflight);
  r["uptime_s"] = s.uptime_s;
  return r;
}

std::uint64_t Server::inflight_add(const Request& req,
                                   const util::CancelToken& token) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  const std::uint64_t slot = ++inflight_seq_;
  Inflight entry;
  entry.id = req.id;
  entry.circuit = req.circuit;
  entry.token = token;
  inflight_.emplace(slot, std::move(entry));
  CLO_OBS_GAUGE("serve.inflight", static_cast<double>(inflight_.size()));
  return slot;
}

void Server::inflight_remove(std::uint64_t slot) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(slot);
  CLO_OBS_GAUGE("serve.inflight", static_cast<double>(inflight_.size()));
}

void Server::watchdog_loop() {
  while (running_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      for (auto& [slot, entry] : inflight_) {
        if (entry.deadline_logged || !entry.token.has_deadline()) continue;
        // cancelled() latches kDeadline on an expired token, so this scan
        // IS the enforcement — it fires the token even when the worker is
        // between polls, and the worker's next check() unwinds the work.
        if (entry.token.cancelled()) {
          entry.deadline_logged = true;
          CLO_LOG_WARN << "serve: request "
                       << (entry.id.empty() ? "on circuit '" + entry.circuit +
                                                  "'"
                                            : "'" + entry.id + "'")
                       << " exceeded its deadline; cancelling";
        }
      }
    }
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(kWatchdogMs),
                          [this] {
                            return !running_.load(std::memory_order_acquire);
                          });
  }
}

}  // namespace clo::serve
