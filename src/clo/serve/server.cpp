#include "clo/serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <exception>
#include <utility>

#include "clo/opt/transform.hpp"
#include "clo/util/log.hpp"
#include "clo/util/net.hpp"
#include "clo/util/obs.hpp"

namespace clo::serve {

namespace {

/// How often blocked loops re-check the stop flag.
constexpr int kPollMs = 200;

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  const std::size_t workers = util::resolve_threads(options_.threads);
  if (workers >= 2) pool_ = std::make_unique<util::ThreadPool>(workers);
  ModelRegistry::Options reg;
  reg.dir = options_.registry_dir;
  reg.pool = pool_.get();
  registry_ = std::make_unique<ModelRegistry>(reg);
  if (options_.sessions < 1) options_.sessions = 1;
  if (options_.max_queue < 0) options_.max_queue = 0;
  if (options_.idle_timeout_ms <= 0) options_.idle_timeout_ms = 5000;
}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  util::net::ignore_sigpipe();
  listen_fd_ = util::net::listen_localhost(options_.port, 16, &port_);
  if (listen_fd_ < 0) {
    CLO_LOG_ERROR << "serve: cannot bind 127.0.0.1:" << options_.port;
    return false;
  }
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  uptime_.reset();
  uptime_.start();
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.sessions));
  for (int i = 0; i < options_.sessions; ++i) {
    workers_.emplace_back([this] { session_loop(); });
  }
  CLO_LOG_INFO << "serve: listening on 127.0.0.1:" << port_ << " ("
               << options_.sessions << " session(s), pool="
               << (pool_ ? pool_->size() : 1) << ", max_queue="
               << options_.max_queue << ")";
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return stop_requested_.load(std::memory_order_acquire);
  });
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_requested_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Reject-and-close anything still queued (workers are gone).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : pending_) {
      util::net::send_all(
          fd, error_response("server shutting down", nullptr).dump() + "\n");
      ::close(fd);
    }
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  uptime_.stop();
  CLO_LOG_INFO << "serve: stopped (served "
               << served_.load(std::memory_order_relaxed) << " request(s))";
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = pending_.size();
  }
  s.uptime_s = uptime_.seconds();
  return s;
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    if (!util::net::wait_readable(listen_fd_, kPollMs)) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    bool reject = false;
    {
      // Capacity = max_queue waiting connections on top of however many
      // workers are idle right now; max_queue == 0 therefore rejects
      // exactly when every session worker is occupied.
      std::lock_guard<std::mutex> lock(queue_mu_);
      const std::size_t capacity =
          static_cast<std::size_t>(options_.max_queue) +
          static_cast<std::size_t>(idle_workers_);
      if (pending_.size() >= capacity) {
        reject = true;
      } else {
        pending_.push_back(client);
      }
    }
    if (reject) {
      // Backpressure, not OOM: one line of JSON, then a clean close. The
      // client can retry; the daemon's memory stays bounded.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      CLO_OBS_COUNT("serve.rejected", 1);
      util::net::send_all(
          client,
          error_response("server busy (queue full, retry later)", nullptr)
                  .dump() +
              "\n");
      ::close(client);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    CLO_OBS_COUNT("serve.accepted", 1);
    queue_cv_.notify_one();
  }
}

void Server::session_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      ++idle_workers_;
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      --idle_workers_;
      if (pending_.empty()) return;  // shutting down
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  std::string line;
  while (running_.load(std::memory_order_acquire)) {
    if (!util::net::recv_line(fd, &line, options_.idle_timeout_ms)) {
      break;  // EOF, idle timeout, or oversized line: close quietly
    }
    if (line.empty()) continue;
    if (!handle_line(fd, line)) break;
  }
  ::close(fd);
}

bool Server::handle_line(int fd, const std::string& line) {
  const std::string req_id =
      run_id() + "-" + std::to_string(next_request_.fetch_add(
                           1, std::memory_order_relaxed));
  obs::Json response;
  bool keep_open = true;
  Request req;
  bool parsed = false;
  try {
    req = parse_request(line);
    parsed = true;
  } catch (const std::exception& e) {
    response = error_response(e.what(), nullptr);
  }
  if (parsed) {
    try {
      switch (req.op) {
        case Request::Op::kTune:
          response = do_tune(req);
          break;
        case Request::Op::kQor:
          response = do_qor(req);
          break;
        case Request::Op::kStatus:
          response = do_status(req);
          break;
        case Request::Op::kShutdown:
          response = ok_response(&req);
          response["shutting_down"] = true;
          keep_open = false;
          stop_requested_.store(true, std::memory_order_release);
          shutdown_cv_.notify_all();
          break;
      }
    } catch (const std::exception& e) {
      // A bad circuit name or a failed pipeline is the request's problem,
      // never the daemon's: report and keep serving.
      response = error_response(e.what(), &req);
    }
  }
  response["req"] = req_id;
  served_.fetch_add(1, std::memory_order_relaxed);
  CLO_OBS_COUNT("serve.served", 1);
  if (!util::net::send_all(fd, response.dump() + "\n")) {
    // Peer went away mid-response; MSG_NOSIGNAL turned the would-be
    // SIGPIPE into this false return. Close and move on.
    CLO_LOG_DEBUG << "serve: client disconnected mid-response";
    return false;
  }
  return keep_open;
}

obs::Json Server::do_tune(const Request& req) {
  auto entry = registry_->get_or_train(req.circuit, pipeline_config(req));
  bool warm = true;
  core::PipelineResult result;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->has_result) {
      // First tune for this entry: run the (deterministic-from-boundary)
      // optimization once and cache it; every later tune answers from the
      // cache, byte-identical to this run and to a cold CLI `tune`.
      warm = false;
      entry->result = entry->pipeline.optimize(entry->evaluator);
      entry->has_result = true;
    }
    result = entry->result;
  }
  obs::Json r = ok_response(&req);
  r["circuit"] = req.circuit;
  r["warm"] = warm;
  r["best_sequence"] = opt::sequence_to_string(result.best_sequence);
  r["best_area_um2"] = result.best.area_um2;
  r["best_delay_ps"] = result.best.delay_ps;
  r["original_area_um2"] = result.original.area_um2;
  r["original_delay_ps"] = result.original.delay_ps;
  r["train_seconds"] = entry->pretrain_seconds;
  r["optimize_seconds"] = result.optimize_seconds;
  r["resumed_phases"] = entry->resumed_phases;
  if (!result.verify_verdict.empty()) {
    r["verify_verdict"] = result.verify_verdict;
  }
  if (req.want_report) {
    r["report"] = core::pipeline_report(result, entry->evaluator.snapshot());
  }
  return r;
}

obs::Json Server::do_qor(const Request& req) {
  auto entry = registry_->get_or_train(req.circuit, pipeline_config(req));
  opt::Sequence seq;
  if (!req.sequence.empty()) {
    seq = opt::parse_sequence(req.sequence);
  } else {
    // Empty sequence = "the registry's best for this circuit": run the
    // one-time optimization if nobody has yet.
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->has_result) {
      entry->result = entry->pipeline.optimize(entry->evaluator);
      entry->has_result = true;
    }
    seq = entry->result.best_sequence;
  }
  const core::Qor qor = entry->evaluator.evaluate(seq);
  const core::EvaluatorStats stats = entry->evaluator.snapshot();
  obs::Json r = ok_response(&req);
  r["circuit"] = req.circuit;
  r["sequence"] = opt::sequence_to_string(seq);
  r["area_um2"] = qor.area_um2;
  r["delay_ps"] = qor.delay_ps;
  obs::Json ev = obs::Json::object();
  ev["queries"] = static_cast<double>(stats.queries);
  ev["unique_runs"] = static_cast<double>(stats.unique_runs);
  ev["cache_hits"] = static_cast<double>(stats.cache_hits);
  r["evaluator"] = std::move(ev);
  return r;
}

obs::Json Server::do_status(const Request& req) {
  const Stats s = stats();
  obs::Json r = ok_response(&req);
  obs::Json circuits = obs::Json::array();
  for (const auto& key : registry_->keys()) circuits.push_back(obs::Json(key));
  r["circuits"] = std::move(circuits);
  r["trainings"] = static_cast<double>(registry_->trainings());
  r["accepted"] = static_cast<double>(s.accepted);
  r["served"] = static_cast<double>(s.served);
  r["rejected"] = static_cast<double>(s.rejected);
  r["queue_depth"] = static_cast<double>(s.queue_depth);
  r["uptime_s"] = s.uptime_s;
  return r;
}

}  // namespace clo::serve
