#pragma once
// The clo.serve.v1 wire protocol: one JSON object per line over a
// localhost TCP connection, strictly request/response. The daemon never
// trusts the peer — malformed JSON, unknown ops, or out-of-range knobs
// produce an "error" response on the same connection, never an exception
// that escapes a session worker.
//
// Request:
//   {"op": "tune" | "qor" | "status" | "cancel" | "shutdown",
//    "id": "<optional client tag, echoed back>",
//    "circuit": "<benchmark name>",          // tune, qor, cancel
//    "sequence": "rw;rf;b",                  // qor (omit = registry best)
//    "dataset": 80, "restarts": 2,           // pipeline knobs; defaults
//    "seed": 1, "verify": false,             //   mirror the shell `tune`
//    "report": false,                        // tune: attach clo.report.v1
//    "deadline_ms": 0,                       // tune/qor: 0 = unbounded;
//                                            //   the server cancels work
//                                            //   past its deadline
//    "target": "<id tag>"}                   // cancel: id of the request
//                                            //   to cancel (or use
//                                            //   "circuit" to cancel all
//                                            //   work on one circuit)
//
// Response (always one line):
//   {"schema": "clo.serve.v1", "id": ..., "req": "<per-request run id>",
//    "status": "ok" | "error",
//    ["error": "<message>", "code": "<machine-readable class>"],
//    ...op fields...}
//
// Error codes (clients key retry policy off these, not the message):
//   "busy"              — queue full; transient, retry with backoff
//   "cancelled"         — work stopped by a cancel op
//   "deadline_exceeded" — work stopped by its own deadline_ms
//   "bad_request"       — malformed input; never retry
//   "internal"          — anything else
//
// tune adds:  best_sequence, best_area_um2, best_delay_ps,
//             original_area_um2, original_delay_ps, warm (bool: answered
//             from the registry's cached result), train_seconds,
//             optimize_seconds, resumed_phases, [report]
// qor adds:   sequence, area_um2, delay_ps, evaluator {queries,
//             unique_runs, cache_hits} — unique_runs is the synthesis-run
//             counter a warm query must NOT advance
// cancel adds: cancelled (count of in-flight requests signalled)
// status adds: circuits [keys], trainings, accepted/served/rejected,
//             shed, cancelled, deadline_exceeded, evictions,
//             queue_depth, inflight, uptime_s

#include <string>

#include "clo/core/pipeline.hpp"
#include "clo/util/obs.hpp"

namespace clo::serve {

inline constexpr const char* kSchema = "clo.serve.v1";

struct Request {
  enum class Op { kTune, kQor, kStatus, kCancel, kShutdown };
  Op op = Op::kStatus;
  std::string id;        ///< client-chosen tag, echoed verbatim
  std::string circuit;   ///< benchmark name (tune/qor/cancel)
  std::string sequence;  ///< qor: sequence text; empty = registry best
  std::string target;    ///< cancel: id of the in-flight request to stop
  int dataset = 80;      ///< defaults mirror the shell `tune` command
  int restarts = 2;
  std::uint64_t seed = 1;
  bool verify = false;
  bool want_report = false;
  /// Wall-clock budget for tune/qor; 0 = unbounded. The server arms the
  /// request's CancelToken with it and a watchdog enforces it even while
  /// the request waits in queue.
  std::int64_t deadline_ms = 0;
};

/// Parse one request line. Throws std::runtime_error with a
/// client-presentable message on malformed input (bad JSON, missing or
/// unknown "op", out-of-range knobs).
Request parse_request(const std::string& line);

/// The pipeline configuration a request maps to — identical to the shell
/// `tune` command's defaults so a warm serve answer is byte-comparable
/// with a cold CLI run of the same circuit/config.
core::PipelineConfig pipeline_config(const Request& req);

/// Response skeletons; `req` may be null (unparseable request). `code` is
/// the machine-readable error class listed in the header comment; clients
/// retry only "busy" (and transport failures), never semantic errors.
obs::Json ok_response(const Request* req);
obs::Json error_response(const std::string& message, const Request* req,
                         const std::string& code = "internal");

}  // namespace clo::serve
