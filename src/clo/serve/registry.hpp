#pragma once
// The persistent model registry behind `clo serve`: one entry per
// (circuit, config) pair — keyed by the circuit name plus the
// pipeline_config_hash — holding the trained surrogate + diffusion models,
// the labeled dataset, and the sharded-cache QorEvaluator whose memo table
// answers warm QoR queries in microseconds.
//
// Semantics:
//   * get-or-train: the first request for a key pays pretraining (or a
//     checkpoint load when the registry directory already holds the
//     entry); every later request reuses the in-memory entry.
//   * single-flight: concurrent requests for the same key train ONCE —
//     racers wait on a condition variable for the trainer, exactly the
//     QorEvaluator in-flight discipline, so a thundering herd of identical
//     circuits costs one pretraining run.
//   * durable: with a registry directory, entries persist through the
//     CLOCKPT1 phase-checkpoint container (dataset/surrogate/diffusion
//     files under <dir>/<key>/) and survive daemon restarts; the fsynced
//     atomic write makes a committed entry survive power loss. A corrupt
//     or stale entry is skipped with a warning and retrained — never a
//     crash, never a daemon that refuses to start.
//   * bounded: max_entries LRU-evicts in-memory entries (their disk
//     checkpoints stay, so a re-request warm-loads instead of retraining)
//     and max_mb LRU-evicts on-disk entry directories. Evicting a live
//     entry is safe — sessions hold shared_ptr<Entry>, so in-flight work
//     finishes on the evicted object and only new requests rebuild.
//   * cancellable: get_or_train takes an optional CancelToken. A cancelled
//     trainer releases the in-flight slot exactly like any other failure —
//     racers observe the release and retrain cleanly, and no partial entry
//     ever lands in `ready_` (insertion happens only after pretrain()
//     returned). A cancelled *waiter* gives up without disturbing the
//     trainer.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "clo/core/evaluator.hpp"
#include "clo/core/pipeline.hpp"

namespace clo::util {
class ThreadPool;
}

namespace clo::serve {

class ModelRegistry {
 public:
  struct Options {
    /// Persistence root; empty = in-memory only (entries die with the
    /// process).
    std::string dir;
    /// Shared worker pool every entry's pipeline fans out on (may be
    /// null = serial). Owned by the caller (the Server), must outlive the
    /// registry.
    util::ThreadPool* pool = nullptr;
    /// LRU budget on in-memory entries (0 = unlimited). Evicted entries
    /// keep their disk checkpoints, so re-requesting one warm-loads.
    std::size_t max_entries = 0;
    /// LRU budget on the registry directory, in MiB (0 = unlimited).
    /// Enforced after each training by deleting least-recently-used entry
    /// directories; ignored when `dir` is empty.
    std::size_t max_mb = 0;
  };

  /// One trained (circuit, config) pair. `mu` + `cv` + `optimizing`
  /// single-flight the first optimize() — a plain mutex held across the
  /// minutes-long optimize() would make waiting tunes uncancellable, so
  /// waiters do timed cv waits and poll their own CancelToken instead.
  /// The evaluator is internally thread-safe.
  struct Entry {
    Entry(std::string key_, aig::Aig circuit, core::PipelineConfig config);

    std::string key;
    core::QorEvaluator evaluator;
    core::CloPipeline pipeline;

    std::mutex mu;
    std::condition_variable cv;  ///< signaled when optimizing clears
    bool optimizing = false;     ///< one session runs optimize() at a time
    /// First optimize() result, cached: optimize() is deterministic from
    /// the pretrain boundary, so every warm tune answers from here.
    bool has_result = false;
    core::PipelineResult result;

    double pretrain_seconds = 0.0;
    int resumed_phases = 0;  ///< 3 = fully loaded from the registry dir
  };

  explicit ModelRegistry(Options options) : options_(std::move(options)) {}

  /// Look up (or build) the entry for `circuit_name` under `config`.
  /// Blocks while another thread trains the same key (single-flight).
  /// Throws std::invalid_argument for an unknown benchmark name and
  /// propagates training failures (after releasing the in-flight slot so
  /// racers can retry). `cancel` is polled during training (plumbed into
  /// pretrain()) and while waiting on another thread's training; a fired
  /// token throws util::CancelledError and leaves the registry exactly as
  /// if the request never happened.
  std::shared_ptr<Entry> get_or_train(
      const std::string& circuit_name, core::PipelineConfig config,
      const util::CancelToken* cancel = nullptr);

  /// Registry key for one (circuit, config) pair:
  /// "<circuit>-<16-hex config hash>".
  std::string key_for(const aig::Aig& circuit,
                      const core::PipelineConfig& config) const;

  std::size_t size() const;
  std::vector<std::string> keys() const;
  /// Pretraining runs actually executed (a single-flight race counts
  /// once; a fully checkpoint-resumed build still counts — check the
  /// entry's resumed_phases to distinguish).
  std::uint64_t trainings() const {
    return trainings_.load(std::memory_order_relaxed);
  }
  /// Entries LRU-evicted so far (in-memory and on-disk evictions both
  /// count once each).
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  /// Record `key` as most-recently-used (callers hold mu_).
  void touch_locked(const std::string& key);
  /// Enforce max_entries/max_mb by LRU eviction (callers hold mu_).
  /// `protect` is the key just trained — never evicted in this pass, so a
  /// single over-budget entry degrades to a warning, not a train/evict
  /// thrash loop.
  void enforce_budgets_locked(const std::string& protect);

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signaled when an in-flight key lands
  std::map<std::string, std::shared_ptr<Entry>> ready_;
  std::set<std::string> inflight_;
  /// LRU bookkeeping: per-key last-access sequence number. Kept for
  /// evicted keys too, so their on-disk directories age correctly.
  std::map<std::string, std::uint64_t> last_access_;
  std::uint64_t access_seq_ = 0;
  std::atomic<std::uint64_t> trainings_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace clo::serve
