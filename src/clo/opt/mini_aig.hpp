#pragma once
// A small scratch AIG used to cost candidate structures before committing
// them to the real graph: local structural hashing + constant folding, with
// a replay step that instantiates the structure into a target Aig (where
// global strash sharing may make it even cheaper).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "clo/aig/aig.hpp"

namespace clo::opt {

class MiniAig {
 public:
  /// `num_leaves` external inputs, indexed 1..num_leaves (node 0 = const0).
  explicit MiniAig(int num_leaves) : num_leaves_(num_leaves) {}

  aig::Lit leaf(int i) const { return aig::make_lit(1 + i); }

  aig::Lit and_of(aig::Lit a, aig::Lit b);
  aig::Lit or_of(aig::Lit a, aig::Lit b) {
    return aig::lit_not(and_of(aig::lit_not(a), aig::lit_not(b)));
  }
  aig::Lit xor_of(aig::Lit a, aig::Lit b) {
    return or_of(and_of(a, aig::lit_not(b)), and_of(aig::lit_not(a), b));
  }
  aig::Lit mux_of(aig::Lit s, aig::Lit t, aig::Lit e) {
    return or_of(and_of(s, t), and_of(aig::lit_not(s), e));
  }

  int num_ands() const { return static_cast<int>(nodes_.size()); }

  /// Number of AND nodes in the cone of `root` (cost of just this output).
  int cone_size(aig::Lit root) const;

  /// Rebuild the cone of `root` inside `g`, substituting `leaf_lits` for
  /// the leaves; returns the literal computing the same function.
  aig::Lit replay(aig::Aig& g, aig::Lit root,
                  const std::vector<aig::Lit>& leaf_lits) const;

 private:
  struct Node {
    aig::Lit a, b;
  };
  int num_leaves_;
  std::vector<Node> nodes_;  // node id = num_leaves_ + 1 + index
  std::unordered_map<std::uint64_t, aig::Lit> strash_;
};

}  // namespace clo::opt
