#pragma once
// Named preset flows over S — equivalents of the classic ABC recipes
// (resyn, resyn2, compress2). Useful as strong fixed baselines and as the
// sub-flow arms FlowTune-style optimizers draw from.

#include <string>
#include <vector>

#include "clo/opt/transform.hpp"

namespace clo::opt {

struct NamedFlow {
  std::string name;
  Sequence sequence;
  std::string description;
};

/// All built-in preset flows.
const std::vector<NamedFlow>& preset_flows();

/// Look up a preset by name; throws std::invalid_argument if unknown.
const Sequence& preset_flow(const std::string& name);

}  // namespace clo::opt
