#include "clo/aig/window.hpp"
#include "clo/opt/passes.hpp"
#include "clo/opt/synthesize.hpp"
#include "clo/util/timer.hpp"

namespace clo::opt {

using aig::Aig;
using aig::Lit;

PassStats refactor(Aig& g, const RefactorParams& params) {
  clo::Stopwatch watch;
  watch.start();
  PassStats stats;
  stats.name = params.zero_cost ? "rfz" : "rf";
  stats.nodes_before = g.num_ands();
  stats.depth_before = g.depth();

  const auto order = g.topo_order();
  for (std::uint32_t n : order) {
    if (!g.is_and(n)) continue;
    const int mffc = g.mffc_size(n);
    if (mffc < 2 && !params.zero_cost) continue;  // nothing to collapse
    const auto leaves = aig::reconvergence_cut(g, n, params.max_cone_leaves);
    if (leaves.size() < 3) continue;
    bool leaves_ok = true;
    for (std::uint32_t leaf : leaves) {
      if (g.is_dead(leaf)) {
        leaves_ok = false;
        break;
      }
    }
    if (!leaves_ok) continue;
    const auto tt = aig::try_cone_truth_table(g, aig::make_lit(n), leaves,
                                              params.max_cone_nodes);
    if (!tt) continue;
    std::vector<Lit> leaf_lits;
    leaf_lits.reserve(leaves.size());
    for (std::uint32_t leaf : leaves) leaf_lits.push_back(aig::make_lit(leaf));
    const auto cand = synthesize_into(g, *tt, leaf_lits);
    // Recompute MFFC after building so strash reuse of soon-to-die nodes
    // cannot inflate the gain (the candidate now references them).
    const int gain = g.mffc_size(n) - cand.added_nodes;
    const bool identity = aig::lit_node(cand.lit) == n;
    const bool cyclic = !identity && g.reaches(cand.lit, n, leaves);
    const bool accept =
        !identity && !cyclic &&
        (gain > 0 || (params.zero_cost && gain == 0));
    if (accept) {
      g.replace(n, cand.lit);
      ++stats.accepted_moves;
    } else {
      g.sweep(cand.lit);
    }
  }
  g.cleanup();
  stats.nodes_after = g.num_ands();
  stats.depth_after = g.depth();
  watch.stop();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace clo::opt
