#include "clo/opt/flows.hpp"

#include <stdexcept>

namespace clo::opt {

const std::vector<NamedFlow>& preset_flows() {
  // Translations of ABC's scripts onto S = {rw,rwz,rf,rfz,rs,rsz,b}
  // (ABC's resyn: "b; rw; rwz; b; rwz; b", resyn2:
  // "b; rw; rf; b; rw; rwz; b; rfz; rwz; b").
  static const std::vector<NamedFlow> kFlows = {
      {"resyn", parse_sequence("b;rw;rwz;b;rwz;b"),
       "light rewriting script (ABC resyn)"},
      {"resyn2", parse_sequence("b;rw;rf;b;rw;rwz;b;rfz;rwz;b"),
       "the classic workhorse script (ABC resyn2)"},
      {"resyn2rs", parse_sequence("b;rs;rw;rf;rs;b;rs;rw;rs;rfz;rsz;b"),
       "resyn2 with resubstitution interleaved"},
      {"compress", parse_sequence("b;rw;rwz;b;rwz;b"),
       "area compression script"},
      {"compress2", parse_sequence("b;rw;rf;b;rw;rwz;b;rfz;rwz;b"),
       "deeper area compression script"},
      {"quick", parse_sequence("b;rw;b"), "fast cleanup"},
  };
  return kFlows;
}

const Sequence& preset_flow(const std::string& name) {
  for (const auto& flow : preset_flows()) {
    if (flow.name == name) return flow.sequence;
  }
  throw std::invalid_argument("unknown preset flow: " + name);
}

}  // namespace clo::opt
