#include <algorithm>
#include <functional>
#include <queue>

#include "clo/opt/passes.hpp"
#include "clo/util/timer.hpp"

namespace clo::opt {

using aig::Aig;
using aig::Lit;

// Depth-oriented rebalancing: collapse single-fanout AND chains into
// multi-input conjunctions, then rebuild each as a level-balanced tree
// (greedily pairing the two shallowest operands, Huffman-style).
PassStats balance(Aig& g) {
  clo::Stopwatch watch;
  watch.start();
  PassStats stats;
  stats.name = "b";
  stats.nodes_before = g.num_ands();
  stats.depth_before = g.depth();

  Aig fresh;
  fresh.set_name(g.name());
  std::vector<Lit> pi_map(g.num_slots(), aig::kLitNull);
  for (std::size_t i = 0; i < g.num_pis(); ++i) {
    pi_map[g.pi_node(i)] = fresh.add_pi(g.pi_name(i));
  }
  std::vector<int> level(fresh.num_slots(), 0);  // per fresh node
  auto level_of = [&](Lit l) { return level[aig::lit_node(l)]; };
  auto add_and = [&](Lit a, Lit b) {
    const Lit r = fresh.and_of(a, b);
    const std::uint32_t n = aig::lit_node(r);
    if (n >= level.size()) {
      level.resize(fresh.num_slots(), 0);
      level[n] = 1 + std::max(level_of(a), level_of(b));
    }
    return r;
  };

  std::vector<Lit> memo(g.num_slots(), aig::kLitNull);
  std::function<Lit(std::uint32_t)> map_node = [&](std::uint32_t n) -> Lit {
    if (n == 0) return aig::kLitFalse;
    if (g.is_pi(n)) {
      level.resize(fresh.num_slots(), 0);
      return pi_map[n];
    }
    if (memo[n] != aig::kLitNull) return memo[n];
    // Collect the multi-input conjunction rooted at n: descend through
    // non-complemented, single-fanout AND fanins.
    std::vector<Lit> conj;
    std::vector<Lit> stack{g.fanin0(n), g.fanin1(n)};
    while (!stack.empty()) {
      const Lit l = stack.back();
      stack.pop_back();
      const std::uint32_t m = aig::lit_node(l);
      if (!aig::lit_is_compl(l) && g.is_and(m) && g.nrefs(m) == 1) {
        stack.push_back(g.fanin0(m));
        stack.push_back(g.fanin1(m));
      } else {
        conj.push_back(l);
      }
    }
    // Map operands into the fresh graph.
    std::vector<Lit> mapped;
    mapped.reserve(conj.size());
    for (Lit l : conj) {
      mapped.push_back(
          aig::lit_notc(map_node(aig::lit_node(l)), aig::lit_is_compl(l)));
    }
    // Constant folding across the whole conjunction.
    std::sort(mapped.begin(), mapped.end());
    mapped.erase(std::unique(mapped.begin(), mapped.end()), mapped.end());
    for (Lit l : mapped) {
      if (l == aig::kLitFalse ||
          std::binary_search(mapped.begin(), mapped.end(), aig::lit_not(l))) {
        return memo[n] = aig::kLitFalse;
      }
    }
    std::erase(mapped, aig::kLitTrue);
    if (mapped.empty()) return memo[n] = aig::kLitTrue;
    // Huffman-style pairing by level for minimum tree depth.
    using Entry = std::pair<int, Lit>;  // (level, literal)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (Lit l : mapped) heap.emplace(level_of(l), l);
    while (heap.size() > 1) {
      const auto [la, a] = heap.top();
      heap.pop();
      const auto [lb, b] = heap.top();
      heap.pop();
      const Lit r = add_and(a, b);
      heap.emplace(level_of(r), r);
    }
    return memo[n] = heap.top().second;
  };

  for (std::size_t i = 0; i < g.num_pos(); ++i) {
    const Lit po = g.po(i);
    const Lit mapped =
        aig::lit_notc(map_node(aig::lit_node(po)), aig::lit_is_compl(po));
    fresh.add_po(mapped, g.po_name(i));
  }
  g = std::move(fresh);
  stats.accepted_moves = 1;
  stats.nodes_after = g.num_ands();
  stats.depth_after = g.depth();
  watch.stop();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace clo::opt
