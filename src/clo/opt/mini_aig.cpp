#include "clo/opt/mini_aig.hpp"

#include <algorithm>

namespace clo::opt {

using aig::Lit;
using aig::lit_is_compl;
using aig::lit_node;
using aig::lit_notc;
using aig::make_lit;

Lit MiniAig::and_of(Lit a, Lit b) {
  if (a > b) std::swap(a, b);
  if (a == aig::kLitFalse) return aig::kLitFalse;
  if (a == aig::kLitTrue) return b;
  if (a == b) return a;
  if (a == aig::lit_not(b)) return aig::kLitFalse;
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  nodes_.push_back(Node{a, b});
  const Lit result =
      make_lit(static_cast<std::uint32_t>(num_leaves_ + nodes_.size()));
  strash_.emplace(key, result);
  return result;
}

int MiniAig::cone_size(Lit root) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<std::uint32_t> stack{lit_node(root)};
  int count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= static_cast<std::uint32_t>(num_leaves_)) continue;
    const std::size_t idx = n - num_leaves_ - 1;
    if (visited[idx]) continue;
    visited[idx] = true;
    ++count;
    stack.push_back(lit_node(nodes_[idx].a));
    stack.push_back(lit_node(nodes_[idx].b));
  }
  return count;
}

Lit MiniAig::replay(aig::Aig& g, Lit root,
                    const std::vector<aig::Lit>& leaf_lits) const {
  std::vector<Lit> map(num_leaves_ + 1 + nodes_.size(), aig::kLitNull);
  map[0] = aig::kLitFalse;
  for (int i = 0; i < num_leaves_; ++i) map[1 + i] = leaf_lits[i];
  auto mapped = [&](Lit l) { return lit_notc(map[lit_node(l)], lit_is_compl(l)); };
  // Nodes were created bottom-up, so a forward pass is topological;
  // only build the cone of root.
  std::vector<bool> needed(nodes_.size(), false);
  std::vector<std::uint32_t> stack{lit_node(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n <= static_cast<std::uint32_t>(num_leaves_)) continue;
    const std::size_t idx = n - num_leaves_ - 1;
    if (needed[idx]) continue;
    needed[idx] = true;
    stack.push_back(lit_node(nodes_[idx].a));
    stack.push_back(lit_node(nodes_[idx].b));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!needed[i]) continue;
    map[num_leaves_ + 1 + i] = g.and_of(mapped(nodes_[i].a), mapped(nodes_[i].b));
  }
  return mapped(root);
}

}  // namespace clo::opt
