#include <algorithm>
#include <unordered_map>

#include "clo/aig/cuts.hpp"
#include "clo/aig/window.hpp"
#include "clo/opt/passes.hpp"
#include "clo/opt/synthesize.hpp"
#include "clo/util/timer.hpp"

namespace clo::opt {

using aig::Aig;
using aig::Cut;
using aig::Lit;
using aig::TruthTable;

namespace {

// Lazy per-pass cut computation: cuts are derived from the *current* fanins
// when a node is first visited and memoized. Processing nodes in a topo
// order snapshot guarantees a memoized node's structure never changes
// afterwards (replacements only touch strictly later nodes).
class LazyCuts {
 public:
  LazyCuts(Aig& g, int k, int max_cuts) : g_(g), k_(k), max_cuts_(max_cuts) {}

  const std::vector<Cut>& cuts_of(std::uint32_t n) {
    auto it = memo_.find(n);
    if (it != memo_.end()) return it->second;
    std::vector<Cut> result;
    if (!g_.is_and(n)) {
      result.push_back(Cut{{n}});
    } else {
      const auto& c0 = cuts_of(aig::lit_node(g_.fanin0(n)));
      const auto& c1 = cuts_of(aig::lit_node(g_.fanin1(n)));
      Cut merged;
      for (const Cut& a : c0) {
        for (const Cut& b : c1) {
          if (!aig::merge_cuts(a, b, k_, merged)) continue;
          bool dominated = false;
          for (const Cut& c : result) {
            if (c.dominates(merged)) {
              dominated = true;
              break;
            }
          }
          if (dominated) continue;
          std::erase_if(result,
                        [&](const Cut& c) { return merged.dominates(c); });
          result.push_back(merged);
        }
      }
      std::sort(result.begin(), result.end(), [](const Cut& a, const Cut& b) {
        return a.leaves.size() < b.leaves.size();
      });
      if (static_cast<int>(result.size()) > max_cuts_) result.resize(max_cuts_);
      result.push_back(Cut{{n}});
    }
    return memo_.emplace(n, std::move(result)).first->second;
  }

 private:
  Aig& g_;
  int k_;
  int max_cuts_;
  std::unordered_map<std::uint32_t, std::vector<Cut>> memo_;
};

}  // namespace

PassStats rewrite(Aig& g, const RewriteParams& params) {
  clo::Stopwatch watch;
  watch.start();
  PassStats stats;
  stats.name = params.zero_cost ? "rwz" : "rw";
  stats.nodes_before = g.num_ands();
  stats.depth_before = g.depth();

  LazyCuts cuts(g, params.cut_leaves, params.max_cuts_per_node);
  const auto order = g.topo_order();
  struct Scored {
    int estimated_gain;
    TruthTable tt;
    const Cut* cut;
  };
  std::vector<Scored> scored;
  for (std::uint32_t n : order) {
    if (!g.is_and(n)) continue;  // died in an earlier replacement
    const int mffc = g.mffc_size(n);
    const int min_gain = params.zero_cost ? 0 : 1;
    // Phase A: score every cut without touching the graph.
    scored.clear();
    for (const Cut& cut : cuts.cuts_of(n)) {
      if (cut.leaves.size() < 2) continue;  // trivial or constant cut
      bool leaves_ok = true;
      for (std::uint32_t leaf : cut.leaves) {
        if (g.is_dead(leaf)) {
          leaves_ok = false;
          break;
        }
      }
      if (!leaves_ok) continue;
      auto tt = aig::try_cone_truth_table(g, aig::make_lit(n), cut.leaves, 64);
      if (!tt) continue;
      // Pessimistic estimate (ignores strash sharing): allow slack that
      // sharing may recover during the exact evaluation below.
      const int est = mffc - estimate_cost(*tt);
      if (est < min_gain - 3) continue;
      scored.push_back(Scored{est, std::move(*tt), &cut});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.estimated_gain > b.estimated_gain;
              });
    // Phase B: evaluate candidates one at a time, sweeping each reject
    // before building the next. This keeps the gain accounting exact:
    // `added_nodes` can never silently reuse another candidate's garbage,
    // and the post-build MFFC excludes nodes the candidate pins.
    for (const Scored& s : scored) {
      std::vector<Lit> leaf_lits;
      leaf_lits.reserve(s.cut->leaves.size());
      for (std::uint32_t leaf : s.cut->leaves) {
        leaf_lits.push_back(aig::make_lit(leaf));
      }
      const auto cand = synthesize_into(g, s.tt, leaf_lits);
      const int gain = g.mffc_size(n) - cand.added_nodes;
      const bool identity = aig::lit_node(cand.lit) == n;
      const bool cyclic = !identity && g.reaches(cand.lit, n, s.cut->leaves);
      if (identity || cyclic || gain < min_gain) {
        g.sweep(cand.lit);
        continue;
      }
      g.replace(n, cand.lit);
      ++stats.accepted_moves;
      break;
    }
  }
  g.cleanup();
  stats.nodes_after = g.num_ands();
  stats.depth_after = g.depth();
  watch.stop();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace clo::opt
