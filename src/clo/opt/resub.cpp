#include <algorithm>
#include <unordered_map>

#include "clo/aig/window.hpp"
#include "clo/opt/passes.hpp"
#include "clo/util/timer.hpp"

namespace clo::opt {

using aig::Aig;
using aig::Lit;
using aig::TruthTable;

namespace {

/// Truth tables of the root, the leaves, and every divisor over the cut
/// leaves, computed from the current structure.
struct WindowFunctions {
  bool valid = false;
  TruthTable root_tt;
  std::vector<std::pair<std::uint32_t, TruthTable>> divisor_tts;
};

WindowFunctions compute_window(Aig& g, std::uint32_t root,
                               const std::vector<std::uint32_t>& leaves,
                               const std::vector<std::uint32_t>& divisors,
                               int max_nodes) {
  WindowFunctions w;
  const auto root_tt =
      aig::try_cone_truth_table(g, aig::make_lit(root), leaves, max_nodes);
  if (!root_tt) return w;
  w.root_tt = *root_tt;
  const int k = static_cast<int>(leaves.size());
  for (std::uint32_t d : divisors) {
    // Leaves are their own variables; inner divisors are cone functions.
    auto it = std::find(leaves.begin(), leaves.end(), d);
    if (it != leaves.end()) {
      w.divisor_tts.emplace_back(
          d, TruthTable::variable(k, static_cast<int>(it - leaves.begin())));
      continue;
    }
    const auto tt =
        aig::try_cone_truth_table(g, aig::make_lit(d), leaves, max_nodes);
    if (tt) w.divisor_tts.emplace_back(d, *tt);
  }
  w.valid = true;
  return w;
}

}  // namespace

PassStats resub(Aig& g, const ResubParams& params) {
  clo::Stopwatch watch;
  watch.start();
  PassStats stats;
  stats.name = params.zero_cost ? "rsz" : "rs";
  stats.nodes_before = g.num_ands();
  stats.depth_before = g.depth();

  const auto order = g.topo_order();
  for (std::uint32_t n : order) {
    if (!g.is_and(n)) continue;
    const int mffc = g.mffc_size(n);
    const int min_gain = params.zero_cost ? 0 : 1;
    const auto leaves = aig::reconvergence_cut(g, n, params.max_window_leaves);
    if (leaves.empty()) continue;
    bool leaves_ok = true;
    for (std::uint32_t leaf : leaves) {
      if (g.is_dead(leaf)) {
        leaves_ok = false;
        break;
      }
    }
    if (!leaves_ok) continue;
    const auto divisors = aig::collect_divisors(g, n, leaves, params.max_divisors);
    const auto window = compute_window(g, n, leaves, divisors, 400);
    if (!window.valid) continue;
    const TruthTable& target = window.root_tt;

    bool replaced = false;
    // --- 0-resub: an existing node already computes the function. -------
    for (const auto& [d, tt] : window.divisor_tts) {
      if (d == n) continue;
      Lit with = aig::kLitNull;
      if (tt == target) with = aig::make_lit(d);
      else if (tt == ~target) with = aig::make_lit(d, true);
      if (with == aig::kLitNull) continue;
      if (mffc < std::max(min_gain, 1)) break;  // gain = mffc
      g.replace(n, with);
      ++stats.accepted_moves;
      replaced = true;
      break;
    }
    if (replaced) continue;

    // --- 1-resub: AND/OR of two divisors (any polarities). --------------
    const auto& dv = window.divisor_tts;
    for (std::size_t i = 0; i < dv.size() && !replaced; ++i) {
      for (std::size_t j = i + 1; j < dv.size() && !replaced; ++j) {
        for (int pol = 0; pol < 4 && !replaced; ++pol) {
          const TruthTable a = (pol & 1) ? ~dv[i].second : dv[i].second;
          const TruthTable b = (pol & 2) ? ~dv[j].second : dv[j].second;
          const TruthTable conj = a & b;
          bool out_compl;
          if (conj == target) out_compl = false;
          else if (conj == ~target) out_compl = true;
          else continue;
          const Lit la = aig::make_lit(dv[i].first, (pol & 1) != 0);
          const Lit lb = aig::make_lit(dv[j].first, (pol & 2) != 0);
          const int added = g.probe_and(la, lb) ? 0 : 1;
          if (mffc - added < min_gain) continue;  // cheap upper bound
          const Lit new_lit = aig::lit_notc(g.and_of(la, lb), out_compl);
          if (aig::lit_node(new_lit) == n) continue;
          // Exact gain: the new node references the divisors, so any
          // divisor inside the old MFFC no longer counts as freed.
          const int gain = g.mffc_size(n) - added;
          if (gain < min_gain) {
            g.sweep(aig::lit_regular(new_lit));
            continue;
          }
          g.replace(n, new_lit);
          ++stats.accepted_moves;
          replaced = true;
        }
      }
    }
    if (replaced || !params.two_level) continue;

    // --- 2-resub: n = da & (db | dc), all polarities, output maybe
    // complemented. Adds up to 2 nodes, so only worthwhile for MFFC >= 3
    // (or >= 2 in zero-cost mode).
    const int need = params.zero_cost ? 2 : 3;
    if (mffc < need) continue;
    const std::size_t limit =
        std::min<std::size_t>(dv.size(), params.max_two_level_divisors);
    for (std::size_t a = 0; a < limit && !replaced; ++a) {
      for (std::size_t b = 0; b < limit && !replaced; ++b) {
        if (b == a) continue;
        for (std::size_t c = b + 1; c < limit && !replaced; ++c) {
          if (c == a) continue;
          for (int pol = 0; pol < 8 && !replaced; ++pol) {
            const TruthTable ta = (pol & 1) ? ~dv[a].second : dv[a].second;
            const TruthTable tb = (pol & 2) ? ~dv[b].second : dv[b].second;
            const TruthTable tc = (pol & 4) ? ~dv[c].second : dv[c].second;
            const TruthTable f = ta & (tb | tc);
            bool out_compl;
            if (f == target) out_compl = false;
            else if (f == ~target) out_compl = true;
            else continue;
            const Lit la = aig::make_lit(dv[a].first, (pol & 1) != 0);
            const Lit lb = aig::make_lit(dv[b].first, (pol & 2) != 0);
            const Lit lc = aig::make_lit(dv[c].first, (pol & 4) != 0);
            const std::size_t ands_before = g.num_ands();
            const Lit inner = g.or_of(lb, lc);
            const Lit top = g.and_of(la, inner);
            const int added = static_cast<int>(g.num_ands() - ands_before);
            if (aig::lit_node(top) == n || aig::lit_node(inner) == n) {
              g.sweep(top);
              continue;
            }
            // Exact gain: the new structure pins any reused divisors, so
            // the recomputed MFFC counts only what replace() will free.
            const int gain = g.mffc_size(n) - added;
            if (gain < min_gain) {
              g.sweep(top);
              continue;
            }
            g.replace(n, aig::lit_notc(top, out_compl));
            ++stats.accepted_moves;
            replaced = true;
          }
        }
      }
    }
  }
  g.cleanup();
  stats.nodes_after = g.num_ands();
  stats.depth_after = g.depth();
  watch.stop();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace clo::opt
