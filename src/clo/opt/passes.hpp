#pragma once
// The logic optimization passes forming the paper's transformation set
// S = {rw, rwz, rf, rfz, rs, rsz, b} — from-scratch equivalents of ABC's
// rewrite / refactor / resub / balance commands. Every pass preserves the
// circuit function (validated by the test suite's equivalence checks) and
// ends with Aig::cleanup() so reported node counts are exact.

#include <cstddef>
#include <string>

#include "clo/aig/aig.hpp"

namespace clo::opt {

/// Before/after metrics of one pass application.
struct PassStats {
  std::string name;
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  int depth_before = 0;
  int depth_after = 0;
  int accepted_moves = 0;
  double seconds = 0.0;
};

struct RewriteParams {
  bool zero_cost = false;  ///< accept gain == 0 moves (ABC's -z)
  int cut_leaves = 4;
  int max_cuts_per_node = 8;
};

struct RefactorParams {
  bool zero_cost = false;
  int max_cone_leaves = 8;
  int max_cone_nodes = 400;
};

struct ResubParams {
  bool zero_cost = false;
  int max_window_leaves = 8;
  int max_divisors = 40;
  /// Also attempt 2-resub (n = d1 op (d2 op d3)), bounded to the first
  /// `max_two_level_divisors` divisors. Needs MFFC >= 3 to gain.
  bool two_level = true;
  int max_two_level_divisors = 16;
};

/// Depth-oriented AND-tree rebalancing (ABC's `balance`).
PassStats balance(aig::Aig& g);

/// DAG-aware cut rewriting (ABC's `rewrite` / `rewrite -z`).
PassStats rewrite(aig::Aig& g, const RewriteParams& params = {});

/// Reconvergence-cone collapse + resynthesis (ABC's `refactor` / `-z`).
PassStats refactor(aig::Aig& g, const RefactorParams& params = {});

/// Windowed resubstitution (ABC's `resub` / `-z`).
PassStats resub(aig::Aig& g, const ResubParams& params = {});

}  // namespace clo::opt
