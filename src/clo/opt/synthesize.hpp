#pragma once
// Resynthesis of a cut/cone function back into AIG structure. Two
// strategies are costed in a scratch MiniAig and the cheaper one wins:
//  * recursive Shannon/AND/XOR decomposition (BDD-flavored, memoized),
//  * ISOP covers of the function and its complement (SOP-flavored).
// Used by rewriting (k = 4 cuts) and refactoring (reconvergence cones).

#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/aig/truth.hpp"
#include "clo/opt/mini_aig.hpp"

namespace clo::opt {

/// Build `tt` over `mini.leaf(i)` inputs; returns the output literal.
/// Tries decomposition and both-polarity SOP, keeps the smaller.
aig::Lit build_function(MiniAig& mini, const aig::TruthTable& tt);

/// Result of synthesizing a candidate directly into a real AIG.
struct SynthesizedCandidate {
  aig::Lit lit = aig::kLitNull;
  int added_nodes = 0;  ///< AND nodes newly created in the target graph
};

/// Synthesize `tt` over `leaf_lits` into `g` (with global strash sharing)
/// and report exactly how many new nodes were created.
SynthesizedCandidate synthesize_into(aig::Aig& g, const aig::TruthTable& tt,
                                     const std::vector<aig::Lit>& leaf_lits);

/// Lower-bound estimate of the structure cost (MiniAig nodes) without
/// touching the target graph — cheap pre-screen for rewriting.
int estimate_cost(const aig::TruthTable& tt);

}  // namespace clo::opt
