#include "clo/opt/synthesize.hpp"

#include <algorithm>
#include <map>

#include "clo/util/cancel.hpp"

namespace clo::opt {

using aig::Cube;
using aig::Lit;
using aig::TruthTable;

namespace {

// Memo key: the packed words of the table (tables in one synthesis call all
// share num_vars, so words alone identify the function).
using Memo = std::map<std::vector<std::uint64_t>, Lit>;

Lit build_decomp(MiniAig& mini, const TruthTable& tt, Memo& memo) {
  if (tt.is_const0()) return aig::kLitFalse;
  if (tt.is_const1()) return aig::kLitTrue;
  auto hit = memo.find(tt.words());
  if (hit != memo.end()) return hit->second;
  {
    const TruthTable neg = ~tt;
    auto hit_neg = memo.find(neg.words());
    if (hit_neg != memo.end()) return aig::lit_not(hit_neg->second);
  }
  // Topmost variable the function depends on.
  int v = tt.num_vars() - 1;
  while (v >= 0 && !tt.has_var(v)) --v;
  const Lit x = mini.leaf(v);
  const TruthTable f0 = tt.cofactor0(v);
  const TruthTable f1 = tt.cofactor1(v);
  Lit result;
  if (f0 == f1) {
    result = build_decomp(mini, f0, memo);
  } else if (f1 == ~f0) {
    result = mini.xor_of(x, build_decomp(mini, f0, memo));
  } else if (f0.is_const0()) {
    result = mini.and_of(x, build_decomp(mini, f1, memo));
  } else if (f1.is_const0()) {
    result = mini.and_of(aig::lit_not(x), build_decomp(mini, f0, memo));
  } else if (f0.is_const1()) {
    result = mini.or_of(aig::lit_not(x), build_decomp(mini, f1, memo));
  } else if (f1.is_const1()) {
    result = mini.or_of(x, build_decomp(mini, f0, memo));
  } else {
    const Lit t = build_decomp(mini, f1, memo);
    const Lit e = build_decomp(mini, f0, memo);
    result = mini.mux_of(x, t, e);
  }
  memo.emplace(tt.words(), result);
  return result;
}

// Balanced AND over a list of literals.
Lit balanced_and(MiniAig& mini, std::vector<Lit> lits) {
  if (lits.empty()) return aig::kLitTrue;
  while (lits.size() > 1) {
    std::vector<Lit> next;
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      next.push_back(mini.and_of(lits[i], lits[i + 1]));
    }
    if (lits.size() % 2) next.push_back(lits.back());
    lits = std::move(next);
  }
  return lits[0];
}

Lit balanced_or(MiniAig& mini, std::vector<Lit> lits) {
  for (auto& l : lits) l = aig::lit_not(l);
  return aig::lit_not(balanced_and(mini, std::move(lits)));
}

Lit build_sop(MiniAig& mini, const std::vector<Cube>& cubes, int num_vars) {
  if (cubes.empty()) return aig::kLitFalse;
  std::vector<Lit> terms;
  terms.reserve(cubes.size());
  for (const Cube& c : cubes) {
    std::vector<Lit> lits;
    for (int v = 0; v < num_vars; ++v) {
      if (!(c.mask & (1u << v))) continue;
      const Lit x = mini.leaf(v);
      lits.push_back((c.polarity & (1u << v)) ? x : aig::lit_not(x));
    }
    terms.push_back(balanced_and(mini, std::move(lits)));
  }
  return balanced_or(mini, std::move(terms));
}

/// Build both strategies in `mini`; return the cheaper output literal.
Lit build_best(MiniAig& mini, const TruthTable& tt) {
  // Innermost synthesis hot path: honor the ambient request token so a
  // cancel/deadline fires mid-rewrite, not only between passes.
  util::cancel_point();
  Memo memo;
  const Lit by_decomp = build_decomp(mini, tt, memo);
  const int cost_decomp = mini.cone_size(by_decomp);

  const auto cubes_pos = aig::isop(tt);
  const auto cubes_neg = aig::isop(~tt);
  const bool use_neg =
      aig::sop_literals(cubes_neg) + static_cast<int>(cubes_neg.size()) <
      aig::sop_literals(cubes_pos) + static_cast<int>(cubes_pos.size());
  const Lit by_sop_raw =
      build_sop(mini, use_neg ? cubes_neg : cubes_pos, tt.num_vars());
  const Lit by_sop = use_neg ? aig::lit_not(by_sop_raw) : by_sop_raw;
  const int cost_sop = mini.cone_size(by_sop);

  return cost_sop < cost_decomp ? by_sop : by_decomp;
}

}  // namespace

Lit build_function(MiniAig& mini, const TruthTable& tt) {
  return build_best(mini, tt);
}

SynthesizedCandidate synthesize_into(aig::Aig& g, const TruthTable& tt,
                                     const std::vector<Lit>& leaf_lits) {
  MiniAig mini(tt.num_vars());
  const Lit root = build_best(mini, tt);
  SynthesizedCandidate out;
  const std::size_t before = g.num_ands();
  out.lit = mini.replay(g, root, leaf_lits);
  out.added_nodes = static_cast<int>(g.num_ands() - before);
  return out;
}

int estimate_cost(const TruthTable& tt) {
  MiniAig mini(tt.num_vars());
  return mini.cone_size(build_best(mini, tt));
}

}  // namespace clo::opt
