#include "clo/opt/transform.hpp"

#include <chrono>
#include <stdexcept>

#include "clo/util/cancel.hpp"
#include "clo/util/obs.hpp"

namespace clo::opt {
namespace {

/// Static histogram name per transform kind (observe() takes a string and
/// this path runs once per transform application).
[[maybe_unused]] const char* transform_metric_name(Transform t) {
  switch (t) {
    case Transform::kRw: return "opt.seconds.rw";
    case Transform::kRwz: return "opt.seconds.rwz";
    case Transform::kRf: return "opt.seconds.rf";
    case Transform::kRfz: return "opt.seconds.rfz";
    case Transform::kRs: return "opt.seconds.rs";
    case Transform::kRsz: return "opt.seconds.rsz";
    case Transform::kB: return "opt.seconds.b";
  }
  return "opt.seconds.unknown";
}

}  // namespace

const char* transform_name(Transform t) {
  switch (t) {
    case Transform::kRw: return "rw";
    case Transform::kRwz: return "rwz";
    case Transform::kRf: return "rf";
    case Transform::kRfz: return "rfz";
    case Transform::kRs: return "rs";
    case Transform::kRsz: return "rsz";
    case Transform::kB: return "b";
  }
  return "?";
}

Transform transform_from_name(const std::string& name) {
  for (Transform t : all_transforms()) {
    if (name == transform_name(t)) return t;
  }
  throw std::invalid_argument("unknown transformation: " + name);
}

const std::vector<Transform>& all_transforms() {
  static const std::vector<Transform> kAll = {
      Transform::kRw, Transform::kRwz, Transform::kRf, Transform::kRfz,
      Transform::kRs, Transform::kRsz, Transform::kB};
  return kAll;
}

Sequence parse_sequence(const std::string& text) {
  Sequence seq;
  std::string token;
  auto flush = [&] {
    if (!token.empty()) {
      seq.push_back(transform_from_name(token));
      token.clear();
    }
  };
  for (char c : text) {
    if (c == ';' || c == ',' || c == ' ' || c == '\t' || c == '\n') {
      flush();
    } else {
      token += c;
    }
  }
  flush();
  return seq;
}

std::string sequence_to_string(const Sequence& seq) {
  std::string s;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i) s += ';';
    s += transform_name(seq[i]);
  }
  return s;
}

Sequence random_sequence(int length, clo::Rng& rng) {
  Sequence seq(length);
  for (auto& t : seq) {
    t = static_cast<Transform>(rng.next_int(0, kNumTransforms - 1));
  }
  return seq;
}

PassStats apply_transform(aig::Aig& g, Transform t) {
  switch (t) {
    case Transform::kRw: return rewrite(g, RewriteParams{});
    case Transform::kRwz: return rewrite(g, RewriteParams{.zero_cost = true});
    case Transform::kRf: return refactor(g, RefactorParams{});
    case Transform::kRfz:
      return refactor(g, RefactorParams{.zero_cost = true});
    case Transform::kRs: return resub(g, ResubParams{});
    case Transform::kRsz: return resub(g, ResubParams{.zero_cost = true});
    case Transform::kB: return balance(g);
  }
  throw std::logic_error("unreachable transform");
}

std::vector<PassStats> run_sequence(aig::Aig& g, const Sequence& seq) {
  std::vector<PassStats> stats;
  stats.reserve(seq.size());
  for (Transform t : seq) {
    // Per-transform cancellation: a request's deadline fires between
    // passes instead of waiting out the remainder of the sequence.
    util::cancel_point();
    if (CLO_OBS_RUNTIME_ENABLED()) {
      [[maybe_unused]] const auto begin = std::chrono::steady_clock::now();
      stats.push_back(apply_transform(g, t));
      CLO_OBS_OBSERVE(transform_metric_name(t),
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - begin)
                          .count());
    } else {
      stats.push_back(apply_transform(g, t));
    }
  }
  return stats;
}

}  // namespace clo::opt
