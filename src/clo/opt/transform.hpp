#pragma once
// The paper's transformation alphabet S = {rw, rwz, rf, rfz, rs, rsz, b}
// and the synthesis-sequence runner (the "ABC call" of this project).

#include <string>
#include <vector>

#include "clo/aig/aig.hpp"
#include "clo/opt/passes.hpp"
#include "clo/util/rng.hpp"

namespace clo::opt {

enum class Transform : int {
  kRw = 0,   ///< rewrite
  kRwz = 1,  ///< rewrite -z (zero-cost accepted)
  kRf = 2,   ///< refactor
  kRfz = 3,  ///< refactor -z
  kRs = 4,   ///< resub
  kRsz = 5,  ///< resub -z
  kB = 6,    ///< balance
};

inline constexpr int kNumTransforms = 7;

/// Short ABC-style name ("rw", "rwz", ...).
const char* transform_name(Transform t);

/// Parse one name; throws std::invalid_argument on unknown names.
Transform transform_from_name(const std::string& name);

/// All seven transformations in enum order.
const std::vector<Transform>& all_transforms();

/// A synthesis sequence (the optimization variable of the whole project).
using Sequence = std::vector<Transform>;

/// Parse "rw;rwz;b" (also accepts ',' or whitespace separators).
Sequence parse_sequence(const std::string& text);
std::string sequence_to_string(const Sequence& seq);

/// Uniformly random sequence of the given length.
Sequence random_sequence(int length, clo::Rng& rng);

/// Apply one transformation in place.
PassStats apply_transform(aig::Aig& g, Transform t);

/// Apply a whole sequence in place; returns per-step stats.
std::vector<PassStats> run_sequence(aig::Aig& g, const Sequence& seq);

}  // namespace clo::opt
