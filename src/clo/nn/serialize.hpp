#pragma once
// Parameter (de)serialization: the paper treats model training as a
// one-time effort per circuit, which only pays off if the trained weights
// can be kept around. Format: little-endian binary, "CLONN1" magic, tensor
// count, then (ndims, dims..., float32 data) per tensor.
//
// The loader is defensive: dimension counts and extents are bounds-checked
// against sane caps BEFORE any allocation or comparison, and short reads
// are detected everywhere, so a truncated or bit-flipped snapshot is
// rejected instead of crashing or over-allocating. (Bit flips inside the
// float payload are undetectable at this layer — the checkpoint container
// in clo/core/checkpoint wraps these blobs with a CRC32 for that.)

#include <iosfwd>
#include <string>
#include <vector>

#include "clo/nn/modules.hpp"
#include "clo/nn/tensor.hpp"

namespace clo::nn {

/// Caps enforced by load_parameters before trusting file contents.
inline constexpr std::uint32_t kMaxTensorDims = 16;
inline constexpr std::int64_t kMaxTensorElems = std::int64_t{1} << 28;

/// Write all tensors to `path` (or an open binary stream). Returns false
/// on I/O failure.
bool save_parameters(const std::vector<Tensor>& params,
                     const std::string& path);
bool save_parameters(const std::vector<Tensor>& params, std::ostream& os);

/// Read tensors from `path` (or a stream) into `params` (shapes must
/// match exactly). Returns false on I/O failure, truncation, or any
/// malformed/mismatched metadata; `params` contents are unspecified on
/// failure.
bool load_parameters(std::vector<Tensor>& params, const std::string& path);
bool load_parameters(std::vector<Tensor>& params, std::istream& is);

/// Convenience wrappers for whole modules.
bool save_module(Module& module, const std::string& path);
bool load_module(Module& module, const std::string& path);

}  // namespace clo::nn
