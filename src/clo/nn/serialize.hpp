#pragma once
// Parameter (de)serialization: the paper treats model training as a
// one-time effort per circuit, which only pays off if the trained weights
// can be kept around. Format: little-endian binary, "CLONN1" magic, tensor
// count, then (ndims, dims..., float32 data) per tensor.

#include <string>
#include <vector>

#include "clo/nn/modules.hpp"
#include "clo/nn/tensor.hpp"

namespace clo::nn {

/// Write all tensors to `path`. Returns false on I/O failure.
bool save_parameters(const std::vector<Tensor>& params,
                     const std::string& path);

/// Read tensors from `path` into `params` (shapes must match exactly).
/// Returns false on I/O failure or shape mismatch.
bool load_parameters(std::vector<Tensor>& params, const std::string& path);

/// Convenience wrappers for whole modules.
bool save_module(Module& module, const std::string& path);
bool load_module(Module& module, const std::string& path);

}  // namespace clo::nn
