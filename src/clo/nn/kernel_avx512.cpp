// AVX-512 kernels. This TU is compiled with -mavx512f and
// -ffp-contract=off and is only ever entered when cpuid reports AVX-512F
// (kernel.cpp gates the dispatch; every such CPU also has the AVX2+FMA the
// 256-bit ops here assume). The bitwise contract is the same as the AVX2
// TU's, and the port strategy is:
//
//  - Reductions (dot/sqdist/sum) keep the EIGHT-lane accumulator the
//    contract pins, so they stay on 256-bit registers (a 16-lane
//    accumulator would be a different summation order, and gcc 12's
//    zmm→ymm splits are -Werror-hostile — see the note above dot()).
//  - max_value stays 8-wide: max is order-insensitive for magnitudes but
//    the `x > m ? x : m` select's +0/-0 tie-breaking is not, so folding 16
//    lanes could flip which signed zero survives.
//  - Elementwise kernels, adam_update, and matmul's column blocks are
//    per-element independent chains, so they run genuinely 16-wide
//    (mul+add, never vfmadd; vdivps/vsqrtps are correctly rounded).

#ifdef CLO_KERNEL_AVX512

// gcc 12 expands several AVX-512F intrinsics (_mm512_sqrt_ps, the
// zmm→ymm casts, ...) through _mm512_undefined_ps-style placeholders that
// -Wmaybe-uninitialized flags as reads of uninitialized values (gcc
// PR 105593). The placeholder lanes are never consumed; silence the false
// positive for this TU only so -Werror stays on.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "clo/nn/kernel_detail.hpp"

namespace clo::nn::kernel::avx512 {

using detail::fold_max8;
using detail::reduce8;

// The reductions run on 256-bit registers: the 8-lane accumulator IS the
// contract, a zmm would have to be split into ymm halves every step, and
// gcc 12's zmm→ymm extract intrinsics (_mm512_castps512_ps256 included)
// all expand through _mm256_undefined_pd, which -Werror rejects as
// maybe-uninitialized. The 16-wide wins live in the per-element kernels
// below, which never split a vector.

float dot(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Two sequential 8-wide adds = the scalar chain's i then i+8 blocks.
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                           _mm256_loadu_ps(b + i + 8)));
  }
  for (; i + 8 <= n; i += 8)
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return reduce8(lanes, tail);
}

float sqdist(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return reduce8(lanes, tail);
}

float sum(const float* a, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i];
  return reduce8(lanes, tail);
}

float max_value(const float* a, std::size_t n) {
  // 8-wide on purpose — see the TU header note on signed-zero ties.
  if (n < 8) {
    float m = a[0];
    bool has_nan = a[0] != a[0];
    for (std::size_t i = 1; i < n; ++i) {
      has_nan = has_nan || a[i] != a[i];
      m = a[i] > m ? a[i] : m;
    }
    return has_nan ? detail::canonical_nan() : m;
  }
  __m256 acc = _mm256_loadu_ps(a);
  __m256 nan_mask = _mm256_cmp_ps(acc, acc, _CMP_UNORD_Q);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    const __m256 x = _mm256_loadu_ps(a + i);
    nan_mask = _mm256_or_ps(nan_mask, _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
    acc = _mm256_max_ps(x, acc);
  }
  bool has_nan = _mm256_movemask_ps(nan_mask) != 0;
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float m = fold_max8(lanes);
  for (; i < n; ++i) {
    has_nan = has_nan || a[i] != a[i];
    m = a[i] > m ? a[i] : m;
  }
  return has_nan ? detail::canonical_nan() : m;
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(
        y + i, _mm512_add_ps(_mm512_loadu_ps(y + i),
                             _mm512_mul_ps(va, _mm512_loadu_ps(x + i))));
  for (; i < n; ++i) y[i] += a * x[i];
}

void acc(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(
        y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(x + i)));
  for (; i < n; ++i) y[i] += x[i];
}

void add(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(out + i, _mm512_add_ps(_mm512_loadu_ps(a + i),
                                            _mm512_loadu_ps(b + i)));
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void sub(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(out + i, _mm512_sub_ps(_mm512_loadu_ps(a + i),
                                            _mm512_loadu_ps(b + i)));
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(out + i, _mm512_mul_ps(_mm512_loadu_ps(a + i),
                                            _mm512_loadu_ps(b + i)));
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void scale(float* out, const float* a, float s, std::size_t n) {
  const __m512 vs = _mm512_set1_ps(s);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(out + i, _mm512_mul_ps(_mm512_loadu_ps(a + i), vs));
  for (; i < n; ++i) out[i] = a[i] * s;
}

void div_inplace(float* y, float z, std::size_t n) {
  const __m512 vz = _mm512_set1_ps(z);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    _mm512_storeu_ps(y + i, _mm512_div_ps(_mm512_loadu_ps(y + i), vz));
  for (; i < n; ++i) y[i] /= z;
}

void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps) {
  const __m512 vb1 = _mm512_set1_ps(beta1);
  const __m512 vb1c = _mm512_set1_ps(1.0f - beta1);
  const __m512 vb2 = _mm512_set1_ps(beta2);
  const __m512 vb2c = _mm512_set1_ps(1.0f - beta2);
  const __m512 vbc1 = _mm512_set1_ps(bias_c1);
  const __m512 vbc2 = _mm512_set1_ps(bias_c2);
  const __m512 vlr = _mm512_set1_ps(lr);
  const __m512 veps = _mm512_set1_ps(eps);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 gi = _mm512_loadu_ps(g + i);
    const __m512 vm = _mm512_add_ps(_mm512_mul_ps(vb1, _mm512_loadu_ps(m + i)),
                                    _mm512_mul_ps(vb1c, gi));
    const __m512 vv =
        _mm512_add_ps(_mm512_mul_ps(vb2, _mm512_loadu_ps(v + i)),
                      _mm512_mul_ps(vb2c, _mm512_mul_ps(gi, gi)));
    _mm512_storeu_ps(m + i, vm);
    _mm512_storeu_ps(v + i, vv);
    const __m512 mhat = _mm512_div_ps(vm, vbc1);
    const __m512 vhat = _mm512_div_ps(vv, vbc2);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(vhat), veps);
    _mm512_storeu_ps(
        p + i, _mm512_sub_ps(_mm512_loadu_ps(p + i),
                             _mm512_div_ps(_mm512_mul_ps(vlr, mhat), denom)));
  }
  for (; i < n; ++i) {
    const float gi = g[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * (gi * gi);
    const float mhat = m[i] / bias_c1;
    const float vhat = v[i] / bias_c2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

namespace {

// out[i,j] += dot(A row i, B row j) for four B rows sharing one pass over
// the A row. Each accumulator is its own 8-lane chain (256-bit — see the
// reductions note above), so every output is the exact 8-lane-tree dot().
inline void dot4(const float* arow, const float* b0, const float* b1,
                 const float* b2, const float* b3, int k, float* o) {
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps();
  __m256 c3 = _mm256_setzero_ps();
  int l = 0;
  for (; l + 8 <= k; l += 8) {
    const __m256 va = _mm256_loadu_ps(arow + l);
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(b0 + l)));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(va, _mm256_loadu_ps(b1 + l)));
    c2 = _mm256_add_ps(c2, _mm256_mul_ps(va, _mm256_loadu_ps(b2 + l)));
    c3 = _mm256_add_ps(c3, _mm256_mul_ps(va, _mm256_loadu_ps(b3 + l)));
  }
  const __m256 accs[4] = {c0, c1, c2, c3};
  const float* brows[4] = {b0, b1, b2, b3};
  for (int t = 0; t < 4; ++t) {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, accs[t]);
    float tail = 0.0f;
    for (int q = l; q < k; ++q) tail += arow[q] * brows[t][q];
    o[t] += reduce8(lanes, tail);
  }
}

}  // namespace

void matmul_ld(const float* a, int lda, const float* b, int ldb, float* out,
               int ldo, int m, int k, int n, bool transpose_b) {
  if (!transpose_b) {
    // Column-blocked axpy form, 16-wide: 4 zmm accumulators cover 64
    // output columns; each column's chain over l is untouched.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* orow = out + static_cast<std::size_t>(i) * ldo;
      int j = 0;
      for (; j + 64 <= n; j += 64) {
        __m512 c0 = _mm512_loadu_ps(orow + j);
        __m512 c1 = _mm512_loadu_ps(orow + j + 16);
        __m512 c2 = _mm512_loadu_ps(orow + j + 32);
        __m512 c3 = _mm512_loadu_ps(orow + j + 48);
        for (int l = 0; l < k; ++l) {
          const __m512 va = _mm512_set1_ps(arow[l]);
          const float* brow = b + static_cast<std::size_t>(l) * ldb + j;
          c0 = _mm512_add_ps(c0, _mm512_mul_ps(va, _mm512_loadu_ps(brow)));
          c1 = _mm512_add_ps(c1, _mm512_mul_ps(va, _mm512_loadu_ps(brow + 16)));
          c2 = _mm512_add_ps(c2, _mm512_mul_ps(va, _mm512_loadu_ps(brow + 32)));
          c3 = _mm512_add_ps(c3, _mm512_mul_ps(va, _mm512_loadu_ps(brow + 48)));
        }
        _mm512_storeu_ps(orow + j, c0);
        _mm512_storeu_ps(orow + j + 16, c1);
        _mm512_storeu_ps(orow + j + 32, c2);
        _mm512_storeu_ps(orow + j + 48, c3);
      }
      for (; j + 16 <= n; j += 16) {
        __m512 c0 = _mm512_loadu_ps(orow + j);
        for (int l = 0; l < k; ++l) {
          const __m512 va = _mm512_set1_ps(arow[l]);
          c0 = _mm512_add_ps(
              c0, _mm512_mul_ps(
                      va, _mm512_loadu_ps(b + static_cast<std::size_t>(l) * ldb +
                                          j)));
        }
        _mm512_storeu_ps(orow + j, c0);
      }
      for (; j + 8 <= n; j += 8) {
        __m256 c0 = _mm256_loadu_ps(orow + j);
        for (int l = 0; l < k; ++l) {
          const __m256 va = _mm256_set1_ps(arow[l]);
          c0 = _mm256_add_ps(
              c0, _mm256_mul_ps(
                      va, _mm256_loadu_ps(b + static_cast<std::size_t>(l) * ldb +
                                          j)));
        }
        _mm256_storeu_ps(orow + j, c0);
      }
      for (; j < n; ++j) {
        float o = orow[j];
        for (int l = 0; l < k; ++l)
          o += arow[l] * b[static_cast<std::size_t>(l) * ldb + j];
        orow[j] = o;
      }
    }
  } else {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* orow = out + static_cast<std::size_t>(i) * ldo;
      int j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        dot4(arow, brow, brow + ldb, brow + 2 * static_cast<std::size_t>(ldb),
             brow + 3 * static_cast<std::size_t>(ldb), k, orow + j);
      }
      for (; j < n; ++j)
        orow[j] += dot(arow, b + static_cast<std::size_t>(j) * ldb, k);
    }
  }
}

void matmul_ta_ld(const float* a, int lda, const float* b, int ldb, float* out,
                  int ldo, int m, int k, int n) {
  // Same structure as the AVX2 TU, 16-wide: per 64-column block the
  // i-chains live in 4 zmm accumulators, broadcasting A's column l.
  for (int l = 0; l < k; ++l) {
    const float* acol = a + l;
    float* orow = out + static_cast<std::size_t>(l) * ldo;
    int j = 0;
    for (; j + 64 <= n; j += 64) {
      __m512 c0 = _mm512_loadu_ps(orow + j);
      __m512 c1 = _mm512_loadu_ps(orow + j + 16);
      __m512 c2 = _mm512_loadu_ps(orow + j + 32);
      __m512 c3 = _mm512_loadu_ps(orow + j + 48);
      for (int i = 0; i < m; ++i) {
        const __m512 va =
            _mm512_set1_ps(acol[static_cast<std::size_t>(i) * lda]);
        const float* brow = b + static_cast<std::size_t>(i) * ldb + j;
        c0 = _mm512_add_ps(c0, _mm512_mul_ps(va, _mm512_loadu_ps(brow)));
        c1 = _mm512_add_ps(c1, _mm512_mul_ps(va, _mm512_loadu_ps(brow + 16)));
        c2 = _mm512_add_ps(c2, _mm512_mul_ps(va, _mm512_loadu_ps(brow + 32)));
        c3 = _mm512_add_ps(c3, _mm512_mul_ps(va, _mm512_loadu_ps(brow + 48)));
      }
      _mm512_storeu_ps(orow + j, c0);
      _mm512_storeu_ps(orow + j + 16, c1);
      _mm512_storeu_ps(orow + j + 32, c2);
      _mm512_storeu_ps(orow + j + 48, c3);
    }
    for (; j + 16 <= n; j += 16) {
      __m512 c0 = _mm512_loadu_ps(orow + j);
      for (int i = 0; i < m; ++i) {
        const __m512 va =
            _mm512_set1_ps(acol[static_cast<std::size_t>(i) * lda]);
        c0 = _mm512_add_ps(
            c0, _mm512_mul_ps(
                    va, _mm512_loadu_ps(b + static_cast<std::size_t>(i) * ldb +
                                        j)));
      }
      _mm512_storeu_ps(orow + j, c0);
    }
    for (; j < n; ++j) {
      float o = orow[j];
      for (int i = 0; i < m; ++i)
        o += acol[static_cast<std::size_t>(i) * lda] *
             b[static_cast<std::size_t>(i) * ldb + j];
      orow[j] = o;
    }
  }
}

}  // namespace clo::nn::kernel::avx512

#endif  // CLO_KERNEL_AVX512
