#include "clo/nn/tensor.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace clo::nn {
namespace {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("tensor dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor Tensor::zeros(std::vector<int> shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data.assign(shape_numel(shape), 0.0f);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::full(std::vector<int> shape, float value, bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (auto& v : t.data()) v = value;
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, clo::Rng& rng, float stddev,
                     bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (auto& v : t.data()) {
    v = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::from_data(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad) {
  if (shape_numel(shape) != data.size()) {
    throw std::invalid_argument("from_data: shape/data size mismatch");
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(data.begin(), data.end());
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return from_data({1}, {value}, requires_grad);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i) os << ',';
    os << impl_->shape[i];
  }
  os << ']';
  return os.str();
}

void backward(const Tensor& root) {
  if (root.numel() != 1) {
    throw std::invalid_argument("backward: root must be scalar");
  }
  // Topological order over the dynamic graph.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, std::size_t>> stack;
  stack.emplace_back(root.impl().get(), 0);
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (visited.count(node)) {
      stack.pop_back();
      continue;
    }
    if (next_parent < node->parents.size()) {
      TensorImpl* parent = node->parents[next_parent].get();
      ++next_parent;
      if (!visited.count(parent)) stack.emplace_back(parent, 0);
    } else {
      visited.insert(node);
      order.push_back(node);
      stack.pop_back();
    }
  }
  root.impl()->ensure_grad();
  root.impl()->grad[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && node->grad.size() == node->data.size()) {
      node->backward_fn(*node);
    }
  }
}

Tensor detach(const Tensor& t) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = t.shape();
  impl->data = t.data();
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : saved_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = saved_; }

GradFreeze::GradFreeze(const std::vector<Tensor>& params) {
  impls_.reserve(params.size());
  saved_.reserve(params.size());
  for (const auto& p : params) {
    impls_.push_back(p.impl());
    saved_.push_back(p.impl()->requires_grad);
    p.impl()->requires_grad = false;
  }
}

GradFreeze::~GradFreeze() {
  for (std::size_t i = 0; i < impls_.size(); ++i) {
    impls_[i]->requires_grad = saved_[i];
  }
}

}  // namespace clo::nn
