#include "clo/nn/optim.hpp"

#include <cmath>

#include "clo/nn/kernel.hpp"

namespace clo::nn {

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (auto& p : params_) {
    m_.emplace_back(p.numel(), 0.0f);
    v_.emplace_back(p.numel(), 0.0f);
  }
}

void Adam::step() {
  ++step_count_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    kernel::adam_update(p.data().data(), m_[i].data(), v_[i].data(),
                        p.grad().data(), p.numel(), beta1_, beta2_, lr_, bc1,
                        bc2, eps_);
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  for (auto& p : params_) velocity_.emplace_back(p.numel(), 0.0f);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& g = p.grad();
    for (std::size_t j = 0; j < p.numel(); ++j) {
      velocity_[i][j] = momentum_ * velocity_[i][j] - lr_ * g[j];
      p.data()[j] += velocity_[i][j];
    }
  }
  zero_grad();
}

void Sgd::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

}  // namespace clo::nn
