#pragma once
// clo::nn::kernel — runtime-dispatched compute kernels for the nn hot path.
//
// Two implementations sit behind every entry point: a portable blocked
// scalar path (always built) and an AVX2/FMA-gated vector path (built when
// the compiler supports -mavx2, selected at runtime only when cpuid
// reports AVX2+FMA). Dispatch is a single relaxed atomic load per call;
// `--no-simd` (tool flag / `simd off` shell command) forces the scalar
// path at runtime.
//
// Determinism contract: the floating-point result of every kernel is part
// of its definition, not an implementation detail. Reductions use eight
// interleaved partial sums — lane j accumulates elements j, j+8, j+16, ...
// — folded by the fixed tree in reduce8() with a sequential tail (the
// layout conv1d's forward has used since PR 3). Elementwise kernels and
// matmul's non-transposed form are per-element chains in a fixed order.
// Both targets implement exactly these orders with IEEE-754 single ops and
// no FMA contraction (the AVX2 TU is compiled with -ffp-contract=off and
// uses mul+add, not vfmadd; _mm256_sqrt_ps/_mm256_div_ps are correctly
// rounded like their scalar counterparts), so results are BITWISE
// IDENTICAL run-to-run and across dispatch targets — `--no-simd` cannot
// change a retrieved sequence. The documented tolerance is relative to the
// pre-kernel naive sequential loops: reassociating a length-k sum into 8
// lanes perturbs it by at most ~k·eps relative, which is why op-level
// tests compare against double-precision references rather than the old
// scalar order.
//
// All kernels tolerate unaligned pointers (tensor interiors are sliced at
// arbitrary offsets); Tensor storage is 32-byte aligned purely as a
// performance property.

#include <cstddef>

namespace clo::nn::kernel {

// --- Runtime dispatch ---------------------------------------------------

/// True when the AVX2 translation unit was compiled into this binary.
bool simd_compiled();
/// True when simd_compiled() and the CPU reports AVX2 and FMA.
bool simd_supported();
/// True when simd_supported() and not disabled via set_simd_enabled.
bool simd_enabled();
/// Enable/disable the vector path at runtime. Enabling on an unsupported
/// host is a no-op (stays scalar).
void set_simd_enabled(bool on);
/// "avx2" or "scalar" — whichever path calls currently dispatch to.
const char* active_target();

// --- Reductions (8-lane fixed-tree order) -------------------------------

/// sum_i a[i]*b[i]
float dot(const float* a, const float* b, std::size_t n);
/// sum_i (a[i]-b[i])^2
float sqdist(const float* a, const float* b, std::size_t n);
/// sum_i a[i]
float sum(const float* a, std::size_t n);
/// max_i a[i]; n must be >= 1. NaN elements propagate (x>m ? x : m order).
float max_value(const float* a, std::size_t n);

// --- Elementwise --------------------------------------------------------

/// y[i] += a * x[i]
void axpy(float* y, float a, const float* x, std::size_t n);
/// y[i] += x[i]
void acc(float* y, const float* x, std::size_t n);
void add(float* out, const float* a, const float* b, std::size_t n);
void sub(float* out, const float* a, const float* b, std::size_t n);
void mul(float* out, const float* a, const float* b, std::size_t n);
/// out[i] = a[i] * s
void scale(float* out, const float* a, float s, std::size_t n);
/// y[i] /= z
void div_inplace(float* y, float z, std::size_t n);

/// One fused Adam step over a parameter slab:
///   m = b1*m + (1-b1)*g;  v = b2*v + (1-b2)*g*g;
///   p -= lr * (m/bias_c1) / (sqrt(v/bias_c2) + eps)
/// in exactly that per-element operation order on both targets.
void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps);

// --- Matrix multiply ----------------------------------------------------

/// out[m,n] += A[m,k] · B, where B is [k,n] (or [n,k] when transpose_b).
/// Non-transposed: each out element is a sequential chain over l ascending
/// (the AVX2 path blocks columns, which runs many chains in parallel
/// without reassociating any of them). Transposed: each out element gets
/// one full 8-lane-tree dot() added to it.
void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool transpose_b);

}  // namespace clo::nn::kernel
