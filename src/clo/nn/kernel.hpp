#pragma once
// clo::nn::kernel — runtime-dispatched compute kernels for the nn hot path.
//
// Three implementations sit behind every entry point: a portable blocked
// scalar path (always built), an AVX2/FMA-gated vector path (built when
// the compiler supports -mavx2, selected at runtime only when cpuid
// reports AVX2+FMA), and an AVX-512 path (built when the compiler
// supports -mavx512f, selected only when cpuid reports AVX-512F).
// Dispatch is a single relaxed atomic load per call; `--no-simd` /
// `--kernel-target` (tool flags) and the `simd` shell command force a
// lower target at runtime — forcing a target the host cannot run clamps
// down to the best supported one.
//
// Determinism contract: the floating-point result of every kernel is part
// of its definition, not an implementation detail. Reductions use eight
// interleaved partial sums — lane j accumulates elements j, j+8, j+16, ...
// — folded by the fixed tree in reduce8() with a sequential tail (the
// layout conv1d's forward has used since PR 3). Elementwise kernels and
// matmul's non-transposed form are per-element chains in a fixed order.
// All targets implement exactly these orders with IEEE-754 single ops and
// no FMA contraction (the vector TUs are compiled with -ffp-contract=off
// and use mul+add, not vfmadd; vector divide/sqrt are correctly rounded
// like their scalar counterparts). The AVX-512 TU keeps the 8-lane
// reduction layout by feeding each 16-element load into the SAME eight
// accumulator lanes as two sequential 8-wide adds, and runs 16-wide only
// where elements are independent chains (elementwise, adam, matmul column
// blocks). So results are BITWISE IDENTICAL run-to-run and across
// dispatch targets — `--no-simd` cannot change a retrieved sequence. The
// documented tolerance is relative to the pre-kernel naive sequential
// loops: reassociating a length-k sum into 8 lanes perturbs it by at most
// ~k·eps relative, which is why op-level tests compare against
// double-precision references rather than the old scalar order.
//
// Threading: matmul/matmul_ta fan output tiles out over a registered
// clo::util::ThreadPool (set_thread_pool / PoolGuard). The tile grid is a
// pure function of the output shape — never of the thread count — and
// every output element's accumulation chain is confined to one tile, so
// tiling (and which worker computes which tile) cannot change a single
// operation's order: results stay byte-identical at any thread count,
// including the serial no-pool path. Small products and calls already on
// a pool worker run serially.
//
// All kernels tolerate unaligned pointers (tensor interiors are sliced at
// arbitrary offsets); Tensor storage is 64-byte aligned purely as a
// performance property.

#include <cstddef>

namespace clo::util {
class ThreadPool;
}  // namespace clo::util

namespace clo::nn::kernel {

// --- Runtime dispatch ---------------------------------------------------

/// Dispatch targets, in ascending preference order.
enum class Target { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// True when the TU for `t` was compiled into this binary (kScalar always).
bool target_compiled(Target t);
/// True when target_compiled(t) and the CPU can execute it.
bool target_supported(Target t);
/// The highest supported target — what dispatch uses by default.
Target best_supported_target();
/// Force dispatch to `t`, clamped down to the best supported target not
/// above it (forcing kAvx512 on an AVX2-only host yields kAvx2). Returns
/// the target actually active afterwards.
Target set_target(Target t);
/// The target calls currently dispatch to.
Target current_target();
/// "scalar" / "avx2" / "avx512".
const char* target_name(Target t);
/// target_name(current_target()).
const char* active_target();
/// Parse a --kernel-target value ("scalar", "avx2", "avx512", or "auto" =
/// best supported). Returns false for unknown names.
bool parse_target(const char* name, Target* out);

/// True when any vector TU was compiled into this binary.
bool simd_compiled();
/// True when a vector target is supported on this host.
bool simd_supported();
/// True when dispatch currently goes to a vector target.
bool simd_enabled();
/// on = best supported target, off = scalar (the legacy --no-simd toggle).
void set_simd_enabled(bool on);

// --- Threading ----------------------------------------------------------

/// Register the pool matmul/matmul_ta fan tile work out on (process-global,
/// relaxed-atomic). nullptr — the default — keeps every kernel serial.
/// Registration only affects wall-clock, never bytes (see header note).
void set_thread_pool(clo::util::ThreadPool* pool);
/// The currently registered pool (nullptr when serial).
clo::util::ThreadPool* thread_pool();
/// Worker count the tiled GEMM can currently fan out over (1 = serial).
std::size_t threads();

/// RAII registration: sets the kernel pool for the guard's lifetime and
/// restores the previous registration on destruction. The pipeline/bench
/// layers wrap their pool acquisition in one of these.
class PoolGuard {
 public:
  explicit PoolGuard(clo::util::ThreadPool* pool);
  ~PoolGuard();
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  clo::util::ThreadPool* prev_;
};

// --- Reductions (8-lane fixed-tree order) -------------------------------

/// sum_i a[i]*b[i]
float dot(const float* a, const float* b, std::size_t n);
/// sum_i (a[i]-b[i])^2
float sqdist(const float* a, const float* b, std::size_t n);
/// sum_i a[i]
float sum(const float* a, std::size_t n);
/// max_i a[i]; n must be >= 1. Pinned NaN semantics: when ANY element is
/// NaN the result is the canonical quiet NaN (std::numeric_limits quiet),
/// regardless of the NaN's position or payload — identical on every
/// target. (The pre-PR-10 `x > m ? x : m` scan silently dropped a NaN
/// that appeared before the running max, contradicting this header.)
float max_value(const float* a, std::size_t n);

// --- Elementwise --------------------------------------------------------

/// y[i] += a * x[i]
void axpy(float* y, float a, const float* x, std::size_t n);
/// y[i] += x[i]
void acc(float* y, const float* x, std::size_t n);
void add(float* out, const float* a, const float* b, std::size_t n);
void sub(float* out, const float* a, const float* b, std::size_t n);
void mul(float* out, const float* a, const float* b, std::size_t n);
/// out[i] = a[i] * s
void scale(float* out, const float* a, float s, std::size_t n);
/// y[i] /= z
void div_inplace(float* y, float z, std::size_t n);

/// One fused Adam step over a parameter slab:
///   m = b1*m + (1-b1)*g;  v = b2*v + (1-b2)*g*g;
///   p -= lr * (m/bias_c1) / (sqrt(v/bias_c2) + eps)
/// in exactly that per-element operation order on all targets.
void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps);

// --- Matrix multiply ----------------------------------------------------

/// out[m,n] += A[m,k] · B, where B is [k,n] (or [n,k] when transpose_b).
/// Non-transposed: each out element is a sequential chain over l ascending
/// (the vector paths block columns, which runs many chains in parallel
/// without reassociating any of them). Transposed: each out element gets
/// one full 8-lane-tree dot() added to it. Tiled over the registered
/// thread pool when the product is large enough (see Threading above).
void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool transpose_b);

/// out[k,n] += Aᵀ · B, where A is [m,k] and B is [m,n] — the matmul
/// backward dB kernel. Each out element is a sequential mul+add chain over
/// the shared row index i ascending (exactly the accumulation order the
/// autograd loop has used since PR 5). Tiled like matmul.
void matmul_ta(const float* a, const float* b, float* out, int m, int k,
               int n);

}  // namespace clo::nn::kernel
