#include "clo/nn/kernel.hpp"

#include <atomic>
#include <cmath>

#include "clo/nn/kernel_detail.hpp"

// Portable blocked scalar kernels + the runtime dispatch layer. The AVX2
// twins live in kernel_avx2.cpp (compiled only when the toolchain supports
// -mavx2; CMake then defines CLO_KERNEL_AVX2). Both TUs are built with
// -ffp-contract=off so no mul+add pair is ever fused into an FMA — fusion
// would break the bitwise scalar/vector equality the dispatch contract
// promises (see kernel.hpp).

namespace clo::nn::kernel {

using detail::fold_max8;
using detail::reduce8;

#ifdef CLO_KERNEL_AVX2
namespace avx2 {
float dot(const float* a, const float* b, std::size_t n);
float sqdist(const float* a, const float* b, std::size_t n);
float sum(const float* a, std::size_t n);
float max_value(const float* a, std::size_t n);
void axpy(float* y, float a, const float* x, std::size_t n);
void acc(float* y, const float* x, std::size_t n);
void add(float* out, const float* a, const float* b, std::size_t n);
void sub(float* out, const float* a, const float* b, std::size_t n);
void mul(float* out, const float* a, const float* b, std::size_t n);
void scale(float* out, const float* a, float s, std::size_t n);
void div_inplace(float* y, float z, std::size_t n);
void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps);
void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool transpose_b);
}  // namespace avx2
#endif

// --- Dispatch state -----------------------------------------------------

namespace {

bool cpu_has_avx2_fma() {
#if defined(CLO_KERNEL_AVX2) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

std::atomic<bool>& simd_flag() {
  static std::atomic<bool> flag{cpu_has_avx2_fma()};
  return flag;
}

}  // namespace

bool simd_compiled() {
#ifdef CLO_KERNEL_AVX2
  return true;
#else
  return false;
#endif
}

bool simd_supported() {
  static const bool supported = cpu_has_avx2_fma();
  return supported;
}

bool simd_enabled() { return simd_flag().load(std::memory_order_relaxed); }

void set_simd_enabled(bool on) {
  simd_flag().store(on && simd_supported(), std::memory_order_relaxed);
}

const char* active_target() { return simd_enabled() ? "avx2" : "scalar"; }

// --- Scalar reference kernels -------------------------------------------

namespace scalar {
namespace {

float dot(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t) lanes[t] += a[i + t] * b[i + t];
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return reduce8(lanes, tail);
}

float sqdist(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t) {
      const float d = a[i + t] - b[i + t];
      lanes[t] += d * d;
    }
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return reduce8(lanes, tail);
}

float sum(const float* a, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t) lanes[t] += a[i + t];
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i];
  return reduce8(lanes, tail);
}

float max_value(const float* a, std::size_t n) {
  if (n < 8) {
    float m = a[0];
    for (std::size_t i = 1; i < n; ++i) m = a[i] > m ? a[i] : m;
    return m;
  }
  float lanes[8];
  for (int t = 0; t < 8; ++t) lanes[t] = a[t];
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t)
      lanes[t] = a[i + t] > lanes[t] ? a[i + t] : lanes[t];
  float m = fold_max8(lanes);
  for (; i < n; ++i) m = a[i] > m ? a[i] : m;
  return m;
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void acc(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void add(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void scale(float* out, const float* a, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void div_inplace(float* y, float z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] /= z;
}

void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps) {
  for (std::size_t i = 0; i < n; ++i) {
    const float gi = g[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * (gi * gi);
    const float mhat = m[i] / bias_c1;
    const float vhat = v[i] / bias_c2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool transpose_b) {
  if (!transpose_b) {
    // out[i,j] is a chain over l ascending; the axpy form streams whole
    // rows of B and lets the compiler vectorize across j without touching
    // any per-element order.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int l = 0; l < k; ++l)
        axpy(orow, arow[l], b + static_cast<std::size_t>(l) * n, n);
    }
  } else {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * k;
      float* orow = out + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j)
        orow[j] += dot(arow, b + static_cast<std::size_t>(j) * k, k);
    }
  }
}

}  // namespace
}  // namespace scalar

// --- Public entry points ------------------------------------------------

#ifdef CLO_KERNEL_AVX2
#define CLO_KERNEL_DISPATCH(call) \
  if (simd_enabled()) return avx2::call; \
  return scalar::call
#else
#define CLO_KERNEL_DISPATCH(call) return scalar::call
#endif

float dot(const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(dot(a, b, n));
}

float sqdist(const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(sqdist(a, b, n));
}

float sum(const float* a, std::size_t n) { CLO_KERNEL_DISPATCH(sum(a, n)); }

float max_value(const float* a, std::size_t n) {
  CLO_KERNEL_DISPATCH(max_value(a, n));
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  CLO_KERNEL_DISPATCH(axpy(y, a, x, n));
}

void acc(float* y, const float* x, std::size_t n) {
  CLO_KERNEL_DISPATCH(acc(y, x, n));
}

void add(float* out, const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(add(out, a, b, n));
}

void sub(float* out, const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(sub(out, a, b, n));
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(mul(out, a, b, n));
}

void scale(float* out, const float* a, float s, std::size_t n) {
  CLO_KERNEL_DISPATCH(scale(out, a, s, n));
}

void div_inplace(float* y, float z, std::size_t n) {
  CLO_KERNEL_DISPATCH(div_inplace(y, z, n));
}

void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps) {
  CLO_KERNEL_DISPATCH(
      adam_update(p, m, v, g, n, beta1, beta2, lr, bias_c1, bias_c2, eps));
}

void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool transpose_b) {
  CLO_KERNEL_DISPATCH(matmul(a, b, out, m, k, n, transpose_b));
}

#undef CLO_KERNEL_DISPATCH

}  // namespace clo::nn::kernel
