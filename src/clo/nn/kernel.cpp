#include "clo/nn/kernel.hpp"

#include <atomic>
#include <cmath>
#include <string_view>

#include "clo/nn/kernel_detail.hpp"
#include "clo/util/thread_pool.hpp"

// Portable blocked scalar kernels + the runtime dispatch layer + the tile
// fan-out for the threaded GEMM. The AVX2 twins live in kernel_avx2.cpp
// (compiled only when the toolchain supports -mavx2; CMake then defines
// CLO_KERNEL_AVX2) and the AVX-512 twins in kernel_avx512.cpp (-mavx512f,
// CLO_KERNEL_AVX512 — only ever defined together with CLO_KERNEL_AVX2).
// All kernel TUs are built with -ffp-contract=off so no mul+add pair is
// ever fused into an FMA — fusion would break the bitwise scalar/vector
// equality the dispatch contract promises (see kernel.hpp).

namespace clo::nn::kernel {

using detail::canonical_nan;
using detail::fold_max8;
using detail::reduce8;

#ifdef CLO_KERNEL_AVX2
namespace avx2 {
float dot(const float* a, const float* b, std::size_t n);
float sqdist(const float* a, const float* b, std::size_t n);
float sum(const float* a, std::size_t n);
float max_value(const float* a, std::size_t n);
void axpy(float* y, float a, const float* x, std::size_t n);
void acc(float* y, const float* x, std::size_t n);
void add(float* out, const float* a, const float* b, std::size_t n);
void sub(float* out, const float* a, const float* b, std::size_t n);
void mul(float* out, const float* a, const float* b, std::size_t n);
void scale(float* out, const float* a, float s, std::size_t n);
void div_inplace(float* y, float z, std::size_t n);
void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps);
void matmul_ld(const float* a, int lda, const float* b, int ldb, float* out,
               int ldo, int m, int k, int n, bool transpose_b);
void matmul_ta_ld(const float* a, int lda, const float* b, int ldb, float* out,
                  int ldo, int m, int k, int n);
}  // namespace avx2
#endif

#ifdef CLO_KERNEL_AVX512
namespace avx512 {
float dot(const float* a, const float* b, std::size_t n);
float sqdist(const float* a, const float* b, std::size_t n);
float sum(const float* a, std::size_t n);
float max_value(const float* a, std::size_t n);
void axpy(float* y, float a, const float* x, std::size_t n);
void acc(float* y, const float* x, std::size_t n);
void add(float* out, const float* a, const float* b, std::size_t n);
void sub(float* out, const float* a, const float* b, std::size_t n);
void mul(float* out, const float* a, const float* b, std::size_t n);
void scale(float* out, const float* a, float s, std::size_t n);
void div_inplace(float* y, float z, std::size_t n);
void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps);
void matmul_ld(const float* a, int lda, const float* b, int ldb, float* out,
               int ldo, int m, int k, int n, bool transpose_b);
void matmul_ta_ld(const float* a, int lda, const float* b, int ldb, float* out,
                  int ldo, int m, int k, int n);
}  // namespace avx512
#endif

// --- Dispatch state -----------------------------------------------------

namespace {

bool cpu_has_avx2_fma() {
#if defined(CLO_KERNEL_AVX2) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(CLO_KERNEL_AVX512) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

std::atomic<int>& target_state() {
  static std::atomic<int> state{static_cast<int>(best_supported_target())};
  return state;
}

std::atomic<clo::util::ThreadPool*>& pool_state() {
  static std::atomic<clo::util::ThreadPool*> pool{nullptr};
  return pool;
}

}  // namespace

bool target_compiled(Target t) {
  switch (t) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
#ifdef CLO_KERNEL_AVX2
      return true;
#else
      return false;
#endif
    case Target::kAvx512:
#ifdef CLO_KERNEL_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool target_supported(Target t) {
  switch (t) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
      return cpu_has_avx2_fma();
    case Target::kAvx512:
      // The AVX-512 TU also uses 256-bit ops, so AVX2+FMA support is part
      // of its gate (every AVX-512F CPU has them, but be explicit).
      return cpu_has_avx512f() && cpu_has_avx2_fma();
  }
  return false;
}

Target best_supported_target() {
  static const Target best = [] {
    if (target_supported(Target::kAvx512)) return Target::kAvx512;
    if (target_supported(Target::kAvx2)) return Target::kAvx2;
    return Target::kScalar;
  }();
  return best;
}

Target set_target(Target t) {
  Target actual = Target::kScalar;
  for (Target c : {Target::kAvx2, Target::kAvx512}) {
    if (static_cast<int>(c) <= static_cast<int>(t) && target_supported(c)) {
      actual = c;
    }
  }
  target_state().store(static_cast<int>(actual), std::memory_order_relaxed);
  return actual;
}

Target current_target() {
  return static_cast<Target>(target_state().load(std::memory_order_relaxed));
}

const char* target_name(Target t) {
  switch (t) {
    case Target::kAvx512:
      return "avx512";
    case Target::kAvx2:
      return "avx2";
    case Target::kScalar:
      return "scalar";
  }
  return "scalar";
}

const char* active_target() { return target_name(current_target()); }

bool parse_target(const char* name, Target* out) {
  const std::string_view s{name == nullptr ? "" : name};
  if (s == "scalar") {
    *out = Target::kScalar;
  } else if (s == "avx2") {
    *out = Target::kAvx2;
  } else if (s == "avx512") {
    *out = Target::kAvx512;
  } else if (s == "auto") {
    *out = best_supported_target();
  } else {
    return false;
  }
  return true;
}

bool simd_compiled() {
  return target_compiled(Target::kAvx2) || target_compiled(Target::kAvx512);
}

bool simd_supported() { return best_supported_target() != Target::kScalar; }

bool simd_enabled() { return current_target() != Target::kScalar; }

void set_simd_enabled(bool on) {
  set_target(on ? best_supported_target() : Target::kScalar);
}

// --- Thread-pool registration -------------------------------------------

void set_thread_pool(clo::util::ThreadPool* pool) {
  pool_state().store(pool, std::memory_order_relaxed);
}

clo::util::ThreadPool* thread_pool() {
  return pool_state().load(std::memory_order_relaxed);
}

std::size_t threads() {
  const clo::util::ThreadPool* pool = thread_pool();
  if (pool == nullptr || pool->size() == 0) return 1;
  return pool->size();
}

PoolGuard::PoolGuard(clo::util::ThreadPool* pool) : prev_(thread_pool()) {
  set_thread_pool(pool);
}

PoolGuard::~PoolGuard() { set_thread_pool(prev_); }

// --- Scalar reference kernels -------------------------------------------

namespace scalar {
namespace {

float dot(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t) lanes[t] += a[i + t] * b[i + t];
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return reduce8(lanes, tail);
}

float sqdist(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t) {
      const float d = a[i + t] - b[i + t];
      lanes[t] += d * d;
    }
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return reduce8(lanes, tail);
}

float sum(const float* a, std::size_t n) {
  float lanes[8] = {};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int t = 0; t < 8; ++t) lanes[t] += a[i + t];
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i];
  return reduce8(lanes, tail);
}

float max_value(const float* a, std::size_t n) {
  // NaN is detected with a separate accumulator instead of riding on the
  // max select (which drops a NaN that appears before the running max);
  // any NaN anywhere pins the result to the canonical quiet NaN.
  bool has_nan = false;
  float m;
  if (n < 8) {
    m = a[0];
    has_nan = a[0] != a[0];
    for (std::size_t i = 1; i < n; ++i) {
      has_nan = has_nan || a[i] != a[i];
      m = a[i] > m ? a[i] : m;
    }
  } else {
    float lanes[8];
    for (int t = 0; t < 8; ++t) {
      lanes[t] = a[t];
      has_nan = has_nan || a[t] != a[t];
    }
    std::size_t i = 8;
    for (; i + 8 <= n; i += 8)
      for (int t = 0; t < 8; ++t) {
        has_nan = has_nan || a[i + t] != a[i + t];
        lanes[t] = a[i + t] > lanes[t] ? a[i + t] : lanes[t];
      }
    m = fold_max8(lanes);
    for (; i < n; ++i) {
      has_nan = has_nan || a[i] != a[i];
      m = a[i] > m ? a[i] : m;
    }
  }
  return has_nan ? canonical_nan() : m;
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void acc(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void add(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void sub(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void scale(float* out, const float* a, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void div_inplace(float* y, float z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] /= z;
}

void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps) {
  for (std::size_t i = 0; i < n; ++i) {
    const float gi = g[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * (gi * gi);
    const float mhat = m[i] / bias_c1;
    const float vhat = v[i] / bias_c2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

/// Strided (leading-dimension) matmul: an [m,n] tile of the output with
/// row stride ldo, fed by an A tile with row stride lda and a B tile with
/// row stride ldb. The full matmul is matmul_ld with lda=k, ldb=n|k,
/// ldo=n; the tiled fan-out slices the same call.
void matmul_ld(const float* a, int lda, const float* b, int ldb, float* out,
               int ldo, int m, int k, int n, bool transpose_b) {
  if (!transpose_b) {
    // out[i,j] is a chain over l ascending; the axpy form streams whole
    // rows of B and lets the compiler vectorize across j without touching
    // any per-element order.
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* orow = out + static_cast<std::size_t>(i) * ldo;
      for (int l = 0; l < k; ++l)
        axpy(orow, arow[l], b + static_cast<std::size_t>(l) * ldb, n);
    }
  } else {
    for (int i = 0; i < m; ++i) {
      const float* arow = a + static_cast<std::size_t>(i) * lda;
      float* orow = out + static_cast<std::size_t>(i) * ldo;
      for (int j = 0; j < n; ++j)
        orow[j] += dot(arow, b + static_cast<std::size_t>(j) * ldb, k);
    }
  }
}

/// Strided Aᵀ·B: out is a [k,n] tile (row stride ldo) of Aᵀ·B where A has
/// row stride lda ([m,k] overall; `a` points at the tile's first A
/// column) and B row stride ldb. Each out element accumulates over the
/// shared row index i ascending — the dB order the autograd loop pinned
/// in PR 5.
void matmul_ta_ld(const float* a, int lda, const float* b, int ldb, float* out,
                  int ldo, int m, int k, int n) {
  for (int l = 0; l < k; ++l) {
    float* orow = out + static_cast<std::size_t>(l) * ldo;
    for (int j = 0; j < n; ++j) {
      float o = orow[j];
      for (int i = 0; i < m; ++i)
        o += a[static_cast<std::size_t>(i) * lda + l] *
             b[static_cast<std::size_t>(i) * ldb + j];
      orow[j] = o;
    }
  }
}

}  // namespace
}  // namespace scalar

// --- Public entry points ------------------------------------------------

#if defined(CLO_KERNEL_AVX512)
#define CLO_KERNEL_DISPATCH(call)       \
  switch (current_target()) {           \
    case Target::kAvx512:               \
      return avx512::call;              \
    case Target::kAvx2:                 \
      return avx2::call;                \
    default:                            \
      return scalar::call;              \
  }
#elif defined(CLO_KERNEL_AVX2)
#define CLO_KERNEL_DISPATCH(call)                        \
  if (current_target() != Target::kScalar) return avx2::call; \
  return scalar::call
#else
#define CLO_KERNEL_DISPATCH(call) return scalar::call
#endif

float dot(const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(dot(a, b, n));
}

float sqdist(const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(sqdist(a, b, n));
}

float sum(const float* a, std::size_t n) { CLO_KERNEL_DISPATCH(sum(a, n)); }

float max_value(const float* a, std::size_t n) {
  CLO_KERNEL_DISPATCH(max_value(a, n));
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  CLO_KERNEL_DISPATCH(axpy(y, a, x, n));
}

void acc(float* y, const float* x, std::size_t n) {
  CLO_KERNEL_DISPATCH(acc(y, x, n));
}

void add(float* out, const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(add(out, a, b, n));
}

void sub(float* out, const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(sub(out, a, b, n));
}

void mul(float* out, const float* a, const float* b, std::size_t n) {
  CLO_KERNEL_DISPATCH(mul(out, a, b, n));
}

void scale(float* out, const float* a, float s, std::size_t n) {
  CLO_KERNEL_DISPATCH(scale(out, a, s, n));
}

void div_inplace(float* y, float z, std::size_t n) {
  CLO_KERNEL_DISPATCH(div_inplace(y, z, n));
}

void adam_update(float* p, float* m, float* v, const float* g, std::size_t n,
                 float beta1, float beta2, float lr, float bias_c1,
                 float bias_c2, float eps) {
  CLO_KERNEL_DISPATCH(
      adam_update(p, m, v, g, n, beta1, beta2, lr, bias_c1, bias_c2, eps));
}

// --- Tiled GEMM fan-out -------------------------------------------------

namespace {

// Tile geometry is a pure function of the OUTPUT shape — never of the
// thread count or pool size — so the grid (and with it every per-element
// accumulation chain, each confined to one tile) is identical no matter
// how many workers drain it. Row tiles keep a worker on contiguous output
// rows; column tiles are a multiple of the vector paths' 32-column block.
constexpr int kTileRows = 16;
constexpr int kTileCols = 128;
// Products under ~a quarter-million flops are not worth a fan-out: the
// pool wake-up costs more than the multiply.
constexpr long long kMinParallelFlops = 1LL << 18;

void matmul_ld_dispatch(const float* a, int lda, const float* b, int ldb,
                        float* out, int ldo, int m, int k, int n,
                        bool transpose_b) {
  CLO_KERNEL_DISPATCH(
      matmul_ld(a, lda, b, ldb, out, ldo, m, k, n, transpose_b));
}

void matmul_ta_ld_dispatch(const float* a, int lda, const float* b, int ldb,
                           float* out, int ldo, int m, int k, int n) {
  CLO_KERNEL_DISPATCH(matmul_ta_ld(a, lda, b, ldb, out, ldo, m, k, n));
}

bool should_fan_out(int out_rows, int out_cols, long long flops,
                    clo::util::ThreadPool* pool, int* row_tiles,
                    int* col_tiles) {
  *row_tiles = (out_rows + kTileRows - 1) / kTileRows;
  *col_tiles = (out_cols + kTileCols - 1) / kTileCols;
  if (pool == nullptr || pool->size() < 2) return false;
  if (flops < kMinParallelFlops) return false;
  if (static_cast<long long>(*row_tiles) * *col_tiles < 2) return false;
  // Nested kernels on a pool worker run serially (parallel_tiles would
  // degrade to serial anyway; skip the tile bookkeeping entirely).
  if (clo::util::ThreadPool::on_worker_thread()) return false;
  return true;
}

}  // namespace

void matmul(const float* a, const float* b, float* out, int m, int k, int n,
            bool transpose_b) {
  const int ldb = transpose_b ? k : n;
  clo::util::ThreadPool* pool = thread_pool();
  int row_tiles = 0, col_tiles = 0;
  if (!should_fan_out(m, n, 2LL * m * k * n, pool, &row_tiles, &col_tiles)) {
    matmul_ld_dispatch(a, k, b, ldb, out, n, m, k, n, transpose_b);
    return;
  }
  clo::util::parallel_tiles(
      pool, static_cast<std::size_t>(row_tiles) * col_tiles,
      [&](std::size_t t) {
        const int ti = static_cast<int>(t) / col_tiles;
        const int tj = static_cast<int>(t) % col_tiles;
        const int i0 = ti * kTileRows;
        const int i1 = i0 + kTileRows < m ? i0 + kTileRows : m;
        const int j0 = tj * kTileCols;
        const int j1 = j0 + kTileCols < n ? j0 + kTileCols : n;
        const float* at = a + static_cast<std::size_t>(i0) * k;
        const float* bt = transpose_b ? b + static_cast<std::size_t>(j0) * k
                                      : b + j0;
        float* ot = out + static_cast<std::size_t>(i0) * n + j0;
        matmul_ld_dispatch(at, k, bt, ldb, ot, n, i1 - i0, k, j1 - j0,
                           transpose_b);
      });
}

void matmul_ta(const float* a, const float* b, float* out, int m, int k,
               int n) {
  clo::util::ThreadPool* pool = thread_pool();
  int row_tiles = 0, col_tiles = 0;
  if (!should_fan_out(k, n, 2LL * m * k * n, pool, &row_tiles, &col_tiles)) {
    matmul_ta_ld_dispatch(a, k, b, n, out, n, m, k, n);
    return;
  }
  clo::util::parallel_tiles(
      pool, static_cast<std::size_t>(row_tiles) * col_tiles,
      [&](std::size_t t) {
        const int tl = static_cast<int>(t) / col_tiles;
        const int tj = static_cast<int>(t) % col_tiles;
        const int l0 = tl * kTileRows;
        const int l1 = l0 + kTileRows < k ? l0 + kTileRows : k;
        const int j0 = tj * kTileCols;
        const int j1 = j0 + kTileCols < n ? j0 + kTileCols : n;
        // The tile's out rows l0..l1 read A columns l0..l1: offset a by
        // the column, keep the full row stride.
        matmul_ta_ld_dispatch(a + l0, k, b + j0, n,
                              out + static_cast<std::size_t>(l0) * n + j0, n,
                              m, l1 - l0, j1 - j0);
      });
}

#undef CLO_KERNEL_DISPATCH

}  // namespace clo::nn::kernel
