#include "clo/nn/modules.hpp"

#include <cmath>

namespace clo::nn {

Linear::Linear(int in_features, int out_features, clo::Rng& rng)
    : weight_(Tensor::randn({in_features, out_features}, rng,
                            std::sqrt(2.0f / static_cast<float>(in_features)),
                            true)),
      bias_(Tensor::zeros({out_features}, true)) {}

Tensor Linear::forward(const Tensor& x) {
  return add_bias(matmul(x, weight_), bias_);
}

Mlp::Mlp(int in_features, int hidden, int out_features, clo::Rng& rng)
    : fc1_(in_features, hidden, rng), fc2_(hidden, out_features, rng) {}

Tensor Mlp::forward(const Tensor& x) {
  return fc2_.forward(relu(fc1_.forward(x)));
}

std::vector<Tensor> Mlp::parameters() {
  auto p = fc1_.parameters();
  auto q = fc2_.parameters();
  p.insert(p.end(), q.begin(), q.end());
  return p;
}

Lstm::Lstm(int in_features, int hidden, clo::Rng& rng)
    : hidden_(hidden),
      wx_(Tensor::randn({in_features, 4 * hidden}, rng,
                        std::sqrt(1.0f / static_cast<float>(in_features)),
                        true)),
      wh_(Tensor::randn({hidden, 4 * hidden}, rng,
                        std::sqrt(1.0f / static_cast<float>(hidden)), true)),
      bias_(Tensor::zeros({4 * hidden}, true)) {}

std::vector<Tensor> Lstm::forward(const std::vector<Tensor>& steps) {
  const int batch = steps.at(0).dim(0);
  Tensor h = Tensor::zeros({batch, hidden_});
  Tensor c = Tensor::zeros({batch, hidden_});
  std::vector<Tensor> outputs;
  outputs.reserve(steps.size());
  for (const Tensor& x : steps) {
    Tensor gates = add_bias(add(matmul(x, wx_), matmul(h, wh_)), bias_);
    Tensor i = sigmoid(slice_cols(gates, 0, hidden_));
    Tensor f = sigmoid(slice_cols(gates, hidden_, 2 * hidden_));
    Tensor g = tanh_op(slice_cols(gates, 2 * hidden_, 3 * hidden_));
    Tensor o = sigmoid(slice_cols(gates, 3 * hidden_, 4 * hidden_));
    c = add(mul(f, c), mul(i, g));
    h = mul(o, tanh_op(c));
    outputs.push_back(h);
  }
  return outputs;
}

AttentionPool::AttentionPool(int features, int attn_dim, clo::Rng& rng)
    : w_(Tensor::randn({features, attn_dim}, rng,
                       std::sqrt(1.0f / static_cast<float>(features)), true)),
      v_(Tensor::randn({attn_dim, 1}, rng,
                       std::sqrt(1.0f / static_cast<float>(attn_dim)), true)),
      b_(Tensor::zeros({attn_dim}, true)) {}

Tensor AttentionPool::forward(const std::vector<Tensor>& steps) {
  // scores[:, t] = v . tanh(W h_t + b)
  Tensor scores;  // [batch, T]
  for (const Tensor& h : steps) {
    Tensor s = matmul(tanh_op(add_bias(matmul(h, w_), b_)), v_);  // [B,1]
    scores = scores.defined() ? concat_cols(scores, s) : s;
  }
  Tensor alpha = softmax_rows(scores);  // [B,T]
  Tensor pooled;
  for (std::size_t t = 0; t < steps.size(); ++t) {
    // Broadcast alpha[:, t] over features by elementwise trick:
    Tensor at = slice_cols(alpha, static_cast<int>(t), static_cast<int>(t) + 1);
    // [B,1] x [1,F] multiplication is emulated with matmul against ones.
    Tensor ones = Tensor::full({1, steps[t].dim(1)}, 1.0f);
    Tensor at_full = matmul(at, ones);  // [B,F]
    Tensor term = mul(at_full, steps[t]);
    pooled = pooled.defined() ? add(pooled, term) : term;
  }
  return pooled;
}

Conv1dLayer::Conv1dLayer(int in_channels, int out_channels, int kernel,
                         clo::Rng& rng)
    : weight_(Tensor::randn(
          {out_channels, in_channels, kernel}, rng,
          std::sqrt(2.0f / static_cast<float>(in_channels * kernel)), true)),
      bias_(Tensor::zeros({out_channels}, true)) {}

Tensor Conv1dLayer::forward(const Tensor& x) {
  return conv1d(x, weight_, bias_);
}

Tensor timestep_embedding(const std::vector<int>& t, int dim) {
  const int half = dim / 2;
  Tensor out = Tensor::zeros({static_cast<int>(t.size()), dim});
  // The frequency table depends only on i — hoist the exp/log out of the
  // batch loop so an [R]-restart batch doesn't recompute it R times.
  // Same double-precision expression, so values are unchanged.
  std::vector<double> freqs(static_cast<std::size_t>(half));
  for (int i = 0; i < half; ++i) {
    freqs[i] = std::exp(-std::log(10000.0) * static_cast<double>(i) / half);
  }
  for (std::size_t b = 0; b < t.size(); ++b) {
    for (int i = 0; i < half; ++i) {
      const double arg = static_cast<double>(t[b]) * freqs[i];
      out.data()[b * dim + i] = static_cast<float>(std::sin(arg));
      out.data()[b * dim + half + i] = static_cast<float>(std::cos(arg));
    }
  }
  return out;
}

}  // namespace clo::nn
