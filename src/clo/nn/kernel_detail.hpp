#pragma once
// Internal to the kernel TUs (kernel.cpp / kernel_avx2.cpp). The folds
// here ARE the reduction semantics both dispatch targets must implement;
// sharing one definition keeps them from drifting apart. Pure adds and
// compares — nothing here is contractible into an FMA.

namespace clo::nn::kernel::detail {

/// Fixed tree over 8 interleaved partial sums plus the sequential tail
/// (same layout conv1d's forward has used since PR 3).
inline float reduce8(const float lanes[8], float tail) {
  const float s04 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
  const float s26 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
  return (s04 + s26) + tail;
}

/// Fixed fold for 8-lane maxima; the `x > m ? x : m` order means NaN lanes
/// are dropped by the max itself (softmax still propagates NaN through the
/// exp that follows).
inline float fold_max8(const float lanes[8]) {
  float m = lanes[0];
  for (int t = 1; t < 8; ++t) m = lanes[t] > m ? lanes[t] : m;
  return m;
}

}  // namespace clo::nn::kernel::detail
